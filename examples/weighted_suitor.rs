//! Approximate *weighted* matching with the Suitor algorithm — the
//! related-work landscape the paper situates itself in (Halappanavar et
//! al., Fagginger Auer & Bisseling).
//!
//! Scenario: a compute cluster pairs nodes for all-reduce communication;
//! edge weights are link bandwidths, and we want a heavy matching fast.
//! Compares global greedy, Drake–Hougardy path growing and the Suitor
//! algorithm (sequential and lock-free parallel), which match greedy's
//! quality with near-linear parallel scaling.
//!
//! ```text
//! cargo run --release --example weighted_suitor [n]
//! ```

use dsmatch::prelude::*;
use dsmatch::weighted::{
    greedy_weighted, matching_weight, path_growing, suitor, suitor_parallel, WeightedGraph,
};
use std::time::Instant;

fn cluster_topology(n: usize, seed: u64) -> WeightedGraph {
    // Fat-tree-ish: ring of racks + random uplinks, bandwidth falls with
    // "distance".
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(usize, usize, f64)> = Vec::with_capacity(3 * n);
    for v in 0..n {
        edges.push((v, (v + 1) % n, 100.0 + rng.next_f64() * 10.0)); // intra-rack
        edges.push((v, (v + 7) % n, 40.0 + rng.next_f64() * 10.0)); // cross-rack
    }
    for _ in 0..n {
        let u = rng.next_index(n);
        let v = rng.next_index(n);
        if u != v {
            edges.push((u, v, 10.0 + rng.next_f64() * 10.0)); // core links
        }
    }
    WeightedGraph::from_weighted_edges(n, &edges)
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let g = cluster_topology(n, 0xBEEF);
    println!("cluster graph: {} nodes, {} links", g.n(), g.edge_count());

    let run = |name: &str, f: &dyn Fn() -> dsmatch::graph::UndirectedMatching| {
        let t0 = Instant::now();
        let m = f();
        let dt = t0.elapsed();
        m.verify(g.topology()).unwrap();
        println!(
            "{name:>22}: weight {:>12.1}, {:>6} pairs, {dt:>9.2?}",
            matching_weight(&g, &m),
            m.cardinality()
        );
        m
    };

    let gr = run("greedy (sort-based)", &|| greedy_weighted(&g));
    run("path growing", &|| path_growing(&g));
    let s = run("suitor (sequential)", &|| suitor(&g));
    let p = run("suitor (parallel)", &|| suitor_parallel(&g));

    assert_eq!(gr, s, "Suitor must equal greedy under the shared edge order");
    assert_eq!(s, p, "parallel Suitor must equal sequential");
    println!();
    println!("suitor == greedy (theorem of Manne & Halappanavar), but without the");
    println!("global sort — the same locality-first design as the paper's KarpSipserMT.");
}
