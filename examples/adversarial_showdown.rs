//! The Figure-2 showdown: why scaling-guided sampling beats the classic
//! Karp–Sipser on engineered instances.
//!
//! Reconstructs the paper's §4.1.2 narrative step by step: the adversarial
//! matrix has a full `R1 × C1` block that *looks* attractive to a uniform
//! random edge pick but contains no edge of any perfect matching, while
//! the cross diagonals that form the perfect matching are statistically
//! invisible. Sinkhorn–Knopp scaling redistributes the probability mass
//! onto exactly those diagonals; the example prints the mass migration
//! iteration by iteration, then the resulting matching qualities.
//!
//! ```text
//! cargo run --release --example adversarial_showdown [n] [k]
//! ```

use dsmatch::heur::{karp_sipser, two_sided_match_with_scaling, KarpSipserConfig};
use dsmatch::prelude::*;
use dsmatch::scale::sinkhorn_knopp;

fn diagonal_mass(g: &BipartiteGraph, s: &ScalingResult) -> f64 {
    // Probability mass the row-sampling places on the perfect-matching
    // diagonals ((i, h+i) and (h+i, i)), averaged over rows.
    let n = g.nrows();
    let h = n / 2;
    let mut total = 0.0;
    for i in 0..n {
        let target = if i < h { (h + i) as u32 } else { (i - h) as u32 };
        let row_sum: f64 = g.row_adj(i).iter().map(|&j| s.dc[j as usize]).sum();
        let mass = s.dc[target as usize] / row_sum;
        total += mass;
    }
    total / n as f64
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3200);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);

    let g = dsmatch::gen::adversarial_ks(n, k);
    println!("adversarial instance: n = {n}, k = {k}, {} edges, perfect matching exists", g.nnz());
    println!();
    println!("probability mass on the perfect-matching diagonals (average per row):");
    for iters in [0usize, 1, 2, 5, 10] {
        let s = if iters == 0 {
            ScalingResult::identity(&g)
        } else {
            sinkhorn_knopp(&g, &ScalingConfig::iterations(iters))
        };
        println!(
            "  {iters:>2} scaling iterations: {:.4}  (scaling error {:.3})",
            diagonal_mass(&g, &s),
            s.error
        );
    }

    println!();
    println!("matching quality (|M| / n), 5 runs each:");
    for seed in 0..5u64 {
        let ks = karp_sipser(&g, &KarpSipserConfig { seed });
        let s5 = sinkhorn_knopp(&g, &ScalingConfig::iterations(5));
        let two = two_sided_match_with_scaling(&g, &s5, seed);
        println!(
            "  seed {seed}: karp_sipser = {:.3}   two_sided(5it) = {:.3}",
            ks.matching.cardinality() as f64 / n as f64,
            two.cardinality() as f64 / n as f64
        );
    }
    println!();
    println!("expected: KS stuck near 0.67–0.70 for large k; TwoSided ≥ 0.97.");
}
