//! Task assignment under time pressure — the "online dispatch" scenario
//! from the paper's motivation: you have workers, a burst of tasks, a
//! sparse qualification relation, and a latency budget far below what an
//! exact solver costs. The heuristics trade a bounded amount of assignment
//! quality for near-memory-bandwidth speed.
//!
//! The scenario is rectangular (more tasks than workers) and skewed (a few
//! generalist workers qualify for many tasks — a power-law head), which
//! exercises the paper's §3.3 discussion of graphs without perfect
//! matchings and unequal vertex classes.
//!
//! ```text
//! cargo run --release --example task_assignment [workers] [tasks]
//! ```

use dsmatch::graph::TripletMatrix;
use dsmatch::prelude::*;
use std::time::Instant;

fn build_qualifications(workers: usize, tasks: usize, seed: u64) -> BipartiteGraph {
    // Worker w qualifies for tasks with rate shaped like a power law:
    // the first workers are generalists, the tail are specialists with
    // 2–3 qualifications each.
    let mut rng = SplitMix64::new(seed);
    let mut t = TripletMatrix::new(workers, tasks);
    for w in 0..workers {
        let breadth = 2 + (workers as f64 / (w + 1) as f64).sqrt() as usize;
        for _ in 0..breadth {
            let task = rng.next_index(tasks);
            t.push(w, task);
        }
    }
    BipartiteGraph::from_csr(t.into_csr())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(80_000);
    let tasks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);

    let g = build_qualifications(workers, tasks, 0xD15);
    println!("{} workers × {} tasks, {} qualification edges", g.nrows(), g.ncols(), g.nnz());

    // Exact assignment (the latency-unconstrained answer).
    let t0 = Instant::now();
    let exact = hopcroft_karp(&g);
    let t_exact = t0.elapsed();
    println!(
        "exact (Hopcroft–Karp):   {:>6} tasks assigned in {:>9.3?}",
        exact.cardinality(),
        t_exact
    );
    let opt = exact.cardinality();

    // OneSidedMatch: each worker independently picks a task — this is the
    // dispatch-loop-friendly version (no coordination between threads).
    let t0 = Instant::now();
    let one =
        one_sided_match(&g, &OneSidedConfig { scaling: ScalingConfig::iterations(5), seed: 1 });
    let t_one = t0.elapsed();
    one.verify(&g).unwrap();
    println!(
        "OneSidedMatch:           {:>6} tasks assigned in {:>9.3?}  (quality {:.3})",
        one.cardinality(),
        t_one,
        one.quality(opt)
    );

    // TwoSidedMatch: tasks also nominate workers; the specialized
    // Karp–Sipser resolves the nominations optimally on the sampled
    // subgraph.
    let t0 = Instant::now();
    let two =
        two_sided_match(&g, &TwoSidedConfig { scaling: ScalingConfig::iterations(5), seed: 1 });
    let t_two = t0.elapsed();
    two.verify(&g).unwrap();
    println!(
        "TwoSidedMatch:           {:>6} tasks assigned in {:>9.3?}  (quality {:.3})",
        two.cardinality(),
        t_two,
        two.quality(opt)
    );

    // A dispatcher that needs the exact answer can still start from the
    // heuristic: augmenting from TwoSided's matching touches only the
    // leftover fraction.
    let t0 = Instant::now();
    let (final_m, stats) = dsmatch::exact::hopcroft_karp_from(&g, two);
    let t_fix = t0.elapsed();
    assert_eq!(final_m.cardinality(), opt);
    println!(
        "warm-started exact:      {:>6} tasks assigned in {:>9.3?}  ({} augmentations to close the gap)",
        final_m.cardinality(),
        t_fix,
        stats.augmentations
    );
}
