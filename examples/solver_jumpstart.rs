//! Jump-starting exact matching solvers — the paper's motivating use case
//! ("such cheap algorithms are used as a jump-start routine by the current
//! state of the art matching algorithms", §1).
//!
//! A sparse direct solver needs a zero-free diagonal (a maximum
//! *transversal*) before factorization. This example measures how much
//! augmentation work each initializer saves for both exact engines
//! (Hopcroft–Karp and Pothen–Fan) on a suite of structurally different
//! matrices.
//!
//! ```text
//! cargo run --release --example solver_jumpstart
//! ```

use dsmatch::exact::{hopcroft_karp_from, pothen_fan_from};
use dsmatch::heur::{
    cheap_random_edge, karp_sipser_matching, one_sided_match, two_sided_match, OneSidedConfig,
    TwoSidedConfig,
};
use dsmatch::prelude::*;
use std::time::Instant;

fn main() {
    let instances: Vec<(&str, BipartiteGraph)> = vec![
        ("er_d4_100k", dsmatch::gen::erdos_renyi_square(100_000, 4.0, 1)),
        ("mesh_100k", dsmatch::gen::grid_mesh(316, 316)),
        ("adversarial_3200_k32", dsmatch::gen::adversarial_ks(3200, 32)),
    ];

    for (name, g) in instances {
        println!("== {name}: {} × {}, {} edges", g.nrows(), g.ncols(), g.nnz());
        let scaling5 = ScalingConfig::iterations(5);

        let initializers: Vec<(&str, Matching)> = vec![
            ("none", Matching::new(g.nrows(), g.ncols())),
            ("cheap_random_edge", cheap_random_edge(&g, 7)),
            ("karp_sipser", karp_sipser_matching(&g, 7)),
            ("one_sided(5it)", one_sided_match(&g, &OneSidedConfig { scaling: scaling5, seed: 7 })),
            ("two_sided(5it)", two_sided_match(&g, &TwoSidedConfig { scaling: scaling5, seed: 7 })),
        ];

        println!(
            "{:>20} | {:>8} | {:>12} {:>9} | {:>12} {:>9}",
            "initializer", "|M0|", "HK augment", "HK time", "PF augment", "PF time"
        );
        for (init_name, m0) in initializers {
            let card0 = m0.cardinality();
            let t0 = Instant::now();
            let (hk, hk_stats) = hopcroft_karp_from(&g, m0.clone());
            let t_hk = t0.elapsed();
            let t0 = Instant::now();
            let (pf, pf_stats) = pothen_fan_from(&g, m0);
            let t_pf = t0.elapsed();
            assert_eq!(hk.cardinality(), pf.cardinality(), "both engines are exact");
            println!(
                "{:>20} | {:>8} | {:>12} {:>8.1?} | {:>12} {:>8.1?}",
                init_name, card0, hk_stats.augmentations, t_hk, pf_stats.augmentations, t_pf
            );
        }
        println!();
    }
    println!("expected: two_sided leaves ~13% of the rows to augment, one_sided ~37%,");
    println!("and the adversarial instance ruins karp_sipser but not the scaled heuristics.");
}
