//! Jump-starting exact matching solvers — the paper's motivating use case
//! ("such cheap algorithms are used as a jump-start routine by the current
//! state of the art matching algorithms", §1), expressed as engine
//! pipelines.
//!
//! A sparse direct solver needs a zero-free diagonal (a maximum
//! *transversal*) before factorization. This example measures how much
//! augmentation work each initializer saves for both exact finishers
//! (Hopcroft–Karp and Pothen–Fan) on a suite of structurally different
//! matrices. Every composition is one `Pipeline` spec; one reusable
//! `Workspace` serves the whole sweep.
//!
//! ```text
//! cargo run --release --example solver_jumpstart
//! ```

use dsmatch::engine::{Pipeline, SolveReport, Solver, Workspace};
use dsmatch::prelude::*;

/// Heuristic stage of each composition (empty = cold start).
const INITIALIZERS: &[(&str, &str)] = &[
    ("none", ""),
    ("cheap_random_edge", "cheap"),
    ("karp_sipser", "ks"),
    ("one_sided(5it)", "scale:sk:5,one"),
    ("two_sided(5it)", "scale:sk:5,two"),
];

/// Stats of the finisher stage: (initial cardinality, augmentations, seconds).
fn finisher_stats(report: &SolveReport) -> (usize, usize, f64) {
    let finisher = report.stages.last().unwrap();
    let card0 = if report.stages.len() > 1 {
        report.stages[report.stages.len() - 2].cardinality.unwrap_or(0)
    } else {
        0
    };
    (card0, finisher.augmentations.unwrap_or(0), finisher.seconds)
}

fn main() {
    let instances: Vec<(&str, BipartiteGraph)> = vec![
        ("er_d4_100k", dsmatch::gen::erdos_renyi_square(100_000, 4.0, 1)),
        ("mesh_100k", dsmatch::gen::grid_mesh(316, 316)),
        ("adversarial_3200_k32", dsmatch::gen::adversarial_ks(3200, 32)),
    ];
    let mut ws = Workspace::new();

    for (name, g) in instances {
        println!("== {name}: {} × {}, {} edges", g.nrows(), g.ncols(), g.nnz());
        println!(
            "{:>20} | {:>8} | {:>12} {:>9} | {:>12} {:>9}",
            "initializer", "|M0|", "HK augment", "HK time", "PF augment", "PF time"
        );
        for (label, init) in INITIALIZERS {
            let compose = |finisher: &str| -> Pipeline {
                let spec = if init.is_empty() {
                    finisher.to_string()
                } else {
                    format!("{init},{finisher}")
                };
                spec.parse().expect("jump-start specs are valid")
            };
            let hk_report = compose("hk").with_seed(7).solve(&g, &mut ws);
            let pf_report = compose("pf").with_seed(7).solve(&g, &mut ws);
            assert_eq!(
                hk_report.cardinality(),
                pf_report.cardinality(),
                "both finishers are exact"
            );
            let (card0, hk_augs, hk_secs) = finisher_stats(&hk_report);
            let (_, pf_augs, pf_secs) = finisher_stats(&pf_report);
            println!(
                "{:>20} | {:>8} | {:>12} {:>8.1}ms | {:>12} {:>8.1}ms",
                label,
                card0,
                hk_augs,
                hk_secs * 1e3,
                pf_augs,
                pf_secs * 1e3
            );
        }
        println!();
    }
    println!("expected: two_sided leaves ~13% of the rows to augment, one_sided ~37%,");
    println!("and the adversarial instance ruins karp_sipser but not the scaled heuristics.");
}
