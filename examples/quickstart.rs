//! Quickstart: build a graph, run both heuristics, compare with the exact
//! optimum.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dsmatch::prelude::*;

fn main() {
    // A sparse random bipartite graph: 50 000 × 50 000, ~4 nonzeros/row
    // (the d = 4 workload of the paper's Table 2).
    let n = 50_000;
    let g = dsmatch::gen::erdos_renyi_square(n, 4.0, 42);
    println!("graph: {} × {} with {} edges", g.nrows(), g.ncols(), g.nnz());

    // The exact optimum (Hopcroft–Karp) for reference.
    let opt = sprank(&g);
    println!("maximum matching (sprank): {opt}");

    // OneSidedMatch — Algorithm 2: scale 5 iterations, every row samples a
    // column, no synchronization at all. Guarantee: ≥ 0.632 · opt expected.
    let cfg = OneSidedConfig { scaling: ScalingConfig::iterations(5), seed: 7 };
    let one = one_sided_match(&g, &cfg);
    one.verify(&g).expect("valid matching");
    println!("OneSidedMatch:  |M| = {:>6}  quality = {:.3}", one.cardinality(), one.quality(opt));

    // TwoSidedMatch — Algorithm 3: both sides sample, then the specialized
    // parallel Karp–Sipser matches the sampled subgraph exactly.
    // Conjectured guarantee: ≥ 0.866 · opt.
    let cfg = TwoSidedConfig { scaling: ScalingConfig::iterations(5), seed: 7 };
    let two = two_sided_match(&g, &cfg);
    two.verify(&g).expect("valid matching");
    println!("TwoSidedMatch:  |M| = {:>6}  quality = {:.3}", two.cardinality(), two.quality(opt));

    // The classic Karp–Sipser baseline for comparison.
    let ks = karp_sipser(&g, &KarpSipserConfig { seed: 7 });
    println!(
        "Karp–Sipser:    |M| = {:>6}  quality = {:.3}  ({} forced + {} random decisions)",
        ks.matching.cardinality(),
        ks.matching.quality(opt),
        ks.degree_one_matches,
        ks.random_matches
    );
}
