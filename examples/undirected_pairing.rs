//! Peer pairing in an undirected network — the paper's §5 extension in
//! action.
//!
//! Scenario: a mentoring program wants to pair up participants who share a
//! connection in a social graph (general, non-bipartite). The undirected
//! 1-out heuristic scales the symmetric adjacency, lets every participant
//! nominate one contact, and matches the nomination graph optimally.
//!
//! ```text
//! cargo run --release --example undirected_pairing [n]
//! ```

use dsmatch::graph::UndirectedGraph;
use dsmatch::heur::{one_out_undirected, OneOutConfig};
use dsmatch::prelude::*;

/// Small-world-ish social graph: a ring of acquaintances plus random
/// long-range friendships.
fn social_graph(n: usize, seed: u64) -> UndirectedGraph {
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(3 * n);
    for v in 0..n {
        edges.push((v, (v + 1) % n));
        edges.push((v, (v + 2) % n));
    }
    for _ in 0..n {
        let u = rng.next_index(n);
        let v = rng.next_index(n);
        if u != v {
            edges.push((u, v));
        }
    }
    UndirectedGraph::from_edges(n, &edges)
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let g = social_graph(n, 0x50C1A1);
    println!("social graph: {} participants, {} connections", g.n(), g.edge_count());

    for iters in [0usize, 1, 5] {
        let m = one_out_undirected(
            &g,
            &OneOutConfig { scaling: ScalingConfig::iterations(iters), seed: 42 },
        );
        m.verify(&g).expect("pairs must be real connections");
        let paired = 2 * m.cardinality();
        println!(
            "{iters} scaling iterations: {} of {} participants paired ({:.1}%)",
            paired,
            g.n(),
            100.0 * paired as f64 / g.n() as f64
        );
    }
    println!();
    println!("expected: ≥ 86% of participants paired with scaling, mirroring the");
    println!("bipartite TwoSidedMatch behaviour the paper conjectures (§5 extension).");
}
