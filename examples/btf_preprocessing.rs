//! Block-triangular-form preprocessing for a sparse direct solver — the
//! §3.3 structure of the paper made executable.
//!
//! A structurally singular or reducible system should be permuted to block
//! upper triangular form before factorization: the solver then works block
//! by block and the `∗` entries never fill in. This example builds a
//! reducible matrix, computes the Dulmage–Mendelsohn decomposition and the
//! BTF permutation, and shows (a) the coarse H/S/V sizes, (b) the fine
//! block-size distribution, (c) that the permuted matrix verifies block
//! upper triangular, and (d) how the heuristics' sampling mass aligns with
//! the relevant blocks.
//!
//! ```text
//! cargo run --release --example btf_preprocessing
//! ```

use dsmatch::dm::{block_triangular_form, dulmage_mendelsohn, fine_decomposition};
use dsmatch::prelude::*;
use dsmatch::scale::sinkhorn_knopp;

/// A reducible system: a chain of diagonal blocks with one-way coupling,
/// plus an underdetermined head and an overdetermined tail.
fn reducible_system(blocks: usize, block_size: usize, seed: u64) -> BipartiteGraph {
    let mut rng = SplitMix64::new(seed);
    let ncore = blocks * block_size;
    // Layout: 3 head rows (horizontal part) + core + 3 tail rows (vertical
    // part); 4 head columns + core + 1 shared tail column.
    let n_r = 3 + ncore + 3;
    let n_c = 4 + ncore + 1;
    let mut t = dsmatch::graph::TripletMatrix::new(n_r, n_c);
    // Core blocks at offset (3, 4): strongly connected rings with one-way
    // coupling to the next block.
    for b in 0..blocks {
        let r0 = 3 + b * block_size;
        let c0 = 4 + b * block_size;
        for k in 0..block_size {
            t.push(r0 + k, c0 + k);
            t.push(r0 + k, c0 + (k + 1) % block_size);
        }
        if b + 1 < blocks {
            for _ in 0..3 {
                let i = r0 + rng.next_index(block_size);
                let j = 4 + (b + 1) * block_size + rng.next_index(block_size);
                t.push(i, j);
            }
        }
    }
    // Horizontal head: 3 rows over the 4 head columns (more columns than
    // rows ⇒ underdetermined).
    for i in 0..3 {
        t.push(i, i);
        t.push(i, i + 1);
    }
    // Vertical tail: 3 rows all competing for the single tail column.
    for k in 0..3 {
        t.push(3 + ncore + k, n_c - 1);
    }
    BipartiteGraph::from_csr(t.into_csr())
}

fn main() {
    let g = reducible_system(8, 25, 0xB7F);
    println!("system: {} × {} with {} nonzeros", g.nrows(), g.ncols(), g.nnz());

    let dm = dulmage_mendelsohn(&g);
    println!(
        "coarse DM: H = {}×{}, S = {}×{}, V = {}×{}; sprank = {}",
        dm.h_rows,
        dm.h_cols,
        dm.s_rows,
        dm.s_cols,
        dm.v_rows,
        dm.v_cols,
        dm.sprank()
    );

    let fine = fine_decomposition(&g, &dm);
    let mut sizes = fine.block_sizes.clone();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "fine blocks: {} total; largest sizes: {:?}",
        fine.block_count,
        &sizes[..sizes.len().min(10)]
    );

    let btf = block_triangular_form(&g);
    assert!(btf.verify(&g), "permutation must realize block upper triangular form");
    println!(
        "BTF verified: H({}×{}) then {} square blocks then V({}×{})",
        btf.horizontal.0,
        btf.horizontal.1,
        btf.fine_block_ptr.len() - 1,
        btf.vertical.0,
        btf.vertical.1
    );
    let permuted = g.csr().permuted(&btf.row_perm, &btf.col_perm);
    println!(
        "permuted matrix rebuilt: {} nonzeros (unchanged: {})",
        permuted.nnz(),
        permuted.nnz() == g.nnz()
    );

    // §3.3: scaling concentrates sampling mass inside the diagonal blocks.
    let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(30));
    let (mut intra, mut total) = (0.0f64, 0.0f64);
    for i in 0..g.nrows() {
        for &j in g.row_adj(i) {
            let w = s.entry(i, j as usize);
            total += w;
            let (bi, bj) = (fine.block_of_row[i], fine.block_of_col[j as usize]);
            if bi != NIL && bi == bj {
                intra += w;
            }
        }
    }
    println!(
        "scaled mass inside fine diagonal blocks: {:.1}% (the ∗ blocks decay, paper §3.3)",
        100.0 * intra / total
    );
}
