//! Degenerate-input coverage for the exact finishers — empty graphs,
//! 0-row/0-col instances, duplicate edges, isolated vertices, and
//! fully-matched warm starts — uniformly over `pf`, `hk`, `pr`, `bfs`, the
//! parallel variants `pf-par`, `hk-par`, and the incremental `pf-graft`.
//! A finisher fed a perfect matching must be a strict no-op (zero
//! augmentations, mates returned byte-identical); every finisher except
//! `pr` (whose bidding may re-route mates) extends that to maximum-but-
//! imperfect warm starts.

use dsmatch_exact::{
    bfs_augment_from, brute_force_maximum, hopcroft_karp, hopcroft_karp_par_ws, hopcroft_karp_ws,
    pothen_fan_graft_ws, pothen_fan_par_ws, pothen_fan_ws, push_relabel_from, AugmentWorkspace,
};
use dsmatch_graph::{BipartiteGraph, Csr, Matching, TripletMatrix};

/// One finisher entry point, normalized to `(matching, augmentations)`.
type Finisher = fn(&BipartiteGraph, Option<&Matching>) -> (Matching, usize);

fn pf(g: &BipartiteGraph, init: Option<&Matching>) -> (Matching, usize) {
    let (m, s) = pothen_fan_ws(g, init, &mut AugmentWorkspace::new());
    (m, s.augmentations)
}

fn hk(g: &BipartiteGraph, init: Option<&Matching>) -> (Matching, usize) {
    let (m, s) = hopcroft_karp_ws(g, init, &mut AugmentWorkspace::new());
    (m, s.augmentations)
}

fn pf_par(g: &BipartiteGraph, init: Option<&Matching>) -> (Matching, usize) {
    let (m, s) = pothen_fan_par_ws(g, init, &mut AugmentWorkspace::new());
    (m, s.augmentations)
}

fn hk_par(g: &BipartiteGraph, init: Option<&Matching>) -> (Matching, usize) {
    let (m, s) = hopcroft_karp_par_ws(g, init, &mut AugmentWorkspace::new());
    (m, s.augmentations)
}

fn pf_graft(g: &BipartiteGraph, init: Option<&Matching>) -> (Matching, usize) {
    let (m, s) = pothen_fan_graft_ws(g, init, &mut AugmentWorkspace::new());
    (m, s.augmentations)
}

fn pr(g: &BipartiteGraph, init: Option<&Matching>) -> (Matching, usize) {
    let init = init.cloned().unwrap_or_else(|| Matching::new(g.nrows(), g.ncols()));
    let (m, s) = push_relabel_from(g, init);
    // Pushes are `pr`'s unit of work: 0 pushes ⇔ the warm start was
    // untouched, playing the role `augmentations` plays elsewhere.
    (m, s.pushes)
}

fn bfs(g: &BipartiteGraph, init: Option<&Matching>) -> (Matching, usize) {
    let init = init.cloned().unwrap_or_else(|| Matching::new(g.nrows(), g.ncols()));
    let (m, s) = bfs_augment_from(g, init);
    (m, s.augmentations)
}

const FINISHERS: [(&str, Finisher); 7] = [
    ("pf", pf),
    ("hk", hk),
    ("pr", pr),
    ("bfs", bfs),
    ("pf-par", pf_par),
    ("hk-par", hk_par),
    ("pf-graft", pf_graft),
];

#[test]
fn empty_graph_yields_empty_matching() {
    let g = BipartiteGraph::from_csr(Csr::empty(0, 0));
    for (name, f) in FINISHERS {
        let (m, augs) = f(&g, None);
        m.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(m.cardinality(), 0, "{name}");
        assert_eq!(augs, 0, "{name}");
    }
}

#[test]
fn zero_row_and_zero_col_instances() {
    for (nr, nc) in [(0usize, 7usize), (7, 0)] {
        let g = BipartiteGraph::from_csr(Csr::empty(nr, nc));
        for (name, f) in FINISHERS {
            let (m, augs) = f(&g, None);
            m.verify(&g).unwrap_or_else(|e| panic!("{name} on {nr}×{nc}: {e}"));
            assert_eq!(m.cardinality(), 0, "{name} on {nr}×{nc}");
            assert_eq!(augs, 0, "{name} on {nr}×{nc}");
        }
    }
}

#[test]
fn edgeless_square_instance() {
    let g = BipartiteGraph::from_csr(Csr::empty(5, 5));
    for (name, f) in FINISHERS {
        let (m, _) = f(&g, None);
        m.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(m.cardinality(), 0, "{name}");
    }
}

#[test]
fn duplicate_edges_are_deduplicated_and_harmless() {
    // The CSR invariant (strictly increasing columns per row) means the
    // finishers can never see a literal duplicate; `TripletMatrix` is the
    // boundary that collapses them. Push every edge three times and check
    // both that the dedup happened and that the finishers solve the
    // deduplicated instance exactly.
    let edges = [(0usize, 1usize), (0, 2), (1, 0), (2, 1), (2, 2), (3, 0)];
    let mut t = TripletMatrix::new(4, 3);
    for &(i, j) in &edges {
        for _ in 0..3 {
            t.push(i, j);
        }
    }
    let csr = t.into_csr();
    assert_eq!(csr.nnz(), edges.len(), "triplet finalization must drop duplicates");
    let g = BipartiteGraph::from_csr(csr);
    let opt = brute_force_maximum(&g);
    for (name, f) in FINISHERS {
        let (m, _) = f(&g, None);
        m.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(m.cardinality(), opt, "{name}");
    }
}

#[test]
fn isolated_rows_and_columns_are_skipped() {
    // Rows 1 and 3 and column 2 have no support at all.
    let g = BipartiteGraph::from_csr(Csr::from_dense(&[
        &[1, 1, 0, 0],
        &[0, 0, 0, 0],
        &[0, 1, 0, 1],
        &[0, 0, 0, 0],
    ]));
    let opt = brute_force_maximum(&g);
    assert_eq!(opt, 2);
    for (name, f) in FINISHERS {
        let (m, _) = f(&g, None);
        m.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(m.cardinality(), opt, "{name}");
    }
}

#[test]
fn fully_matched_warm_start_is_a_noop() {
    // A perfect warm start leaves nothing to augment: the finisher must
    // return the initial mates byte-identically with zero augmentations.
    let g = dsmatch_gen::grid_mesh(18, 18);
    let perfect = hopcroft_karp(&g);
    assert!(perfect.is_perfect(), "test instance must have a perfect matching");
    for (name, f) in FINISHERS {
        let (m, augs) = f(&g, Some(&perfect));
        assert_eq!(augs, 0, "{name}: augmented a perfect matching");
        assert_eq!(m.rmates(), perfect.rmates(), "{name}: changed a perfect matching");
        assert_eq!(m.cmates(), perfect.cmates(), "{name}: changed a perfect matching");
    }
}

#[test]
fn maximum_but_imperfect_warm_start_is_a_noop() {
    // Maximum yet deficient (row 2 duplicates row 0's support): still
    // nothing to augment. `pr` is excluded — its free rows keep bidding
    // (evicting mates) until retired, so only cardinality is preserved;
    // that weaker contract is pinned separately below.
    let augmenters = FINISHERS.iter().filter(|(name, _)| *name != "pr");
    let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1, 0], &[0, 1, 0], &[1, 1, 0]]));
    let maximum = hopcroft_karp(&g);
    assert_eq!(maximum.cardinality(), 2);
    for (name, f) in augmenters.clone() {
        let (m, augs) = f(&g, Some(&maximum));
        assert_eq!(augs, 0, "{name}");
        assert_eq!(m.rmates(), maximum.rmates(), "{name}");
    }
    // Same contract on a sparse instance-scale graph whose maximum is
    // typically imperfect.
    let g = dsmatch_gen::erdos_renyi_square(300, 2.0, 42);
    let maximum = hopcroft_karp(&g);
    for (name, f) in augmenters {
        let (m, augs) = f(&g, Some(&maximum));
        assert_eq!(augs, 0, "{name}: augmented a maximum matching");
        assert_eq!(m.rmates(), maximum.rmates(), "{name}");
    }
}

#[test]
fn push_relabel_keeps_maximum_warm_starts_maximum() {
    // The augmenting-path finishers certify a maximum warm start without
    // touching it; `pr` instead lets the deficient rows bid, which may
    // re-route individual mates. Its contract is therefore cardinality
    // preservation + validity, not byte-identity.
    let g = dsmatch_gen::erdos_renyi_square(300, 2.0, 42);
    let maximum = hopcroft_karp(&g);
    assert!(!maximum.is_perfect(), "test needs a deficient maximum");
    let (m, _) = pr(&g, Some(&maximum));
    m.verify(&g).unwrap();
    assert_eq!(m.cardinality(), maximum.cardinality());
}
