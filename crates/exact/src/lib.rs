//! # dsmatch-exact — exact maximum-cardinality bipartite matching
//!
//! The paper evaluates its heuristics as quality *ratios* against the
//! maximum cardinality (`sprank`), so an exact solver is a required
//! substrate. This crate provides:
//!
//! - [`hopcroft_karp`] — the `O(√n · τ)` algorithm of Hopcroft & Karp
//!   (the complexity bound quoted in the paper's introduction), via layered
//!   BFS + blocking DFS phases;
//! - [`pothen_fan`] — single-path augmenting DFS with the Pothen–Fan
//!   *lookahead* optimization, accepting an arbitrary initial matching, so
//!   the workspace can measure the paper's motivating use case: how much
//!   augmentation work a jump-start heuristic saves;
//! - [`hopcroft_karp_par`] / [`pothen_fan_par`] — the multicore finishers
//!   (`hk-par` / `pf-par`): level-synchronized parallel BFS in the style
//!   of the tree-grafting literature (Azad–Buluç–Pothen) feeding the same
//!   augmentation machinery, byte-identical results at every pool size
//!   (see the docs on [`hopcroft_karp_par_ws`] / [`pothen_fan_par_ws`]);
//! - [`pothen_fan_graft`] — the incremental renewable-forest variant of
//!   `pf-par` (`pf-graft`): the BFS forest survives across harvests
//!   within an epoch instead of being rebuilt per phase, with lazy
//!   orphan-subtree pruning (see [`pothen_fan_graft_ws`]);
//! - [`push_relabel`] — the auction/push-relabel scheme the paper's
//!   related work (\[9\], \[21\]) evaluates as the main alternative to
//!   augmenting-path solvers;
//! - [`sprank`] — structural rank of a pattern matrix (maximum matching
//!   cardinality), paper Table 3's `sprank/n` column;
//! - [`brute_force_maximum`] — exponential oracle for property tests on
//!   tiny graphs.
//!
//! The potentially long-running solvers also ship cancellable variants that
//! poll a [`CancelToken`](dsmatch_graph::CancelToken) and bail out with
//! `Cancelled`, leaving their workspaces reusable — the substrate for job
//! deadlines in the serve daemon. The parallel finishers
//! ([`hopcroft_karp_par_cancel`], [`pothen_fan_par_cancel`],
//! [`pothen_fan_graft_cancel`], [`push_relabel_cancel`]) poll at phase/epoch
//! boundaries; the sequential engines ([`hopcroft_karp_cancel_ws`],
//! [`pothen_fan_cancel_ws`]) poll once per phase and every 256 DFS roots
//! respectively, so even a single long sequential solve observes its
//! deadline mid-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfs_augment;
mod brute;
mod graft;
mod hopcroft_karp;
mod pothen_fan;
mod push_relabel;
mod workspace;

pub use bfs_augment::{bfs_augment, bfs_augment_from, BfsAugmentStats};
pub use brute::brute_force_maximum;
pub use graft::{
    hopcroft_karp_par, hopcroft_karp_par_cancel, hopcroft_karp_par_ws, pothen_fan_graft,
    pothen_fan_graft_cancel, pothen_fan_graft_ws, pothen_fan_par, pothen_fan_par_cancel,
    pothen_fan_par_ws, PothenFanParStats,
};
pub use hopcroft_karp::{
    hopcroft_karp, hopcroft_karp_cancel_ws, hopcroft_karp_from, hopcroft_karp_ws, HopcroftKarpStats,
};
pub use pothen_fan::{
    pothen_fan, pothen_fan_cancel_ws, pothen_fan_from, pothen_fan_ws, PothenFanStats,
};
pub use push_relabel::{push_relabel, push_relabel_cancel, push_relabel_from, PushRelabelStats};
pub use workspace::{AugmentWorkspace, FrontierChunk};

use dsmatch_graph::BipartiteGraph;

/// Structural rank: the maximum matching cardinality of the pattern.
pub fn sprank(g: &BipartiteGraph) -> usize {
    hopcroft_karp(g).cardinality()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::Csr;

    #[test]
    fn sprank_of_identity() {
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]]));
        assert_eq!(sprank(&g), 3);
    }

    #[test]
    fn sprank_of_deficient() {
        // Two rows share the single column with support.
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 0], &[1, 0]]));
        assert_eq!(sprank(&g), 1);
    }
}
