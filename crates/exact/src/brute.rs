//! Exponential brute-force matching oracle for property tests.
//!
//! Bitmask dynamic programming over columns: `best(i, used)` = maximum
//! matching size among rows `i..n_r` with column set `used` unavailable.
//! `O(2^{n_c} · n_r)` — only for graphs with at most ~20 columns; the test
//! suites use it to certify Hopcroft–Karp, Pothen–Fan and the exactness of
//! `KarpSipserMT` on sampled subgraphs.

use dsmatch_graph::BipartiteGraph;

/// Maximum matching cardinality by exhaustive search.
///
/// # Panics
/// If the graph has more than 24 columns (the DP table would explode).
pub fn brute_force_maximum(g: &BipartiteGraph) -> usize {
    let n_c = g.ncols();
    assert!(n_c <= 24, "brute force limited to ≤ 24 columns, got {n_c}");
    let n_r = g.nrows();
    // memo[i][used] with used packed; use a map keyed by (i, used) to avoid
    // allocating 2^24 entries for small instances.
    let mut memo = std::collections::HashMap::new();
    fn go(
        g: &BipartiteGraph,
        i: usize,
        used: u32,
        memo: &mut std::collections::HashMap<(usize, u32), u32>,
    ) -> u32 {
        if i >= g.nrows() {
            return 0;
        }
        if let Some(&v) = memo.get(&(i, used)) {
            return v;
        }
        // Skip row i.
        let mut best = go(g, i + 1, used, memo);
        // Or match it with any free neighbour.
        for &j in g.row_adj(i) {
            let bit = 1u32 << j;
            if used & bit == 0 {
                best = best.max(1 + go(g, i + 1, used | bit, memo));
            }
        }
        memo.insert((i, used), best);
        best
    }
    let _ = n_r;
    go(g, 0, 0, &mut memo) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::Csr;

    #[test]
    fn tiny_cases() {
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1], &[1, 0]]));
        assert_eq!(brute_force_maximum(&g), 2);
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 0], &[1, 0]]));
        assert_eq!(brute_force_maximum(&g), 1);
        let g = BipartiteGraph::from_csr(Csr::empty(3, 3));
        assert_eq!(brute_force_maximum(&g), 0);
    }

    #[test]
    fn rectangular() {
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1, 1]]));
        assert_eq!(brute_force_maximum(&g), 1);
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1], &[1], &[1]]));
        assert_eq!(brute_force_maximum(&g), 1);
    }

    #[test]
    #[should_panic(expected = "brute force limited")]
    fn rejects_wide_graphs() {
        let g = BipartiteGraph::from_csr(Csr::empty(1, 30));
        let _ = brute_force_maximum(&g);
    }
}
