//! Simple BFS augmenting-path matching ("BFSB" in the Duff–Kaya–Uçar
//! taxonomy the paper cites as [11]).
//!
//! One breadth-first search per free row, augmenting along the first free
//! column found. `O(n·τ)` like Pothen–Fan but with shortest (rather than
//! deep) augmenting paths, which behaves very differently on long-path
//! instances — having both lets the workspace cross-validate three
//! independent augmenting strategies plus push-relabel against each other.

use dsmatch_graph::{BipartiteGraph, Matching, VertexId, NIL};

/// Work counters of a BFS-augmentation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BfsAugmentStats {
    /// BFS searches started.
    pub searches: usize,
    /// Successful augmentations.
    pub augmentations: usize,
    /// Total rows dequeued over all searches.
    pub rows_visited: usize,
}

/// Maximum-cardinality matching from scratch.
pub fn bfs_augment(g: &BipartiteGraph) -> Matching {
    bfs_augment_from(g, Matching::new(g.nrows(), g.ncols())).0
}

/// Warm-startable variant with statistics.
///
/// # Panics
/// If `initial` is not a valid matching of `g`.
pub fn bfs_augment_from(g: &BipartiteGraph, initial: Matching) -> (Matching, BfsAugmentStats) {
    initial.verify(g).expect("warm-start matching must be valid");
    let mut rmate = initial.rmates().to_vec();
    let mut cmate = initial.cmates().to_vec();
    let n_r = g.nrows();
    let mut stats = BfsAugmentStats::default();

    // Per-search visit stamps and BFS tree pointers: a row `w` (owner of
    // column `parent_col[w]`) was discovered from row `parent_row[w]`
    // through that column. Augmenting rematches `parent_row[w]` to
    // `parent_col[w]` all the way up to the free root.
    let mut visited = vec![0u32; n_r];
    let mut parent_col = vec![NIL; n_r];
    let mut parent_row = vec![NIL; n_r];
    let mut stamp = 0u32;
    let mut queue: Vec<u32> = Vec::new();

    for root in 0..n_r {
        if rmate[root] != NIL || g.row_degree(root) == 0 {
            continue;
        }
        stamp += 1;
        stats.searches += 1;
        queue.clear();
        queue.push(root as u32);
        visited[root] = stamp;
        parent_col[root] = NIL;
        parent_row[root] = NIL;
        let mut head = 0usize;
        let mut augmented = false;
        'bfs: while head < queue.len() {
            let i = queue[head] as usize;
            head += 1;
            stats.rows_visited += 1;
            for &j in g.row_adj(i) {
                let owner = cmate[j as usize];
                if owner == NIL {
                    // Free column: give it to `i`, then shift each BFS
                    // ancestor onto the column it reached its child by.
                    rmate[i] = j;
                    cmate[j as usize] = i as VertexId;
                    let mut cur = i;
                    while parent_col[cur] != NIL {
                        let col = parent_col[cur];
                        let r = parent_row[cur] as usize;
                        rmate[r] = col;
                        cmate[col as usize] = r as VertexId;
                        cur = r;
                    }
                    augmented = true;
                    break 'bfs;
                }
                let owner = owner as usize;
                if visited[owner] != stamp {
                    visited[owner] = stamp;
                    parent_col[owner] = j;
                    parent_row[owner] = i as VertexId;
                    queue.push(owner as u32);
                }
            }
        }
        if augmented {
            stats.augmentations += 1;
        }
    }
    let m = Matching::from_mates(rmate, cmate);
    (m, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp::hopcroft_karp;
    use dsmatch_graph::{Csr, SplitMix64, TripletMatrix};

    fn graph(rows: &[&[u8]]) -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(rows))
    }

    #[test]
    fn augments_through_alternating_path() {
        let g = graph(&[&[1, 1], &[1, 0]]);
        let m = bfs_augment(&g);
        m.verify(&g).unwrap();
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    fn two_step_alternating_path() {
        // r0: c0; r1: c0, c1; r2: c1, c2 — augmenting r2 late forces a
        // 2-swap chain when processed greedily in order.
        let g = graph(&[&[1, 0, 0], &[1, 1, 0], &[0, 1, 1]]);
        let m = bfs_augment(&g);
        m.verify(&g).unwrap();
        assert_eq!(m.cardinality(), 3);
    }

    #[test]
    fn agrees_with_hopcroft_karp_on_random_instances() {
        let mut rng = SplitMix64::new(8);
        for n in [2usize, 5, 12, 30] {
            for trial in 0..60 {
                let mut t = TripletMatrix::new(n, n);
                for i in 0..n {
                    for j in 0..n {
                        if rng.next_below(4) == 0 {
                            t.push(i, j);
                        }
                    }
                }
                let g = BipartiteGraph::from_csr(t.into_csr());
                let m = bfs_augment(&g);
                m.verify(&g).unwrap();
                assert_eq!(
                    m.cardinality(),
                    hopcroft_karp(&g).cardinality(),
                    "n = {n}, trial = {trial}"
                );
            }
        }
    }

    #[test]
    fn warm_start_counts_less_work() {
        let g = graph(&[&[1, 1, 0], &[0, 1, 1], &[1, 0, 1]]);
        let (cold, cold_stats) = bfs_augment_from(&g, Matching::new(3, 3));
        let mut init = Matching::new(3, 3);
        init.set(0, 0);
        init.set(1, 1);
        let (warm, warm_stats) = bfs_augment_from(&g, init);
        assert_eq!(cold.cardinality(), 3);
        assert_eq!(warm.cardinality(), 3);
        assert!(warm_stats.searches < cold_stats.searches);
    }

    #[test]
    fn rectangular_and_empty() {
        assert_eq!(bfs_augment(&graph(&[&[1, 1, 1]])).cardinality(), 1);
        assert_eq!(bfs_augment(&graph(&[&[1], &[1]])).cardinality(), 1);
        let g = BipartiteGraph::from_csr(Csr::empty(2, 2));
        assert_eq!(bfs_augment(&g).cardinality(), 0);
    }
}
