//! Reusable scratch buffers for the augmenting-path solvers.
//!
//! The engine layer's batch/server mode calls an exact finisher once per
//! solve; re-allocating the BFS/DFS state per call costs more than the
//! augmentation itself once a heuristic has matched ~87% of the rows.
//! [`AugmentWorkspace`] owns every scratch vector the `*_ws` entry points
//! ([`crate::hopcroft_karp_ws`], [`crate::pothen_fan_ws`] and their
//! parallel variants [`crate::hopcroft_karp_par_ws`],
//! [`crate::pothen_fan_par_ws`]) need; buffers
//! keep their allocation across solves, so only the returned
//! [`dsmatch_graph::Matching`] is fresh.

use dsmatch_graph::{BipartiteGraph, Matching, VertexId, NIL};

/// Per-chunk output buffer of one parallel frontier scan (see
/// [`crate::hopcroft_karp_par_ws`] / [`crate::pothen_fan_par_ws`]).
///
/// The parallel finishers split the current BFS frontier into chunks whose
/// boundaries depend only on the frontier length — never on the pool size —
/// and each chunk writes its discoveries here. The caller merges the chunk
/// buffers **sequentially in chunk order**, so the merged result (and with
/// it the whole solve) is byte-identical at every thread count. Buffers
/// keep their allocation across levels, phases and solves.
#[derive(Debug, Default)]
pub struct FrontierChunk {
    /// Discovered `(next_row, via_column, parent_row)` triples: `next_row`
    /// is the matched row behind `via_column`, reached while scanning
    /// `parent_row`. May contain rows already discovered by another chunk
    /// of the same level; the sequential merge deduplicates.
    pub rows: Vec<(u32, u32, u32)>,
    /// `(tree_row, free_column)` pairs: a free column directly adjacent to
    /// a frontier row — the endpoint of an augmenting path.
    pub hits: Vec<(u32, u32)>,
}

/// Reusable scratch for the warm-startable exact solvers.
///
/// One instance serves Hopcroft–Karp, Pothen–Fan and their parallel
/// variants (the buffers are a superset of what any of them needs). The
/// fields are public so harnesses can assert pointer/capacity stability
/// across solves.
#[derive(Debug, Default)]
pub struct AugmentWorkspace {
    /// Working row-mate array (copied from the warm start, then augmented).
    pub rmate: Vec<VertexId>,
    /// Working column-mate array.
    pub cmate: Vec<VertexId>,
    /// Hopcroft–Karp BFS distance label per row.
    pub dist: Vec<u32>,
    /// BFS queue (rows).
    pub queue: Vec<u32>,
    /// DFS adjacency cursor per row (shared by both solvers).
    pub iter: Vec<usize>,
    /// Pothen–Fan per-search visit stamps.
    pub visited: Vec<u32>,
    /// Pothen–Fan monotone lookahead cursor per row.
    pub look: Vec<usize>,
    /// DFS row stack.
    pub stack: Vec<u32>,
    /// Column through which each stacked row was entered.
    pub entry_col: Vec<u32>,
    /// Current BFS frontier of the parallel finishers (rows).
    pub frontier: Vec<u32>,
    /// Next-level frontier being merged (rows).
    pub next_frontier: Vec<u32>,
    /// BFS-forest parent: the matched column through which a row was
    /// discovered (`NIL` for root rows).
    pub parent_col: Vec<u32>,
    /// BFS-forest grandparent: the row that scanned [`parent_col`]
    /// (`NIL` for root rows).
    ///
    /// [`parent_col`]: AugmentWorkspace::parent_col
    pub parent_row: Vec<u32>,
    /// Per-phase "row is on an already-augmented path" stamps of the
    /// tree-grafting harvest.
    pub used: Vec<u32>,
    /// Per-level "subtree confirmed alive" stamps of the grafted finisher's
    /// lazy orphan pruning (see [`crate::pothen_fan_graft_ws`]).
    pub alive: Vec<u32>,
    /// Per-chunk scratch of the parallel frontier scans; one entry per
    /// chunk, reused across levels and solves.
    pub chunks: Vec<FrontierChunk>,
}

impl AugmentWorkspace {
    /// An empty workspace; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Copy the warm start into the working mate arrays (validated), or reset
/// them for a from-scratch solve — the shared prologue of every `*_ws`
/// solver entry point in this crate.
///
/// # Panics
/// If `initial` is `Some` and not a valid matching of `g`.
pub(crate) fn load_initial(
    g: &BipartiteGraph,
    initial: Option<&Matching>,
    ws: &mut AugmentWorkspace,
) {
    ws.rmate.clear();
    ws.cmate.clear();
    match initial {
        Some(m) => {
            m.verify(g).expect("warm-start matching must be valid");
            ws.rmate.extend_from_slice(m.rmates());
            ws.cmate.extend_from_slice(m.cmates());
        }
        None => {
            ws.rmate.resize(g.nrows(), NIL);
            ws.cmate.resize(g.ncols(), NIL);
        }
    }
}
