//! Reusable scratch buffers for the augmenting-path solvers.
//!
//! The engine layer's batch/server mode calls an exact finisher once per
//! solve; re-allocating the BFS/DFS state per call costs more than the
//! augmentation itself once a heuristic has matched ~87% of the rows.
//! [`AugmentWorkspace`] owns every scratch vector the `*_ws` entry points
//! ([`crate::hopcroft_karp_ws`], [`crate::pothen_fan_ws`]) need; buffers
//! keep their allocation across solves, so only the returned
//! [`dsmatch_graph::Matching`] is fresh.

use dsmatch_graph::VertexId;

/// Reusable scratch for the warm-startable exact solvers.
///
/// One instance serves both Hopcroft–Karp and Pothen–Fan (the buffers are
/// a superset of what either needs). The fields are public so harnesses can
/// assert pointer/capacity stability across solves.
#[derive(Debug, Default)]
pub struct AugmentWorkspace {
    /// Working row-mate array (copied from the warm start, then augmented).
    pub rmate: Vec<VertexId>,
    /// Working column-mate array.
    pub cmate: Vec<VertexId>,
    /// Hopcroft–Karp BFS distance label per row.
    pub dist: Vec<u32>,
    /// BFS queue (rows).
    pub queue: Vec<u32>,
    /// DFS adjacency cursor per row (shared by both solvers).
    pub iter: Vec<usize>,
    /// Pothen–Fan per-search visit stamps.
    pub visited: Vec<u32>,
    /// Pothen–Fan monotone lookahead cursor per row.
    pub look: Vec<usize>,
    /// DFS row stack.
    pub stack: Vec<u32>,
    /// Column through which each stacked row was entered.
    pub entry_col: Vec<u32>,
}

impl AugmentWorkspace {
    /// An empty workspace; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}
