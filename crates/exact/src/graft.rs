//! Parallel exact finishers: level-synchronized multi-source BFS feeding
//! augmentation, in the style of the tree-grafting literature.
//!
//! The paper's heuristics parallelize cleanly, but its measurement
//! pipelines end in a *sequential* exact finisher — past two threads the
//! finisher dominates `scale,two,pf`-shaped runs. The follow-up literature
//! (Azad, Buluç & Pothen's tree-grafting maximum-cardinality matching;
//! Duff–Kaya–Uçar's transversal studies) parallelizes exactly this stage
//! by growing the alternating BFS structure from **all** free rows at once,
//! one level at a time, with each level's adjacency scan fanned across the
//! pool. This module implements two such finishers on top of the
//! workspace's rayon runtime:
//!
//! - [`hopcroft_karp_par`] (`hk-par`): Hopcroft–Karp whose per-phase BFS
//!   is level-synchronized and parallel. Each level's frontier is split
//!   into chunks whose boundaries depend only on the frontier length;
//!   chunks collect discoveries into per-chunk buffers
//!   ([`FrontierChunk`]), which are merged **sequentially in chunk order**
//!   (first discovery wins, exactly like the sequential queue). The
//!   distance labels are therefore byte-identical to sequential
//!   [`hopcroft_karp`]'s, and since the blocking-DFS half is shared
//!   ([`dfs_layered`]), the returned matching is **byte-identical to
//!   sequential Hopcroft–Karp at every pool size** — parallelism buys wall
//!   time, never a different answer.
//! - [`pothen_fan_par`] (`pf-par`): a tree-grafting-style variant of
//!   Pothen–Fan. Instead of one lookahead DFS per free row, each phase
//!   grows a BFS *forest* rooted at every free row (parent pointers per
//!   row), stops at the first level where any tree reaches a free column
//!   — Pothen–Fan's lookahead generalized to a whole level — and then
//!   harvests a set of vertex-disjoint augmenting paths by walking parent
//!   pointers in deterministic merge order. Phases repeat until a forest
//!   reaches no free column, which certifies maximality (Berge). The
//!   forest is rebuilt per phase; the harvest order is deterministic, so
//!   results are byte-identical across pool sizes.
//! - [`pothen_fan_graft`] (`pf-graft`): the incremental renewable-forest
//!   variant of `pf-par` (Azad–Buluç–Pothen's tree grafting). Where
//!   `pf-par` throws its forest away after every harvest and rebuilds it
//!   from the free rows, `pf-graft` keeps the same forest alive across
//!   harvests within an *epoch*: after harvesting a level's augmenting
//!   paths it keeps growing the surviving trees deeper, lazily pruning
//!   subtrees orphaned by the harvest (an ancestor walk per attachment,
//!   memoized in `used`/`alive` stamps, amortized O(1) per row). An epoch
//!   ends when the frontier drains; a whole epoch with zero augmentations
//!   is exactly a full `pf-par` certifying phase, so the Berge maximality
//!   argument carries over unchanged. One epoch harvests at many levels,
//!   so the O(n) forest rebuild runs far fewer times — `phases` counts
//!   epochs and drops sharply versus `pf-par` on high-phase-count
//!   instances. The chunk-merge harvest and pruning walks are sequential
//!   in deterministic order, so `pf-graft` is byte-identical across pool
//!   sizes too (its mates may differ from `pf-par`'s — both are maximum).
//!
//! Both reuse [`AugmentWorkspace`] — the per-chunk scan buffers live there
//! too — so engine batch solves stay allocation-free after warm-up.
//!
//! [`hopcroft_karp`]: crate::hopcroft_karp
//! [`dfs_layered`]: crate::hopcroft_karp::dfs_layered

use dsmatch_graph::{BipartiteGraph, CancelToken, Cancelled, Matching, NIL};
use rayon::prelude::*;

use crate::hopcroft_karp::{dfs_layered, HopcroftKarpStats, INF};
use crate::workspace::{load_initial, AugmentWorkspace, FrontierChunk};

/// Work counters of a tree-grafting-style parallel Pothen–Fan run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PothenFanParStats {
    /// BFS-forest phases executed (including the final certifying phase
    /// that reaches no free column).
    pub phases: usize,
    /// Total frontier rows scanned across all levels of all phases.
    pub rows_visited: usize,
    /// Successful augmentations.
    pub augmentations: usize,
}

/// Frontier rows per scan chunk, floor: below this a level is scanned
/// inline (dispatch would cost more than the scan).
const MIN_CHUNK: usize = 512;

/// Upper bound on chunks per level (long frontiers get longer chunks), so
/// one level never floods the pool's deques.
const MAX_CHUNKS: usize = 128;

/// Chunk length for a frontier of `len` rows. Depends only on `len` —
/// never on the pool size — which is what makes the chunk-order merge, and
/// with it the whole solve, reproducible at every thread count.
fn chunk_len(len: usize) -> usize {
    len.div_ceil(MAX_CHUNKS).max(MIN_CHUNK)
}

/// Scan `frontier` against `g`, classifying each neighbour of each row as
/// a free-column hit or a discovery of the matched row behind it. Results
/// land in `chunks[..n]` (`n` is returned); the caller merges them in
/// chunk order. `discovered` filters rows already in the BFS structure
/// (a stale read only costs a duplicate, which the merge drops).
///
/// The scan only *reads* shared state (`g`, `cmate`, whatever `discovered`
/// captures) and writes exclusively to its own chunk buffer, so chunks run
/// concurrently on the ambient pool without synchronization.
fn scan_frontier<'a>(
    g: &BipartiteGraph,
    cmate: &[u32],
    discovered: impl Fn(u32) -> bool + Sync,
    frontier: &[u32],
    chunks: &'a mut Vec<FrontierChunk>,
) -> &'a [FrontierChunk] {
    let chunk = chunk_len(frontier.len());
    let n = frontier.len().div_ceil(chunk).max(1);
    if chunks.len() < n {
        chunks.resize_with(n, FrontierChunk::default);
    }
    let fill = |buf: &mut FrontierChunk, rows: &[u32]| {
        buf.rows.clear();
        buf.hits.clear();
        for &i in rows {
            for &j in g.row_adj(i as usize) {
                let next = cmate[j as usize];
                if next == NIL {
                    buf.hits.push((i, j));
                } else if !discovered(next) {
                    buf.rows.push((next, j, i));
                }
            }
        }
    };
    if n == 1 {
        fill(&mut chunks[0], frontier);
    } else {
        chunks[..n]
            .par_iter_mut()
            .zip(frontier.par_chunks(chunk))
            .with_max_len(1)
            .for_each(|(buf, rows)| fill(buf, rows));
    }
    &chunks[..n]
}

/// One parallel level-synchronized BFS phase of `hk-par`: labels `ws.dist`
/// exactly as sequential Hopcroft–Karp's queue BFS would (first discovery
/// at level `d` ⇒ label `d`, layers beyond the first free column are cut
/// off after being labeled) and reports whether a free column is
/// reachable.
fn bfs_level_sync(
    g: &BipartiteGraph,
    ws: &mut AugmentWorkspace,
    stats: &mut HopcroftKarpStats,
) -> bool {
    ws.frontier.clear();
    for i in 0..g.nrows() {
        if ws.rmate[i] == NIL {
            ws.dist[i] = 0;
            ws.frontier.push(i as u32);
        } else {
            ws.dist[i] = INF;
        }
    }
    let mut level = 0u32;
    let mut found = false;
    while !ws.frontier.is_empty() {
        stats.bfs_visits += ws.frontier.len();
        let AugmentWorkspace { frontier, next_frontier, dist, cmate, chunks, .. } = ws;
        let scanned = scan_frontier(g, cmate, |r| dist[r as usize] != INF, frontier, chunks);
        next_frontier.clear();
        for c in scanned {
            if !c.hits.is_empty() {
                found = true;
            }
            for &(next, _, _) in &c.rows {
                // First discovery wins, in chunk order — the same label
                // the sequential queue would assign.
                if dist[next as usize] == INF {
                    dist[next as usize] = level + 1;
                    next_frontier.push(next);
                }
            }
        }
        std::mem::swap(frontier, next_frontier);
        if found {
            // The next layer is labeled (sequential BFS labels it too
            // before its cutoff fires) but not expanded: shortest
            // augmenting paths end at this level. Sequential BFS dequeues
            // exactly one row of that cut-off layer before its break;
            // count it too so `bfs_visits` stays comparable across the
            // two variants (e.g. in jump-start savings measurements).
            if !frontier.is_empty() {
                stats.bfs_visits += 1;
            }
            break;
        }
        level += 1;
    }
    found
}

/// Maximum-cardinality matching from scratch via [`hopcroft_karp_par_ws`].
pub fn hopcroft_karp_par(g: &BipartiteGraph) -> Matching {
    hopcroft_karp_par_ws(g, None, &mut AugmentWorkspace::new()).0
}

/// Hopcroft–Karp with a parallel level-synchronized BFS phase — the
/// `hk-par` finisher. The result is **byte-identical** to sequential
/// [`hopcroft_karp_ws`](crate::hopcroft_karp_ws) on the same input at
/// every pool size (the parallel BFS assigns identical distance labels and
/// the blocking DFS is shared); only wall time differs. `initial = None`
/// means a from-scratch solve.
///
/// # Panics
/// If `initial` is `Some` and not a valid matching of `g`.
pub fn hopcroft_karp_par_ws(
    g: &BipartiteGraph,
    initial: Option<&Matching>,
    ws: &mut AugmentWorkspace,
) -> (Matching, HopcroftKarpStats) {
    hopcroft_karp_par_cancel(g, initial, ws, &CancelToken::unbounded())
        .expect("unbounded token never cancels")
}

/// [`hopcroft_karp_par_ws`] with cooperative cancellation: the token is
/// polled once per phase, so cancellation is observed within one BFS+DFS
/// phase. On [`Cancelled`] the workspace is left in a reusable state (no
/// poisoning; the next solve reloads every buffer it reads).
///
/// # Panics
/// If `initial` is `Some` and not a valid matching of `g`.
pub fn hopcroft_karp_par_cancel(
    g: &BipartiteGraph,
    initial: Option<&Matching>,
    ws: &mut AugmentWorkspace,
    token: &CancelToken,
) -> Result<(Matching, HopcroftKarpStats), Cancelled> {
    load_initial(g, initial, ws);
    ws.dist.clear();
    ws.dist.resize(g.nrows(), INF);
    ws.iter.clear();
    ws.iter.resize(g.nrows(), 0);

    let mut stats = HopcroftKarpStats::default();
    loop {
        token.check()?;
        stats.phases += 1;
        if !bfs_level_sync(g, ws, &mut stats) {
            break;
        }
        ws.iter.iter_mut().for_each(|x| *x = 0);
        for i in 0..g.nrows() {
            if ws.rmate[i] == NIL && dfs_layered(g, ws, i) {
                stats.augmentations += 1;
            }
        }
    }
    Ok((Matching::from_mates(ws.rmate.clone(), ws.cmate.clone()), stats))
}

/// Maximum-cardinality matching from scratch via [`pothen_fan_par_ws`].
pub fn pothen_fan_par(g: &BipartiteGraph) -> Matching {
    pothen_fan_par_ws(g, None, &mut AugmentWorkspace::new()).0
}

/// Tree-grafting-style parallel Pothen–Fan — the `pf-par` finisher.
///
/// Each phase grows a BFS forest from every free row (one parallel
/// level-synchronized sweep per level, Pothen–Fan's lookahead generalized
/// to whole levels), stops at the first level adjacent to a free column,
/// and harvests vertex-disjoint augmenting paths along the forest's parent
/// pointers in deterministic chunk-merge order. A phase that reaches no
/// free column certifies the matching maximum (Berge) and ends the solve.
/// Deterministic merges + sequential harvest make the result
/// byte-identical at every pool size. `initial = None` means a
/// from-scratch solve.
///
/// # Panics
/// If `initial` is `Some` and not a valid matching of `g`.
pub fn pothen_fan_par_ws(
    g: &BipartiteGraph,
    initial: Option<&Matching>,
    ws: &mut AugmentWorkspace,
) -> (Matching, PothenFanParStats) {
    pothen_fan_par_cancel(g, initial, ws, &CancelToken::unbounded())
        .expect("unbounded token never cancels")
}

/// [`pothen_fan_par_ws`] with cooperative cancellation: the token is
/// polled once per forest phase, so cancellation is observed within one
/// phase. On [`Cancelled`] the workspace is left reusable.
///
/// # Panics
/// If `initial` is `Some` and not a valid matching of `g`.
pub fn pothen_fan_par_cancel(
    g: &BipartiteGraph,
    initial: Option<&Matching>,
    ws: &mut AugmentWorkspace,
    token: &CancelToken,
) -> Result<(Matching, PothenFanParStats), Cancelled> {
    load_initial(g, initial, ws);
    let n_r = g.nrows();
    ws.visited.clear();
    ws.visited.resize(n_r, 0);
    ws.used.clear();
    ws.used.resize(n_r, 0);
    ws.parent_col.clear();
    ws.parent_col.resize(n_r, NIL);
    ws.parent_row.clear();
    ws.parent_row.resize(n_r, NIL);

    let mut stats = PothenFanParStats::default();
    let mut stamp = 0u32;
    loop {
        token.check()?;
        stamp += 1;
        stats.phases += 1;
        // Roots: every still-free row with any support.
        ws.frontier.clear();
        for i in 0..n_r {
            if ws.rmate[i] == NIL && g.row_degree(i) > 0 {
                ws.visited[i] = stamp;
                ws.parent_col[i] = NIL;
                ws.frontier.push(i as u32);
            }
        }
        let mut augmented = 0usize;
        while !ws.frontier.is_empty() {
            stats.rows_visited += ws.frontier.len();
            let AugmentWorkspace {
                frontier,
                next_frontier,
                visited,
                used,
                parent_col,
                parent_row,
                rmate,
                cmate,
                chunks,
                ..
            } = ws;
            let scanned =
                scan_frontier(g, cmate, |r| visited[r as usize] == stamp, frontier, chunks);
            if scanned.iter().any(|c| !c.hits.is_empty()) {
                // Shortest level with free columns: harvest disjoint
                // augmenting paths in merge order. The first candidate
                // always commits, so every non-final phase augments.
                for c in scanned {
                    'hit: for &(leaf, free_col) in &c.hits {
                        if cmate[free_col as usize] != NIL {
                            continue; // column taken earlier this harvest
                        }
                        // Validate: no row on the leaf→root walk may sit
                        // on an already-flipped path (interior columns are
                        // covered too — a path through column c must pass
                        // through c's pre-flip mate row).
                        let mut row = leaf;
                        loop {
                            if used[row as usize] == stamp {
                                continue 'hit;
                            }
                            if parent_col[row as usize] == NIL {
                                break;
                            }
                            row = parent_row[row as usize];
                        }
                        // Commit: flip matched/unmatched along the path.
                        let mut row = leaf;
                        let mut col = free_col;
                        loop {
                            let pc = parent_col[row as usize];
                            let pr = parent_row[row as usize];
                            rmate[row as usize] = col;
                            cmate[col as usize] = row;
                            used[row as usize] = stamp;
                            if pc == NIL {
                                break;
                            }
                            col = pc;
                            row = pr;
                        }
                        augmented += 1;
                    }
                }
                break; // phase done: longer paths wait for the next forest
            }
            // No free column at this level: graft the next level onto the
            // forest (first discovery wins, in chunk order).
            next_frontier.clear();
            for c in scanned {
                for &(next, via, from) in &c.rows {
                    if visited[next as usize] != stamp {
                        visited[next as usize] = stamp;
                        parent_col[next as usize] = via;
                        parent_row[next as usize] = from;
                        next_frontier.push(next);
                    }
                }
            }
            std::mem::swap(frontier, next_frontier);
        }
        stats.augmentations += augmented;
        if augmented == 0 {
            // The forest reached no free column: maximum by Berge.
            break;
        }
    }
    Ok((Matching::from_mates(ws.rmate.clone(), ws.cmate.clone()), stats))
}

/// Maximum-cardinality matching from scratch via [`pothen_fan_graft_ws`].
pub fn pothen_fan_graft(g: &BipartiteGraph) -> Matching {
    pothen_fan_graft_ws(g, None, &mut AugmentWorkspace::new()).0
}

/// Incremental tree-grafting parallel Pothen–Fan — the `pf-graft`
/// finisher (Azad–Buluç–Pothen's renewable-forest scheme).
///
/// [`pothen_fan_par_ws`] discards its BFS forest after every harvest and
/// rebuilds it from the free rows — an O(n)-per-phase cost that dominates
/// on high-phase-count instances. This variant keeps the
/// `parent_col`/`parent_row` forest alive across harvests: one **epoch**
/// grows a forest level by level, harvests vertex-disjoint augmenting
/// paths at *every* level where the scan reaches free columns (same
/// deterministic chunk-merge order as `pf-par`), and keeps extending the
/// surviving trees instead of starting over. Vertices consumed by a
/// harvest are invalidated by their `used` stamps; subtrees they orphan
/// are pruned lazily — each attachment after a harvest walks its
/// ancestors, memoizing "dead" into `used` (dead is permanent within an
/// epoch) and "alive" into per-level `alive` stamps — so grafting costs
/// amortized O(1) per attachment. An epoch ends when its frontier drains;
/// the solve ends when an entire epoch augments nothing, which is
/// literally `pf-par`'s certifying phase (no harvest ⇒ no pruning ⇒ the
/// full BFS forest from every free row), so maximality follows from Berge
/// exactly as before. [`PothenFanParStats::phases`] counts epochs: one
/// epoch replaces many `pf-par` phases, which is the measured win.
///
/// Harvest, merge and pruning walks are sequential in deterministic chunk
/// order, so the result is **byte-identical at every pool size**; the
/// mates may legitimately differ from `pf-par`'s (both are maximum
/// matchings). `initial = None` means a from-scratch solve.
///
/// # Panics
/// If `initial` is `Some` and not a valid matching of `g`.
pub fn pothen_fan_graft_ws(
    g: &BipartiteGraph,
    initial: Option<&Matching>,
    ws: &mut AugmentWorkspace,
) -> (Matching, PothenFanParStats) {
    pothen_fan_graft_cancel(g, initial, ws, &CancelToken::unbounded())
        .expect("unbounded token never cancels")
}

/// [`pothen_fan_graft_ws`] with cooperative cancellation: the token is
/// polled once per epoch, so cancellation is observed within one epoch.
/// On [`Cancelled`] the workspace is left reusable.
///
/// # Panics
/// If `initial` is `Some` and not a valid matching of `g`.
pub fn pothen_fan_graft_cancel(
    g: &BipartiteGraph,
    initial: Option<&Matching>,
    ws: &mut AugmentWorkspace,
    token: &CancelToken,
) -> Result<(Matching, PothenFanParStats), Cancelled> {
    load_initial(g, initial, ws);
    let n_r = g.nrows();
    ws.visited.clear();
    ws.visited.resize(n_r, 0);
    ws.used.clear();
    ws.used.resize(n_r, 0);
    ws.alive.clear();
    ws.alive.resize(n_r, 0);
    ws.parent_col.clear();
    ws.parent_col.resize(n_r, NIL);
    ws.parent_row.clear();
    ws.parent_row.resize(n_r, NIL);

    let mut stats = PothenFanParStats::default();
    let mut stamp = 0u32;
    // `alive` memos expire per level (a later harvest can kill a subtree
    // confirmed alive earlier), so they stamp against their own counter.
    let mut alive_stamp = 0u32;
    loop {
        // One epoch = one renewable forest, harvested at many levels.
        token.check()?;
        stamp += 1;
        stats.phases += 1;
        ws.frontier.clear();
        for i in 0..n_r {
            if ws.rmate[i] == NIL && g.row_degree(i) > 0 {
                ws.visited[i] = stamp;
                ws.parent_col[i] = NIL;
                ws.frontier.push(i as u32);
            }
        }
        let mut epoch_augmented = 0usize;
        while !ws.frontier.is_empty() {
            // One epoch replaces many `pf-par` phases, so poll per level to
            // keep cancellation latency at one-phase granularity.
            token.check()?;
            stats.rows_visited += ws.frontier.len();
            alive_stamp += 1;
            let AugmentWorkspace {
                frontier,
                next_frontier,
                visited,
                used,
                alive,
                parent_col,
                parent_row,
                rmate,
                cmate,
                chunks,
                ..
            } = ws;
            let scanned =
                scan_frontier(g, cmate, |r| visited[r as usize] == stamp, frontier, chunks);
            // Harvest whatever free columns this level reached, in merge
            // order — identical validation and flip to `pf-par`'s harvest.
            // The forest invariant it relies on (`cmate[parent_col[r]] == r`
            // for every non-`used` tree row `r`) survives earlier harvests:
            // a column's mate only changes when its pre-flip mate row is on
            // the flipped path, and every such row is stamped `used`.
            for c in scanned {
                'hit: for &(leaf, free_col) in &c.hits {
                    if cmate[free_col as usize] != NIL {
                        continue; // column taken earlier this harvest
                    }
                    let mut row = leaf;
                    loop {
                        if used[row as usize] == stamp {
                            continue 'hit;
                        }
                        if parent_col[row as usize] == NIL {
                            break;
                        }
                        row = parent_row[row as usize];
                    }
                    let mut row = leaf;
                    let mut col = free_col;
                    loop {
                        let pc = parent_col[row as usize];
                        let pr = parent_row[row as usize];
                        rmate[row as usize] = col;
                        cmate[col as usize] = row;
                        used[row as usize] = stamp;
                        if pc == NIL {
                            break;
                        }
                        col = pc;
                        row = pr;
                    }
                    epoch_augmented += 1;
                }
            }
            // Graft the next level onto the *surviving* forest. Rows freshly
            // matched by the harvest are already `visited`, so their stale
            // discoveries drop out; attachments under a consumed ancestor
            // are pruned by a memoized root walk (only needed once the
            // epoch has harvested — before that every tree is alive).
            next_frontier.clear();
            for c in scanned {
                for &(next, via, from) in &c.rows {
                    if visited[next as usize] != stamp {
                        if epoch_augmented > 0 {
                            let mut row = from;
                            let live = loop {
                                if used[row as usize] == stamp {
                                    break false;
                                }
                                if alive[row as usize] == alive_stamp
                                    || parent_col[row as usize] == NIL
                                {
                                    break true;
                                }
                                row = parent_row[row as usize];
                            };
                            // Memoize the walk: dead rows can never carry a
                            // valid path again this epoch (their root walk
                            // stays broken), so `used` records them
                            // permanently; alive is only good until the
                            // next harvest, hence the per-level stamp.
                            let (memo, memo_stamp) =
                                if live { (&mut *alive, alive_stamp) } else { (&mut *used, stamp) };
                            let mut r = from;
                            while memo[r as usize] != memo_stamp {
                                memo[r as usize] = memo_stamp;
                                if parent_col[r as usize] == NIL {
                                    break;
                                }
                                r = parent_row[r as usize];
                            }
                            if !live {
                                continue;
                            }
                        }
                        visited[next as usize] = stamp;
                        parent_col[next as usize] = via;
                        parent_row[next as usize] = from;
                        next_frontier.push(next);
                    }
                }
            }
            std::mem::swap(frontier, next_frontier);
        }
        stats.augmentations += epoch_augmented;
        if epoch_augmented == 0 {
            // A whole epoch without a harvest is a full BFS forest from
            // every free row reaching no free column: maximum by Berge.
            break;
        }
    }
    Ok((Matching::from_mates(ws.rmate.clone(), ws.cmate.clone()), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force_maximum, hopcroft_karp, hopcroft_karp_ws, pothen_fan};
    use dsmatch_graph::{Csr, SplitMix64, TripletMatrix};

    fn graph(rows: &[&[u8]]) -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(rows))
    }

    fn random_graph(n: usize, keep_one_in: u64, rng: &mut SplitMix64) -> BipartiteGraph {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if rng.next_below(keep_one_in) == 0 {
                    t.push(i, j);
                }
            }
        }
        BipartiteGraph::from_csr(t.into_csr())
    }

    #[test]
    fn hk_par_byte_identical_to_sequential_hk() {
        let mut rng = SplitMix64::new(5);
        for n in [1usize, 2, 3, 5, 9, 17, 40, 80] {
            for trial in 0..25 {
                let g = random_graph(n, 4, &mut rng);
                let (seq, seq_stats) = hopcroft_karp_ws(&g, None, &mut AugmentWorkspace::new());
                let (par, par_stats) = hopcroft_karp_par_ws(&g, None, &mut AugmentWorkspace::new());
                assert_eq!(par.rmates(), seq.rmates(), "n = {n}, trial = {trial}");
                assert_eq!(par.cmates(), seq.cmates(), "n = {n}, trial = {trial}");
                // Work counters agree too: identical phases/augmentations,
                // and the visit count mirrors the sequential cutoff.
                assert_eq!(par_stats, seq_stats, "n = {n}, trial = {trial}");
            }
        }
    }

    #[test]
    fn pf_par_agrees_with_brute_force_on_small_instances() {
        let mut rng = SplitMix64::new(77);
        for n in [1usize, 2, 3, 4, 5, 6] {
            for trial in 0..60 {
                let g = random_graph(n, 3, &mut rng);
                let m = pothen_fan_par(&g);
                m.verify(&g).unwrap();
                let opt = brute_force_maximum(&g);
                assert_eq!(m.cardinality(), opt, "n = {n}, trial = {trial}");
            }
        }
    }

    #[test]
    fn par_finishers_match_sequential_cardinality_on_larger_instances() {
        let mut rng = SplitMix64::new(11);
        for n in [30usize, 60, 120, 250] {
            let g = random_graph(n, 5, &mut rng);
            let opt = hopcroft_karp(&g).cardinality();
            let hkp = hopcroft_karp_par(&g);
            hkp.verify(&g).unwrap();
            assert_eq!(hkp.cardinality(), opt, "hk-par, n = {n}");
            let pfp = pothen_fan_par(&g);
            pfp.verify(&g).unwrap();
            assert_eq!(pfp.cardinality(), opt, "pf-par, n = {n}");
        }
    }

    #[test]
    fn warm_start_is_honoured_and_completes() {
        let g = graph(&[&[1, 1, 0], &[0, 1, 1], &[1, 0, 1]]);
        let mut init = Matching::new(3, 3);
        init.set(0, 0);
        let (m, stats) = pothen_fan_par_ws(&g, Some(&init), &mut AugmentWorkspace::new());
        assert_eq!(m.cardinality(), 3);
        assert!(stats.augmentations <= 2, "warm start saved an augmentation");
        let (m, stats) = hopcroft_karp_par_ws(&g, Some(&init), &mut AugmentWorkspace::new());
        assert_eq!(m.cardinality(), 3);
        assert!(stats.augmentations <= 2);
    }

    #[test]
    #[should_panic(expected = "warm-start matching must be valid")]
    fn warm_start_validated() {
        let g = graph(&[&[0, 1], &[1, 0]]);
        let mut bad = Matching::new(2, 2);
        bad.set(0, 0); // not an edge
        let _ = pothen_fan_par_ws(&g, Some(&bad), &mut AugmentWorkspace::new());
    }

    #[test]
    fn workspace_reuse_is_stable_across_solves() {
        // Same-shaped solves after the first must not regrow any buffer.
        let mut rng = SplitMix64::new(3);
        let g = random_graph(200, 5, &mut rng);
        let mut ws = AugmentWorkspace::new();
        // Two warm-up solves: `frontier`/`next_frontier` are swapped
        // during BFS, so their capacities settle on the second run.
        let (first, _) = pothen_fan_par_ws(&g, None, &mut ws);
        pothen_fan_par_ws(&g, None, &mut ws);
        let footprint = (
            ws.frontier.capacity(),
            ws.parent_col.as_ptr() as usize,
            ws.used.as_ptr() as usize,
            ws.chunks.len(),
        );
        let (second, _) = pothen_fan_par_ws(&g, None, &mut ws);
        assert_eq!(first.rmates(), second.rmates(), "reuse must not change the answer");
        assert_eq!(
            footprint,
            (
                ws.frontier.capacity(),
                ws.parent_col.as_ptr() as usize,
                ws.used.as_ptr() as usize,
                ws.chunks.len(),
            ),
            "scratch reallocated on an identically-shaped solve"
        );
    }

    #[test]
    fn pf_graft_agrees_with_brute_force_on_small_instances() {
        let mut rng = SplitMix64::new(123);
        for n in [1usize, 2, 3, 4, 5, 6] {
            for trial in 0..60 {
                let g = random_graph(n, 3, &mut rng);
                let m = pothen_fan_graft(&g);
                m.verify(&g).unwrap();
                let opt = brute_force_maximum(&g);
                assert_eq!(m.cardinality(), opt, "n = {n}, trial = {trial}");
            }
        }
    }

    #[test]
    fn pf_graft_matches_optimum_with_fewer_epochs_than_pf_par_phases() {
        let mut rng = SplitMix64::new(19);
        let mut ws = AugmentWorkspace::new();
        // Dense instances finish in 2–3 shallow phases and leave nothing to
        // graft; avg-degree-2 instances are the high-phase-count regime the
        // renewable forest is for (deep, narrow augmenting paths).
        for (n, keep_one_in) in [(400usize, 130u64), (1000, 330), (2000, 700), (5000, 1700)] {
            let g = random_graph(n, keep_one_in, &mut rng);
            let opt = hopcroft_karp(&g).cardinality();
            let (graft, graft_stats) = pothen_fan_graft_ws(&g, None, &mut ws);
            graft.verify(&g).unwrap();
            assert_eq!(graft.cardinality(), opt, "pf-graft, n = {n}");
            let (_, par_stats) = pothen_fan_par_ws(&g, None, &mut ws);
            // The renewable forest is the point: one epoch harvests at many
            // levels, so far fewer forests get built and far fewer rows
            // scanned building them.
            assert!(
                graft_stats.phases < par_stats.phases,
                "n = {n}: grafting saved no phase ({} epochs vs {} phases)",
                graft_stats.phases,
                par_stats.phases
            );
            assert!(
                graft_stats.rows_visited < par_stats.rows_visited,
                "n = {n}: grafting scanned no fewer rows ({} vs {})",
                graft_stats.rows_visited,
                par_stats.rows_visited
            );
        }
    }

    #[test]
    fn pf_graft_warm_start_is_honoured() {
        let g = graph(&[&[1, 1, 0], &[0, 1, 1], &[1, 0, 1]]);
        let mut init = Matching::new(3, 3);
        init.set(0, 0);
        let (m, stats) = pothen_fan_graft_ws(&g, Some(&init), &mut AugmentWorkspace::new());
        assert_eq!(m.cardinality(), 3);
        assert!(stats.augmentations <= 2, "warm start saved an augmentation");
    }

    #[test]
    fn pf_graft_maximum_warm_start_is_a_single_certifying_epoch() {
        let mut rng = SplitMix64::new(9);
        let g = random_graph(150, 4, &mut rng);
        let best = hopcroft_karp(&g);
        let (m, stats) = pothen_fan_graft_ws(&g, Some(&best), &mut AugmentWorkspace::new());
        assert_eq!(m.rmates(), best.rmates());
        assert_eq!(m.cmates(), best.cmates());
        assert_eq!(stats.augmentations, 0);
        assert_eq!(stats.phases, 1, "a maximum warm start certifies in one epoch");
    }

    #[test]
    #[should_panic(expected = "warm-start matching must be valid")]
    fn pf_graft_warm_start_validated() {
        let g = graph(&[&[0, 1], &[1, 0]]);
        let mut bad = Matching::new(2, 2);
        bad.set(0, 0); // not an edge
        let _ = pothen_fan_graft_ws(&g, Some(&bad), &mut AugmentWorkspace::new());
    }

    #[test]
    fn pf_graft_workspace_reuse_is_stable_across_solves() {
        let mut rng = SplitMix64::new(31);
        let g = random_graph(200, 5, &mut rng);
        let mut ws = AugmentWorkspace::new();
        let (first, _) = pothen_fan_graft_ws(&g, None, &mut ws);
        pothen_fan_graft_ws(&g, None, &mut ws);
        let footprint = (
            ws.frontier.capacity(),
            ws.parent_col.as_ptr() as usize,
            ws.used.as_ptr() as usize,
            ws.alive.as_ptr() as usize,
            ws.chunks.len(),
        );
        let (second, _) = pothen_fan_graft_ws(&g, None, &mut ws);
        assert_eq!(first.rmates(), second.rmates(), "reuse must not change the answer");
        assert_eq!(
            footprint,
            (
                ws.frontier.capacity(),
                ws.parent_col.as_ptr() as usize,
                ws.used.as_ptr() as usize,
                ws.alive.as_ptr() as usize,
                ws.chunks.len(),
            ),
            "scratch reallocated on an identically-shaped solve"
        );
    }

    #[test]
    fn alternating_path_case() {
        let g = graph(&[&[1, 1], &[1, 0]]);
        assert_eq!(pothen_fan_par(&g).cardinality(), 2);
        assert_eq!(pothen_fan_graft(&g).cardinality(), 2);
        assert_eq!(hopcroft_karp_par(&g).cardinality(), 2);
    }

    #[test]
    fn pf_par_agrees_with_pf_on_rectangles() {
        for g in [
            graph(&[&[1, 1, 1, 1]]),
            graph(&[&[1], &[1], &[1], &[1]]),
            graph(&[&[1, 0, 1], &[0, 1, 0]]),
        ] {
            assert_eq!(pothen_fan_par(&g).cardinality(), pothen_fan(&g).cardinality());
        }
    }

    #[test]
    fn chunking_is_pool_size_independent() {
        // The chunk length is a pure function of the frontier length.
        assert_eq!(chunk_len(1), MIN_CHUNK);
        assert_eq!(chunk_len(MIN_CHUNK * MAX_CHUNKS), MIN_CHUNK);
        let big = 10 * MIN_CHUNK * MAX_CHUNKS;
        assert_eq!(chunk_len(big), big / MAX_CHUNKS);
    }

    #[test]
    fn cancelled_token_errors_before_any_phase_runs() {
        let mut rng = SplitMix64::new(11);
        let g = random_graph(40, 4, &mut rng);
        let token = CancelToken::unbounded();
        token.cancel();
        let mut ws = AugmentWorkspace::new();
        assert!(hopcroft_karp_par_cancel(&g, None, &mut ws, &token).is_err());
        assert!(pothen_fan_par_cancel(&g, None, &mut ws, &token).is_err());
        assert!(pothen_fan_graft_cancel(&g, None, &mut ws, &token).is_err());
    }

    #[test]
    fn workspace_reused_after_cancel_is_byte_identical_to_fresh() {
        // The serve daemon's reuse-after-cancel contract: a cancelled run
        // leaves no poisoned scratch state behind, so re-solving on the
        // same workspace matches a fresh-workspace solve byte for byte.
        let mut rng = SplitMix64::new(23);
        let g = random_graph(60, 4, &mut rng);
        let dead = CancelToken::unbounded();
        dead.cancel();
        let live = CancelToken::unbounded();
        let mut ws = AugmentWorkspace::new();

        assert!(hopcroft_karp_par_cancel(&g, None, &mut ws, &dead).is_err());
        let (reused, reused_stats) =
            hopcroft_karp_par_cancel(&g, None, &mut ws, &live).expect("live token");
        let (fresh, fresh_stats) = hopcroft_karp_par_ws(&g, None, &mut AugmentWorkspace::new());
        assert_eq!(reused.rmates(), fresh.rmates());
        assert_eq!(reused.cmates(), fresh.cmates());
        assert_eq!(reused_stats, fresh_stats);

        assert!(pothen_fan_graft_cancel(&g, None, &mut ws, &dead).is_err());
        let (reused, _) = pothen_fan_graft_cancel(&g, None, &mut ws, &live).expect("live token");
        let (fresh, _) = pothen_fan_graft_ws(&g, None, &mut AugmentWorkspace::new());
        assert_eq!(reused.rmates(), fresh.rmates());
        assert_eq!(reused.cmates(), fresh.cmates());

        assert!(pothen_fan_par_cancel(&g, None, &mut ws, &dead).is_err());
        let (reused, _) = pothen_fan_par_cancel(&g, None, &mut ws, &live).expect("live token");
        let (fresh, _) = pothen_fan_par_ws(&g, None, &mut AugmentWorkspace::new());
        assert_eq!(reused.rmates(), fresh.rmates());
        assert_eq!(reused.cmates(), fresh.cmates());
    }
}
