//! Hopcroft–Karp maximum-cardinality bipartite matching.
//!
//! The `O(√n · τ)` algorithm referenced in the paper's introduction [17]:
//! repeat phases of (i) BFS from all free rows to build the layered
//! shortest-alternating-path structure and (ii) a blocking set of
//! vertex-disjoint shortest augmenting paths found by DFS. The number of
//! phases is `O(√n)`.
//!
//! [`hopcroft_karp_from`] accepts a warm-start matching — the paper's
//! motivating use of the heuristics is to jump-start exactly this kind of
//! solver, and the `solver_jumpstart` example measures the phase/visit
//! savings.

use dsmatch_graph::{BipartiteGraph, CancelToken, Cancelled, Matching, NIL};

use crate::workspace::AugmentWorkspace;

/// Work counters of a Hopcroft–Karp run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HopcroftKarpStats {
    /// Number of BFS/DFS phases executed (including the final certifying
    /// phase that finds no augmenting path).
    pub phases: usize,
    /// Total vertices dequeued across all BFS passes.
    pub bfs_visits: usize,
    /// Total augmenting paths applied.
    pub augmentations: usize,
}

pub(crate) const INF: u32 = u32::MAX;

struct Hk<'g, 'w> {
    g: &'g BipartiteGraph,
    ws: &'w mut AugmentWorkspace,
    stats: HopcroftKarpStats,
}

impl<'g, 'w> Hk<'g, 'w> {
    /// BFS from all free rows; returns true if some free column is
    /// reachable (i.e., an augmenting path exists).
    fn bfs(&mut self) -> bool {
        let ws = &mut *self.ws;
        ws.queue.clear();
        for i in 0..self.g.nrows() {
            if ws.rmate[i] == NIL {
                ws.dist[i] = 0;
                ws.queue.push(i as u32);
            } else {
                ws.dist[i] = INF;
            }
        }
        let mut found = false;
        let mut head = 0usize;
        let mut frontier_cap = INF; // cut off layers beyond first success
        while head < ws.queue.len() {
            let i = ws.queue[head] as usize;
            head += 1;
            self.stats.bfs_visits += 1;
            let d = ws.dist[i];
            if d >= frontier_cap {
                break;
            }
            for &j in self.g.row_adj(i) {
                let next = ws.cmate[j as usize];
                if next == NIL {
                    // Free column reached: shortest augmenting length is
                    // d+1; stop expanding deeper layers.
                    found = true;
                    frontier_cap = frontier_cap.min(d + 1);
                } else if ws.dist[next as usize] == INF {
                    ws.dist[next as usize] = d + 1;
                    ws.queue.push(next);
                }
            }
        }
        found
    }

    /// Blocking-DFS step for free row `root`; see [`dfs_layered`].
    fn dfs(&mut self, root: usize) -> bool {
        dfs_layered(self.g, self.ws, root)
    }
}

/// Iterative DFS along the layered structure (`ws.dist`) from free row
/// `root`; augments along a shortest path if one is found. Iterative so
/// the paper-scale instances (10⁵–10⁷ vertices) cannot overflow the
/// stack. Shared by sequential [`hopcroft_karp_ws`] and the parallel-BFS
/// variant [`crate::hopcroft_karp_par_ws`] — identical distance labels in,
/// identical augmentations out.
pub(crate) fn dfs_layered(g: &BipartiteGraph, ws: &mut AugmentWorkspace, root: usize) -> bool {
    // `stack` holds the row path; `entry_col[k]` is the column through
    // which `stack[k]` was entered (unused sentinel for the root).
    ws.stack.clear();
    ws.stack.push(root as u32);
    ws.entry_col.clear();
    ws.entry_col.push(NIL);
    loop {
        let i = *ws.stack.last().unwrap() as usize;
        let deg = g.row_degree(i);
        let mut advanced = false;
        while ws.iter[i] < deg {
            let j = g.row_adj(i)[ws.iter[i]];
            ws.iter[i] += 1;
            let next = ws.cmate[j as usize];
            if next == NIL {
                // Free column: augment along the whole stack.
                let mut col = j;
                while let (Some(row), Some(ec)) = (ws.stack.pop(), ws.entry_col.pop()) {
                    ws.rmate[row as usize] = col;
                    ws.cmate[col as usize] = row;
                    col = ec;
                }
                return true;
            }
            if ws.dist[next as usize] == ws.dist[i] + 1 {
                ws.stack.push(next);
                ws.entry_col.push(j);
                advanced = true;
                break;
            }
        }
        if !advanced {
            // Dead end: remove `i` from the layered structure.
            ws.dist[i] = INF;
            ws.stack.pop();
            ws.entry_col.pop();
            if ws.stack.is_empty() {
                return false;
            }
        }
    }
}

/// Maximum-cardinality matching from scratch.
///
/// ```
/// use dsmatch_exact::hopcroft_karp;
/// use dsmatch_graph::{BipartiteGraph, Csr};
///
/// // Greedy would strand row 1; Hopcroft–Karp augments to the optimum.
/// let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1], &[1, 0]]));
/// let m = hopcroft_karp(&g);
/// assert!(m.is_perfect());
/// ```
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    hopcroft_karp_from(g, Matching::new(g.nrows(), g.ncols())).0
}

/// Maximum-cardinality matching warm-started from `initial`; also returns
/// work statistics.
///
/// # Panics
/// If `initial` is not a valid matching of `g` (checked with
/// [`Matching::verify`]).
pub fn hopcroft_karp_from(g: &BipartiteGraph, initial: Matching) -> (Matching, HopcroftKarpStats) {
    hopcroft_karp_ws(g, Some(&initial), &mut AugmentWorkspace::new())
}

/// Buffer-reuse variant of [`hopcroft_karp_from`]: the BFS/DFS state and
/// the working mate arrays live in `ws` and keep their allocation across
/// solves; only the returned [`Matching`] is fresh. `initial = None` means
/// a from-scratch solve.
///
/// # Panics
/// If `initial` is `Some` and not a valid matching of `g`.
pub fn hopcroft_karp_ws(
    g: &BipartiteGraph,
    initial: Option<&Matching>,
    ws: &mut AugmentWorkspace,
) -> (Matching, HopcroftKarpStats) {
    hopcroft_karp_cancel_ws(g, initial, ws, &CancelToken::unbounded())
        .expect("unbounded token never cancels")
}

/// Cancellable variant of [`hopcroft_karp_ws`]: the token is polled once per
/// BFS/DFS phase (there are `O(√n)` of them), so a deadline or explicit
/// cancel is observed within one phase. On [`Cancelled`] the workspace stays
/// reusable — a subsequent solve on it is byte-identical to a fresh one.
pub fn hopcroft_karp_cancel_ws(
    g: &BipartiteGraph,
    initial: Option<&Matching>,
    ws: &mut AugmentWorkspace,
    token: &CancelToken,
) -> Result<(Matching, HopcroftKarpStats), Cancelled> {
    crate::workspace::load_initial(g, initial, ws);
    ws.dist.clear();
    ws.dist.resize(g.nrows(), INF);
    ws.queue.clear();
    ws.iter.clear();
    ws.iter.resize(g.nrows(), 0);

    let mut hk = Hk { g, ws, stats: HopcroftKarpStats::default() };
    loop {
        token.check()?;
        hk.stats.phases += 1;
        if !hk.bfs() {
            break;
        }
        hk.ws.iter.iter_mut().for_each(|x| *x = 0);
        for i in 0..g.nrows() {
            if hk.ws.rmate[i] == NIL && hk.dfs(i) {
                hk.stats.augmentations += 1;
            }
        }
    }
    let stats = hk.stats;
    Ok((Matching::from_mates(ws.rmate.clone(), ws.cmate.clone()), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::{Csr, SplitMix64, TripletMatrix};

    fn graph(rows: &[&[u8]]) -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(rows))
    }

    #[test]
    fn perfect_on_identity() {
        let g = graph(&[&[1, 0], &[0, 1]]);
        let m = hopcroft_karp(&g);
        assert!(m.is_perfect());
        m.verify(&g).unwrap();
    }

    #[test]
    fn classic_crown_graph() {
        // Complete bipartite K_{3,3}: perfect matching exists.
        let g = graph(&[&[1, 1, 1], &[1, 1, 1], &[1, 1, 1]]);
        assert_eq!(hopcroft_karp(&g).cardinality(), 3);
    }

    #[test]
    fn deficient_instances() {
        let g = graph(&[&[1, 1, 0], &[1, 1, 0], &[1, 1, 0]]);
        assert_eq!(hopcroft_karp(&g).cardinality(), 2);
        let g = graph(&[&[1], &[1], &[1]]);
        assert_eq!(hopcroft_karp(&g).cardinality(), 1);
        let g = BipartiteGraph::from_csr(Csr::empty(4, 4));
        assert_eq!(hopcroft_karp(&g).cardinality(), 0);
    }

    #[test]
    fn requires_augmenting_through_alternating_path() {
        // Greedy left-to-right would match r0–c0 and then strand r1; the
        // optimum is 2 via r0–c1, r1–c0.
        let g = graph(&[&[1, 1], &[1, 0]]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.cardinality(), 2);
        assert_eq!(m.rmate(1), 0);
        assert_eq!(m.rmate(0), 1);
    }

    #[test]
    fn warm_start_preserves_and_completes() {
        let g = graph(&[&[1, 1, 0], &[0, 1, 1], &[1, 0, 1]]);
        let mut init = Matching::new(3, 3);
        init.set(0, 0);
        let (m, stats) = hopcroft_karp_from(&g, init);
        assert_eq!(m.cardinality(), 3);
        assert!(stats.phases >= 1);
        assert!(stats.augmentations <= 2, "warm start saved an augmentation");
    }

    #[test]
    #[should_panic(expected = "warm-start matching must be valid")]
    fn warm_start_validated() {
        let g = graph(&[&[0, 1], &[1, 0]]);
        let mut bad = Matching::new(2, 2);
        bad.set(0, 0); // not an edge
        let _ = hopcroft_karp_from(&g, bad);
    }

    #[test]
    fn random_instances_against_brute_force() {
        let mut rng = SplitMix64::new(99);
        for n in [2usize, 3, 4, 5, 6] {
            for trial in 0..60 {
                let mut t = TripletMatrix::new(n, n);
                for i in 0..n {
                    for j in 0..n {
                        if rng.next_below(3) == 0 {
                            t.push(i, j);
                        }
                    }
                }
                let g = BipartiteGraph::from_csr(t.into_csr());
                let hk = hopcroft_karp(&g);
                hk.verify(&g).unwrap();
                let opt = crate::brute::brute_force_maximum(&g);
                assert_eq!(hk.cardinality(), opt, "n = {n}, trial = {trial}");
            }
        }
    }

    #[test]
    fn rectangular_graphs() {
        let g = graph(&[&[1, 1, 1, 1]]);
        assert_eq!(hopcroft_karp(&g).cardinality(), 1);
        let g = graph(&[&[1], &[1], &[1], &[1]]);
        assert_eq!(hopcroft_karp(&g).cardinality(), 1);
        let g = graph(&[&[1, 0, 1], &[0, 1, 0]]);
        assert_eq!(hopcroft_karp(&g).cardinality(), 2);
    }

    #[test]
    fn stats_reported() {
        let g = graph(&[&[1, 1], &[1, 1]]);
        let (_, stats) = hopcroft_karp_from(&g, Matching::new(2, 2));
        assert!(stats.phases >= 2); // one working phase + certifying phase
        assert_eq!(stats.augmentations, 2);
        assert!(stats.bfs_visits > 0);
    }
}
