//! Pothen–Fan augmenting-path matching with lookahead.
//!
//! The classical `O(n·τ)` exact algorithm (Pothen & Fan 1990, cited as [28]
//! in the paper): one DFS per free row searching for an augmenting path,
//! with the *lookahead* optimization — before descending, scan the current
//! row's adjacency for a directly free column. Despite the worse worst-case
//! bound it is highly competitive in practice and is the augmentation
//! engine most jump-start studies (Duff–Kaya–Uçar [11], Langguth et al.
//! [24]) pair with cheap initial matchings, which is exactly how the
//! `solver_jumpstart` example uses it.

use dsmatch_graph::{BipartiteGraph, CancelToken, Cancelled, Matching, NIL};

use crate::workspace::AugmentWorkspace;

/// Work counters of a Pothen–Fan run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PothenFanStats {
    /// DFS searches started (one per initially free row).
    pub searches: usize,
    /// Successful augmentations.
    pub augmentations: usize,
    /// Total rows visited across all DFS searches.
    pub rows_visited: usize,
}

/// Maximum-cardinality matching from scratch.
pub fn pothen_fan(g: &BipartiteGraph) -> Matching {
    pothen_fan_from(g, Matching::new(g.nrows(), g.ncols())).0
}

/// Maximum-cardinality matching warm-started from `initial`, with stats.
///
/// # Panics
/// If `initial` is not a valid matching of `g`.
pub fn pothen_fan_from(g: &BipartiteGraph, initial: Matching) -> (Matching, PothenFanStats) {
    pothen_fan_ws(g, Some(&initial), &mut AugmentWorkspace::new())
}

/// Buffer-reuse variant of [`pothen_fan_from`]: the DFS/lookahead state and
/// the working mate arrays live in `ws` and keep their allocation across
/// solves; only the returned [`Matching`] is fresh. `initial = None` means
/// a from-scratch solve.
///
/// # Panics
/// If `initial` is `Some` and not a valid matching of `g`.
pub fn pothen_fan_ws(
    g: &BipartiteGraph,
    initial: Option<&Matching>,
    ws: &mut AugmentWorkspace,
) -> (Matching, PothenFanStats) {
    pothen_fan_cancel_ws(g, initial, ws, &CancelToken::unbounded())
        .expect("unbounded token never cancels")
}

/// Cancellable variant of [`pothen_fan_ws`]: the token is polled every 256
/// DFS roots, so a deadline or explicit cancel is observed after a bounded
/// amount of search work rather than only before the solve starts. On
/// [`Cancelled`] the workspace stays reusable — a subsequent solve on it is
/// byte-identical to a fresh one.
pub fn pothen_fan_cancel_ws(
    g: &BipartiteGraph,
    initial: Option<&Matching>,
    ws: &mut AugmentWorkspace,
    token: &CancelToken,
) -> Result<(Matching, PothenFanStats), Cancelled> {
    crate::workspace::load_initial(g, initial, ws);
    let rmate = &mut ws.rmate;
    let cmate = &mut ws.cmate;
    let n_r = g.nrows();
    let mut stats = PothenFanStats::default();

    // `visited[i] == stamp` marks row i as visited in the current search.
    ws.visited.clear();
    ws.visited.resize(n_r, 0);
    let visited = &mut ws.visited;
    let mut stamp = 0u32;
    // Lookahead pointer per row: columns before it are known matched.
    ws.look.clear();
    ws.look.resize(n_r, 0);
    let look = &mut ws.look;
    // DFS pointer per row within the current search.
    ws.iter.clear();
    ws.iter.resize(n_r, 0);
    let iter = &mut ws.iter;
    let stack = &mut ws.stack;
    let entry_col = &mut ws.entry_col;

    for root in 0..n_r {
        if root & 0xFF == 0 {
            token.check()?;
        }
        if rmate[root] != NIL || g.row_degree(root) == 0 {
            continue;
        }
        stamp += 1;
        stats.searches += 1;
        stack.clear();
        entry_col.clear();
        stack.push(root as u32);
        entry_col.push(NIL);
        visited[root] = stamp;
        iter[root] = 0;
        stats.rows_visited += 1;

        let mut augmented = false;
        'dfs: while let Some(&top) = stack.last() {
            let i = top as usize;
            let adj = g.row_adj(i);
            // Lookahead: a free column directly adjacent to i?
            let mut free_col = NIL;
            while look[i] < adj.len() {
                let j = adj[look[i]];
                look[i] += 1;
                if cmate[j as usize] == NIL {
                    free_col = j;
                    break;
                }
            }
            if free_col != NIL {
                // Augment along the stack.
                let mut col = free_col;
                while let (Some(row), Some(ec)) = (stack.pop(), entry_col.pop()) {
                    rmate[row as usize] = col;
                    cmate[col as usize] = row;
                    col = ec;
                }
                augmented = true;
                break 'dfs;
            }
            // Descend into an unvisited matched neighbour.
            let mut advanced = false;
            while iter[i] < adj.len() {
                let j = adj[iter[i]];
                iter[i] += 1;
                let next = cmate[j as usize];
                debug_assert_ne!(next, NIL, "lookahead already consumed free columns");
                if visited[next as usize] != stamp {
                    visited[next as usize] = stamp;
                    iter[next as usize] = 0;
                    stats.rows_visited += 1;
                    stack.push(next);
                    entry_col.push(j);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                stack.pop();
                entry_col.pop();
            }
        }
        if augmented {
            stats.augmentations += 1;
        }
    }
    Ok((Matching::from_mates(rmate.clone(), cmate.clone()), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp::hopcroft_karp;
    use dsmatch_graph::{Csr, SplitMix64, TripletMatrix};

    fn graph(rows: &[&[u8]]) -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(rows))
    }

    #[test]
    fn agrees_with_hopcroft_karp_on_random_instances() {
        let mut rng = SplitMix64::new(2);
        for n in [2usize, 4, 8, 16, 40] {
            for trial in 0..40 {
                let mut t = TripletMatrix::new(n, n);
                for i in 0..n {
                    for j in 0..n {
                        if rng.next_below(4) == 0 {
                            t.push(i, j);
                        }
                    }
                }
                let g = BipartiteGraph::from_csr(t.into_csr());
                let pf = pothen_fan(&g);
                pf.verify(&g).unwrap();
                assert_eq!(
                    pf.cardinality(),
                    hopcroft_karp(&g).cardinality(),
                    "n = {n}, trial = {trial}"
                );
            }
        }
    }

    #[test]
    fn alternating_path_case() {
        let g = graph(&[&[1, 1], &[1, 0]]);
        assert_eq!(pothen_fan(&g).cardinality(), 2);
    }

    #[test]
    fn lookahead_pointer_is_monotone_but_complete() {
        // Dense small graph where lookahead alone completes everything.
        let g = graph(&[&[1, 1, 1], &[1, 1, 1], &[1, 1, 1]]);
        let (m, stats) = pothen_fan_from(&g, Matching::new(3, 3));
        assert_eq!(m.cardinality(), 3);
        assert_eq!(stats.augmentations, 3);
        // Lookahead satisfies each search without descending: 1 row/search.
        assert_eq!(stats.rows_visited, 3);
    }

    #[test]
    fn warm_start_reduces_searches() {
        let g = graph(&[&[1, 1, 0], &[0, 1, 1], &[1, 0, 1]]);
        let mut init = Matching::new(3, 3);
        init.set(0, 0);
        init.set(1, 1);
        let (m, stats) = pothen_fan_from(&g, init);
        assert_eq!(m.cardinality(), 3);
        assert_eq!(stats.searches, 1);
    }

    #[test]
    fn deficient_and_rectangular() {
        let g = graph(&[&[1, 1, 1, 1]]);
        assert_eq!(pothen_fan(&g).cardinality(), 1);
        let g = graph(&[&[1], &[1]]);
        assert_eq!(pothen_fan(&g).cardinality(), 1);
        let g = BipartiteGraph::from_csr(Csr::empty(2, 5));
        assert_eq!(pothen_fan(&g).cardinality(), 0);
    }
}
