//! Auction / push-relabel style maximum bipartite matching.
//!
//! The paper's related work ([9], [21] — Kaya, Langguth, Manne, Uçar,
//! *Push-relabel based algorithms for the maximum transversal problem*)
//! evaluates push-relabel matching as the main alternative to
//! augmenting-path solvers, so the workspace ships one as a third exact
//! engine and cross-validation oracle.
//!
//! The implementation is the integer auction with unit bids, which is the
//! push-relabel algorithm specialized to unweighted bipartite matching:
//! every column carries a label (price) `ψ[c]`; a free row claims its
//! cheapest adjacent column, evicting the previous owner, and raises the
//! column's label to `second_cheapest + 1`. Labels never decrease and a
//! row whose cheapest reachable column has label ≥ `n` can have no
//! augmenting path left, so it retires. Worst-case `O(n·τ)`; typically far
//! faster because evictions are local.

use dsmatch_graph::{BipartiteGraph, CancelToken, Cancelled, Matching, VertexId, NIL};

/// Work counters of a push-relabel run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PushRelabelStats {
    /// Total bids (matches + evictions) performed.
    pub pushes: usize,
    /// Label increases.
    pub relabels: usize,
    /// Rows retired as unmatchable.
    pub retired: usize,
}

/// Maximum-cardinality matching via the auction / push-relabel scheme.
pub fn push_relabel(g: &BipartiteGraph) -> Matching {
    push_relabel_from(g, Matching::new(g.nrows(), g.ncols())).0
}

/// Warm-startable variant with statistics.
///
/// # Panics
/// If `initial` is not a valid matching of `g`.
pub fn push_relabel_from(g: &BipartiteGraph, initial: Matching) -> (Matching, PushRelabelStats) {
    push_relabel_cancel(g, initial, &CancelToken::unbounded())
        .expect("unbounded token never cancels")
}

/// How many queue pops between cancellation polls: push-relabel has no
/// phase structure, so the "phase boundary" is a fixed slice of bids —
/// small enough that cancellation latency stays well under a millisecond,
/// large enough that the poll never shows up in a profile.
const CANCEL_POLL_INTERVAL: usize = 4096;

/// [`push_relabel_from`] with cooperative cancellation: the token is
/// polled once up front and then every `CANCEL_POLL_INTERVAL` queue
/// pops (push-relabel has no phases, so a bid-slice stands in for one).
///
/// # Panics
/// If `initial` is not a valid matching of `g`.
pub fn push_relabel_cancel(
    g: &BipartiteGraph,
    initial: Matching,
    token: &CancelToken,
) -> Result<(Matching, PushRelabelStats), Cancelled> {
    initial.verify(g).expect("warm-start matching must be valid");
    let n_r = g.nrows();
    let n_c = g.ncols();
    let mut rmate = initial.rmates().to_vec();
    let mut cmate = initial.cmates().to_vec();
    let mut psi = vec![0u32; n_c];
    let mut stats = PushRelabelStats::default();

    // Any alternating path visits each column at most once, so a label of
    // `n_c + 1` certifies unreachability of every free column.
    let limit = (n_c + 1) as u32;

    let mut queue: std::collections::VecDeque<u32> = (0..n_r as u32)
        .filter(|&i| rmate[i as usize] == NIL && g.row_degree(i as usize) > 0)
        .collect();

    // One up-front poll so an already-expired deadline refuses the run
    // deterministically, even on instances smaller than the poll interval.
    token.check()?;
    let mut since_poll = 0usize;
    while let Some(r) = queue.pop_front() {
        since_poll += 1;
        if since_poll >= CANCEL_POLL_INTERVAL {
            since_poll = 0;
            token.check()?;
        }
        let r = r as usize;
        if rmate[r] != NIL {
            continue;
        }
        // Find cheapest and second-cheapest adjacent columns.
        let mut best = NIL;
        let mut best_psi = u32::MAX;
        let mut second_psi = u32::MAX;
        for &c in g.row_adj(r) {
            let p = psi[c as usize];
            if p < best_psi {
                second_psi = best_psi;
                best_psi = p;
                best = c;
            } else if p < second_psi {
                second_psi = p;
            }
        }
        if best == NIL || best_psi >= limit {
            stats.retired += 1;
            continue; // no augmenting path can exist for r
        }
        // Claim `best`, evicting the previous owner.
        let prev = cmate[best as usize];
        cmate[best as usize] = r as VertexId;
        rmate[r] = best;
        stats.pushes += 1;
        if prev != NIL {
            rmate[prev as usize] = NIL;
            queue.push_back(prev);
        }
        // Relabel: the next bidder for `best` must outbid the runner-up.
        let new_psi = second_psi.saturating_add(1).min(limit);
        if new_psi > psi[best as usize] {
            psi[best as usize] = new_psi;
            stats.relabels += 1;
        }
    }
    Ok((Matching::from_mates(rmate, cmate), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp::hopcroft_karp;
    use dsmatch_graph::{Csr, SplitMix64, TripletMatrix};

    fn graph(rows: &[&[u8]]) -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(rows))
    }

    #[test]
    fn perfect_on_identity() {
        let g = graph(&[&[1, 0], &[0, 1]]);
        assert!(push_relabel(&g).is_perfect());
    }

    #[test]
    fn eviction_chain_resolves() {
        // r0 and r1 fight over c0; r0 must move to c1.
        let g = graph(&[&[1, 1], &[1, 0]]);
        let m = push_relabel(&g);
        assert_eq!(m.cardinality(), 2);
        assert_eq!(m.rmate(1), 0);
    }

    #[test]
    fn deficient_rows_retire() {
        let g = graph(&[&[1, 0], &[1, 0], &[1, 0]]);
        let (m, stats) = push_relabel_from(&g, Matching::new(3, 2));
        assert_eq!(m.cardinality(), 1);
        assert_eq!(stats.retired, 2);
    }

    #[test]
    fn cancel_variant_errors_on_dead_token_and_matches_on_live() {
        let g = graph(&[&[1, 1, 0], &[1, 0, 1], &[0, 1, 1]]);
        let dead = CancelToken::unbounded();
        dead.cancel();
        assert!(push_relabel_cancel(&g, Matching::new(3, 3), &dead).is_err());
        let live = CancelToken::unbounded();
        let (m, _) = push_relabel_cancel(&g, Matching::new(3, 3), &live).expect("live token");
        let plain = push_relabel(&g);
        assert_eq!(m.rmates(), plain.rmates());
        assert_eq!(m.cmates(), plain.cmates());
    }

    #[test]
    fn agrees_with_hopcroft_karp_on_random_instances() {
        let mut rng = SplitMix64::new(3);
        for n in [2usize, 5, 10, 25, 60] {
            for trial in 0..40 {
                let mut t = TripletMatrix::new(n, n);
                for i in 0..n {
                    for j in 0..n {
                        if rng.next_below(4) == 0 {
                            t.push(i, j);
                        }
                    }
                }
                let g = BipartiteGraph::from_csr(t.into_csr());
                let pr = push_relabel(&g);
                pr.verify(&g).unwrap();
                assert_eq!(
                    pr.cardinality(),
                    hopcroft_karp(&g).cardinality(),
                    "n = {n}, trial = {trial}"
                );
            }
        }
    }

    #[test]
    fn warm_start_is_preserved_where_possible() {
        let g = graph(&[&[1, 1, 0], &[0, 1, 1], &[1, 0, 1]]);
        let mut init = Matching::new(3, 3);
        init.set(0, 0);
        init.set(1, 1);
        let (m, stats) = push_relabel_from(&g, init);
        assert_eq!(m.cardinality(), 3);
        // Only the single free row needed processing.
        assert!(stats.pushes <= 3, "{stats:?}");
    }

    #[test]
    fn rectangular_and_empty() {
        let g = graph(&[&[1, 1, 1, 1]]);
        assert_eq!(push_relabel(&g).cardinality(), 1);
        let g = BipartiteGraph::from_csr(Csr::empty(3, 3));
        assert_eq!(push_relabel(&g).cardinality(), 0);
        let g = graph(&[&[1], &[1], &[1], &[1]]);
        assert_eq!(push_relabel(&g).cardinality(), 1);
    }

    #[test]
    fn adversarial_instance_solved_exactly() {
        let g = dsmatch_gen::adversarial_ks(200, 4);
        let m = push_relabel(&g);
        assert_eq!(m.cardinality(), 200);
    }
}
