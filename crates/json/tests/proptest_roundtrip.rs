//! Round-trip property tests: whatever the writer emits, the parser reads
//! back — structurally identical up to the writer's canonical number
//! forms. This is the contract that lets the engine, the bench tooling and
//! the serve protocol share one `Json` without drifting apart.

use dsmatch_json::{parse_json, Json};
use proptest::prelude::*;

/// Decode a word stream into an arbitrary `Json` value (depth-bounded).
/// Driving the generator from `Vec<u64>` keeps the strategy within the
/// offline proptest shim's vocabulary while still covering every variant,
/// nesting, escapes and extreme numeric values.
fn decode(words: &mut std::vec::IntoIter<u64>, depth: usize) -> Json {
    let w = match words.next() {
        Some(w) => w,
        None => return Json::Null,
    };
    let tag = if depth == 0 { w % 6 } else { w % 8 };
    match tag {
        0 => Json::Null,
        1 => Json::Bool(w & 8 != 0),
        2 => Json::Int(w as i64),
        3 => Json::UInt(w),
        4 => {
            // Raw bit patterns cover subnormals, huge magnitudes and the
            // non-finite values the writer must degrade to `null`.
            Json::Num(f64::from_bits(w.rotate_left(17)))
        }
        5 => Json::Str(format!("s{}\n\"esc\\\u{1}é{}", w % 97, "☃")),
        6 => Json::Arr((0..w % 4).map(|_| decode(words, depth - 1)).collect()),
        _ => Json::Obj(
            (0..w % 4)
                .map(|k| (format!("k{k}\t\"{}\"", w % 13), decode(words, depth - 1)))
                .collect(),
        ),
    }
}

/// The writer's canonical form: what a value becomes after one
/// write → parse cycle.
///
/// - non-finite floats render as `null`;
/// - integral floats render without a fractional part, so they parse back
///   as exact integers (`Int` when they fit, `UInt` for the upper half of
///   the unsigned range);
/// - unsigned values within `i64` range parse back as `Int` (the parser
///   prefers the signed variant).
fn canon(v: &Json) -> Json {
    const TWO_63: f64 = 9_223_372_036_854_775_808.0; // 2^63, exact in f64
    const TWO_64: f64 = 18_446_744_073_709_551_616.0; // 2^64, exact in f64
    match v {
        Json::Num(x) if !x.is_finite() => Json::Null,
        Json::Num(x) if x.fract() == 0.0 && *x >= -TWO_63 && *x < TWO_63 => Json::Int(*x as i64),
        Json::Num(x) if x.fract() == 0.0 && *x >= TWO_63 && *x < TWO_64 => Json::UInt(*x as u64),
        Json::UInt(n) if i64::try_from(*n).is_ok() => Json::Int(*n as i64),
        Json::Arr(items) => Json::Arr(items.iter().map(canon).collect()),
        Json::Obj(pairs) => Json::Obj(pairs.iter().map(|(k, v)| (k.clone(), canon(v))).collect()),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn write_then_parse_is_canonical_identity(
        words in proptest::collection::vec(any::<u64>(), 1..96),
    ) {
        let value = decode(&mut words.into_iter(), 3);
        let text = value.to_string();
        let parsed = parse_json(&text)
            .unwrap_or_else(|e| panic!("writer emitted unparseable JSON {text:?}: {e}"));
        prop_assert_eq!(canon(&value), canon(&parsed), "document was {}", text);
    }

    #[test]
    fn parse_then_write_is_a_fixpoint(
        words in proptest::collection::vec(any::<u64>(), 1..96),
    ) {
        // After one write → parse cycle the representation is stable:
        // re-writing and re-parsing changes nothing. This is what makes
        // artifacts like BENCH_speedup.json safe to regenerate from
        // parsed form.
        let first = parse_json(&decode(&mut words.into_iter(), 3).to_string()).unwrap();
        let second = parse_json(&first.to_string()).unwrap();
        prop_assert_eq!(first, second);
    }
}
