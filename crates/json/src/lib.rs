//! # dsmatch-json — one JSON value for the whole workspace
//!
//! Minimal hand-rolled JSON **value + writer + parser** (no external
//! dependencies). Every machine-readable surface of the workspace speaks
//! through this one type: the CLI's `--json` output, the bench artifacts
//! (`BENCH_pipeline.json`, `BENCH_speedup.json`), the `trendcheck`
//! regression gate that reads them back, and the `dsmatch serve` job/report
//! line protocol. Having a single [`Json`] means the writer and the reader
//! cannot drift apart — what one half emits the other half parses, pinned
//! by round-trip property tests.
//!
//! Writing: [`Json`] renders via [`std::fmt::Display`] with correct string
//! escaping (control characters become `\uXXXX`) and non-finite-number
//! handling (`NaN`/`±∞` render as `null`, the only valid JSON stand-in).
//!
//! Parsing: [`parse_json`] supports the full value grammar — objects,
//! arrays, strings with the writer's escape set, numbers, booleans and
//! `null`. Integer literals parse into the exact variants ([`Json::Int`] /
//! [`Json::UInt`]) rather than being routed through `f64`, so `u64::MAX`
//! survives a round trip textually *and* structurally. Malformed input
//! produces an error with a byte offset, never a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A JSON value, rendered via [`std::fmt::Display`] and parsed by
/// [`parse_json`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (kept exact rather than routed through `f64`).
    Int(i64),
    /// Unsigned integer (kept exact — JSON permits arbitrary-precision
    /// integer literals, so `u64::MAX` round-trips textually).
    UInt(u64),
    /// Floating-point number; non-finite values render as `null`.
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as an ordered key → value list (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// `Some(v)` → `v.into()`, `None` → `null`.
    pub fn opt<T: Into<Json>>(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }

    /// Parse a complete JSON document — an inherent alias of
    /// [`parse_json`].
    pub fn parse(text: &str) -> Result<Json, String> {
        parse_json(text)
    }

    /// Member lookup on objects (first match), `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value of any number variant, coerced to `f64` (`None`
    /// for non-numbers). Integer variants coerce so readers of numeric
    /// fields need not care whether the writer emitted `4` or `4.0`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(n) => Some(*n as f64),
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as an `i64`: exact integer variants only (`None` for
    /// floats and out-of-range unsigned values — no silent truncation).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`: exact non-negative integer variants only.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a `usize` (via [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean value (`None` for non-booleans).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True for the `null` variant.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as i64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

fn write_escaped(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (k, (key, value)) in pairs.iter().enumerate() {
                    if k > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("numeric bytes are ASCII");
    // Integer literals stay exact: `i64` first (the writer's `Int`), then
    // `u64` for the upper half of the unsigned range, `f64` only for
    // fractional/exponent forms and magnitudes beyond 64 bits.
    if !text.bytes().any(|c| matches!(c, b'.' | b'e' | b'E')) {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::Int(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into());
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        let c =
                            char::from_u32(code).ok_or_else(|| "bad \\u code point".to_string())?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        pairs.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj(vec![
            ("name", Json::from("er\n\"quoted\"")),
            ("n", Json::from(1000usize)),
            ("t", Json::from(0.25f64)),
            ("missing", Json::opt(None::<usize>)),
            ("arr", Json::Arr(vec![Json::from(1i64), Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"er\n\"quoted\"","n":1000,"t":0.25,"missing":null,"arr":[1,true,null]}"#
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
    }

    #[test]
    fn u64_round_trips_without_wrapping() {
        assert_eq!(Json::from(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::from(i64::MIN).to_string(), "-9223372036854775808");
        assert_eq!(parse_json("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(parse_json("-9223372036854775808").unwrap(), Json::Int(i64::MIN));
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(Json::from("a\u{1}b").to_string(), "\"a\\u0001b\"");
    }

    #[test]
    fn parses_scalars_and_structure() {
        let doc =
            parse_json(r#"{"a": 1, "b": -2.5e-3, "c": [true, false, null], "s": "x\n\"y\" é"}"#)
                .unwrap();
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("a").unwrap().as_usize(), Some(1));
        assert_eq!(doc.get("b").unwrap().as_f64(), Some(-2.5e-3));
        assert_eq!(doc.get("c").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("c").unwrap().as_arr().unwrap()[0].as_bool(), Some(true));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x\n\"y\" é"));
    }

    #[test]
    fn integer_literals_parse_exact_and_coerce_to_f64() {
        // `"threads":4` written as an integer must satisfy readers that
        // ask for a float — the trendcheck gate reads thread counts this
        // way — without losing the exact representation.
        let doc = parse_json(r#"{"threads":4,"seconds":0.5}"#).unwrap();
        assert_eq!(doc.get("threads").unwrap(), &Json::Int(4));
        assert_eq!(doc.get("threads").unwrap().as_f64(), Some(4.0));
        assert_eq!(doc.get("threads").unwrap().as_i64(), Some(4));
        assert_eq!(doc.get("seconds").unwrap().as_i64(), None, "floats never truncate");
    }

    #[test]
    fn accessor_conversions_respect_ranges() {
        assert_eq!(Json::UInt(u64::MAX).as_i64(), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::Int(-1).as_usize(), None);
        assert_eq!(Json::UInt(7).as_i64(), Some(7));
        assert_eq!(Json::Int(7).as_u64(), Some(7));
        assert!(Json::Null.is_null());
        assert!(!Json::Bool(false).is_null());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("").is_err());
        assert!(parse_json("nul").is_err());
    }
}
