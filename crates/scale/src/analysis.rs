//! Convergence-rate analysis of the Sinkhorn–Knopp iteration.
//!
//! §3.3 of the paper: "The Sinkhorn-Knopp scaling algorithm converges
//! linearly (when A has total support) where the rate is equivalent to the
//! square of the second largest singular value of the resulting, doubly
//! stochastic matrix" (Knight 2008). This module estimates that singular
//! value by deflated power iteration on `SᵀS`, never materializing `S`
//! (every matvec uses `s_ij = dr[i]·dc[j]` on the fly).
//!
//! The estimate lets the harness *predict* how many scaling iterations a
//! given instance needs — e.g. the adversarial Table-1 matrices with large
//! `k` have σ₂ close to 1, explaining why 5 iterations were not enough to
//! reach quality 0.866 at `k = 32`.

use dsmatch_graph::BipartiteGraph;
use rayon::prelude::*;

use crate::ScalingResult;

/// `y = S·x` for the implicitly scaled matrix.
fn apply(g: &BipartiteGraph, s: &ScalingResult, x: &[f64], y: &mut Vec<f64>) {
    y.clear();
    (0..g.nrows())
        .into_par_iter()
        .map(|i| {
            let acc: f64 = g.row_adj(i).iter().map(|&j| s.dc[j as usize] * x[j as usize]).sum();
            s.dr[i] * acc
        })
        .collect_into_vec(y);
}

/// `x = Sᵀ·y`.
fn apply_t(g: &BipartiteGraph, s: &ScalingResult, y: &[f64], x: &mut Vec<f64>) {
    x.clear();
    (0..g.ncols())
        .into_par_iter()
        .map(|j| {
            let acc: f64 = g.col_adj(j).iter().map(|&i| s.dr[i as usize] * y[i as usize]).sum();
            s.dc[j] * acc
        })
        .collect_into_vec(x);
}

fn norm(x: &[f64]) -> f64 {
    x.par_iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Project out the all-ones direction (the leading singular vector of a
/// doubly stochastic matrix).
fn deflate(x: &mut [f64]) {
    let n = x.len() as f64;
    let mean: f64 = x.par_iter().sum::<f64>() / n;
    x.par_iter_mut().for_each(|v| *v -= mean);
}

/// Estimate the second-largest singular value of the scaled matrix
/// `S = D_R A D_C` by `iters` rounds of deflated power iteration
/// (deterministically seeded start vector).
///
/// Requires a square matrix whose scaling is close to doubly stochastic;
/// the estimate degrades gracefully otherwise (it simply reports the
/// dominant singular value orthogonal to the ones vector).
pub fn second_singular_value(
    g: &BipartiteGraph,
    s: &ScalingResult,
    iters: usize,
    seed: u64,
) -> f64 {
    assert!(g.is_square(), "σ₂ analysis assumes a square matrix");
    let n = g.ncols();
    if n <= 1 {
        return 0.0;
    }
    let mut rng = dsmatch_graph::SplitMix64::new(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
    deflate(&mut x);
    let mut y = Vec::new();
    let mut sigma = 0.0f64;
    for _ in 0..iters.max(1) {
        let nx = norm(&x);
        if nx < 1e-300 {
            return 0.0; // x annihilated: σ₂ is numerically zero
        }
        x.par_iter_mut().for_each(|v| *v /= nx);
        apply(g, s, &x, &mut y);
        sigma = norm(&y);
        let mut xt = std::mem::take(&mut x);
        apply_t(g, s, &y, &mut xt);
        x = xt;
        deflate(&mut x);
    }
    sigma
}

/// Knight's asymptotic convergence rate of Sinkhorn–Knopp: `σ₂²`.
pub fn sk_convergence_rate(g: &BipartiteGraph, s: &ScalingResult, iters: usize, seed: u64) -> f64 {
    let sigma = second_singular_value(g, s, iters, seed);
    sigma * sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sinkhorn_knopp, ScalingConfig};
    use dsmatch_graph::{Csr, TripletMatrix};

    fn ring(n: usize) -> BipartiteGraph {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i);
            t.push(i, (i + 1) % n);
        }
        BipartiteGraph::from_csr(t.into_csr())
    }

    #[test]
    fn all_ones_has_sigma2_zero() {
        // Uniform S = (1/n) eeᵀ is rank one: σ₂ = 0.
        let n = 32;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                t.push(i, j);
            }
        }
        let g = BipartiteGraph::from_csr(t.into_csr());
        let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(2));
        let sigma = second_singular_value(&g, &s, 30, 1);
        assert!(sigma < 1e-8, "σ₂ = {sigma}");
    }

    #[test]
    fn ring_matches_closed_form() {
        // S = (I + P)/2 circulant: singular values |cos(πk/n)|, so
        // σ₂ = cos(π/n).
        let n = 64;
        let g = ring(n);
        let s = sinkhorn_knopp(&g, &ScalingConfig::until(1e-12, 500));
        let sigma = second_singular_value(&g, &s, 300, 7);
        let expected = (std::f64::consts::PI / n as f64).cos();
        assert!((sigma - expected).abs() < 1e-3, "σ₂ = {sigma}, expected {expected}");
    }

    #[test]
    fn sigma_is_below_one_for_connected_doubly_stochastic() {
        let g = ring(40);
        let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(50));
        let sigma = second_singular_value(&g, &s, 100, 3);
        assert!(sigma < 1.0 + 1e-9);
        assert!(sigma > 0.5, "ring σ₂ should be close to 1: {sigma}");
    }

    #[test]
    fn adversarial_harder_than_uniform() {
        // σ₂ of the adversarial family (after scaling) should exceed the
        // ring's at the same size, explaining its slower SK convergence.
        let g_easy = BipartiteGraph::from_csr(Csr::from_dense(&[
            &[1, 1, 1, 1],
            &[1, 1, 1, 1],
            &[1, 1, 1, 1],
            &[1, 1, 1, 1],
        ]));
        let s_easy = sinkhorn_knopp(&g_easy, &ScalingConfig::iterations(3));
        let sig_easy = second_singular_value(&g_easy, &s_easy, 50, 1);
        let g_hard = ring(4);
        let s_hard = sinkhorn_knopp(&g_hard, &ScalingConfig::iterations(50));
        let sig_hard = second_singular_value(&g_hard, &s_hard, 50, 1);
        assert!(sig_hard > sig_easy + 0.1);
    }

    #[test]
    fn rate_is_square() {
        let g = ring(16);
        let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(30));
        let sigma = second_singular_value(&g, &s, 200, 5);
        let rate = sk_convergence_rate(&g, &s, 200, 5);
        assert!((rate - sigma * sigma).abs() < 1e-9);
    }

    #[test]
    fn trivial_sizes() {
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1]]));
        let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(1));
        assert_eq!(second_singular_value(&g, &s, 10, 1), 0.0);
    }
}
