//! # dsmatch-scale — doubly-stochastic matrix scaling
//!
//! Both heuristics of the paper draw their sampling probabilities from a
//! doubly-stochastic scaling `S = D_R · A · D_C` of the (0,1) adjacency
//! matrix (paper §2.2). This crate implements:
//!
//! - [`sinkhorn_knopp`] / [`sinkhorn_knopp_seq`] — the paper's Algorithm 1
//!   (`ScaleSK`): alternately normalize columns then rows. The parallel
//!   version mirrors the paper's OpenMP `parallel for` loops with Rayon.
//! - [`sinkhorn_knopp_weighted`] — the same iteration for a general
//!   non-negative value array (beyond the paper's (0,1) setting).
//! - [`ruiz`] — Ruiz equilibration in the 1-norm (reviewed in §2.2 of the
//!   paper as the slower-converging alternative for unsymmetric matrices).
//!
//! The **scaling error** reported everywhere in the paper's §4 is
//! `max_j |Σ_i s_ij − 1|` measured after the row update (at which point row
//! sums are exactly one modulo round-off): see [`ScalingResult::error`].
//!
//! Scaled entries are never materialized: `s_ij = dr[i] · dc[j]` (times
//! `a_ij` in the weighted case) is recomputed on demand, exactly as in the
//! paper's implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod ruiz;
mod sinkhorn;
mod symmetric;

pub use analysis::{second_singular_value, sk_convergence_rate};
pub use ruiz::{ruiz, ruiz_cancel_into, ruiz_into, ruiz_seq};
pub use sinkhorn::{
    max_col_sum_error, min_col_sum, sinkhorn_knopp, sinkhorn_knopp_cancel_into,
    sinkhorn_knopp_into, sinkhorn_knopp_seq, sinkhorn_knopp_weighted,
};
pub use symmetric::{symmetric_scaling, SymmetricScalingResult};

use dsmatch_graph::BipartiteGraph;

/// Stopping rule for a scaling iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingConfig {
    /// Hard cap on the number of iterations. The paper's experiments use
    /// 0, 1, 5, 10 and occasionally 15–20 iterations; convergence is *not*
    /// required for the quality guarantees (§3.3).
    pub max_iterations: usize,
    /// Early-exit tolerance on the scaling error; `0.0` disables early exit
    /// so exactly `max_iterations` iterations run.
    pub tolerance: f64,
}

impl ScalingConfig {
    /// Run exactly `n` iterations (the mode used by all paper experiments).
    pub fn iterations(n: usize) -> Self {
        Self { max_iterations: n, tolerance: 0.0 }
    }

    /// Run until the scaling error drops to `tol`, but at most `cap`
    /// iterations.
    pub fn until(tol: f64, cap: usize) -> Self {
        Self { max_iterations: cap, tolerance: tol }
    }
}

impl Default for ScalingConfig {
    /// Five iterations — the count §4.1.2 of the paper identifies as
    /// "sufficient to achieve the guaranteed qualities" on most instances.
    fn default() -> Self {
        Self::iterations(5)
    }
}

/// Output of a scaling run.
#[derive(Clone, Debug)]
pub struct ScalingResult {
    /// Row scaling factors (diagonal of `D_R`).
    pub dr: Vec<f64>,
    /// Column scaling factors (diagonal of `D_C`).
    pub dc: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final scaling error `max_j |Σ_i s_ij − 1|`.
    pub error: f64,
    /// Scaling error after each iteration (length = `iterations`).
    pub history: Vec<f64>,
}

impl ScalingResult {
    /// The identity scaling (`dr = dc = 1`), used for the paper's
    /// "0 iterations" rows where sampling is uniform over adjacency lists.
    pub fn identity(g: &BipartiteGraph) -> Self {
        let mut out = Self::empty();
        out.reset_identity(g);
        out
    }

    /// An empty result with no allocation — the slot callers hand to the
    /// `*_into` entry points ([`sinkhorn_knopp_into`], [`ruiz_into`]) when
    /// building a reusable workspace.
    pub fn empty() -> Self {
        Self {
            dr: Vec::new(),
            dc: Vec::new(),
            iterations: 0,
            error: f64::INFINITY,
            history: Vec::new(),
        }
    }

    /// Reset this result to the identity scaling of `g` **in place**: the
    /// `dr`/`dc`/`history` buffers are resized but keep their allocation
    /// once they have grown to the instance size, so batch workloads stop
    /// allocating per solve.
    pub fn reset_identity(&mut self, g: &BipartiteGraph) {
        self.dr.clear();
        self.dr.resize(g.nrows(), 1.0);
        self.dc.clear();
        self.dc.resize(g.ncols(), 1.0);
        self.history.clear();
        self.iterations = 0;
        self.error = max_col_sum_error(g, &self.dr, &self.dc);
    }

    /// Scaled entry `s_ij = dr[i] · dc[j]` (valid only where `a_ij = 1`).
    #[inline]
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        self.dr[i] * self.dc[j]
    }

    /// Sum of scaled entries in row `i`.
    pub fn row_sum(&self, g: &BipartiteGraph, i: usize) -> f64 {
        let s: f64 = g.row_adj(i).iter().map(|&j| self.dc[j as usize]).sum();
        self.dr[i] * s
    }

    /// Sum of scaled entries in column `j`.
    pub fn col_sum(&self, g: &BipartiteGraph, j: usize) -> f64 {
        let s: f64 = g.col_adj(j).iter().map(|&i| self.dr[i as usize]).sum();
        self.dc[j] * s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::Csr;

    #[test]
    fn config_constructors() {
        let c = ScalingConfig::iterations(7);
        assert_eq!(c.max_iterations, 7);
        assert_eq!(c.tolerance, 0.0);
        let c = ScalingConfig::until(1e-4, 100);
        assert_eq!(c.max_iterations, 100);
        assert_eq!(c.tolerance, 1e-4);
        assert_eq!(ScalingConfig::default().max_iterations, 5);
    }

    #[test]
    fn identity_result_entries() {
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1], &[1, 1]]));
        let r = ScalingResult::identity(&g);
        assert_eq!(r.entry(0, 1), 1.0);
        assert_eq!(r.row_sum(&g, 0), 2.0);
        assert_eq!(r.col_sum(&g, 1), 2.0);
        // Error of the unscaled all-ones 2×2: |2 − 1| = 1.
        assert_eq!(r.error, 1.0);
        assert_eq!(r.iterations, 0);
    }
}
