//! Symmetric doubly-stochastic scaling for undirected graphs.
//!
//! For a symmetric pattern `A`, a *symmetry-preserving* scaling uses a
//! single diagonal `D` with `S = D·A·D` doubly stochastic (Knight, Ruiz &
//! Uçar — reference [23] of the paper). The natural iteration is the
//! symmetric Ruiz update `d[v] ← d[v] / √(rowsum_v)`, which keeps row and
//! column sums equal by construction. This backs the undirected 1-out
//! heuristic (`dsmatch-core::one_out_undirected`), the paper's announced
//! §5 extension.

use dsmatch_graph::UndirectedGraph;
use rayon::prelude::*;

use crate::ScalingConfig;

/// Result of a symmetric scaling run.
#[derive(Clone, Debug)]
pub struct SymmetricScalingResult {
    /// The scaling diagonal: `s_uv = d[u]·d[v]` for every edge `(u,v)`.
    pub d: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final `max_v |Σ_u s_uv − 1|`.
    pub error: f64,
}

impl SymmetricScalingResult {
    /// Identity scaling (uniform sampling).
    pub fn identity(g: &UndirectedGraph) -> Self {
        let d = vec![1.0; g.n()];
        let error = row_error(g, &d);
        Self { d, iterations: 0, error }
    }

    /// Scaled entry for edge `(u, v)`.
    #[inline]
    pub fn entry(&self, u: usize, v: usize) -> f64 {
        self.d[u] * self.d[v]
    }

    /// Scaled sum of row `v`.
    pub fn row_sum(&self, g: &UndirectedGraph, v: usize) -> f64 {
        let s: f64 = g.adj(v).iter().map(|&u| self.d[u as usize]).sum();
        self.d[v] * s
    }
}

fn row_error(g: &UndirectedGraph, d: &[f64]) -> f64 {
    (0..g.n())
        .into_par_iter()
        .map(|v| {
            let s: f64 = g.adj(v).iter().map(|&u| d[u as usize]).sum();
            (s * d[v] - 1.0).abs()
        })
        .reduce(|| 0.0, f64::max)
}

/// Parallel symmetric (Ruiz-style) scaling: `d ← d / √rowsum` per
/// iteration.
pub fn symmetric_scaling(g: &UndirectedGraph, cfg: &ScalingConfig) -> SymmetricScalingResult {
    let mut d = vec![1.0f64; g.n()];
    let mut error = f64::INFINITY;
    let mut done = 0usize;
    for _ in 0..cfg.max_iterations {
        let sums: Vec<f64> = (0..g.n())
            .into_par_iter()
            .map(|v| {
                let s: f64 = g.adj(v).iter().map(|&u| d[u as usize]).sum();
                s * d[v]
            })
            .collect();
        d.par_iter_mut().zip(sums.par_iter()).for_each(|(dv, &s)| {
            if s > 0.0 {
                *dv /= s.sqrt();
            }
        });
        done += 1;
        error = row_error(g, &d);
        if cfg.tolerance > 0.0 && error <= cfg.tolerance {
            break;
        }
    }
    if done == 0 {
        error = row_error(g, &d);
    }
    SymmetricScalingResult { d, iterations: done, error }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> UndirectedGraph {
        let edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        UndirectedGraph::from_edges(n, &edges)
    }

    #[test]
    fn cycle_scales_to_half() {
        // Every vertex has degree 2: the doubly stochastic limit puts 1/2
        // on each edge.
        let g = cycle(10);
        let r = symmetric_scaling(&g, &ScalingConfig::until(1e-12, 100));
        assert!(r.error <= 1e-12);
        assert!((r.entry(0, 1) - 0.5).abs() < 1e-10);
        for v in 0..10 {
            assert!((r.row_sum(&g, v) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn star_graph_converges() {
        // K_{1,4} star: hub degree 4, leaves degree 1. The doubly
        // stochastic limit requires hub-leaf entries of 1 for leaves...
        // impossible exactly (no total support), but the iteration must
        // stay finite and reduce error.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let r = symmetric_scaling(&g, &ScalingConfig::iterations(50));
        assert!(r.d.iter().all(|x| x.is_finite() && *x > 0.0));
        let r0 = symmetric_scaling(&g, &ScalingConfig::iterations(1));
        assert!(r.error <= r0.error + 1e-12);
    }

    #[test]
    fn identity_has_degree_error() {
        let g = cycle(6);
        let r = SymmetricScalingResult::identity(&g);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.error, 1.0); // degree 2 ⇒ |2 − 1| = 1
    }

    #[test]
    fn isolated_vertices_tolerated() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1)]);
        let r = symmetric_scaling(&g, &ScalingConfig::iterations(5));
        assert!(r.d.iter().all(|x| x.is_finite()));
        assert!((r.entry(0, 1) - 1.0).abs() < 1e-10);
    }
}
