//! Sinkhorn–Knopp scaling — the paper's Algorithm 1 (`ScaleSK`).
//!
//! One iteration, exactly as in the paper:
//!
//! ```text
//! for j = 1..n in parallel:  dc[j] ← 1 / Σ_{i ∈ A_*j} dr[i]·a_ij
//! for i = 1..n in parallel:  dr[i] ← 1 / Σ_{j ∈ A_i*} a_ij·dc[j]
//! ```
//!
//! After the row pass every row sum of `S = D_R A D_C` is exactly one
//! (modulo round-off), so the convergence measure is the maximum deviation
//! of the *column* sums from one.
//!
//! Vertices with zero degree (possible in sprank-deficient inputs) keep
//! their scaling factor — their value never influences any sampled entry.

use dsmatch_graph::{BipartiteGraph, CancelToken, Cancelled};
use rayon::prelude::*;

use crate::{ScalingConfig, ScalingResult};

/// Minimum column sum of the scaled matrix over non-empty columns — the
/// `α` of the paper's §3.3 relaxation: if every column sum is ≥ α after a
/// few iterations, `OneSidedMatch` still guarantees `n(1 − 1/e^α)`.
pub fn min_col_sum(g: &BipartiteGraph, s: &crate::ScalingResult) -> f64 {
    (0..g.ncols())
        .into_par_iter()
        .filter(|&j| g.col_degree(j) > 0)
        .map(|j| s.col_sum(g, j))
        .reduce(|| f64::INFINITY, f64::min)
}

/// Scaling error: `max_j |Σ_{i ∈ A_*j} dr[i]·dc[j] − 1|`, the quantity the
/// paper reports as "Err." in Table 1 and "Scaling error" in Table 3.
pub fn max_col_sum_error(g: &BipartiteGraph, dr: &[f64], dc: &[f64]) -> f64 {
    (0..g.ncols())
        .into_par_iter()
        .map(|j| {
            let s: f64 = g.col_adj(j).iter().map(|&i| dr[i as usize]).sum();
            (s * dc[j] - 1.0).abs()
        })
        .reduce(|| 0.0, f64::max)
}

fn sk_col_pass_par(g: &BipartiteGraph, dr: &[f64], dc: &mut [f64]) {
    dc.par_iter_mut().enumerate().for_each(|(j, dcj)| {
        let csum: f64 = g.col_adj(j).iter().map(|&i| dr[i as usize]).sum();
        if csum > 0.0 {
            *dcj = 1.0 / csum;
        }
    });
}

fn sk_row_pass_par(g: &BipartiteGraph, dr: &mut [f64], dc: &[f64]) {
    dr.par_iter_mut().enumerate().for_each(|(i, dri)| {
        let rsum: f64 = g.row_adj(i).iter().map(|&j| dc[j as usize]).sum();
        if rsum > 0.0 {
            *dri = 1.0 / rsum;
        }
    });
}

/// Parallel Sinkhorn–Knopp (paper Algorithm 1). Runs in the current Rayon
/// thread pool; install a sized pool to control thread count as the paper's
/// experiments do.
///
/// ```
/// use dsmatch_graph::{BipartiteGraph, Csr};
/// use dsmatch_scale::{sinkhorn_knopp, ScalingConfig};
///
/// let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1], &[1, 1]]));
/// let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(1));
/// // The all-ones 2×2 becomes uniform 1/2 after one iteration.
/// assert!((s.entry(0, 1) - 0.5).abs() < 1e-12);
/// assert!(s.error < 1e-12);
/// ```
pub fn sinkhorn_knopp(g: &BipartiteGraph, cfg: &ScalingConfig) -> ScalingResult {
    let mut out = ScalingResult::empty();
    sinkhorn_knopp_into(g, cfg, &mut out);
    out
}

/// Buffer-reuse variant of [`sinkhorn_knopp`]: identical arithmetic, but
/// the `dr`/`dc`/`history` vectors of `out` are reset and refilled in place.
/// After the first solve on a given shape the buffers stop growing, so
/// repeated solves on same-shaped instances perform no scaling allocation.
pub fn sinkhorn_knopp_into(g: &BipartiteGraph, cfg: &ScalingConfig, out: &mut ScalingResult) {
    sinkhorn_knopp_cancel_into(g, cfg, out, &CancelToken::unbounded())
        .expect("unbounded token never cancels")
}

/// [`sinkhorn_knopp_into`] with cooperative cancellation: the token is
/// polled once per scaling iteration. On [`Cancelled`] the factors in
/// `out` are whatever the completed iterations produced — numerically
/// valid, just not converged — and the buffers stay reusable.
pub fn sinkhorn_knopp_cancel_into(
    g: &BipartiteGraph,
    cfg: &ScalingConfig,
    out: &mut ScalingResult,
    token: &CancelToken,
) -> Result<(), Cancelled> {
    out.dr.clear();
    out.dr.resize(g.nrows(), 1.0);
    out.dc.clear();
    out.dc.resize(g.ncols(), 1.0);
    out.history.clear();
    let mut error = f64::INFINITY;
    let mut done = 0usize;
    for _ in 0..cfg.max_iterations {
        token.check()?;
        sk_col_pass_par(g, &out.dr, &mut out.dc);
        sk_row_pass_par(g, &mut out.dr, &out.dc);
        done += 1;
        error = max_col_sum_error(g, &out.dr, &out.dc);
        out.history.push(error);
        if cfg.tolerance > 0.0 && error <= cfg.tolerance {
            break;
        }
    }
    if done == 0 {
        error = max_col_sum_error(g, &out.dr, &out.dc);
    }
    out.iterations = done;
    out.error = error;
    Ok(())
}

/// Sequential Sinkhorn–Knopp — identical arithmetic to [`sinkhorn_knopp`]
/// (the parallel passes are embarrassingly parallel and order-independent,
/// so both versions produce bitwise-identical factors; tests rely on this).
pub fn sinkhorn_knopp_seq(g: &BipartiteGraph, cfg: &ScalingConfig) -> ScalingResult {
    let mut dr = vec![1.0f64; g.nrows()];
    let mut dc = vec![1.0f64; g.ncols()];
    let mut history = Vec::with_capacity(cfg.max_iterations);
    let mut error = f64::INFINITY;
    let mut done = 0usize;
    for _ in 0..cfg.max_iterations {
        for j in 0..g.ncols() {
            let csum: f64 = g.col_adj(j).iter().map(|&i| dr[i as usize]).sum();
            if csum > 0.0 {
                dc[j] = 1.0 / csum;
            }
        }
        for i in 0..g.nrows() {
            let rsum: f64 = g.row_adj(i).iter().map(|&j| dc[j as usize]).sum();
            if rsum > 0.0 {
                dr[i] = 1.0 / rsum;
            }
        }
        done += 1;
        error = (0..g.ncols())
            .map(|j| {
                let s: f64 = g.col_adj(j).iter().map(|&i| dr[i as usize]).sum();
                (s * dc[j] - 1.0).abs()
            })
            .fold(0.0, f64::max);
        history.push(error);
        if cfg.tolerance > 0.0 && error <= cfg.tolerance {
            break;
        }
    }
    if done == 0 {
        error = max_col_sum_error(g, &dr, &dc);
    }
    ScalingResult { dr, dc, iterations: done, error, history }
}

/// Weighted Sinkhorn–Knopp for a general non-negative value array.
///
/// `vals` holds one value per stored entry of `g.csr()`, in row-major entry
/// order. This extends the paper's (0,1) setting to arbitrary non-negative
/// matrices with total support (e.g. for weighted-matching experiments).
pub fn sinkhorn_knopp_weighted(
    g: &BipartiteGraph,
    vals: &[f64],
    cfg: &ScalingConfig,
) -> ScalingResult {
    assert_eq!(vals.len(), g.nnz(), "one value per stored entry required");
    assert!(vals.iter().all(|&v| v >= 0.0), "values must be non-negative");

    // Build the column-major value permutation once (the transpose of the
    // value array), so the column pass can stream values contiguously.
    let csr = g.csr();
    let mut cursor: Vec<usize> = g.csc().row_ptr().to_vec();
    let mut vals_csc = vec![0.0f64; vals.len()];
    let mut rows_csc = vec![0u32; vals.len()];
    for i in 0..g.nrows() {
        let start = csr.row_ptr()[i];
        for (k, &j) in csr.row(i).iter().enumerate() {
            let slot = &mut cursor[j as usize];
            vals_csc[*slot] = vals[start + k];
            rows_csc[*slot] = i as u32;
            *slot += 1;
        }
    }
    let csc_ptr = g.csc().row_ptr();

    let mut dr = vec![1.0f64; g.nrows()];
    let mut dc = vec![1.0f64; g.ncols()];
    let mut history = Vec::with_capacity(cfg.max_iterations);
    let mut error = f64::INFINITY;
    let mut done = 0usize;

    let col_error = |dr: &[f64], dc: &[f64]| -> f64 {
        (0..g.ncols())
            .into_par_iter()
            .map(|j| {
                let s: f64 = (csc_ptr[j]..csc_ptr[j + 1])
                    .map(|k| dr[rows_csc[k] as usize] * vals_csc[k])
                    .sum();
                (s * dc[j] - 1.0).abs()
            })
            .reduce(|| 0.0, f64::max)
    };

    for _ in 0..cfg.max_iterations {
        dc.par_iter_mut().enumerate().for_each(|(j, dcj)| {
            let csum: f64 =
                (csc_ptr[j]..csc_ptr[j + 1]).map(|k| dr[rows_csc[k] as usize] * vals_csc[k]).sum();
            if csum > 0.0 {
                *dcj = 1.0 / csum;
            }
        });
        dr.par_iter_mut().enumerate().for_each(|(i, dri)| {
            let start = csr.row_ptr()[i];
            let rsum: f64 =
                csr.row(i).iter().enumerate().map(|(k, &j)| vals[start + k] * dc[j as usize]).sum();
            if rsum > 0.0 {
                *dri = 1.0 / rsum;
            }
        });
        done += 1;
        error = col_error(&dr, &dc);
        history.push(error);
        if cfg.tolerance > 0.0 && error <= cfg.tolerance {
            break;
        }
    }
    if done == 0 {
        error = col_error(&dr, &dc);
    }
    ScalingResult { dr, dc, iterations: done, error, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::Csr;

    fn graph(rows: &[&[u8]]) -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(rows))
    }

    #[test]
    fn all_ones_scales_to_uniform_in_one_iteration() {
        let g = graph(&[&[1, 1, 1], &[1, 1, 1], &[1, 1, 1]]);
        let r = sinkhorn_knopp(&g, &ScalingConfig::iterations(1));
        for i in 0..3 {
            for j in 0..3 {
                assert!((r.entry(i, j) - 1.0 / 3.0).abs() < 1e-14);
            }
        }
        assert!(r.error < 1e-14);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn row_sums_are_one_after_any_iteration() {
        let g = graph(&[&[1, 1, 0], &[0, 1, 1], &[1, 0, 1]]);
        let r = sinkhorn_knopp(&g, &ScalingConfig::iterations(3));
        for i in 0..3 {
            assert!((r.row_sum(&g, i) - 1.0).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn converges_on_total_support_matrix() {
        // A symmetric doubly-stochastic-able pattern (cycle structure).
        let g = graph(&[&[1, 1, 0, 0], &[0, 1, 1, 0], &[0, 0, 1, 1], &[1, 0, 0, 1]]);
        let r = sinkhorn_knopp(&g, &ScalingConfig::until(1e-10, 500));
        assert!(r.error <= 1e-10, "error = {}", r.error);
        for j in 0..4 {
            assert!((r.col_sum(&g, j) - 1.0).abs() < 1e-9);
        }
        // This pattern is a circulant: the limit is uniform 1/2 per entry.
        assert!((r.entry(0, 0) - 0.5).abs() < 1e-8);
    }

    #[test]
    fn seq_and_par_agree_bitwise() {
        let g = graph(&[
            &[1, 1, 0, 1, 0],
            &[0, 1, 1, 0, 0],
            &[1, 0, 1, 1, 1],
            &[0, 1, 0, 1, 0],
            &[1, 0, 0, 0, 1],
        ]);
        let a = sinkhorn_knopp(&g, &ScalingConfig::iterations(8));
        let b = sinkhorn_knopp_seq(&g, &ScalingConfig::iterations(8));
        assert_eq!(a.dr, b.dr);
        assert_eq!(a.dc, b.dc);
        assert_eq!(a.error, b.error);
    }

    #[test]
    fn zero_iterations_reports_raw_error() {
        let g = graph(&[&[1, 1], &[1, 1]]);
        let r = sinkhorn_knopp(&g, &ScalingConfig::iterations(0));
        assert_eq!(r.iterations, 0);
        assert_eq!(r.error, 1.0); // column sums are 2
        assert!(r.history.is_empty());
        assert_eq!(r.dr, vec![1.0, 1.0]);
    }

    #[test]
    fn tolerance_early_exit() {
        let g = graph(&[&[1, 1], &[1, 1]]);
        // Uniform matrix converges in one iteration; cap of 50 is not hit.
        let r = sinkhorn_knopp(&g, &ScalingConfig::until(1e-12, 50));
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn error_history_is_monotone_on_nice_matrices() {
        let g = graph(&[&[1, 1, 0], &[1, 1, 1], &[0, 1, 1]]);
        let r = sinkhorn_knopp(&g, &ScalingConfig::iterations(30));
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "history not decreasing: {:?}", r.history);
        }
    }

    #[test]
    fn empty_rows_and_cols_are_tolerated() {
        let g = graph(&[&[1, 0, 0], &[0, 0, 1], &[0, 0, 0]]);
        let r = sinkhorn_knopp(&g, &ScalingConfig::iterations(4));
        assert!(r.dr.iter().all(|d| d.is_finite()));
        assert!(r.dc.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn weighted_matches_pattern_on_unit_values() {
        let g = graph(&[&[1, 1, 0], &[0, 1, 1], &[1, 0, 1]]);
        let vals = vec![1.0; g.nnz()];
        let a = sinkhorn_knopp(&g, &ScalingConfig::iterations(6));
        let b = sinkhorn_knopp_weighted(&g, &vals, &ScalingConfig::iterations(6));
        for (x, y) in a.dr.iter().zip(&b.dr) {
            assert!((x - y).abs() < 1e-13);
        }
        for (x, y) in a.dc.iter().zip(&b.dc) {
            assert!((x - y).abs() < 1e-13);
        }
    }

    #[test]
    fn weighted_doubly_stochastic_limit() {
        // 2×2 with distinct positive values still scales to doubly
        // stochastic (Sinkhorn's theorem for positive matrices).
        let g = graph(&[&[1, 1], &[1, 1]]);
        let vals = vec![1.0, 2.0, 3.0, 4.0];
        let r = sinkhorn_knopp_weighted(&g, &vals, &ScalingConfig::until(1e-12, 1000));
        assert!(r.error <= 1e-12);
        // Row sums: dr[i]·Σ_j v_ij·dc[j] == 1.
        let s00 = r.dr[0] * 1.0 * r.dc[0];
        let s01 = r.dr[0] * 2.0 * r.dc[1];
        assert!((s00 + s01 - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "one value per stored entry")]
    fn weighted_checks_length() {
        let g = graph(&[&[1, 1], &[1, 1]]);
        let _ = sinkhorn_knopp_weighted(&g, &[1.0], &ScalingConfig::iterations(1));
    }

    #[test]
    fn cancel_refuses_dead_token_and_slot_stays_reusable() {
        let g = graph(&[&[1, 1, 0], &[1, 1, 1], &[0, 1, 1]]);
        let cfg = ScalingConfig::iterations(5);
        let dead = CancelToken::unbounded();
        dead.cancel();
        let mut out = ScalingResult::empty();
        assert!(sinkhorn_knopp_cancel_into(&g, &cfg, &mut out, &dead).is_err());
        // The same slot then reproduces a fresh run exactly — cancellation
        // leaves the factor buffers reusable, not poisoned.
        sinkhorn_knopp_cancel_into(&g, &cfg, &mut out, &CancelToken::unbounded())
            .expect("live token");
        let fresh = sinkhorn_knopp(&g, &cfg);
        assert_eq!(out.dr, fresh.dr);
        assert_eq!(out.dc, fresh.dc);
        assert_eq!(out.iterations, fresh.iterations);
    }
}
