//! Ruiz equilibration (1-norm variant).
//!
//! The paper's §2.2 reviews Ruiz's algorithm as the alternative to
//! Sinkhorn–Knopp: instead of alternating exact column/row normalization,
//! each iteration scales **both** sides simultaneously by the inverse square
//! roots of the current row and column sums, converging to the same doubly
//! stochastic limit but — per Knight, Ruiz & Uçar — more slowly on
//! unsymmetric matrices. We implement it so the ablation benchmark can
//! reproduce that comparison (`ablation_bench`, and the quality impact in
//! EXPERIMENTS.md).

use dsmatch_graph::{BipartiteGraph, CancelToken, Cancelled};
use rayon::prelude::*;

use crate::sinkhorn::max_col_sum_error;
use crate::{ScalingConfig, ScalingResult};

/// Parallel Ruiz equilibration in the 1-norm.
///
/// One iteration:
/// ```text
/// r_i = Σ_j s_ij,  c_j = Σ_i s_ij          (current scaled sums)
/// dr[i] ← dr[i] / √r_i,  dc[j] ← dc[j] / √c_j
/// ```
pub fn ruiz(g: &BipartiteGraph, cfg: &ScalingConfig) -> ScalingResult {
    let mut out = ScalingResult::empty();
    ruiz_into(g, cfg, &mut out);
    out
}

/// Buffer-reuse variant of [`ruiz`]: identical arithmetic, the factor and
/// history vectors of `out` are reset and refilled in place (see
/// [`crate::sinkhorn_knopp_into`] for the allocation contract).
pub fn ruiz_into(g: &BipartiteGraph, cfg: &ScalingConfig, out: &mut ScalingResult) {
    ruiz_cancel_into(g, cfg, out, &CancelToken::unbounded()).expect("unbounded token never cancels")
}

/// [`ruiz_into`] with cooperative cancellation: the token is polled once
/// per iteration. On [`Cancelled`] the factors in `out` are whatever the
/// completed iterations produced, and the buffers stay reusable.
pub fn ruiz_cancel_into(
    g: &BipartiteGraph,
    cfg: &ScalingConfig,
    out: &mut ScalingResult,
    token: &CancelToken,
) -> Result<(), Cancelled> {
    out.dr.clear();
    out.dr.resize(g.nrows(), 1.0);
    out.dc.clear();
    out.dc.resize(g.ncols(), 1.0);
    out.history.clear();
    let mut error = f64::INFINITY;
    let mut done = 0usize;
    for _ in 0..cfg.max_iterations {
        token.check()?;
        let (dr, dc) = (&out.dr, &out.dc);
        let rsums: Vec<f64> = (0..g.nrows())
            .into_par_iter()
            .map(|i| {
                let s: f64 = g.row_adj(i).iter().map(|&j| dc[j as usize]).sum();
                s * dr[i]
            })
            .collect();
        let csums: Vec<f64> = (0..g.ncols())
            .into_par_iter()
            .map(|j| {
                let s: f64 = g.col_adj(j).iter().map(|&i| dr[i as usize]).sum();
                s * dc[j]
            })
            .collect();
        out.dr.par_iter_mut().zip(rsums.par_iter()).for_each(|(d, &r)| {
            if r > 0.0 {
                *d /= r.sqrt();
            }
        });
        out.dc.par_iter_mut().zip(csums.par_iter()).for_each(|(d, &c)| {
            if c > 0.0 {
                *d /= c.sqrt();
            }
        });
        done += 1;
        error = max_col_sum_error(g, &out.dr, &out.dc);
        out.history.push(error);
        if cfg.tolerance > 0.0 && error <= cfg.tolerance {
            break;
        }
    }
    if done == 0 {
        error = max_col_sum_error(g, &out.dr, &out.dc);
    }
    out.iterations = done;
    out.error = error;
    Ok(())
}

/// Sequential Ruiz — identical arithmetic to [`ruiz`].
pub fn ruiz_seq(g: &BipartiteGraph, cfg: &ScalingConfig) -> ScalingResult {
    let mut dr = vec![1.0f64; g.nrows()];
    let mut dc = vec![1.0f64; g.ncols()];
    let mut history = Vec::with_capacity(cfg.max_iterations);
    let mut error = f64::INFINITY;
    let mut done = 0usize;
    for _ in 0..cfg.max_iterations {
        let rsums: Vec<f64> = (0..g.nrows())
            .map(|i| dr[i] * g.row_adj(i).iter().map(|&j| dc[j as usize]).sum::<f64>())
            .collect();
        let csums: Vec<f64> = (0..g.ncols())
            .map(|j| dc[j] * g.col_adj(j).iter().map(|&i| dr[i as usize]).sum::<f64>())
            .collect();
        for (d, &r) in dr.iter_mut().zip(&rsums) {
            if r > 0.0 {
                *d /= r.sqrt();
            }
        }
        for (d, &c) in dc.iter_mut().zip(&csums) {
            if c > 0.0 {
                *d /= c.sqrt();
            }
        }
        done += 1;
        error = (0..g.ncols())
            .map(|j| {
                let s: f64 = g.col_adj(j).iter().map(|&i| dr[i as usize]).sum();
                (s * dc[j] - 1.0).abs()
            })
            .fold(0.0, f64::max);
        history.push(error);
        if cfg.tolerance > 0.0 && error <= cfg.tolerance {
            break;
        }
    }
    if done == 0 {
        error = max_col_sum_error(g, &dr, &dc);
    }
    ScalingResult { dr, dc, iterations: done, error, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::Csr;

    fn graph(rows: &[&[u8]]) -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(rows))
    }

    #[test]
    fn symmetric_all_ones_converges_fast() {
        let g = graph(&[&[1, 1], &[1, 1]]);
        let r = ruiz(&g, &ScalingConfig::until(1e-10, 200));
        assert!(r.error <= 1e-10);
        assert!((r.entry(0, 0) - 0.5).abs() < 1e-8);
    }

    #[test]
    fn converges_to_doubly_stochastic() {
        let g = graph(&[&[1, 1, 0], &[1, 1, 1], &[0, 1, 1]]);
        let r = ruiz(&g, &ScalingConfig::until(1e-9, 2000));
        assert!(r.error <= 1e-9, "error = {}", r.error);
        for i in 0..3 {
            assert!((r.row_sum(&g, i) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn seq_and_par_agree() {
        let g = graph(&[&[1, 0, 1, 1], &[1, 1, 0, 0], &[0, 1, 1, 0], &[1, 0, 0, 1]]);
        let a = ruiz(&g, &ScalingConfig::iterations(10));
        let b = ruiz_seq(&g, &ScalingConfig::iterations(10));
        for (x, y) in a.dr.iter().zip(&b.dr) {
            assert!((x - y).abs() < 1e-14);
        }
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn slower_than_sinkhorn_on_unsymmetric_pattern() {
        // Knight–Ruiz–Uçar observation the paper cites: for unsymmetric
        // matrices SK converges faster. Compare errors after equal
        // iteration counts.
        let g = graph(&[
            &[1, 1, 1, 1, 1],
            &[1, 1, 0, 0, 0],
            &[0, 1, 1, 0, 0],
            &[0, 0, 1, 1, 0],
            &[0, 0, 0, 1, 1],
        ]);
        let sk = crate::sinkhorn_knopp(&g, &ScalingConfig::iterations(12));
        let rz = ruiz(&g, &ScalingConfig::iterations(12));
        assert!(
            sk.error <= rz.error + 1e-12,
            "SK error {} should not exceed Ruiz error {}",
            sk.error,
            rz.error
        );
    }

    #[test]
    fn handles_empty_vectors_gracefully() {
        let g = graph(&[&[0, 0], &[1, 0]]);
        let r = ruiz(&g, &ScalingConfig::iterations(3));
        assert!(r.dr.iter().all(|d| d.is_finite()));
        assert!(r.dc.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn cancel_refuses_dead_token_and_slot_stays_reusable() {
        let g = graph(&[&[1, 1], &[1, 1]]);
        let cfg = ScalingConfig::iterations(4);
        let dead = CancelToken::unbounded();
        dead.cancel();
        let mut out = ScalingResult::empty();
        assert!(ruiz_cancel_into(&g, &cfg, &mut out, &dead).is_err());
        ruiz_cancel_into(&g, &cfg, &mut out, &CancelToken::unbounded()).expect("live token");
        let fresh = ruiz(&g, &cfg);
        assert_eq!(out.dr, fresh.dr);
        assert_eq!(out.dc, fresh.dc);
        assert_eq!(out.iterations, fresh.iterations);
    }
}
