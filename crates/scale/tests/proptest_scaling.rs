//! Property tests for the scaling crate.

use dsmatch_graph::{BipartiteGraph, TripletMatrix, UndirectedGraph};
use dsmatch_scale::{
    ruiz, sinkhorn_knopp, sinkhorn_knopp_seq, sinkhorn_knopp_weighted, symmetric_scaling,
    ScalingConfig,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..10, 1usize..10).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m, 0..n), 0..40).prop_map(move |entries| {
            let mut t = TripletMatrix::new(m, n);
            for (i, j) in entries {
                t.push(i, j);
            }
            BipartiteGraph::from_csr(t.into_csr())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn sk_row_sums_one_and_factors_positive(g in arb_graph(), iters in 1usize..8) {
        let r = sinkhorn_knopp(&g, &ScalingConfig::iterations(iters));
        prop_assert_eq!(r.iterations, iters);
        prop_assert_eq!(r.history.len(), iters);
        for i in 0..g.nrows() {
            if g.row_degree(i) > 0 {
                prop_assert!((r.row_sum(&g, i) - 1.0).abs() < 1e-9);
            }
        }
        prop_assert!(r.dr.iter().all(|d| d.is_finite() && *d > 0.0));
        prop_assert!(r.dc.iter().all(|d| d.is_finite() && *d > 0.0));
        prop_assert!(r.error.is_finite());
    }

    #[test]
    fn sk_seq_equals_par(g in arb_graph(), iters in 0usize..6) {
        let a = sinkhorn_knopp(&g, &ScalingConfig::iterations(iters));
        let b = sinkhorn_knopp_seq(&g, &ScalingConfig::iterations(iters));
        prop_assert_eq!(a.dr, b.dr);
        prop_assert_eq!(a.dc, b.dc);
    }

    #[test]
    fn weighted_with_unit_values_equals_pattern(g in arb_graph(), iters in 1usize..5) {
        let vals = vec![1.0; g.nnz()];
        let a = sinkhorn_knopp(&g, &ScalingConfig::iterations(iters));
        let b = sinkhorn_knopp_weighted(&g, &vals, &ScalingConfig::iterations(iters));
        for (x, y) in a.dr.iter().zip(&b.dr) {
            prop_assert!((x - y).abs() <= 1e-12 * x.abs().max(1.0));
        }
        for (x, y) in a.dc.iter().zip(&b.dc) {
            prop_assert!((x - y).abs() <= 1e-12 * x.abs().max(1.0));
        }
    }

    #[test]
    fn ruiz_factors_stay_finite_and_positive(g in arb_graph()) {
        // On sprank-deficient patterns Ruiz's column-sum error need not
        // decrease monotonically (the doubly stochastic limit does not
        // exist), so the universal property is only well-posedness.
        let many = ruiz(&g, &ScalingConfig::iterations(30));
        prop_assert!(many.dr.iter().all(|d| d.is_finite() && *d > 0.0));
        prop_assert!(many.dc.iter().all(|d| d.is_finite() && *d > 0.0));
        prop_assert!(many.error.is_finite());
        prop_assert_eq!(many.iterations, 30);
    }

    #[test]
    fn ruiz_converges_on_regular_square_patterns(k in 2usize..20) {
        // Ring patterns (2-regular, total support): Ruiz must converge.
        let n = 2 * k;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i);
            t.push(i, (i + 1) % n);
        }
        let g = BipartiteGraph::from_csr(t.into_csr());
        let r = ruiz(&g, &ScalingConfig::until(1e-9, 500));
        prop_assert!(r.error <= 1e-9);
        for i in 0..n {
            prop_assert!((r.row_sum(&g, i) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn symmetric_scaling_row_sums_converge_on_regular_patterns(k in 2usize..30) {
        // Cycle graphs are 2-regular: must converge to 1/2 per edge.
        let n = 2 * k;
        let edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = UndirectedGraph::from_edges(n, &edges);
        let r = symmetric_scaling(&g, &ScalingConfig::until(1e-10, 200));
        prop_assert!(r.error <= 1e-10);
        prop_assert!((r.entry(0, 1) - 0.5).abs() < 1e-8);
    }
}
