//! Deterministic, splittable pseudo-random number generation.
//!
//! The heuristics of the paper are randomized: every row (and, for
//! `TwoSidedMatch`, every column) draws an independent random neighbour. Run
//! in parallel with a single shared RNG this would be both a bottleneck and
//! non-reproducible. Instead we derive an independent stream per vertex with
//! [`SplitMix64`]: `stream(seed, i)` seeds a generator from `seed ⊕ φ(i)`,
//! which makes the sampled subgraph a pure function of `(seed, input)` —
//! identical for any thread count, matching the paper's observation that the
//! quality guarantees are independent of the degree of parallelism.
//!
//! SplitMix64 is the canonical seeding generator (Steele, Lea, Flood 2014,
//! "Fast splittable pseudorandom number generators"); it passes BigCrush when
//! used as a stream and is 3 instructions per 64-bit output.

/// A SplitMix64 generator.
///
/// Not cryptographic. Used for neighbour sampling and generator shuffles.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

/// Golden-ratio increment used by SplitMix64.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Create a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Create the `index`-th independent stream of a base seed.
    ///
    /// Streams for distinct indices are decorrelated by pre-mixing the index
    /// with one SplitMix64 round before xoring into the seed.
    #[inline]
    pub fn stream(seed: u64, index: u64) -> Self {
        let mixed = mix64(index.wrapping_mul(GAMMA).wrapping_add(0xD1B5_4A32_D192_ED03));
        Self::new(seed ^ mixed)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix64(self.state)
    }

    /// Next `f64` uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next `f64` uniform in the half-open interval `(0, hi]`.
    ///
    /// This is the distribution the paper's sampling step needs: it draws
    /// `r ∈ (0, Σ s_ik]` and finds the first prefix-sum exceeding `r`; using a
    /// half-open-from-zero interval would make weight-0 prefixes selectable.
    #[inline]
    pub fn next_f64_open_closed(&mut self, hi: f64) -> f64 {
        debug_assert!(hi > 0.0);
        let u = self.next_f64(); // [0,1)
        (1.0 - u) * hi // (0, hi]
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift method
    /// (unbiased via rejection).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling on the high bits; bias is eliminated by retrying
        // when the low product lands in the truncated zone.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        for i in (1..n).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// The 64-bit finalizer of SplitMix64 (a strong bijective mixer).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = SplitMix64::stream(42, 0);
        let mut b = SplitMix64::stream(42, 1);
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn open_closed_interval_respected() {
        let mut g = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = g.next_f64_open_closed(3.5);
            assert!(x > 0.0 && x <= 3.5, "x = {x}");
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut g = SplitMix64::new(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = g.next_below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut g = SplitMix64::new(13);
        let mut counts = [0usize; 8];
        let trials = 80_000;
        for _ in 0..trials {
            counts[g.next_below(8) as usize] += 1;
        }
        let expected = trials / 8;
        for &c in &counts {
            // 5-sigma-ish bound for a binomial with p = 1/8.
            assert!((c as isize - expected as isize).unsigned_abs() < 600, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mix64_bijective_smoke() {
        // Distinct inputs map to distinct outputs on a sample.
        let outs: Vec<u64> = (0..1000u64).map(mix64).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
    }
}
