//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] is a cheap, cloneable handle combining an explicit
//! cancellation flag with an optional deadline. Solvers that may run for
//! many phases (`hk-par`, `pf-par`, `pf-graft`, `pr`) and the scaling
//! iteration loops poll the token at phase/epoch boundaries and return
//! [`Cancelled`] instead of completing, leaving their workspaces in a
//! reusable (poison-free) state.
//!
//! Polling at phase boundaries — not per edge — keeps the fast path free:
//! a token with no deadline and no cancel signal costs one atomic load
//! per phase.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error returned by cancellable solvers when their [`CancelToken`] fires.
///
/// Carries no payload: the caller owns the token and therefore already
/// knows whether the cause was an explicit [`CancelToken::cancel`] or an
/// expired deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("operation cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle: an atomic flag plus an optional
/// deadline instant.
///
/// All clones share the same flag, so any holder can [`cancel`] the whole
/// job. The deadline is fixed at construction; [`is_cancelled`] reports
/// true once the flag is set *or* the deadline has passed.
///
/// [`cancel`]: CancelToken::cancel
/// [`is_cancelled`]: CancelToken::is_cancelled
///
/// ```
/// use dsmatch_graph::{CancelToken, Cancelled};
///
/// let token = CancelToken::unbounded();
/// assert_eq!(token.check(), Ok(()));
/// token.cancel();
/// assert_eq!(token.check(), Err(Cancelled));
/// ```
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never fires on its own — only an explicit
    /// [`cancel`](CancelToken::cancel) can trip it. This is the token that
    /// non-cancellable entry points pass internally; its per-phase cost is
    /// a single relaxed load.
    pub fn unbounded() -> Self {
        CancelToken { inner: Arc::new(Inner { flag: AtomicBool::new(false), deadline: None }) }
    }

    /// A token that fires once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        // lint:allow(wall-clock): deadline tokens are the one sanctioned clock source — solvers consume tokens, they never read clocks themselves
        Self::deadline_at(Instant::now() + timeout)
    }

    /// A token that fires once `deadline` has passed. Useful when the
    /// clock starts at job *submission* rather than at solve start (a
    /// queued job's waiting time counts against its deadline).
    pub fn deadline_at(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner { flag: AtomicBool::new(false), deadline: Some(deadline) }),
        }
    }

    /// Trip the token explicitly. Every clone observes the cancellation.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// True once the token has been [`cancel`](CancelToken::cancel)led or
    /// its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            // lint:allow(wall-clock): evaluating a deadline is this type's purpose; tokens without one never touch the clock
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// [`Err(Cancelled)`](Cancelled) once the token has fired; the form
    /// solver loops use with `?`.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

impl Default for CancelToken {
    /// Same as [`CancelToken::unbounded`].
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_fires() {
        let t = CancelToken::unbounded();
        assert!(!t.is_cancelled());
        assert_eq!(t.check(), Ok(()));
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::unbounded();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(Cancelled));
    }

    #[test]
    fn deadline_fires_after_elapsing() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        // A zero deadline has already passed by the time we check.
        assert!(t.is_cancelled());
        // lint:allow(test-deadline): far-future sentinel proving the token does NOT fire — nothing ever waits on it
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn deadline_at_honors_past_instants() {
        let t = CancelToken::deadline_at(Instant::now());
        assert_eq!(t.check(), Err(Cancelled));
    }

    #[test]
    fn cancelled_formats_and_is_error() {
        let e: Box<dyn std::error::Error> = Box::new(Cancelled);
        assert_eq!(e.to_string(), "operation cancelled");
    }
}
