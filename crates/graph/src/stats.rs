//! Degree statistics for experiment reporting.
//!
//! §4.2 of the paper explains the scalability outliers (`torso1`,
//! `audikw_1`) by the **variance of the number of nonzeros per row**: high
//! variance ⇒ load imbalance under static chunking. The harness therefore
//! reports the same statistics for every instance it runs, and the surrogate
//! suite (in `dsmatch-gen`) is calibrated against them.

use crate::csr::Csr;

/// Summary statistics of a degree sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance (the quantity quoted in the paper: 176056 for
    /// `torso1`, 1802 for `audikw_1`, 42 for `kkt_power`).
    pub variance: f64,
}

impl DegreeStats {
    /// Compute from a degree sequence.
    pub fn from_degrees<I: IntoIterator<Item = usize>>(degrees: I) -> Self {
        let mut n = 0usize;
        let mut sum = 0f64;
        let mut sumsq = 0f64;
        let mut min = usize::MAX;
        let mut max = 0usize;
        for d in degrees {
            n += 1;
            sum += d as f64;
            sumsq += (d * d) as f64;
            min = min.min(d);
            max = max.max(d);
        }
        if n == 0 {
            return Self { min: 0, max: 0, mean: 0.0, variance: 0.0 };
        }
        let mean = sum / n as f64;
        let variance = (sumsq / n as f64 - mean * mean).max(0.0);
        Self { min, max, mean, variance }
    }

    /// Row-degree statistics of a matrix.
    pub fn rows_of(a: &Csr) -> Self {
        Self::from_degrees((0..a.nrows()).map(|i| a.row_degree(i)))
    }

    /// Column-degree statistics of a matrix.
    pub fn cols_of(a: &Csr) -> Self {
        Self::from_degrees(a.col_degrees().into_iter().map(|d| d as usize))
    }

    /// Coefficient of variation `σ / mean` — a scale-free skew measure
    /// (`0` for regular degree sequences, `> 1` for heavy-tailed ones such
    /// as RMAT/power-law families). `0` when the mean is zero.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.variance.sqrt() / self.mean
        }
    }
}

/// Whole-instance shape summary: both degree sequences plus the global
/// density and aspect ratio. This is what family-dependent algorithm
/// selection (Kaya–Langguth–Manne–Uçar 2013) keys on — cheap to compute
/// (one O(n + m) pass) relative to any exact solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstanceStats {
    /// Row count.
    pub nrows: usize,
    /// Column count.
    pub ncols: usize,
    /// Nonzero (edge) count.
    pub nnz: usize,
    /// Row-degree summary.
    pub rows: DegreeStats,
    /// Column-degree summary.
    pub cols: DegreeStats,
}

impl InstanceStats {
    /// Compute all statistics of a matrix in one pass per side.
    pub fn of(a: &Csr) -> Self {
        Self {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            rows: DegreeStats::rows_of(a),
            cols: DegreeStats::cols_of(a),
        }
    }

    /// Fill fraction `nnz / (nrows · ncols)`; `0` for empty shapes.
    pub fn density(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nnz as f64 / cells
        }
    }

    /// Shape skew `max(nrows, ncols) / min(nrows, ncols)`; `1` for square
    /// (and degenerate 0-dimension) instances.
    pub fn aspect(&self) -> f64 {
        let (lo, hi) = (self.nrows.min(self.ncols), self.nrows.max(self.ncols));
        if lo == 0 {
            1.0
        } else {
            hi as f64 / lo as f64
        }
    }

    /// Degree skew: the larger coefficient of variation of the two degree
    /// sequences (either side being heavy-tailed imbalances BFS forests).
    pub fn degree_skew(&self) -> f64 {
        self.rows.cv().max(self.cols.cv())
    }
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {} / max {} / mean {:.2} / var {:.1}",
            self.min, self.max, self.mean, self.variance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_degrees_have_zero_variance() {
        let s = DegreeStats::from_degrees([3usize, 3, 3, 3]);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 3);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn variance_of_known_sequence() {
        // degrees 1, 3: mean 2, variance 1.
        let s = DegreeStats::from_degrees([1usize, 3]);
        assert_eq!(s.mean, 2.0);
        assert!((s.variance - 1.0).abs() < 1e-12);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
    }

    #[test]
    fn empty_sequence() {
        let s = DegreeStats::from_degrees(std::iter::empty());
        assert_eq!(s, DegreeStats { min: 0, max: 0, mean: 0.0, variance: 0.0 });
    }

    #[test]
    fn matrix_row_and_col_stats() {
        let a = Csr::from_dense(&[&[1, 1, 1], &[1, 0, 0], &[0, 0, 0]]);
        let r = DegreeStats::rows_of(&a);
        assert_eq!(r.min, 0);
        assert_eq!(r.max, 3);
        assert!((r.mean - 4.0 / 3.0).abs() < 1e-12);
        let c = DegreeStats::cols_of(&a);
        assert_eq!(c.max, 2);
        assert_eq!(c.min, 1);
    }

    #[test]
    fn cv_is_scale_free() {
        assert_eq!(DegreeStats::from_degrees([4usize, 4, 4]).cv(), 0.0);
        assert_eq!(DegreeStats::from_degrees(std::iter::empty()).cv(), 0.0);
        // degrees 1, 3: mean 2, σ 1 ⇒ cv 0.5; scaling by 10 keeps cv.
        assert!((DegreeStats::from_degrees([1usize, 3]).cv() - 0.5).abs() < 1e-12);
        assert!((DegreeStats::from_degrees([10usize, 30]).cv() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn instance_stats_shape_measures() {
        let a = Csr::from_dense(&[&[1, 1, 1], &[1, 0, 0]]);
        let s = InstanceStats::of(&a);
        assert_eq!((s.nrows, s.ncols, s.nnz), (2, 3, 4));
        assert!((s.density() - 4.0 / 6.0).abs() < 1e-12);
        assert!((s.aspect() - 1.5).abs() < 1e-12);
        assert!(s.degree_skew() > 0.0);
        // Degenerate shapes stay finite.
        let empty = InstanceStats::of(&Csr::from_dense(&[]));
        assert_eq!(empty.density(), 0.0);
        assert_eq!(empty.aspect(), 1.0);
        assert_eq!(empty.degree_skew(), 0.0);
    }

    #[test]
    fn display_is_humane() {
        let s = DegreeStats::from_degrees([2usize, 4]);
        let text = s.to_string();
        assert!(text.contains("min 2"));
        assert!(text.contains("max 4"));
    }
}
