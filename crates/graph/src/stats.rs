//! Degree statistics for experiment reporting.
//!
//! §4.2 of the paper explains the scalability outliers (`torso1`,
//! `audikw_1`) by the **variance of the number of nonzeros per row**: high
//! variance ⇒ load imbalance under static chunking. The harness therefore
//! reports the same statistics for every instance it runs, and the surrogate
//! suite (in `dsmatch-gen`) is calibrated against them.

use crate::csr::Csr;

/// Summary statistics of a degree sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance (the quantity quoted in the paper: 176056 for
    /// `torso1`, 1802 for `audikw_1`, 42 for `kkt_power`).
    pub variance: f64,
}

impl DegreeStats {
    /// Compute from a degree sequence.
    pub fn from_degrees<I: IntoIterator<Item = usize>>(degrees: I) -> Self {
        let mut n = 0usize;
        let mut sum = 0f64;
        let mut sumsq = 0f64;
        let mut min = usize::MAX;
        let mut max = 0usize;
        for d in degrees {
            n += 1;
            sum += d as f64;
            sumsq += (d * d) as f64;
            min = min.min(d);
            max = max.max(d);
        }
        if n == 0 {
            return Self { min: 0, max: 0, mean: 0.0, variance: 0.0 };
        }
        let mean = sum / n as f64;
        let variance = (sumsq / n as f64 - mean * mean).max(0.0);
        Self { min, max, mean, variance }
    }

    /// Row-degree statistics of a matrix.
    pub fn rows_of(a: &Csr) -> Self {
        Self::from_degrees((0..a.nrows()).map(|i| a.row_degree(i)))
    }

    /// Column-degree statistics of a matrix.
    pub fn cols_of(a: &Csr) -> Self {
        Self::from_degrees(a.col_degrees().into_iter().map(|d| d as usize))
    }
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {} / max {} / mean {:.2} / var {:.1}",
            self.min, self.max, self.mean, self.variance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_degrees_have_zero_variance() {
        let s = DegreeStats::from_degrees([3usize, 3, 3, 3]);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 3);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn variance_of_known_sequence() {
        // degrees 1, 3: mean 2, variance 1.
        let s = DegreeStats::from_degrees([1usize, 3]);
        assert_eq!(s.mean, 2.0);
        assert!((s.variance - 1.0).abs() < 1e-12);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
    }

    #[test]
    fn empty_sequence() {
        let s = DegreeStats::from_degrees(std::iter::empty());
        assert_eq!(s, DegreeStats { min: 0, max: 0, mean: 0.0, variance: 0.0 });
    }

    #[test]
    fn matrix_row_and_col_stats() {
        let a = Csr::from_dense(&[&[1, 1, 1], &[1, 0, 0], &[0, 0, 0]]);
        let r = DegreeStats::rows_of(&a);
        assert_eq!(r.min, 0);
        assert_eq!(r.max, 3);
        assert!((r.mean - 4.0 / 3.0).abs() < 1e-12);
        let c = DegreeStats::cols_of(&a);
        assert_eq!(c.max, 2);
        assert_eq!(c.min, 1);
    }

    #[test]
    fn display_is_humane() {
        let s = DegreeStats::from_degrees([2usize, 4]);
        let text = s.to_string();
        assert!(text.contains("min 2"));
        assert!(text.contains("max 4"));
    }
}
