//! Two-sided bipartite graph view.
//!
//! Every algorithm in the paper needs both directions of the incidence
//! structure: Sinkhorn–Knopp alternates column scans (`A_*j`) and row scans
//! (`A_i*`); `TwoSidedMatch` samples a column for every row *and* a row for
//! every column. [`BipartiteGraph`] bundles a row-major [`Csr`] with its
//! transpose so both are O(1) accessible, and centralizes the size/metadata
//! queries used by the experiment harness.

use crate::csr::Csr;
use crate::VertexId;

/// A bipartite graph `G = (V_R ∪ V_C, E)` stored as a CSR matrix plus its
/// transpose.
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    rows: Csr, // A   : row  -> cols
    cols: Csr, // A^T : col  -> rows
}

impl BipartiteGraph {
    /// Build from a CSR matrix, computing the transpose.
    pub fn from_csr(rows: Csr) -> Self {
        let cols = rows.transpose();
        Self { rows, cols }
    }

    /// Build from both directions; `cols` must be the exact transpose of
    /// `rows`.
    ///
    /// # Panics
    /// If the two matrices are not transposes of each other (checked in debug
    /// builds only, since the check is `O(nnz · log)`).
    pub fn from_parts(rows: Csr, cols: Csr) -> Self {
        debug_assert!(cols.is_transpose_of(&rows), "cols must equal rowsᵀ");
        assert_eq!(rows.nrows(), cols.ncols());
        assert_eq!(rows.ncols(), cols.nrows());
        Self { rows, cols }
    }

    /// Number of row vertices (`|V_R|`, matrix rows).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows.nrows()
    }

    /// Number of column vertices (`|V_C|`, matrix columns).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.rows.ncols()
    }

    /// Number of edges.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rows.nnz()
    }

    /// True when `|V_R| == |V_C|`.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows.is_square()
    }

    /// Row-major view (`A`): neighbours of row vertices.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.rows
    }

    /// Column-major view (`Aᵀ`): neighbours of column vertices.
    #[inline]
    pub fn csc(&self) -> &Csr {
        &self.cols
    }

    /// Columns adjacent to row `i` (the paper's `A_i*`).
    #[inline]
    pub fn row_adj(&self, i: usize) -> &[VertexId] {
        self.rows.row(i)
    }

    /// Rows adjacent to column `j` (the paper's `A_*j`).
    #[inline]
    pub fn col_adj(&self, j: usize) -> &[VertexId] {
        self.cols.row(j)
    }

    /// Degree of row vertex `i`.
    #[inline]
    pub fn row_degree(&self, i: usize) -> usize {
        self.rows.row_degree(i)
    }

    /// Degree of column vertex `j` (the paper's `d_j = |A_*j|`).
    #[inline]
    pub fn col_degree(&self, j: usize) -> usize {
        self.cols.row_degree(j)
    }

    /// Average degree (`nnz / nrows`), the paper's "Avg. deg." column of
    /// Table 3.
    pub fn avg_degree(&self) -> f64 {
        if self.nrows() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows() as f64
        }
    }

    /// True if the graph has no vertex with degree 0 on either side.
    pub fn has_no_isolated_vertices(&self) -> bool {
        (0..self.nrows()).all(|i| self.row_degree(i) > 0)
            && (0..self.ncols()).all(|j| self.col_degree(j) > 0)
    }
}

impl From<Csr> for BipartiteGraph {
    fn from(c: Csr) -> Self {
        Self::from_csr(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1, 0], &[0, 0, 1], &[1, 0, 1]]))
    }

    #[test]
    fn adjacency_views_agree() {
        let g = g();
        assert_eq!(g.row_adj(0), &[0, 1]);
        assert_eq!(g.col_adj(0), &[0, 2]);
        assert_eq!(g.col_adj(1), &[0]);
        assert_eq!(g.col_adj(2), &[1, 2]);
        for i in 0..g.nrows() {
            for &j in g.row_adj(i) {
                assert!(g.col_adj(j as usize).contains(&(i as VertexId)));
            }
        }
    }

    #[test]
    fn degrees_and_metadata() {
        let g = g();
        assert_eq!(g.nrows(), 3);
        assert_eq!(g.ncols(), 3);
        assert_eq!(g.nnz(), 5);
        assert!(g.is_square());
        assert_eq!(g.row_degree(1), 1);
        assert_eq!(g.col_degree(1), 1);
        assert!((g.avg_degree() - 5.0 / 3.0).abs() < 1e-12);
        assert!(g.has_no_isolated_vertices());
    }

    #[test]
    fn isolated_vertex_detected() {
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 0], &[1, 0]]));
        assert!(!g.has_no_isolated_vertices());
    }

    #[test]
    fn from_parts_checks_shapes() {
        let a = Csr::from_dense(&[&[1, 0], &[1, 1]]);
        let at = a.transpose();
        let g = BipartiteGraph::from_parts(a.clone(), at);
        assert_eq!(g.csr(), &a);
    }
}
