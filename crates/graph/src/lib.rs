//! # dsmatch-graph — sparse bipartite-graph substrate
//!
//! This crate provides the data structures shared by every other crate in the
//! `dsmatch` workspace, which reproduces the system of
//!
//! > F. Dufossé, K. Kaya, B. Uçar, *Bipartite matching heuristics with quality
//! > guarantees on shared memory parallel computers*, Inria RR-8386, 2013
//! > (IPPS/IPDPS 2014).
//!
//! The paper works with the standard correspondence between an `m × n`
//! (0,1)-matrix `A` and a bipartite graph `G = (V_R ∪ V_C, E)`: row vertex `i`
//! and column vertex `j` are adjacent iff `a_ij = 1`. All algorithms in the
//! paper touch the matrix from both sides (row scans for scaling/row-sampling,
//! column scans for column-sampling), so the central type, [`BipartiteGraph`],
//! stores both a row-major [`Csr`] and its transpose.
//!
//! ## Contents
//!
//! - [`csr`]: compressed sparse row storage with parallel transpose.
//! - [`triplet`]: coordinate-format builder (dedup + sort) used by generators
//!   and the Matrix Market reader.
//! - [`bipartite`]: the two-sided graph view used by the heuristics.
//! - [`matching`]: matching representation, validation, cardinality.
//! - [`components`]: connected components and per-component cycle counts —
//!   used to verify Lemma 1 of the paper (each component of the sampled
//!   subgraph contains at most one simple cycle).
//! - [`io`]: Matrix Market (pattern) reader/writer.
//! - [`rng`]: tiny deterministic SplitMix64/Xoshiro PRNG with per-index
//!   stream derivation, so parallel randomized algorithms are reproducible
//!   independently of thread scheduling.
//! - [`stats`]: degree statistics (average, variance, maximum) used when
//!   reporting experiment instances (paper Table 3 discussion).
//! - [`cancel`]: cooperative cancellation tokens (deadline + explicit
//!   cancel) polled by the long-running solvers at phase boundaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod cancel;
pub mod components;
pub mod csr;
pub mod io;
pub mod matching;
pub mod rng;
pub mod stats;
pub mod triplet;
pub mod undirected;

pub use bipartite::BipartiteGraph;
pub use cancel::{CancelToken, Cancelled};
pub use csr::Csr;
pub use matching::Matching;
pub use rng::SplitMix64;
pub use triplet::TripletMatrix;
pub use undirected::{UndirectedGraph, UndirectedMatching};

/// Vertex / index type used throughout the workspace.
///
/// The paper's largest instance (`europe_osm`) has ~50.9M vertices; `u32`
/// comfortably covers everything we generate while halving index-memory
/// traffic relative to `usize` — the dominant cost in sparse kernels.
pub type VertexId = u32;

/// Sentinel meaning "no vertex" / "unmatched" (paper's `NIL`).
pub const NIL: VertexId = u32::MAX;
