//! Compressed sparse row (CSR) pattern matrix.
//!
//! The canonical storage for the paper's algorithms: `row_ptr` (offsets,
//! `usize`) and `col_idx` (column ids, `u32`). Because all matrices are
//! (0,1) patterns, no value array exists — the doubly-stochastic values
//! `s_ij = dr[i]·dc[j]` are recomputed on the fly from the scaling vectors.
//!
//! The transpose (i.e., CSC of the same matrix) is produced by a
//! histogram-based counting transpose, optionally parallelized over rows for
//! the counting pass.

use rayon::prelude::*;

use crate::VertexId;

/// An immutable `m × n` sparse pattern matrix in CSR form.
///
/// Invariants (enforced by [`Csr::from_parts`]):
/// - `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, non-decreasing,
///   `row_ptr[nrows] == col_idx.len()`;
/// - within each row, column indices are strictly increasing (sorted, no
///   duplicates) and `< ncols`.
///
/// ```
/// use dsmatch_graph::Csr;
///
/// let a = Csr::from_dense(&[&[1, 0, 1], &[0, 1, 0]]);
/// assert_eq!(a.nnz(), 3);
/// assert_eq!(a.row(0), &[0, 2]);
/// assert!(a.contains(1, 1));
/// assert_eq!(a.transpose().row(2), &[0]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<VertexId>,
}

impl Csr {
    /// Build from raw parts, validating all invariants.
    ///
    /// # Panics
    /// If any invariant listed on [`Csr`] is violated.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<VertexId>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1, "row_ptr length must be nrows+1");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "row_ptr must end at nnz");
        for i in 0..nrows {
            assert!(row_ptr[i] <= row_ptr[i + 1], "row_ptr must be non-decreasing");
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {i} not strictly increasing: {w:?}");
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < ncols, "row {i} has column {last} ≥ ncols {ncols}");
            }
        }
        Self { nrows, ncols, row_ptr, col_idx }
    }

    /// Build an empty `nrows × ncols` matrix (no nonzeros).
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, row_ptr: vec![0; nrows + 1], col_idx: Vec::new() }
    }

    /// Build from a dense 0/1 array given row-by-row.
    ///
    /// Intended for tests and tiny examples.
    pub fn from_dense(rows: &[&[u8]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged dense input");
            for (j, &v) in r.iter().enumerate() {
                if v != 0 {
                    col_idx.push(j as VertexId);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self { nrows, ncols, row_ptr, col_idx }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (edges of the bipartite graph).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Column indices of row `i` (sorted ascending).
    #[inline]
    pub fn row(&self, i: usize) -> &[VertexId] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Degree (number of nonzeros) of row `i`.
    #[inline]
    pub fn row_degree(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// The offset array.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array.
    #[inline]
    pub fn col_idx(&self) -> &[VertexId] {
        &self.col_idx
    }

    /// Iterate over `(row, col)` coordinates in row-major order.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.nrows).flat_map(move |i| self.row(i).iter().map(move |&j| (i, j as usize)))
    }

    /// Membership test via binary search within the row.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.row(i).binary_search(&(j as VertexId)).is_ok()
    }

    /// Transpose (the CSC view of the same matrix, itself stored as CSR of
    /// `Aᵀ`). Counting transpose, `O(nnz + n)`.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols + 1];
        for &j in &self.col_idx {
            counts[j as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let row_ptr_t = counts.clone();
        let mut col_idx_t = vec![0 as VertexId; self.nnz()];
        let mut cursor = counts;
        for i in 0..self.nrows {
            for &j in self.row(i) {
                let slot = &mut cursor[j as usize];
                col_idx_t[*slot] = i as VertexId;
                *slot += 1;
            }
        }
        // Rows of the transpose are filled in increasing original-row order,
        // so they are already sorted — the invariant holds by construction.
        Csr { nrows: self.ncols, ncols: self.nrows, row_ptr: row_ptr_t, col_idx: col_idx_t }
    }

    /// Degree of every row, computed in parallel.
    pub fn row_degrees(&self) -> Vec<u32> {
        (0..self.nrows)
            .into_par_iter()
            .map(|i| (self.row_ptr[i + 1] - self.row_ptr[i]) as u32)
            .collect()
    }

    /// Degree of every column (one counting pass over `col_idx`).
    pub fn col_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.ncols];
        for &j in &self.col_idx {
            deg[j as usize] += 1;
        }
        deg
    }

    /// Check structural equality with the transpose of another matrix —
    /// `self == other.transpose()` without materializing the transpose.
    pub fn is_transpose_of(&self, other: &Csr) -> bool {
        if self.nrows != other.ncols || self.ncols != other.nrows || self.nnz() != other.nnz() {
            return false;
        }
        self.iter_entries().all(|(i, j)| other.contains(j, i))
    }

    /// Apply row and column permutations: entry `(i, j)` of the result is
    /// entry `(row_perm[i], col_perm[j])` of `self` — i.e. `row_perm[k]`
    /// is the original index of the row placed at position `k`, matching
    /// the convention of `dsmatch-dm`'s block-triangular-form output.
    ///
    /// # Panics
    /// If either argument is not a permutation of the matching dimension.
    pub fn permuted(&self, row_perm: &[u32], col_perm: &[u32]) -> Csr {
        assert_eq!(row_perm.len(), self.nrows, "row permutation length");
        assert_eq!(col_perm.len(), self.ncols, "col permutation length");
        // Inverse column permutation: old column -> new position.
        let mut col_pos = vec![u32::MAX; self.ncols];
        for (new, &old) in col_perm.iter().enumerate() {
            assert!(col_pos[old as usize] == u32::MAX, "col_perm repeats index {old}");
            col_pos[old as usize] = new as u32;
        }
        let mut seen_row = vec![false; self.nrows];
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<VertexId> = Vec::new();
        row_ptr.push(0usize);
        for &old_row in row_perm {
            let old_row = old_row as usize;
            assert!(!seen_row[old_row], "row_perm repeats index {old_row}");
            seen_row[old_row] = true;
            scratch.clear();
            scratch.extend(self.row(old_row).iter().map(|&j| col_pos[j as usize]));
            scratch.sort_unstable();
            col_idx.extend_from_slice(&scratch);
            row_ptr.push(col_idx.len());
        }
        Csr { nrows: self.nrows, ncols: self.ncols, row_ptr, col_idx }
    }

    /// Apply an edge-list patch: the result contains every entry of `self`
    /// plus `add` minus `remove`, without round-tripping through a triplet
    /// rebuild. Rows named by neither list are copied wholesale; touched
    /// rows get a sorted-merge rebuild. Adding a present edge and removing
    /// an absent one are no-ops, and `add` wins when both lists name the
    /// same edge (removals apply to `self`, then additions land on top) —
    /// the exact semantics of rebuilding from the filtered entry set plus
    /// the additions, pinned against that rebuild in the serve tests.
    /// `O(nnz)` worst case, `O(touched rows + patch)` sort work.
    ///
    /// # Panics
    /// If any patch coordinate is out of bounds.
    pub fn patched(&self, add: &[(usize, usize)], remove: &[(usize, usize)]) -> Csr {
        let check = |list: &[(usize, usize)], what: &str| {
            for &(i, j) in list {
                assert!(
                    i < self.nrows && j < self.ncols,
                    "{what} edge ({i}, {j}) out of bounds for {} × {}",
                    self.nrows,
                    self.ncols
                );
            }
        };
        check(add, "patch add");
        check(remove, "patch remove");
        // Group the patch by row: per touched row, the sorted deduped
        // additions and removals.
        let mut by_row: std::collections::BTreeMap<usize, (Vec<VertexId>, Vec<VertexId>)> =
            std::collections::BTreeMap::new();
        for &(i, j) in add {
            by_row.entry(i).or_default().0.push(j as VertexId);
        }
        for &(i, j) in remove {
            by_row.entry(i).or_default().1.push(j as VertexId);
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity((self.nnz() + add.len()).saturating_sub(remove.len()));
        row_ptr.push(0usize);
        let mut next_touched = by_row.iter_mut();
        let mut pending = next_touched.next();
        for i in 0..self.nrows {
            match &mut pending {
                Some((ti, (adds, removes))) if **ti == i => {
                    adds.sort_unstable();
                    adds.dedup();
                    removes.sort_unstable();
                    // Merge the old row (minus `removes`) with `adds`; an
                    // edge in both lists stays present, because additions
                    // land after removals — same as the triplet rebuild.
                    let old = self.row(i);
                    let (mut a, mut b) = (0usize, 0usize);
                    while a < old.len() || b < adds.len() {
                        match (old.get(a), adds.get(b)) {
                            (Some(&x), Some(&y)) if x == y => {
                                a += 1;
                                b += 1;
                                col_idx.push(x);
                            }
                            (Some(&x), Some(&y)) if x > y => {
                                b += 1;
                                col_idx.push(y);
                            }
                            (Some(&x), _) => {
                                a += 1;
                                if removes.binary_search(&x).is_err() {
                                    col_idx.push(x);
                                }
                            }
                            (None, Some(&y)) => {
                                b += 1;
                                col_idx.push(y);
                            }
                            (None, None) => unreachable!(),
                        }
                    }
                    pending = next_touched.next();
                }
                _ => col_idx.extend_from_slice(self.row(i)),
            }
            row_ptr.push(col_idx.len());
        }
        let patched = Csr { nrows: self.nrows, ncols: self.ncols, row_ptr, col_idx };
        debug_assert!(
            (0..patched.nrows).all(|i| patched.row(i).windows(2).all(|w| w[0] < w[1])),
            "patched rows must stay strictly increasing"
        );
        patched
    }

    /// Extract the submatrix with the given (sorted, unique) rows and columns,
    /// relabelling indices to `0..`.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> Csr {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        let mut col_map = vec![VertexId::MAX; self.ncols];
        for (new, &old) in cols.iter().enumerate() {
            col_map[old] = new as VertexId;
        }
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0usize);
        for &i in rows {
            for &j in self.row(i) {
                let nj = col_map[j as usize];
                if nj != VertexId::MAX {
                    col_idx.push(nj);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr { nrows: rows.len(), ncols: cols.len(), row_ptr, col_idx }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn small() -> Csr {
        // 1 1 0
        // 0 0 1
        // 1 0 1
        Csr::from_dense(&[&[1, 1, 0], &[0, 0, 1], &[1, 0, 1]])
    }

    #[test]
    fn from_dense_basic() {
        let a = small();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.row(0), &[0, 1]);
        assert_eq!(a.row(1), &[2]);
        assert_eq!(a.row(2), &[0, 2]);
        assert!(a.is_square());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = small();
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.row(0), &[0, 2]);
        assert_eq!(t.row(1), &[0]);
        assert_eq!(t.row(2), &[1, 2]);
        assert_eq!(t.transpose(), a);
        assert!(t.is_transpose_of(&a));
        assert!(a.is_transpose_of(&t));
    }

    #[test]
    fn contains_works() {
        let a = small();
        assert!(a.contains(0, 1));
        assert!(!a.contains(0, 2));
        assert!(a.contains(2, 2));
    }

    #[test]
    fn degrees() {
        let a = small();
        assert_eq!(a.row_degrees(), vec![2, 1, 2]);
        assert_eq!(a.col_degrees(), vec![2, 1, 2]);
    }

    #[test]
    fn rectangular_transpose() {
        let mut t = TripletMatrix::new(2, 5);
        t.push(0, 4);
        t.push(1, 0);
        t.push(1, 4);
        let a = t.into_csr();
        let at = a.transpose();
        assert_eq!(at.nrows(), 5);
        assert_eq!(at.ncols(), 2);
        assert_eq!(at.row(4), &[0, 1]);
        assert_eq!(at.row(0), &[1]);
        assert_eq!(at.row(1), &[] as &[VertexId]);
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn iter_entries_row_major() {
        let a = small();
        let entries: Vec<_> = a.iter_entries().collect();
        assert_eq!(entries, vec![(0, 0), (0, 1), (1, 2), (2, 0), (2, 2)]);
    }

    #[test]
    fn submatrix_extracts_and_relabels() {
        let a = small();
        let s = a.submatrix(&[0, 2], &[0, 2]);
        // Rows 0,2 and cols 0,2 of `small` →
        // 1 0
        // 1 1
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.row(0), &[0]);
        assert_eq!(s.row(1), &[0, 1]);
    }

    #[test]
    fn permuted_identity_is_noop() {
        let a = small();
        let id: Vec<u32> = (0..3).collect();
        assert_eq!(a.permuted(&id, &id), a);
    }

    #[test]
    fn permuted_moves_entries() {
        let a = small();
        // Reverse rows and columns: entry (i,j) ↦ (2-i, 2-j).
        let rev: Vec<u32> = vec![2, 1, 0];
        let p = a.permuted(&rev, &rev);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(p.contains(i, j), a.contains(2 - i, 2 - j), "({i},{j})");
            }
        }
        assert_eq!(p.nnz(), a.nnz());
        // Double reversal restores the original.
        assert_eq!(p.permuted(&rev, &rev), a);
    }

    #[test]
    #[should_panic(expected = "repeats index")]
    fn permuted_rejects_non_permutation() {
        let a = small();
        let _ = a.permuted(&[0, 0, 1], &[0, 1, 2]);
    }

    #[test]
    fn patched_applies_adds_and_removes() {
        let a = small();
        let p = a.patched(&[(1, 0), (0, 2)], &[(2, 2), (0, 1)]);
        assert_eq!(p.row(0), &[0, 2]);
        assert_eq!(p.row(1), &[0, 2]);
        assert_eq!(p.row(2), &[0]);
        assert_eq!(p.nnz(), 5);
    }

    #[test]
    fn patched_tolerates_noops_and_duplicates() {
        let a = small();
        // Adding a present edge, removing an absent one, duplicate adds,
        // and an edge both added and removed (add wins: removals apply to
        // the old pattern, additions land after).
        let p = a.patched(&[(0, 0), (1, 1), (1, 1), (2, 1)], &[(1, 0), (2, 1)]);
        assert_eq!(p.row(0), a.row(0));
        assert_eq!(p.row(1), &[1, 2]);
        assert_eq!(p.row(2), &[0, 1, 2]);
    }

    #[test]
    fn patched_matches_triplet_rebuild() {
        // The semantics pin: patched == rebuild-from-filtered-entries.
        let a = small();
        let add = [(1usize, 0usize), (1, 1), (0, 2)];
        let remove = [(0usize, 0usize), (2, 2), (1, 1)];
        let removed: std::collections::HashSet<_> = remove.iter().copied().collect();
        let mut t = TripletMatrix::new(a.nrows(), a.ncols());
        for (i, j) in a.iter_entries().filter(|e| !removed.contains(e)) {
            t.push(i, j);
        }
        for &(i, j) in &add {
            t.push(i, j);
        }
        assert_eq!(a.patched(&add, &remove), t.into_csr());
    }

    #[test]
    fn patched_empty_patch_is_identity() {
        let a = small();
        assert_eq!(a.patched(&[], &[]), a);
    }

    #[test]
    #[should_panic(expected = "patch add edge (0, 9) out of bounds")]
    fn patched_bounds_checked() {
        let _ = small().patched(&[(0, 9)], &[]);
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::empty(3, 2);
        assert_eq!(a.nnz(), 0);
        let t = a.transpose();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "not strictly increasing")]
    fn invariant_sorted_rows() {
        let _ = Csr::from_parts(1, 3, vec![0, 2], vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end at nnz")]
    fn invariant_ptr_end() {
        let _ = Csr::from_parts(1, 3, vec![0, 5], vec![0, 1]);
    }

    #[test]
    #[should_panic]
    fn invariant_col_bound() {
        let _ = Csr::from_parts(1, 2, vec![0, 1], vec![7]);
    }
}
