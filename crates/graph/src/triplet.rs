//! Coordinate-format (COO) matrix builder.
//!
//! Generators and the Matrix Market reader accumulate `(row, col)` pairs in a
//! [`TripletMatrix`] and finalize into a deduplicated, sorted [`Csr`]. The
//! paper only needs pattern ((0,1)) matrices, so no values are stored; the
//! scaled values `s_ij = dr[i]·dc[j]` are always recomputed from the scaling
//! vectors (this is also how the paper's implementation avoids materializing
//! the scaled matrix).

use crate::csr::Csr;
use crate::VertexId;

/// An `m × n` pattern matrix under construction, as a list of coordinates.
#[derive(Clone, Debug, Default)]
pub struct TripletMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(VertexId, VertexId)>,
}

impl TripletMatrix {
    /// Create an empty `nrows × ncols` triplet matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(nrows < u32::MAX as usize, "row count must fit in u32");
        assert!(ncols < u32::MAX as usize, "col count must fit in u32");
        Self { nrows, ncols, entries: Vec::new() }
    }

    /// Create with pre-reserved capacity for `nnz` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        let mut t = Self::new(nrows, ncols);
        t.entries.reserve(nnz);
        t
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of (possibly duplicated) entries pushed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries have been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record entry `(i, j)`. Duplicates are allowed and removed at
    /// [`Self::into_csr`] time.
    ///
    /// # Panics
    /// If `i` or `j` is out of bounds.
    #[inline]
    pub fn push(&mut self, i: usize, j: usize) {
        assert!(i < self.nrows, "row {i} out of bounds ({} rows)", self.nrows);
        assert!(j < self.ncols, "col {j} out of bounds ({} cols)", self.ncols);
        self.entries.push((i as VertexId, j as VertexId));
    }

    /// Access the raw entry list.
    #[inline]
    pub fn entries(&self) -> &[(VertexId, VertexId)] {
        &self.entries
    }

    /// Finalize into CSR form: counting sort by row, then per-row sort by
    /// column and deduplication. Runs in `O(nnz + nrows)`(+ per-row sort).
    pub fn into_csr(self) -> Csr {
        let Self { nrows, ncols, mut entries } = self;
        // Sort lexicographically by (row, col). For the sizes we build
        // (≤ ~10^8 entries) the pattern-defeating quicksort in std is close to
        // a counting sort in practice and far simpler.
        entries.sort_unstable();
        entries.dedup();

        let mut row_ptr = vec![0usize; nrows + 1];
        for &(i, _) in &entries {
            row_ptr[i as usize + 1] += 1;
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx: Vec<VertexId> = entries.iter().map(|&(_, j)| j).collect();
        Csr::from_parts(nrows, ncols, row_ptr, col_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_deduped_csr() {
        let mut t = TripletMatrix::new(3, 4);
        t.push(2, 1);
        t.push(0, 3);
        t.push(0, 0);
        t.push(2, 1); // duplicate
        t.push(1, 2);
        let a = t.into_csr();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 4);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.row(0), &[0, 3]);
        assert_eq!(a.row(1), &[2]);
        assert_eq!(a.row(2), &[1]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let mut t = TripletMatrix::new(4, 4);
        t.push(3, 0);
        let a = t.into_csr();
        assert_eq!(a.row(0), &[] as &[VertexId]);
        assert_eq!(a.row(1), &[] as &[VertexId]);
        assert_eq!(a.row(2), &[] as &[VertexId]);
        assert_eq!(a.row(3), &[0]);
    }

    #[test]
    fn wholly_empty_matrix() {
        let t = TripletMatrix::new(2, 3);
        let a = t.into_csr();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 3);
    }

    #[test]
    #[should_panic(expected = "row 5 out of bounds")]
    fn row_bound_checked() {
        let mut t = TripletMatrix::new(5, 5);
        t.push(5, 0);
    }

    #[test]
    #[should_panic(expected = "col 9 out of bounds")]
    fn col_bound_checked() {
        let mut t = TripletMatrix::new(5, 5);
        t.push(0, 9);
    }
}
