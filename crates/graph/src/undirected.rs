//! Undirected (general, non-bipartite) graphs and matchings.
//!
//! The paper's conclusion (§5) announces "variants of the proposed
//! heuristics for finding approximate matchings in undirected graphs. The
//! algorithms and results extend naturally". This module provides the
//! substrate for that extension: a symmetric-pattern graph type and a
//! single-sided matching, mirroring [`crate::bipartite`] /
//! [`crate::matching`].

use crate::csr::Csr;
use crate::{VertexId, NIL};

/// An undirected graph stored as a symmetric CSR pattern with an empty
/// diagonal (no self-loops — a vertex cannot match itself).
#[derive(Clone, Debug)]
pub struct UndirectedGraph {
    adj: Csr,
}

impl UndirectedGraph {
    /// Build from a symmetric, zero-diagonal CSR pattern.
    ///
    /// # Panics
    /// If the pattern is not square, not symmetric, or has diagonal
    /// entries.
    pub fn from_symmetric_csr(adj: Csr) -> Self {
        assert!(adj.is_square(), "undirected graphs need a square pattern");
        assert!(adj.is_transpose_of(&adj), "undirected graphs need a symmetric pattern");
        for v in 0..adj.nrows() {
            assert!(!adj.contains(v, v), "self-loop at vertex {v}: matchings cannot use them");
        }
        Self { adj }
    }

    /// Build from an arbitrary edge list, symmetrizing and dropping
    /// self-loops.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut t = crate::triplet::TripletMatrix::with_capacity(n, n, 2 * edges.len());
        for &(u, v) in edges {
            if u != v {
                t.push(u, v);
                t.push(v, u);
            }
        }
        Self { adj: t.into_csr() }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.nrows()
    }

    /// Number of undirected edges (half the stored entries).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adj.nnz() / 2
    }

    /// Neighbours of `v`, sorted.
    #[inline]
    pub fn adj(&self, v: usize) -> &[VertexId] {
        self.adj.row(v)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj.row_degree(v)
    }

    /// The underlying symmetric CSR.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.adj
    }

    /// Edge membership.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.contains(u, v)
    }

    /// Iterate over edges with `u < v`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj.iter_entries().filter(|&(u, v)| u < v)
    }
}

/// A matching in an undirected graph: `mate[v]` is `v`'s partner or [`NIL`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UndirectedMatching {
    mate: Vec<VertexId>,
}

impl UndirectedMatching {
    /// Empty matching over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self { mate: vec![NIL; n] }
    }

    /// Build from a mate array (must be an involution; checked).
    ///
    /// # Panics
    /// If `mate` is not symmetric (`mate[mate[v]] == v`).
    pub fn from_mates(mate: Vec<VertexId>) -> Self {
        let m = Self { mate };
        m.check_consistent().expect("mate array must be an involution");
        m
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.mate.len()
    }

    /// Partner of `v`, or [`NIL`].
    #[inline]
    pub fn mate(&self, v: usize) -> VertexId {
        self.mate[v]
    }

    /// Raw mate array.
    #[inline]
    pub fn mates(&self) -> &[VertexId] {
        &self.mate
    }

    /// True if `v` is matched.
    #[inline]
    pub fn is_matched(&self, v: usize) -> bool {
        self.mate[v] != NIL
    }

    /// Match `u` with `v`, unmatching previous partners.
    pub fn set(&mut self, u: usize, v: usize) {
        assert_ne!(u, v, "cannot match a vertex with itself");
        let old_u = self.mate[u];
        if old_u != NIL {
            self.mate[old_u as usize] = NIL;
        }
        let old_v = self.mate[v];
        if old_v != NIL {
            self.mate[old_v as usize] = NIL;
        }
        self.mate[u] = v as VertexId;
        self.mate[v] = u as VertexId;
    }

    /// Number of matched pairs.
    pub fn cardinality(&self) -> usize {
        self.mate.iter().filter(|&&m| m != NIL).count() / 2
    }

    /// Matched pairs with `u < v`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.mate
            .iter()
            .enumerate()
            .filter(|&(v, &m)| m != NIL && v < m as usize)
            .map(|(v, &m)| (v, m as usize))
    }

    /// Check the involution property.
    pub fn check_consistent(&self) -> Result<(), String> {
        for (v, &m) in self.mate.iter().enumerate() {
            if m == NIL {
                continue;
            }
            let m = m as usize;
            if m >= self.mate.len() {
                return Err(format!("mate[{v}] = {m} out of bounds"));
            }
            if m == v {
                return Err(format!("vertex {v} matched with itself"));
            }
            if self.mate[m] != v as VertexId {
                return Err(format!("mate[{v}] = {m} but mate[{m}] = {}", self.mate[m]));
            }
        }
        Ok(())
    }

    /// Full validation: consistency plus every pair being an edge.
    pub fn verify(&self, g: &UndirectedGraph) -> Result<(), String> {
        assert_eq!(self.n(), g.n());
        self.check_consistent()?;
        for (u, v) in self.iter_pairs() {
            if !g.has_edge(u, v) {
                return Err(format!("matched pair ({u}, {v}) is not an edge"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> UndirectedGraph {
        UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn from_edges_symmetrizes() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.degree(1), 2);
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn self_loops_dropped() {
        let g = UndirectedGraph::from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        let csr = Csr::from_dense(&[&[0, 1], &[0, 0]]);
        let _ = UndirectedGraph::from_symmetric_csr(csr);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn diagonal_rejected() {
        let csr = Csr::from_dense(&[&[1, 1], &[1, 0]]);
        let _ = UndirectedGraph::from_symmetric_csr(csr);
    }

    #[test]
    fn matching_set_and_cardinality() {
        let mut m = UndirectedMatching::new(4);
        m.set(0, 2);
        m.set(1, 3);
        assert_eq!(m.cardinality(), 2);
        assert_eq!(m.mate(2), 0);
        m.check_consistent().unwrap();
        // Re-matching breaks old pairs cleanly.
        m.set(0, 1);
        assert_eq!(m.cardinality(), 1);
        assert!(!m.is_matched(2));
        assert!(!m.is_matched(3));
        m.check_consistent().unwrap();
    }

    #[test]
    fn verify_against_graph() {
        let g = triangle();
        let mut m = UndirectedMatching::new(3);
        m.set(0, 1);
        m.verify(&g).unwrap();
        let mut bad = UndirectedMatching::new(3);
        bad.set(0, 1);
        let g2 = UndirectedGraph::from_edges(3, &[(1, 2)]);
        assert!(bad.verify(&g2).is_err());
    }

    #[test]
    fn involution_checked() {
        assert!(UndirectedMatching { mate: vec![1, NIL] }.check_consistent().is_err());
        assert!(UndirectedMatching { mate: vec![0, NIL] }.check_consistent().is_err());
        assert!(UndirectedMatching { mate: vec![1, 0] }.check_consistent().is_ok());
    }
}
