//! Matching representation and validation.
//!
//! A matching is stored as two mate arrays — `rmate[i]` is the column matched
//! to row `i` (or [`NIL`]), `cmate[j]` the row matched to column `j` — the
//! same representation as the paper's `match[·]` array split by side.
//!
//! [`Matching::verify`] checks the two structural properties every algorithm
//! in the workspace must preserve: mutual consistency of the two arrays, and
//! that each matched pair is an actual edge of the graph. Tests throughout
//! the workspace call it after every heuristic and exact run.

use crate::bipartite::BipartiteGraph;
use crate::{VertexId, NIL};

/// A (partial) matching of a bipartite graph.
///
/// ```
/// use dsmatch_graph::{BipartiteGraph, Csr, Matching};
///
/// let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1], &[1, 0]]));
/// let mut m = Matching::new(2, 2);
/// m.set(0, 1);
/// m.set(1, 0);
/// m.verify(&g).unwrap();
/// assert!(m.is_perfect());
/// assert_eq!(m.quality(2), 1.0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    rmate: Vec<VertexId>,
    cmate: Vec<VertexId>,
}

/// Errors found by [`Matching::verify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchingError {
    /// `rmate[row] = col` but `cmate[col] != row`.
    InconsistentPair {
        /// Offending row vertex.
        row: usize,
        /// Column it claims.
        col: usize,
        /// What the column claims back.
        cmate_of_col: VertexId,
    },
    /// A matched pair is not an edge of the graph.
    NotAnEdge {
        /// Row endpoint.
        row: usize,
        /// Column endpoint.
        col: usize,
    },
    /// A mate index is out of bounds.
    OutOfBounds {
        /// `true` when the offending array is `rmate`.
        on_row_side: bool,
        /// Index holding the bad value.
        index: usize,
        /// The out-of-range value.
        value: VertexId,
    },
}

impl std::fmt::Display for MatchingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchingError::InconsistentPair { row, col, cmate_of_col } => {
                write!(f, "rmate[{row}] = {col} but cmate[{col}] = {cmate_of_col}")
            }
            MatchingError::NotAnEdge { row, col } => {
                write!(f, "matched pair ({row}, {col}) is not an edge")
            }
            MatchingError::OutOfBounds { on_row_side, index, value } => write!(
                f,
                "{}mate[{index}] = {value} is out of bounds",
                if *on_row_side { "r" } else { "c" }
            ),
        }
    }
}

impl std::error::Error for MatchingError {}

impl Matching {
    /// An empty matching for an `nrows × ncols` graph.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self { rmate: vec![NIL; nrows], cmate: vec![NIL; ncols] }
    }

    /// Build from both mate arrays (must already be mutually consistent;
    /// verified in debug builds).
    pub fn from_mates(rmate: Vec<VertexId>, cmate: Vec<VertexId>) -> Self {
        let m = Self { rmate, cmate };
        debug_assert!(m.check_consistent().is_ok());
        m
    }

    /// Build from a `cmate`-only array (the output shape of the paper's
    /// `OneSidedMatch`, Algorithm 2): `cmate[j]` is the row that won column
    /// `j`, or `NIL`. The row-side array is reconstructed.
    ///
    /// If several columns claim the same row (cannot happen in Algorithm 2,
    /// where each row picks one column, but can in hand-built inputs), the
    /// first-seen pair wins and later claims are dropped.
    pub fn from_cmate(cmate: Vec<VertexId>, nrows: usize) -> Self {
        let mut rmate = vec![NIL; nrows];
        let mut cmate = cmate;
        for j in 0..cmate.len() {
            let i = cmate[j];
            if i != NIL {
                if rmate[i as usize] == NIL {
                    rmate[i as usize] = j as VertexId;
                } else {
                    cmate[j] = NIL; // row already taken by an earlier column
                }
            }
        }
        Self { rmate, cmate }
    }

    /// Number of row vertices.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rmate.len()
    }

    /// Number of column vertices.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cmate.len()
    }

    /// Mate of row `i`, or [`NIL`].
    #[inline]
    pub fn rmate(&self, i: usize) -> VertexId {
        self.rmate[i]
    }

    /// Mate of column `j`, or [`NIL`].
    #[inline]
    pub fn cmate(&self, j: usize) -> VertexId {
        self.cmate[j]
    }

    /// The row-side mate array.
    #[inline]
    pub fn rmates(&self) -> &[VertexId] {
        &self.rmate
    }

    /// The column-side mate array.
    #[inline]
    pub fn cmates(&self) -> &[VertexId] {
        &self.cmate
    }

    /// Match row `i` with column `j`, unmatching any previous partners.
    pub fn set(&mut self, i: usize, j: usize) {
        let old_c = self.rmate[i];
        if old_c != NIL {
            self.cmate[old_c as usize] = NIL;
        }
        let old_r = self.cmate[j];
        if old_r != NIL {
            self.rmate[old_r as usize] = NIL;
        }
        self.rmate[i] = j as VertexId;
        self.cmate[j] = i as VertexId;
    }

    /// True if row `i` is matched.
    #[inline]
    pub fn is_row_matched(&self, i: usize) -> bool {
        self.rmate[i] != NIL
    }

    /// True if column `j` is matched.
    #[inline]
    pub fn is_col_matched(&self, j: usize) -> bool {
        self.cmate[j] != NIL
    }

    /// Cardinality `|M|` (number of matched pairs).
    pub fn cardinality(&self) -> usize {
        self.rmate.iter().filter(|&&c| c != NIL).count()
    }

    /// True when every vertex of both sides is matched (requires a square
    /// graph).
    pub fn is_perfect(&self) -> bool {
        self.rmate.iter().all(|&c| c != NIL) && self.cmate.iter().all(|&r| r != NIL)
    }

    /// Iterate over matched `(row, col)` pairs.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rmate.iter().enumerate().filter(|(_, &c)| c != NIL).map(|(i, &c)| (i, c as usize))
    }

    /// Check mutual consistency of the two mate arrays (no graph needed).
    pub fn check_consistent(&self) -> Result<(), MatchingError> {
        for (i, &c) in self.rmate.iter().enumerate() {
            if c == NIL {
                continue;
            }
            if c as usize >= self.cmate.len() {
                return Err(MatchingError::OutOfBounds { on_row_side: true, index: i, value: c });
            }
            let back = self.cmate[c as usize];
            if back != i as VertexId {
                return Err(MatchingError::InconsistentPair {
                    row: i,
                    col: c as usize,
                    cmate_of_col: back,
                });
            }
        }
        for (j, &r) in self.cmate.iter().enumerate() {
            if r == NIL {
                continue;
            }
            if r as usize >= self.rmate.len() {
                return Err(MatchingError::OutOfBounds { on_row_side: false, index: j, value: r });
            }
            let back = self.rmate[r as usize];
            if back != j as VertexId {
                return Err(MatchingError::InconsistentPair {
                    row: r as usize,
                    col: j,
                    cmate_of_col: r,
                });
            }
        }
        Ok(())
    }

    /// Full validation against a graph: consistency plus every matched pair
    /// being an edge.
    pub fn verify(&self, g: &BipartiteGraph) -> Result<(), MatchingError> {
        assert_eq!(self.nrows(), g.nrows());
        assert_eq!(self.ncols(), g.ncols());
        self.check_consistent()?;
        for (i, j) in self.iter_pairs() {
            if !g.csr().contains(i, j) {
                return Err(MatchingError::NotAnEdge { row: i, col: j });
            }
        }
        Ok(())
    }

    /// Quality ratio `|M| / opt`, the measure reported throughout §4 of the
    /// paper.
    pub fn quality(&self, opt: usize) -> f64 {
        if opt == 0 {
            1.0
        } else {
            self.cardinality() as f64 / opt as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    fn g() -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1, 0], &[0, 0, 1], &[1, 0, 1]]))
    }

    #[test]
    fn set_and_cardinality() {
        let mut m = Matching::new(3, 3);
        assert_eq!(m.cardinality(), 0);
        m.set(0, 1);
        m.set(1, 2);
        assert_eq!(m.cardinality(), 2);
        assert!(m.is_row_matched(0));
        assert!(m.is_col_matched(2));
        assert!(!m.is_row_matched(2));
        m.verify(&g()).unwrap();
    }

    #[test]
    fn set_overwrites_cleanly() {
        let mut m = Matching::new(3, 3);
        m.set(0, 1);
        m.set(0, 0); // row 0 re-matched to col 0
        assert_eq!(m.rmate(0), 0);
        assert_eq!(m.cmate(1), NIL);
        assert_eq!(m.cardinality(), 1);
        m.check_consistent().unwrap();
        // steal a column
        m.set(2, 0);
        assert_eq!(m.rmate(0), NIL);
        assert_eq!(m.cmate(0), 2);
        m.check_consistent().unwrap();
    }

    #[test]
    fn from_cmate_reconstructs() {
        // Columns 0 and 2 claimed by rows 2 and 1.
        let m = Matching::from_cmate(vec![2, NIL, 1], 3);
        assert_eq!(m.cardinality(), 2);
        assert_eq!(m.rmate(2), 0);
        assert_eq!(m.rmate(1), 2);
        m.verify(&g()).unwrap();
    }

    #[test]
    fn from_cmate_drops_duplicate_row_claims() {
        // Both columns claim row 0; only the first survives.
        let m = Matching::from_cmate(vec![0, 0], 1);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.cmate(0), 0);
        assert_eq!(m.cmate(1), NIL);
        m.check_consistent().unwrap();
    }

    #[test]
    fn verify_rejects_non_edges() {
        let mut m = Matching::new(3, 3);
        m.set(1, 0); // (1,0) is not an edge of `g`
        assert_eq!(m.verify(&g()), Err(MatchingError::NotAnEdge { row: 1, col: 0 }));
    }

    #[test]
    fn consistency_detects_mismatch() {
        let m = Matching { rmate: vec![1, NIL], cmate: vec![NIL, 1] };
        assert!(matches!(
            m.check_consistent(),
            Err(MatchingError::InconsistentPair { row: 0, col: 1, .. })
        ));
    }

    #[test]
    fn perfect_matching_detection() {
        let mut m = Matching::new(2, 2);
        m.set(0, 1);
        assert!(!m.is_perfect());
        m.set(1, 0);
        assert!(m.is_perfect());
        assert_eq!(m.quality(2), 1.0);
    }

    #[test]
    fn quality_zero_opt() {
        let m = Matching::new(0, 0);
        assert_eq!(m.quality(0), 1.0);
    }

    #[test]
    fn iter_pairs_matches_cardinality() {
        let mut m = Matching::new(4, 4);
        m.set(3, 1);
        m.set(0, 2);
        let pairs: Vec<_> = m.iter_pairs().collect();
        assert_eq!(pairs, vec![(0, 2), (3, 1)]);
        assert_eq!(pairs.len(), m.cardinality());
    }
}
