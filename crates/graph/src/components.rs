//! Connected components and cycle counting.
//!
//! Lemma 1 of the paper states that every connected component of the subgraph
//! `G` sampled by `TwoSidedMatch` (the union of one out-edge per row and one
//! out-edge per column) contains **at most one simple cycle** — this is what
//! makes Karp–Sipser exact on `G`. The [`choice_graph_components`] helper
//! computes, for such a graph given only the two choice arrays, the vertex
//! and edge count of every component, so tests can assert
//! `edges ≤ vertices` per component (a connected graph with `v` vertices and
//! `v-1+c` edges has exactly `c` independent cycles).
//!
//! A generic disjoint-set (union–find) structure and plain BFS components on
//! a [`BipartiteGraph`] are also provided.

use crate::bipartite::BipartiteGraph;
use crate::{VertexId, NIL};

/// Disjoint-set forest with union by size and path halving.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    count: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n], count: n }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.count -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    #[inline]
    pub fn set_count(&self) -> usize {
        self.count
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

/// Summary of one connected component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComponentStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of (undirected, distinct) edges.
    pub edges: usize,
}

impl ComponentStats {
    /// Number of independent cycles: `edges - vertices + 1` for a connected
    /// component (0 for a tree).
    pub fn cycle_count(&self) -> usize {
        debug_assert!(self.edges + 1 >= self.vertices);
        self.edges + 1 - self.vertices
    }
}

/// Component statistics of the `TwoSidedMatch` subgraph given the two choice
/// arrays (`rchoice[i] ∈ [0, ncols)`, `cchoice[j] ∈ [0, nrows)`).
///
/// Vertices are numbered rows `0..n_r`, columns `n_r..n_r+n_c`. A mutual
/// choice (`rchoice[i] = j` and `cchoice[j] = i`) is a single edge, exactly
/// as in line 8 of the paper's Algorithm 3.
pub fn choice_graph_components(rchoice: &[VertexId], cchoice: &[VertexId]) -> Vec<ComponentStats> {
    let n_r = rchoice.len();
    let n_c = cchoice.len();
    let total = n_r + n_c;
    let mut uf = UnionFind::new(total);
    // Count distinct edges per component root at the end; first collect the
    // distinct edge list.
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(total);
    for (i, &j) in rchoice.iter().enumerate() {
        if j == NIL {
            continue; // empty adjacency (sprank-deficient input)
        }
        debug_assert!((j as usize) < n_c);
        edges.push((i, n_r + j as usize));
    }
    for (j, &i) in cchoice.iter().enumerate() {
        if i == NIL {
            continue;
        }
        debug_assert!((i as usize) < n_r);
        // Skip the duplicate of a mutual choice.
        if rchoice[i as usize] != j as VertexId {
            edges.push((i as usize, n_r + j));
        }
    }
    for &(a, b) in &edges {
        uf.union(a, b);
    }
    // Aggregate per root.
    let mut root_of = vec![0u32; total];
    for v in 0..total {
        root_of[v] = uf.find(v) as u32;
    }
    let mut vcount = vec![0usize; total];
    let mut ecount = vec![0usize; total];
    for v in 0..total {
        vcount[root_of[v] as usize] += 1;
    }
    for &(a, _) in &edges {
        ecount[root_of[a] as usize] += 1;
    }
    (0..total)
        .filter(|&v| root_of[v] as usize == v)
        .map(|v| ComponentStats { vertices: vcount[v], edges: ecount[v] })
        .collect()
}

/// Connected components of a general bipartite graph via BFS.
///
/// Returns `(labels_rows, labels_cols, component_count)`; isolated vertices
/// get their own components. Labels are in `0..count`.
pub fn connected_components(g: &BipartiteGraph) -> (Vec<u32>, Vec<u32>, usize) {
    let (n_r, n_c) = (g.nrows(), g.ncols());
    let mut lr = vec![NIL; n_r];
    let mut lc = vec![NIL; n_c];
    let mut next = 0u32;
    let mut queue: Vec<(bool, usize)> = Vec::new();
    for start in 0..n_r {
        if lr[start] != NIL {
            continue;
        }
        lr[start] = next;
        queue.push((true, start));
        while let Some((is_row, v)) = queue.pop() {
            if is_row {
                for &j in g.row_adj(v) {
                    let j = j as usize;
                    if lc[j] == NIL {
                        lc[j] = next;
                        queue.push((false, j));
                    }
                }
            } else {
                for &i in g.col_adj(v) {
                    let i = i as usize;
                    if lr[i] == NIL {
                        lr[i] = next;
                        queue.push((true, i));
                    }
                }
            }
        }
        next += 1;
    }
    for j in 0..n_c {
        if lc[j] == NIL {
            lc[j] = next;
            next += 1;
        }
    }
    (lr, lc, next as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.size_of(2), 3);
        assert_eq!(uf.size_of(3), 1);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(4));
    }

    #[test]
    fn choice_components_mutual_pair_is_single_edge() {
        // 1 row, 1 col choosing each other: one component, 2 vertices, 1 edge,
        // zero cycles (a 2-clique in the paper's terminology is the cycle
        // case handled by Phase 2, structurally it is a single edge).
        let stats = choice_graph_components(&[0], &[0]);
        assert_eq!(stats, vec![ComponentStats { vertices: 2, edges: 1 }]);
        assert_eq!(stats[0].cycle_count(), 0);
    }

    #[test]
    fn choice_components_four_cycle() {
        // rows 0,1; cols 0,1. r0→c0, r1→c1, c0→r1, c1→r0: a 4-cycle.
        let stats = choice_graph_components(&[0, 1], &[1, 0]);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0], ComponentStats { vertices: 4, edges: 4 });
        assert_eq!(stats[0].cycle_count(), 1);
    }

    #[test]
    fn choice_components_skip_nil() {
        // Row 0 chooses nothing; column 0 chooses row 0: a single edge.
        let stats = choice_graph_components(&[NIL], &[0]);
        assert_eq!(stats, vec![ComponentStats { vertices: 2, edges: 1 }]);
        // Everything NIL: two isolated vertices.
        let stats = choice_graph_components(&[NIL], &[NIL]);
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.edges == 0 && s.vertices == 1));
    }

    #[test]
    fn choice_components_never_exceed_one_cycle() {
        // Lemma 1 check on a brute-forced ensemble of random choice arrays.
        let mut rng = crate::rng::SplitMix64::new(123);
        for n in [1usize, 2, 3, 5, 8, 13] {
            for _ in 0..200 {
                let rchoice: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
                let cchoice: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
                for s in choice_graph_components(&rchoice, &cchoice) {
                    assert!(s.cycle_count() <= 1, "Lemma 1 violated: {s:?} (n = {n})");
                }
            }
        }
    }

    #[test]
    fn bfs_components_on_two_blocks() {
        // Block diagonal: rows {0,1} × cols {0,1} and rows {2} × cols {2}.
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1, 0], &[1, 0, 0], &[0, 0, 1]]));
        let (lr, lc, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(lr[0], lr[1]);
        assert_eq!(lr[0], lc[0]);
        assert_eq!(lr[0], lc[1]);
        assert_ne!(lr[0], lr[2]);
        assert_eq!(lr[2], lc[2]);
    }

    #[test]
    fn bfs_components_isolated_column() {
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 0]]));
        let (lr, lc, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(lr[0], lc[0]);
        assert_ne!(lc[1], lc[0]);
    }
}
