//! Matrix Market exchange format I/O (pattern matrices).
//!
//! The paper's experiments read matrices from the UFL (SuiteSparse)
//! collection, which ships in Matrix Market format. Our harness generates
//! surrogate instances instead (see `dsmatch-gen`), but the reader/writer
//! lets downstream users run every binary on real collection files, and the
//! workspace's integration tests round-trip through it.
//!
//! Supported header: `%%MatrixMarket matrix coordinate <field> <symmetry>`
//! with `field ∈ {pattern, real, integer}` (values are discarded — the
//! algorithms are defined on the nonzero pattern) and
//! `symmetry ∈ {general, symmetric}`.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::csr::Csr;
use crate::triplet::TripletMatrix;

/// Errors produced by the Matrix Market reader.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Read a pattern matrix from a Matrix Market stream.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Csr, MmError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() < 5 || !tokens[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(parse_err(format!("bad header line: {header:?}")));
    }
    if !tokens[1].eq_ignore_ascii_case("matrix") || !tokens[2].eq_ignore_ascii_case("coordinate") {
        return Err(parse_err("only `matrix coordinate` objects are supported"));
    }
    let field = tokens[3].to_ascii_lowercase();
    let has_values = match field.as_str() {
        "pattern" => false,
        "real" | "integer" => true,
        other => return Err(parse_err(format!("unsupported field {other:?}"))),
    };
    let symmetry = tokens[4].to_ascii_lowercase();
    let symmetric = match symmetry.as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry {other:?}"))),
    };

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines.next().ok_or_else(|| parse_err("missing size line"))??;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|_| parse_err(format!("bad size token {t:?}"))))
        .collect::<Result<_, _>>()?;
    let [nrows, ncols, nnz] = dims[..] else {
        return Err(parse_err(format!("size line must have 3 fields: {size_line:?}")));
    };

    let mut t = TripletMatrix::with_capacity(nrows, ncols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|_| parse_err(format!("bad row index in {trimmed:?}")))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err("missing col index"))?
            .parse()
            .map_err(|_| parse_err(format!("bad col index in {trimmed:?}")))?;
        if has_values && it.next().is_none() {
            return Err(parse_err(format!("missing value in {trimmed:?}")));
        }
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!("entry ({i}, {j}) out of 1-based bounds")));
        }
        t.push(i - 1, j - 1);
        if symmetric && i != j {
            t.push(j - 1, i - 1);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("size line promised {nnz} entries, found {seen}")));
    }
    Ok(t.into_csr())
}

/// Read a pattern matrix from a Matrix Market file on disk.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<Csr, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write a pattern matrix in `coordinate pattern general` format.
pub fn write_matrix_market<W: Write>(mut w: W, a: &Csr) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(w, "% written by dsmatch")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (i, j) in a.iter_entries() {
        writeln!(w, "{} {}", i + 1, j + 1)?;
    }
    Ok(())
}

/// Write a pattern matrix to a file.
pub fn write_matrix_market_file(path: impl AsRef<Path>, a: &Csr) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_matrix_market(std::io::BufWriter::new(f), a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_general_pattern() {
        let a = Csr::from_dense(&[&[1, 0, 1], &[0, 1, 0]]);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reads_real_values_as_pattern() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % comment\n\
                    2 2 3\n\
                    1 1 3.5\n\
                    2 1 -1e3\n\
                    2 2 0.25\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 3);
        assert!(a.contains(0, 0));
        assert!(a.contains(1, 0));
        assert!(a.contains(1, 1));
    }

    #[test]
    fn expands_symmetric_storage() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n\
                    2 1\n\
                    3 3\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert!(a.contains(1, 0));
        assert!(a.contains(0, 1)); // mirrored
        assert!(a.contains(2, 2)); // diagonal not duplicated
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn rejects_truncated_file() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(matches!(err, MmError::Parse(_)), "{err}");
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_header() {
        let text = "%%NotMatrixMarket nope\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let a = Csr::from_dense(&[&[0, 1], &[1, 1]]);
        let dir = std::env::temp_dir().join("dsmatch_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        write_matrix_market_file(&path, &a).unwrap();
        let b = read_matrix_market_file(&path).unwrap();
        assert_eq!(a, b);
    }
}
