//! Property tests for the graph substrate.

use dsmatch_graph::components::{choice_graph_components, connected_components, UnionFind};
use dsmatch_graph::{BipartiteGraph, Matching, TripletMatrix, NIL};
use proptest::prelude::*;

fn arb_triplets() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize)>)> {
    (1usize..12, 1usize..12).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m, 0..n), 0..40).prop_map(move |entries| (m, n, entries))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn csr_construction_preserves_entries((m, n, entries) in arb_triplets()) {
        let mut t = TripletMatrix::new(m, n);
        for &(i, j) in &entries {
            t.push(i, j);
        }
        let a = t.into_csr();
        // Every pushed entry present; nothing else.
        for &(i, j) in &entries {
            prop_assert!(a.contains(i, j));
        }
        let mut uniq: Vec<(usize, usize)> = entries.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(a.nnz(), uniq.len());
        // Rows sorted strictly increasing.
        for i in 0..m {
            let row = a.row(i);
            for w in row.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn transpose_is_involutive_and_entrywise_correct((m, n, entries) in arb_triplets()) {
        let mut t = TripletMatrix::new(m, n);
        for &(i, j) in &entries {
            t.push(i, j);
        }
        let a = t.into_csr();
        let at = a.transpose();
        prop_assert_eq!(&at.transpose(), &a);
        prop_assert!(at.is_transpose_of(&a));
        for (i, j) in a.iter_entries() {
            prop_assert!(at.contains(j, i));
        }
        // Degree sums agree with nnz.
        let row_sum: u32 = a.row_degrees().iter().sum();
        let col_sum: u32 = a.col_degrees().iter().sum();
        prop_assert_eq!(row_sum as usize, a.nnz());
        prop_assert_eq!(col_sum as usize, a.nnz());
    }

    #[test]
    fn union_find_agrees_with_bfs_components((m, n, entries) in arb_triplets()) {
        let mut t = TripletMatrix::new(m, n);
        for &(i, j) in &entries {
            t.push(i, j);
        }
        let g = BipartiteGraph::from_csr(t.into_csr());
        // Union-find over rows ∪ cols.
        let mut uf = UnionFind::new(m + n);
        for (i, j) in g.csr().iter_entries() {
            uf.union(i, m + j);
        }
        let (lr, lc, k) = connected_components(&g);
        prop_assert_eq!(k, uf.set_count());
        // Same-component relations agree.
        for i in 0..m {
            for j in 0..n {
                let same_bfs = lr[i] == lc[j];
                let same_uf = uf.find(i) == uf.find(m + j);
                prop_assert_eq!(same_bfs, same_uf, "row {} / col {}", i, j);
            }
        }
    }

    #[test]
    fn lemma1_holds_for_arbitrary_choice_arrays(
        rc in proptest::collection::vec(proptest::option::of(0u32..10), 1..12),
        cc in proptest::collection::vec(proptest::option::of(0u32..10), 1..12),
    ) {
        let n_r = rc.len();
        let n_c = cc.len();
        let rc: Vec<u32> = rc.into_iter()
            .map(|o| o.map_or(NIL, |v| v % n_c as u32)).collect();
        let cc: Vec<u32> = cc.into_iter()
            .map(|o| o.map_or(NIL, |v| v % n_r as u32)).collect();
        let mut vertices = 0usize;
        let mut edges = 0usize;
        for s in choice_graph_components(&rc, &cc) {
            prop_assert!(s.cycle_count() <= 1, "{:?}", s);
            vertices += s.vertices;
            edges += s.edges;
        }
        prop_assert_eq!(vertices, n_r + n_c);
        prop_assert!(edges <= n_r + n_c);
    }

    #[test]
    fn matching_set_maintains_invariants(ops in proptest::collection::vec((0usize..8, 0usize..8), 0..30)) {
        let mut m = Matching::new(8, 8);
        for (i, j) in ops {
            m.set(i, j);
            m.check_consistent().unwrap();
            prop_assert_eq!(m.rmate(i), j as u32);
            prop_assert_eq!(m.cmate(j), i as u32);
        }
        prop_assert!(m.cardinality() <= 8);
    }

    #[test]
    fn matrix_market_roundtrips((m, n, entries) in arb_triplets()) {
        let mut t = TripletMatrix::new(m, n);
        for &(i, j) in &entries {
            t.push(i, j);
        }
        let a = t.into_csr();
        let mut buf = Vec::new();
        dsmatch_graph::io::write_matrix_market(&mut buf, &a).unwrap();
        let b = dsmatch_graph::io::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn splitmix_streams_are_stable(seed in any::<u64>(), idx in 0u64..1000) {
        let mut a = dsmatch_graph::SplitMix64::stream(seed, idx);
        let mut b = dsmatch_graph::SplitMix64::stream(seed, idx);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
