//! # dsmatch-dm — Dulmage–Mendelsohn decomposition
//!
//! §3.3 of the paper leans on the canonical DM decomposition to argue that
//! its heuristics behave well on matrices *without* perfect matchings: the
//! scaling iteration drives the entries of the `∗` blocks (those belonging
//! to no maximum matching) to zero, so the sampled subgraph concentrates on
//! the relevant blocks. This crate implements:
//!
//! - the **coarse** decomposition ([`dulmage_mendelsohn`]): the partition of
//!   rows and columns into the horizontal (`H`, underdetermined), square
//!   (`S`) and vertical (`V`, overdetermined) parts via alternating-path
//!   reachability from unmatched vertices;
//! - the **fine** decomposition ([`fine_decomposition`]): the strongly
//!   connected components of the square part, giving the block
//!   upper-triangular form of `S` and the total-support test;
//! - convenience predicates [`has_total_support`] and
//!   [`is_fully_indecomposable`], used by the generators' tests and the
//!   §4.1.1 quality-sweep harness to select instances matching the paper's
//!   "square, fully indecomposable" criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btf;
mod coarse;
mod fine;

pub use btf::{block_triangular_form, btf_permutation, BtfPermutation};
pub use coarse::{dulmage_mendelsohn, dulmage_mendelsohn_with, CoarsePart, DmDecomposition};
pub use fine::{fine_decomposition, FineDecomposition};

use dsmatch_graph::BipartiteGraph;

/// Does every nonzero entry belong to some maximum matching?
///
/// For a square matrix with a perfect matching this is the classical
/// *total support* property: it holds iff every edge of the square part
/// stays within a single strongly connected fine block.
pub fn has_total_support(g: &BipartiteGraph) -> bool {
    let dm = dulmage_mendelsohn(g);
    if dm.h_cols > 0 || dm.v_rows > 0 {
        // Entries inside H and V can still be in some maximum matching, but
        // entries in the off-diagonal `∗` blocks are not; the paper's usage
        // (square matrices) only needs the S-only case, so we require the
        // matrix to be entirely S.
        return false;
    }
    let fine = fine_decomposition(g, &dm);
    fine.all_edges_intra_block(g)
}

/// Square with a perfect matching and a single fine block — the matrices
/// the paper's theoretical sections assume ("fully indecomposable").
pub fn is_fully_indecomposable(g: &BipartiteGraph) -> bool {
    if !g.is_square() {
        return false;
    }
    let dm = dulmage_mendelsohn(g);
    if dm.h_cols > 0 || dm.v_rows > 0 || dm.s_rows != g.nrows() {
        return false;
    }
    let fine = fine_decomposition(g, &dm);
    fine.block_count == 1 && fine.all_edges_intra_block(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::Csr;

    #[test]
    fn ring_is_fully_indecomposable() {
        let g = dsmatch_gen::ring(8);
        assert!(is_fully_indecomposable(&g));
        assert!(has_total_support(&g));
    }

    #[test]
    fn permutation_has_total_support_but_decomposes() {
        let g = dsmatch_gen::permutation(6, 3);
        assert!(has_total_support(&g));
        // n singleton blocks → not fully indecomposable (for n > 1).
        assert!(!is_fully_indecomposable(&g));
    }

    #[test]
    fn triangular_lacks_total_support() {
        // Upper triangular 3×3: unique perfect matching (diagonal); the
        // off-diagonal entries are in no perfect matching.
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1, 1], &[0, 1, 1], &[0, 0, 1]]));
        assert!(!has_total_support(&g));
        assert!(!is_fully_indecomposable(&g));
    }

    #[test]
    fn rectangular_not_fully_indecomposable() {
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1, 1]]));
        assert!(!is_fully_indecomposable(&g));
    }
}
