//! Coarse Dulmage–Mendelsohn decomposition.
//!
//! Given a maximum matching `M`:
//!
//! - the **horizontal** part `H` is everything reachable from unmatched
//!   *columns* by alternating paths (column → row through any edge,
//!   row → column through its matching edge);
//! - the **vertical** part `V` is everything reachable from unmatched
//!   *rows* by alternating paths (row → column through any edge,
//!   column → row through its matching edge);
//! - the **square** part `S` is the remainder, which `M` matches perfectly.
//!
//! `H` and `V` are disjoint (an intersection would expose an augmenting
//! path, contradicting maximality), every row of `H` and every column of
//! `V` is matched, and the partition is independent of which maximum
//! matching is used — all properties checked by the tests below.

use dsmatch_exact::hopcroft_karp;
use dsmatch_graph::{BipartiteGraph, Matching, NIL};

/// Which coarse block a vertex belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoarsePart {
    /// Underdetermined part (more columns than rows).
    Horizontal,
    /// Perfectly matched square part.
    Square,
    /// Overdetermined part (more rows than columns).
    Vertical,
}

/// The coarse decomposition.
#[derive(Clone, Debug)]
pub struct DmDecomposition {
    /// Block of each row vertex.
    pub row_part: Vec<CoarsePart>,
    /// Block of each column vertex.
    pub col_part: Vec<CoarsePart>,
    /// The maximum matching the decomposition was derived from.
    pub matching: Matching,
    /// Rows in `H` (all matched).
    pub h_rows: usize,
    /// Columns in `H` (includes every unmatched column).
    pub h_cols: usize,
    /// Rows in `S`.
    pub s_rows: usize,
    /// Columns in `S` (equals `s_rows`).
    pub s_cols: usize,
    /// Rows in `V` (includes every unmatched row).
    pub v_rows: usize,
    /// Columns in `V` (all matched).
    pub v_cols: usize,
}

/// Compute the coarse DM decomposition, finding a maximum matching with
/// Hopcroft–Karp first.
///
/// ```
/// use dsmatch_dm::dulmage_mendelsohn;
/// use dsmatch_graph::{BipartiteGraph, Csr};
///
/// // Two rows competing for one column: a vertical (overdetermined) part.
/// let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1], &[1]]));
/// let dm = dulmage_mendelsohn(&g);
/// assert_eq!(dm.v_rows, 2);
/// assert_eq!(dm.v_cols, 1);
/// assert_eq!(dm.sprank(), 1);
/// ```
pub fn dulmage_mendelsohn(g: &BipartiteGraph) -> DmDecomposition {
    dulmage_mendelsohn_with(g, hopcroft_karp(g))
}

/// Compute the coarse DM decomposition from a **maximum** matching.
///
/// # Panics
/// If `matching` is invalid for `g`. (If it is valid but not maximum the
/// partition produced is meaningless; debug builds detect the telltale
/// H ∩ V overlap and panic.)
pub fn dulmage_mendelsohn_with(g: &BipartiteGraph, matching: Matching) -> DmDecomposition {
    matching.verify(g).expect("DM requires a valid matching");
    let n_r = g.nrows();
    let n_c = g.ncols();

    let mut row_h = vec![false; n_r];
    let mut col_h = vec![false; n_c];
    // BFS from unmatched columns: col --any edge--> row --matching--> col.
    let mut queue: Vec<u32> =
        (0..n_c as u32).filter(|&j| matching.cmate(j as usize) == NIL).collect();
    for &j in &queue {
        col_h[j as usize] = true;
    }
    let mut head = 0;
    while head < queue.len() {
        let j = queue[head] as usize;
        head += 1;
        for &i in g.col_adj(j) {
            let i = i as usize;
            if row_h[i] {
                continue;
            }
            row_h[i] = true;
            let jm = matching.rmate(i);
            debug_assert_ne!(jm, NIL, "H-row must be matched if the matching is maximum");
            if jm != NIL && !col_h[jm as usize] {
                col_h[jm as usize] = true;
                queue.push(jm);
            }
        }
    }

    let mut row_v = vec![false; n_r];
    let mut col_v = vec![false; n_c];
    // BFS from unmatched rows: row --any edge--> col --matching--> row.
    let mut queue: Vec<u32> =
        (0..n_r as u32).filter(|&i| matching.rmate(i as usize) == NIL).collect();
    for &i in &queue {
        row_v[i as usize] = true;
    }
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head] as usize;
        head += 1;
        for &j in g.row_adj(i) {
            let j = j as usize;
            if col_v[j] {
                continue;
            }
            col_v[j] = true;
            let im = matching.cmate(j);
            debug_assert_ne!(im, NIL, "V-column must be matched if the matching is maximum");
            if im != NIL && !row_v[im as usize] {
                row_v[im as usize] = true;
                queue.push(im);
            }
        }
    }

    let mut row_part = Vec::with_capacity(n_r);
    for i in 0..n_r {
        debug_assert!(!(row_h[i] && row_v[i]), "H ∩ V non-empty: matching was not maximum");
        row_part.push(if row_h[i] {
            CoarsePart::Horizontal
        } else if row_v[i] {
            CoarsePart::Vertical
        } else {
            CoarsePart::Square
        });
    }
    let mut col_part = Vec::with_capacity(n_c);
    for j in 0..n_c {
        debug_assert!(!(col_h[j] && col_v[j]), "H ∩ V non-empty on columns");
        col_part.push(if col_h[j] {
            CoarsePart::Horizontal
        } else if col_v[j] {
            CoarsePart::Vertical
        } else {
            CoarsePart::Square
        });
    }

    let count = |parts: &[CoarsePart], p: CoarsePart| parts.iter().filter(|&&x| x == p).count();
    DmDecomposition {
        h_rows: count(&row_part, CoarsePart::Horizontal),
        h_cols: count(&col_part, CoarsePart::Horizontal),
        s_rows: count(&row_part, CoarsePart::Square),
        s_cols: count(&col_part, CoarsePart::Square),
        v_rows: count(&row_part, CoarsePart::Vertical),
        v_cols: count(&col_part, CoarsePart::Vertical),
        row_part,
        col_part,
        matching,
    }
}

impl DmDecomposition {
    /// Maximum matching cardinality implied by the partition:
    /// `h_rows + s_rows + v_cols` (König-style count).
    pub fn sprank(&self) -> usize {
        self.h_rows + self.s_rows + self.v_cols
    }

    /// Check the zero-block structure: no edge may run from an `S` or `V`
    /// row to an `H` column, nor from a `V` row to an `S` column.
    pub fn verify_zero_blocks(&self, g: &BipartiteGraph) -> bool {
        g.csr().iter_entries().all(|(i, j)| {
            !matches!(
                (self.row_part[i], self.col_part[j]),
                (CoarsePart::Square, CoarsePart::Horizontal)
                    | (CoarsePart::Vertical, CoarsePart::Horizontal)
                    | (CoarsePart::Vertical, CoarsePart::Square)
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::Csr;

    fn graph(rows: &[&[u8]]) -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(rows))
    }

    #[test]
    fn perfect_matching_is_all_square() {
        let g = dsmatch_gen::ring(10);
        let dm = dulmage_mendelsohn(&g);
        assert_eq!(dm.s_rows, 10);
        assert_eq!(dm.s_cols, 10);
        assert_eq!(dm.h_rows + dm.h_cols + dm.v_rows + dm.v_cols, 0);
        assert_eq!(dm.sprank(), 10);
        assert!(dm.verify_zero_blocks(&g));
    }

    #[test]
    fn wide_matrix_is_horizontal() {
        let g = graph(&[&[1, 1, 1]]);
        let dm = dulmage_mendelsohn(&g);
        assert_eq!(dm.h_rows, 1);
        assert_eq!(dm.h_cols, 3);
        assert_eq!(dm.s_rows, 0);
        assert_eq!(dm.sprank(), 1);
    }

    #[test]
    fn tall_matrix_is_vertical() {
        let g = graph(&[&[1], &[1], &[1]]);
        let dm = dulmage_mendelsohn(&g);
        assert_eq!(dm.v_rows, 3);
        assert_eq!(dm.v_cols, 1);
        assert_eq!(dm.sprank(), 1);
    }

    #[test]
    fn mixed_structure() {
        // Rows 0–1 compete for column 0 (vertical part); column 1 and 2
        // hang off row 2 (horizontal part).
        let g = graph(&[&[1, 0, 0], &[1, 0, 0], &[0, 1, 1]]);
        let dm = dulmage_mendelsohn(&g);
        assert_eq!(dm.v_rows, 2, "{dm:?}");
        assert_eq!(dm.v_cols, 1);
        assert_eq!(dm.h_rows, 1);
        assert_eq!(dm.h_cols, 2);
        assert_eq!(dm.s_rows, 0);
        assert_eq!(dm.sprank(), 2);
        assert!(dm.verify_zero_blocks(&g));
    }

    #[test]
    fn unmatched_vertices_land_in_their_parts() {
        let g = graph(&[&[1, 1, 0], &[1, 1, 0], &[1, 1, 0], &[0, 0, 1]]);
        let dm = dulmage_mendelsohn(&g);
        // Three rows over two columns + isolated-ish square pair.
        assert_eq!(dm.v_rows, 3);
        assert_eq!(dm.v_cols, 2);
        assert_eq!(dm.s_rows, 1);
        assert_eq!(dm.sprank(), 3);
    }

    #[test]
    fn partition_independent_of_matching() {
        // Two different maximum matchings must give the same partition.
        let g = graph(&[&[1, 1, 0], &[1, 1, 0], &[0, 1, 1]]);
        let a = dulmage_mendelsohn(&g);
        // Build an alternative maximum matching by hand.
        let mut m = Matching::new(3, 3);
        m.set(0, 1);
        m.set(1, 0);
        m.set(2, 2);
        let b = dulmage_mendelsohn_with(&g, m);
        assert_eq!(a.row_part, b.row_part);
        assert_eq!(a.col_part, b.col_part);
    }

    #[test]
    fn sprank_matches_hopcroft_karp_on_random() {
        use dsmatch_graph::SplitMix64;
        let mut rng = SplitMix64::new(5);
        for _ in 0..50 {
            let n = 12;
            let mut t = dsmatch_graph::TripletMatrix::new(n, n);
            for i in 0..n {
                for j in 0..n {
                    if rng.next_below(4) == 0 {
                        t.push(i, j);
                    }
                }
            }
            let g = BipartiteGraph::from_csr(t.into_csr());
            let dm = dulmage_mendelsohn(&g);
            assert_eq!(dm.sprank(), dsmatch_exact::sprank(&g));
            assert!(dm.verify_zero_blocks(&g));
            assert_eq!(dm.s_rows, dm.s_cols);
        }
    }
}
