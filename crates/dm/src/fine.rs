//! Fine Dulmage–Mendelsohn decomposition of the square part.
//!
//! Contract each matched pair `(row, col)` of `S` into one node; add a
//! directed edge `pair(col j) → pair(col j′)` whenever the row matched to
//! `j` has an entry in column `j′ ≠ j`. The strongly connected components
//! of this digraph are the fine blocks `S₁ … S_k`; `S` has **total
//! support** iff every edge of `S` stays within one block (equivalently,
//! the digraph's condensation has no cross edges carrying entries).
//!
//! Tarjan's algorithm, implemented iteratively so paper-scale square parts
//! (10⁵+ pairs) cannot overflow the call stack.

use dsmatch_graph::{BipartiteGraph, NIL};

use crate::coarse::{CoarsePart, DmDecomposition};

/// The fine decomposition of the square part.
#[derive(Clone, Debug)]
pub struct FineDecomposition {
    /// For each column vertex: fine-block id, or [`NIL`] for columns
    /// outside `S`.
    pub block_of_col: Vec<u32>,
    /// For each row vertex: the block of its matched column, or [`NIL`]
    /// outside `S`.
    pub block_of_row: Vec<u32>,
    /// Number of fine blocks.
    pub block_count: usize,
    /// Size (number of matched pairs) of each block.
    pub block_sizes: Vec<usize>,
}

impl FineDecomposition {
    /// True iff every `S`-internal edge stays inside a single fine block —
    /// the total-support criterion for the square part. Edges with an
    /// endpoint outside `S` are governed by the coarse structure and
    /// ignored here.
    pub fn all_edges_intra_block(&self, g: &BipartiteGraph) -> bool {
        g.csr().iter_entries().all(|(i, j)| {
            let (bi, bj) = (self.block_of_row[i], self.block_of_col[j]);
            bi == NIL || bj == NIL || bi == bj
        })
    }
}

/// Compute the fine decomposition of `dm`'s square part.
pub fn fine_decomposition(g: &BipartiteGraph, dm: &DmDecomposition) -> FineDecomposition {
    let n_c = g.ncols();
    let n_r = g.nrows();

    // Node set: S-columns (each represents its matched pair).
    let mut node_of_col = vec![NIL; n_c];
    let mut cols: Vec<u32> = Vec::with_capacity(dm.s_cols);
    for j in 0..n_c {
        if dm.col_part[j] == CoarsePart::Square {
            node_of_col[j] = cols.len() as u32;
            cols.push(j as u32);
        }
    }
    let n = cols.len();

    // Iterative Tarjan.
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc_of = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut scc_count = 0u32;
    let mut block_sizes: Vec<usize> = Vec::new();

    // Successors of node v: entries of the row matched to cols[v].
    let succ = |v: usize| -> &[u32] {
        let j = cols[v] as usize;
        let i = dm.matching.cmate(j);
        debug_assert_ne!(i, NIL, "S columns are perfectly matched");
        g.row_adj(i as usize)
    };

    // DFS frame: (node, next successor position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root as u32, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let v = v as usize;
            let adj = succ(v);
            let mut descended = false;
            while *pos < adj.len() {
                let j = adj[*pos] as usize;
                *pos += 1;
                let w = node_of_col[j];
                if w == NIL {
                    continue; // edge leaves S
                }
                let w = w as usize;
                if w == v {
                    continue;
                }
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    frames.push((w as u32, 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // v finished.
            if low[v] == index[v] {
                let mut size = 0usize;
                loop {
                    let w = stack.pop().unwrap();
                    on_stack[w as usize] = false;
                    scc_of[w as usize] = scc_count;
                    size += 1;
                    if w as usize == v {
                        break;
                    }
                }
                block_sizes.push(size);
                scc_count += 1;
            }
            frames.pop();
            if let Some(&mut (p, _)) = frames.last_mut() {
                let p = p as usize;
                low[p] = low[p].min(low[v]);
            }
        }
    }

    let mut block_of_col = vec![NIL; n_c];
    for (v, &j) in cols.iter().enumerate() {
        block_of_col[j as usize] = scc_of[v];
    }
    let mut block_of_row = vec![NIL; n_r];
    for j in 0..n_c {
        if block_of_col[j] != NIL {
            let i = dm.matching.cmate(j);
            block_of_row[i as usize] = block_of_col[j];
        }
    }
    FineDecomposition { block_of_col, block_of_row, block_count: scc_count as usize, block_sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::dulmage_mendelsohn;
    use dsmatch_graph::Csr;

    fn graph(rows: &[&[u8]]) -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(rows))
    }

    #[test]
    fn ring_is_one_block() {
        let g = dsmatch_gen::ring(12);
        let dm = dulmage_mendelsohn(&g);
        let fine = fine_decomposition(&g, &dm);
        assert_eq!(fine.block_count, 1);
        assert_eq!(fine.block_sizes, vec![12]);
        assert!(fine.all_edges_intra_block(&g));
    }

    #[test]
    fn permutation_gives_singleton_blocks() {
        let g = dsmatch_gen::permutation(9, 2);
        let dm = dulmage_mendelsohn(&g);
        let fine = fine_decomposition(&g, &dm);
        assert_eq!(fine.block_count, 9);
        assert!(fine.block_sizes.iter().all(|&s| s == 1));
        assert!(fine.all_edges_intra_block(&g));
    }

    #[test]
    fn triangular_blocks_and_star_entries() {
        // Upper triangular: 3 singleton blocks; the super-diagonal entries
        // are cross-block (`∗` entries) → no total support.
        let g = graph(&[&[1, 1, 1], &[0, 1, 1], &[0, 0, 1]]);
        let dm = dulmage_mendelsohn(&g);
        let fine = fine_decomposition(&g, &dm);
        assert_eq!(fine.block_count, 3);
        assert!(!fine.all_edges_intra_block(&g));
    }

    #[test]
    fn block_diagonal_two_blocks() {
        let g = graph(&[&[1, 1, 0, 0], &[1, 1, 0, 0], &[0, 0, 1, 1], &[0, 0, 1, 1]]);
        let dm = dulmage_mendelsohn(&g);
        let fine = fine_decomposition(&g, &dm);
        assert_eq!(fine.block_count, 2);
        assert_eq!(fine.block_sizes, vec![2, 2]);
        assert!(fine.all_edges_intra_block(&g));
    }

    #[test]
    fn non_square_parts_excluded() {
        let g = graph(&[&[1, 1, 1], &[0, 0, 1]]);
        let dm = dulmage_mendelsohn(&g);
        let fine = fine_decomposition(&g, &dm);
        // Columns 0–1 and row 0 are horizontal; the pair (r1, c2) is the
        // only square block.
        assert_eq!(dm.h_cols, 2);
        assert_eq!(fine.block_count, 1);
        assert_eq!(fine.block_of_col[0], NIL);
        assert_eq!(fine.block_of_col[1], NIL);
        assert_ne!(fine.block_of_col[2], NIL);
        assert_eq!(fine.block_of_row[1], fine.block_of_col[2]);
    }

    #[test]
    fn fully_horizontal_matrix_has_no_blocks() {
        // 1 row × 3 columns: everything horizontal, no S at all.
        let g = graph(&[&[1, 1, 1]]);
        let dm = dulmage_mendelsohn(&g);
        let fine = fine_decomposition(&g, &dm);
        assert_eq!(fine.block_count, 0);
        assert!(fine.block_of_col.iter().all(|&b| b == NIL));
    }

    #[test]
    fn rows_and_cols_share_block_through_matching() {
        let g = dsmatch_gen::ring(6);
        let dm = dulmage_mendelsohn(&g);
        let fine = fine_decomposition(&g, &dm);
        for j in 0..6 {
            let i = dm.matching.cmate(j);
            assert_eq!(fine.block_of_row[i as usize], fine.block_of_col[j]);
        }
    }
}
