//! Block (upper) triangular form permutations.
//!
//! The paper's §3.3 displays the canonical DM block structure
//!
//! ```text
//!       ⎡ H  ∗  ∗ ⎤               ⎡ S₁  ∗ ⎤
//!   A = ⎢ O  S  ∗ ⎥     with  S = ⎣ O  S₂ ⎦  recursively,
//!       ⎣ O  O  V ⎦
//! ```
//!
//! This module turns a coarse + fine decomposition into explicit row and
//! column permutations realizing that form — the output a sparse direct
//! solver would consume. Fine blocks are emitted in **topological order**
//! (Tarjan emits SCCs in reverse topological order of the pair digraph, so
//! we reverse), which makes all inter-block entries fall strictly above the
//! block diagonal.

use dsmatch_graph::{BipartiteGraph, NIL};

use crate::coarse::{CoarsePart, DmDecomposition};
use crate::fine::{fine_decomposition, FineDecomposition};

/// Row/column permutations to block upper triangular form.
#[derive(Clone, Debug)]
pub struct BtfPermutation {
    /// `row_perm[k]` = original index of the row placed at position `k`.
    pub row_perm: Vec<u32>,
    /// `col_perm[k]` = original index of the column placed at position `k`.
    pub col_perm: Vec<u32>,
    /// Start offsets of each diagonal block in the square part, in
    /// permuted coordinates relative to the start of `S` (length
    /// `block_count + 1`).
    pub fine_block_ptr: Vec<usize>,
    /// `(rows, cols)` of the horizontal part (placed first).
    pub horizontal: (usize, usize),
    /// Size of the square part.
    pub square: usize,
    /// `(rows, cols)` of the vertical part (placed last).
    pub vertical: (usize, usize),
}

/// Compute the BTF permutation from a graph and its decompositions.
pub fn btf_permutation(
    g: &BipartiteGraph,
    dm: &DmDecomposition,
    fine: &FineDecomposition,
) -> BtfPermutation {
    let n_r = g.nrows();
    let n_c = g.ncols();

    // Tarjan ids are in reverse topological order of the pair digraph;
    // emit blocks in topological order so entries sit above the diagonal.
    let order_of_block = |b: u32| fine.block_count as u32 - 1 - b;

    let mut row_perm: Vec<u32> = Vec::with_capacity(n_r);
    let mut col_perm: Vec<u32> = Vec::with_capacity(n_c);

    // 1. Horizontal part.
    for i in 0..n_r {
        if dm.row_part[i] == CoarsePart::Horizontal {
            row_perm.push(i as u32);
        }
    }
    for j in 0..n_c {
        if dm.col_part[j] == CoarsePart::Horizontal {
            col_perm.push(j as u32);
        }
    }
    let horizontal = (row_perm.len(), col_perm.len());

    // 2. Square part, grouped by fine block in topological order, rows
    //    aligned with their matched columns so the block diagonal is
    //    zero-free.
    let mut cols_by_block: Vec<Vec<u32>> = vec![Vec::new(); fine.block_count];
    for j in 0..n_c {
        let b = fine.block_of_col[j];
        if b != NIL {
            cols_by_block[order_of_block(b) as usize].push(j as u32);
        }
    }
    let mut fine_block_ptr = Vec::with_capacity(fine.block_count + 1);
    fine_block_ptr.push(0usize);
    let mut placed = 0usize;
    for block in &cols_by_block {
        for &j in block {
            col_perm.push(j);
            let i = dm.matching.cmate(j as usize);
            debug_assert_ne!(i, NIL);
            row_perm.push(i);
            placed += 1;
        }
        fine_block_ptr.push(placed);
    }
    let square = placed;

    // 3. Vertical part.
    for i in 0..n_r {
        if dm.row_part[i] == CoarsePart::Vertical {
            row_perm.push(i as u32);
        }
    }
    for j in 0..n_c {
        if dm.col_part[j] == CoarsePart::Vertical {
            col_perm.push(j as u32);
        }
    }
    let vertical = (n_r - horizontal.0 - square, n_c - horizontal.1 - square);

    debug_assert_eq!(row_perm.len(), n_r);
    debug_assert_eq!(col_perm.len(), n_c);
    BtfPermutation { row_perm, col_perm, fine_block_ptr, horizontal, square, vertical }
}

/// One-call convenience: decompose and permute.
pub fn block_triangular_form(g: &BipartiteGraph) -> BtfPermutation {
    let dm = crate::coarse::dulmage_mendelsohn(g);
    let fine = fine_decomposition(g, &dm);
    btf_permutation(g, &dm, &fine)
}

impl BtfPermutation {
    /// Inverse permutations: `position_of_row[i]` = permuted position of
    /// original row `i`.
    pub fn inverse(&self) -> (Vec<u32>, Vec<u32>) {
        let mut pr = vec![0u32; self.row_perm.len()];
        let mut pc = vec![0u32; self.col_perm.len()];
        for (k, &i) in self.row_perm.iter().enumerate() {
            pr[i as usize] = k as u32;
        }
        for (k, &j) in self.col_perm.iter().enumerate() {
            pc[j as usize] = k as u32;
        }
        (pr, pc)
    }

    /// Check the block-triangular property on `g`: in permuted
    /// coordinates, no entry may fall below the coarse block diagonal, and
    /// no entry of `S` may fall below its fine block diagonal.
    pub fn verify(&self, g: &BipartiteGraph) -> bool {
        let (pr, pc) = self.inverse();
        let (h_r, h_c) = self.horizontal;
        let s_end_r = h_r + self.square;
        let s_end_c = h_c + self.square;
        for (i, j) in g.csr().iter_entries() {
            let r = pr[i] as usize;
            let c = pc[j] as usize;
            // Coarse: rows of S and V cannot touch H columns; rows of V
            // cannot touch S columns.
            if r >= h_r && c < h_c {
                return false;
            }
            if r >= s_end_r && c < s_end_c {
                return false;
            }
            // Fine: inside S, entries must lie in the block upper triangle.
            if (h_r..s_end_r).contains(&r) && (h_c..s_end_c).contains(&c) {
                let rb = self.fine_block_of(r - h_r);
                let cb = self.fine_block_of(c - h_c);
                if rb > cb {
                    return false;
                }
            }
        }
        true
    }

    /// Fine block index of a permuted S-position (relative to S start).
    fn fine_block_of(&self, pos: usize) -> usize {
        match self.fine_block_ptr.binary_search(&pos) {
            Ok(k) => k.min(self.fine_block_ptr.len().saturating_sub(2)),
            Err(k) => k - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::Csr;

    fn graph(rows: &[&[u8]]) -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(rows))
    }

    #[test]
    fn identity_is_trivially_btf() {
        let g = graph(&[&[1, 0], &[0, 1]]);
        let btf = block_triangular_form(&g);
        assert_eq!(btf.square, 2);
        assert_eq!(btf.horizontal, (0, 0));
        assert_eq!(btf.vertical, (0, 0));
        assert!(btf.verify(&g));
        assert_eq!(btf.fine_block_ptr, vec![0, 1, 2]);
    }

    #[test]
    fn triangular_matrix_keeps_three_blocks_in_order() {
        let g = graph(&[&[1, 1, 1], &[0, 1, 1], &[0, 0, 1]]);
        let btf = block_triangular_form(&g);
        assert_eq!(btf.square, 3);
        assert_eq!(btf.fine_block_ptr.len(), 4);
        assert!(btf.verify(&g), "permutation must realize the BTF");
    }

    #[test]
    fn mixed_h_s_v_structure() {
        // Row 0 spans 2 columns (H); rows 1–2 a 2-cycle with cols 2–3 (S);
        // rows 3–4 share col 4 (V).
        let g = graph(&[
            &[1, 1, 0, 0, 0],
            &[0, 0, 1, 1, 0],
            &[0, 0, 1, 1, 0],
            &[0, 0, 0, 0, 1],
            &[0, 0, 0, 0, 1],
        ]);
        let btf = block_triangular_form(&g);
        assert_eq!(btf.horizontal, (1, 2));
        assert_eq!(btf.square, 2);
        assert_eq!(btf.vertical, (2, 1));
        assert!(btf.verify(&g));
        // Permutations are genuine permutations.
        let mut rp = btf.row_perm.clone();
        rp.sort_unstable();
        assert_eq!(rp, (0..5).collect::<Vec<u32>>());
        let mut cp = btf.col_perm.clone();
        cp.sort_unstable();
        assert_eq!(cp, (0..5).collect::<Vec<u32>>());
    }

    #[test]
    fn random_instances_verify() {
        use dsmatch_graph::{SplitMix64, TripletMatrix};
        let mut rng = SplitMix64::new(77);
        for trial in 0..100 {
            let m = 2 + rng.next_index(10);
            let n = 2 + rng.next_index(10);
            let mut t = TripletMatrix::new(m, n);
            for i in 0..m {
                for j in 0..n {
                    if rng.next_below(3) == 0 {
                        t.push(i, j);
                    }
                }
            }
            let g = BipartiteGraph::from_csr(t.into_csr());
            let btf = block_triangular_form(&g);
            assert!(btf.verify(&g), "trial {trial} failed");
            assert_eq!(btf.horizontal.0 + btf.square + btf.vertical.0, g.nrows());
            assert_eq!(btf.horizontal.1 + btf.square + btf.vertical.1, g.ncols());
        }
    }

    #[test]
    fn diagonal_of_square_part_is_zero_free() {
        let g = graph(&[&[1, 1, 0], &[1, 1, 0], &[0, 1, 1]]);
        let btf = block_triangular_form(&g);
        assert_eq!(btf.square, 3);
        // Row k and column k of the permuted S are matched → entry exists.
        for k in 0..btf.square {
            let i = btf.row_perm[btf.horizontal.0 + k] as usize;
            let j = btf.col_perm[btf.horizontal.1 + k] as usize;
            assert!(g.csr().contains(i, j), "diagonal position {k} is zero");
        }
    }
}
