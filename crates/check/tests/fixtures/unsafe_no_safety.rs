// Violates `unsafe-block`: no SAFETY comment anywhere near the block.
pub fn reinterpret(x: &u64) -> &i64 {
    unsafe { &*(x as *const u64 as *const i64) }
}
