// Violates `lock-unwrap` twice (unwrap, then expect) when linted at a
// src/ path; the string literal on the last line must NOT count.
use std::sync::Mutex;

pub fn poke(state: &Mutex<Vec<u32>>) {
    state.lock().unwrap().push(1);
    state.lock().expect("state lock").push(2);
    let _ = "state.lock().unwrap() in a string is fine";
}
