// Violates `wall-clock` twice when linted at a crates/ path.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let _ = SystemTime::now();
    t0.elapsed().as_nanos()
}
