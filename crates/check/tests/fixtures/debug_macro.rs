// Violates `debug-macro` three times; the commented-out dbg! and the
// one in the string must NOT count.
pub fn leftovers(x: u32) -> u32 {
    let y = dbg!(x + 1);
    if y > 10 {
        todo!("handle the big case");
    }
    // dbg!(y) — already masked out
    let _ = "dbg!(in a string)";
    unimplemented!()
}
