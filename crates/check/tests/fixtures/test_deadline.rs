// Violates `test-deadline`: a hard-coded 30-second deadline in a test
// region, with no mention of the timeout knob in sight. The 1-second
// duration below it is under the threshold and must not fire.
pub fn production_path() {}

#[cfg(test)]
mod tests {
    #[test]
    fn waits_too_concretely() {
        let deadline = std::time::Duration::from_secs(30);
        let blip = std::time::Duration::from_secs(1);
        assert!(deadline > blip);
    }
}
