// Clean twin of unsafe_no_safety.rs: the SAFETY comment satisfies the rule.
pub fn reinterpret(x: &u64) -> &i64 {
    // SAFETY: u64 and i64 have identical size and alignment; the borrow
    // keeps the source alive.
    unsafe { &*(x as *const u64 as *const i64) }
}
