// Violates `allow-marker` twice: a marker with no justification and a
// marker naming an unknown rule. (The dbg! is suppressed by the first
// marker — suppression and marker-wellformedness are separate rules.)
pub fn sloppy(x: u32) -> u32 {
    let y = dbg!(x + 1); // lint:allow(debug-macro)
    let _ = y; // lint:allow(made-up-rule): not a rule
    y
}
