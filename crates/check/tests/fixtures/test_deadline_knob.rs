// Clean twin of test_deadline.rs: the literal is the documented default
// of the DSMATCH_TEST_TIMEOUT_SECS knob, read right above it.
pub fn production_path() {}

#[cfg(test)]
mod tests {
    fn test_timeout(default_secs: u64) -> std::time::Duration {
        let secs = std::env::var("DSMATCH_TEST_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(default_secs);
        std::time::Duration::from_secs(secs)
    }

    #[test]
    fn waits_through_the_knob() {
        assert!(test_timeout(30) >= std::time::Duration::from_secs(1));
    }
}
