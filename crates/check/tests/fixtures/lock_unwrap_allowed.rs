// Clean twin of lock_unwrap.rs: poison-tolerant handling plus one
// justified allow marker.
use std::sync::Mutex;

pub fn poke(state: &Mutex<Vec<u32>>) {
    state.lock().unwrap_or_else(|p| p.into_inner()).push(1);
    // lint:allow(lock-unwrap): setup-only path, a poisoned lock here means the process is already lost
    state.lock().unwrap().push(2);
}
