//! Composed model checks: the two protocols together in the shape the
//! pool's `worker_loop` actually uses them — epoch read, hinted sweep
//! (own pop, then steal), park. This is where the hint's staleness and
//! the eventcount's ordering have to cooperate: a push the sweep misses
//! through a stale hint must still wake the worker via the announce.

use dsmatch_check::protocol::eventcount::EventcountOps;
use dsmatch_check::protocol::{deque, eventcount};
use dsmatch_check::sim::{Cell, Explorer, Sim, SimDeque, SimEventcount, Violation};

/// A worker shaped like `PoolCore::worker_loop`: sweep own deque, then
/// the victim, then park on the pre-sweep epoch; exit after running one
/// job or on shutdown.
fn spawn_pool_worker(
    sim: &mut Sim,
    ec: &SimEventcount,
    own: &SimDeque,
    victim: &SimDeque,
    done: &Cell,
) {
    let (ec, own, victim, done) = (ec.clone(), own.clone(), victim.clone(), done.clone());
    sim.thread(move || loop {
        let seen = ec.epoch();
        if let Some(token) = deque::pop(&own) {
            done.fetch_or(1 << token);
            return;
        }
        let mut surplus = Vec::new();
        if let Some(token) = deque::steal_half(&victim, &mut surplus) {
            deque::prepend(&own, &mut surplus);
            done.fetch_or(1 << token);
            return;
        }
        if ec.is_shutdown() {
            return;
        }
        eventcount::park(&ec, seen);
    });
}

/// A job pushed to the worker's own deque and announced is never
/// stranded: in every interleaving of push/hint-store/announce against
/// sweep/park, the worker runs it.
#[test]
fn announced_push_is_never_stranded() {
    let stats = Explorer::new(3).check(|sim| {
        let ec = SimEventcount::new(sim);
        let own = SimDeque::new(sim);
        let victim = SimDeque::new(sim);
        let done = sim.cell(0);
        spawn_pool_worker(sim, &ec, &own, &victim, &done);
        {
            let (ec, own) = (ec.clone(), own.clone());
            sim.thread(move || {
                deque::push(&own, 7);
                eventcount::announce(&ec);
            });
        }
        let done = done.clone();
        sim.finally(move || {
            assert_eq!(done.peek(), 1 << 7, "pushed+announced job executed");
        });
    });
    assert!(stats.complete, "exploration truncated");
    assert!(stats.schedules > 30, "expected many interleavings, explored {}", stats.schedules);
}

/// Work surfacing on a *foreign* deque (submitted to another worker)
/// still wakes a parked worker, which steals it.
#[test]
fn stealing_worker_is_woken_for_foreign_work() {
    let stats = Explorer::new(3).check(|sim| {
        let ec = SimEventcount::new(sim);
        let own = SimDeque::new(sim);
        let victim = SimDeque::new(sim);
        let done = sim.cell(0);
        spawn_pool_worker(sim, &ec, &own, &victim, &done);
        {
            let (ec, victim) = (ec.clone(), victim.clone());
            sim.thread(move || {
                deque::push(&victim, 4);
                eventcount::announce(&ec);
            });
        }
        let done = done.clone();
        sim.finally(move || {
            assert_eq!(done.peek(), 1 << 4, "foreign job stolen and executed");
        });
    });
    assert!(stats.complete, "exploration truncated");
}

/// Seeded bug in the composition: push the job but *skip the announce*.
/// There is an interleaving (worker sweeps before the push lands, then
/// parks) where the job is stranded forever — the checker finds it as a
/// deadlock.
#[test]
fn seeded_bug_push_without_announce_is_caught() {
    let err = Explorer::new(3)
        .explore(|sim| {
            let ec = SimEventcount::new(sim);
            let own = SimDeque::new(sim);
            let victim = SimDeque::new(sim);
            let done = sim.cell(0);
            spawn_pool_worker(sim, &ec, &own, &victim, &done);
            {
                let own = own.clone();
                sim.thread(move || {
                    deque::push(&own, 7);
                    // BUG: no announce.
                });
            }
        })
        .unwrap_err();
    assert!(
        matches!(err, Violation::Deadlock { .. }),
        "expected the worker to be stranded parked, got: {err}"
    );
}
