//! Model-checked properties of the eventcount sleep protocol
//! (`dsmatch_check::protocol::eventcount`) — the exact code the rayon
//! shim's pool runs — plus seeded-bug regressions showing the checker
//! catches each single-step weakening of the protocol.

use dsmatch_check::protocol::eventcount::{self, EventcountOps};
use dsmatch_check::sim::{Explorer, Sim, SimEventcount, Violation};

/// Spawn a worker shaped like the pool's `worker_loop`: read the epoch,
/// sweep for work, then park on the pre-sweep epoch.
fn spawn_worker(
    sim: &mut Sim,
    ec: &SimEventcount,
    work: &dsmatch_check::sim::Cell,
    done: &dsmatch_check::sim::Cell,
) {
    let (ec, work, done) = (ec.clone(), work.clone(), done.clone());
    sim.thread(move || loop {
        let seen = ec.epoch();
        if work.dec_if_positive() {
            done.fetch_add(1);
            return;
        }
        if ec.is_shutdown() {
            return;
        }
        eventcount::park(&ec, seen);
    });
}

/// One worker, one producer announcing one unit of work: across every
/// interleaving (3 preemptions deep) the worker consumes the unit —
/// no lost wakeup, no deadlock.
#[test]
fn wakeup_never_lost_single_sleeper() {
    let stats = Explorer::new(3).check(|sim| {
        let ec = SimEventcount::new(sim);
        let work = sim.cell(0);
        let done = sim.cell(0);
        spawn_worker(sim, &ec, &work, &done);
        {
            let (ec, work) = (ec.clone(), work.clone());
            sim.thread(move || {
                work.fetch_add(1);
                eventcount::announce(&ec);
            });
        }
        let done = done.clone();
        sim.finally(move || {
            assert_eq!(done.peek(), 1, "announced work was consumed");
        });
    });
    assert!(stats.complete, "exploration truncated");
    assert!(stats.schedules > 20, "expected many interleavings, explored {}", stats.schedules);
}

/// Two workers, two units announced one at a time with `notify_one`:
/// both units are consumed — notify_one never strands the second
/// sleeper while work remains.
#[test]
fn notify_one_with_two_sleepers_loses_nothing() {
    let stats = Explorer::new(2).check(|sim| {
        let ec = SimEventcount::new(sim);
        let work = sim.cell(0);
        let done = sim.cell(0);
        spawn_worker(sim, &ec, &work, &done);
        spawn_worker(sim, &ec, &work, &done);
        {
            let (ec, work) = (ec.clone(), work.clone());
            sim.thread(move || {
                work.fetch_add(1);
                eventcount::announce(&ec);
                work.fetch_add(1);
                eventcount::announce(&ec);
            });
        }
        let done = done.clone();
        sim.finally(move || {
            assert_eq!(done.peek(), 2, "both announced units were consumed");
        });
    });
    assert!(stats.complete, "exploration truncated");
}

/// Shutdown liveness: `shutdown` wakes every parked worker, in every
/// interleaving of two parkers racing the latch.
#[test]
fn shutdown_wakes_every_sleeper() {
    let stats = Explorer::new(2).check(|sim| {
        let ec = SimEventcount::new(sim);
        for _ in 0..2 {
            let ec = ec.clone();
            sim.thread(move || loop {
                let seen = ec.epoch();
                if ec.is_shutdown() {
                    return;
                }
                eventcount::park(&ec, seen);
            });
        }
        {
            let ec = ec.clone();
            sim.thread(move || eventcount::shutdown(&ec));
        }
        // Termination of every schedule IS the property.
    });
    assert!(stats.complete, "exploration truncated");
}

// ---------------------------------------------------------------------
// Seeded bugs: each is the real protocol weakened by one step. The
// checker must catch every one (as a deadlock — the finite-test shape of
// a lost wakeup), which is the evidence that the passing tests above
// actually explore the dangerous interleavings.
// ---------------------------------------------------------------------

/// BUG: check `sleepers` *before* bumping the epoch (the announcement
/// loses its ordering against `park`'s registration + re-check).
fn announce_bug_sleeper_check_first<E: EventcountOps>(ec: &E) {
    if ec.sleepers() > 0 {
        let guard = ec.lock_sleep();
        ec.notify_one();
        drop(guard);
    }
    ec.bump_epoch();
}

/// BUG: wait without re-checking the epoch under the lock.
fn park_bug_no_recheck<E: EventcountOps>(ec: &E, _seen: u64) {
    let mut guard = ec.lock_sleep();
    ec.add_sleeper();
    guard = ec.wait_sleep(guard);
    ec.remove_sleeper();
    drop(guard);
}

fn explore_buggy(
    announce: fn(&SimEventcount),
    park: fn(&SimEventcount, u64),
    stale_seen: bool,
) -> Result<dsmatch_check::sim::Stats, Violation> {
    Explorer::new(3).explore(move |sim| {
        let ec = SimEventcount::new(sim);
        let work = sim.cell(0);
        let done = sim.cell(0);
        {
            let (ec, work, done) = (ec.clone(), work.clone(), done.clone());
            sim.thread(move || loop {
                // BUG variant: read the epoch *after* the sweep, so an
                // announcement between sweep and park is absorbed into
                // `seen` and the re-check cannot save us.
                let seen_early = ec.epoch();
                let got = work.dec_if_positive();
                if got {
                    done.fetch_add(1);
                    return;
                }
                let seen = if stale_seen { ec.epoch() } else { seen_early };
                if ec.is_shutdown() {
                    return;
                }
                park(&ec, seen);
            });
        }
        {
            let (ec, work) = (ec.clone(), work.clone());
            sim.thread(move || {
                work.fetch_add(1);
                announce(&ec);
            });
        }
        let done = done.clone();
        sim.finally(move || assert_eq!(done.peek(), 1));
    })
}

#[test]
fn seeded_bug_announce_order_is_caught() {
    let err = explore_buggy(
        announce_bug_sleeper_check_first::<SimEventcount>,
        eventcount::park::<SimEventcount>,
        false,
    )
    .unwrap_err();
    assert!(
        matches!(err, Violation::Deadlock { .. }),
        "expected a lost-wakeup deadlock, got: {err}"
    );
}

#[test]
fn seeded_bug_missing_recheck_is_caught() {
    let err = explore_buggy(
        eventcount::announce::<SimEventcount>,
        park_bug_no_recheck::<SimEventcount>,
        false,
    )
    .unwrap_err();
    assert!(
        matches!(err, Violation::Deadlock { .. }),
        "expected a lost-wakeup deadlock, got: {err}"
    );
}

#[test]
fn seeded_bug_stale_epoch_read_is_caught() {
    let err = explore_buggy(
        eventcount::announce::<SimEventcount>,
        eventcount::park::<SimEventcount>,
        true,
    )
    .unwrap_err();
    assert!(
        matches!(err, Violation::Deadlock { .. }),
        "expected a lost-wakeup deadlock, got: {err}"
    );
}

/// The `check` entry point panics on a violation, so a seeded bug fails
/// the test run loudly — the `#[should_panic]` regression the CI gate
/// pins.
#[test]
#[should_panic(expected = "deadlock")]
fn seeded_bug_panics_under_check() {
    Explorer::new(3).check(|sim| {
        let ec = SimEventcount::new(sim);
        let work = sim.cell(0);
        let done = sim.cell(0);
        {
            let (ec, work, done) = (ec.clone(), work.clone(), done.clone());
            sim.thread(move || loop {
                let seen = ec.epoch();
                if work.dec_if_positive() {
                    done.fetch_add(1);
                    return;
                }
                if ec.is_shutdown() {
                    return;
                }
                eventcount::park(&ec, seen);
            });
        }
        {
            let (ec, work) = (ec.clone(), work.clone());
            sim.thread(move || {
                work.fetch_add(1);
                announce_bug_sleeper_check_first(&ec);
            });
        }
    });
}
