//! Model-checked properties of the length-hinted deque protocol
//! (`dsmatch_check::protocol::deque`): across every interleaving of
//! owner pops and thief steals, no job is lost, none runs twice, and
//! the hint fast path never causes a false empty on the owner's side.

use dsmatch_check::protocol::deque;
use dsmatch_check::sim::{Cell, Explorer, Sim, SimDeque};

/// Bitmask-record an executed token; `count` catches double execution
/// that the mask alone would hide.
fn run_token(mask: &Cell, count: &Cell, token: u64) {
    mask.fetch_or(1 << token);
    count.fetch_add(1);
}

fn spawn_owner_drain(sim: &mut Sim, own: &SimDeque, mask: &Cell, count: &Cell) {
    let (own, mask, count) = (own.clone(), mask.clone(), count.clone());
    sim.thread(move || {
        while let Some(token) = deque::pop(&own) {
            run_token(&mask, &count, token);
        }
    });
}

fn spawn_thief(sim: &mut Sim, victim: &SimDeque, home: &SimDeque, mask: &Cell, count: &Cell) {
    let (victim, home, mask, count) = (victim.clone(), home.clone(), mask.clone(), count.clone());
    sim.thread(move || {
        let mut surplus = Vec::new();
        if let Some(token) = deque::steal_half(&victim, &mut surplus) {
            deque::prepend(&home, &mut surplus);
            run_token(&mask, &count, token);
            while let Some(token) = deque::pop(&home) {
                run_token(&mask, &count, token);
            }
        }
    });
}

/// Owner drains its deque while a thief steals half and re-homes the
/// surplus: every token runs exactly once, nothing remains.
#[test]
fn owner_pop_vs_steal_half_no_loss_no_dup() {
    let stats = Explorer::new(2).check(|sim| {
        let victim = SimDeque::new(sim);
        let home = SimDeque::new(sim);
        victim.preload(&[1, 2, 3]);
        let mask = sim.cell(0);
        let count = sim.cell(0);
        spawn_owner_drain(sim, &victim, &mask, &count);
        spawn_thief(sim, &victim, &home, &mask, &count);
        let (mask, count, victim, home) =
            (mask.clone(), count.clone(), victim.clone(), home.clone());
        sim.finally(move || {
            assert_eq!(mask.peek(), 0b1110, "tokens 1,2,3 all executed");
            assert_eq!(count.peek(), 3, "each token exactly once");
            assert!(victim.peek_items().is_empty());
            assert!(home.peek_items().is_empty());
            assert_eq!(victim.peek_hint(), 0, "hint settles to the truth");
            assert_eq!(home.peek_hint(), 0, "hint settles to the truth");
        });
    });
    assert!(stats.complete, "exploration truncated");
    assert!(stats.schedules > 50, "expected many interleavings, explored {}", stats.schedules);
}

/// Two thieves race each other over one victim; tokens left unstolen
/// stay intact on the victim. Disjointness: no token both executed and
/// remaining, and the executed count matches the mask's popcount.
#[test]
fn two_thieves_race_without_duplication() {
    let stats = Explorer::new(2).check(|sim| {
        let victim = SimDeque::new(sim);
        let home_a = SimDeque::new(sim);
        let home_b = SimDeque::new(sim);
        victim.preload(&[1, 2, 3, 4]);
        let mask = sim.cell(0);
        let count = sim.cell(0);
        spawn_thief(sim, &victim, &home_a, &mask, &count);
        spawn_thief(sim, &victim, &home_b, &mask, &count);
        let (mask, count, victim) = (mask.clone(), count.clone(), victim.clone());
        sim.finally(move || {
            let executed = mask.peek();
            let remaining: u64 = victim.peek_items().iter().map(|&t| 1 << t).sum();
            assert_eq!(executed & remaining, 0, "a token executed AND remaining");
            assert_eq!(executed | remaining, 0b11110, "a token vanished");
            assert_eq!(count.peek(), u64::from(executed.count_ones()), "a token executed twice");
        });
    });
    assert!(stats.complete, "exploration truncated");
}

/// The single-item race: owner pop vs thief steal on a one-element
/// deque — exactly one of them gets it.
#[test]
fn pop_races_steal_on_single_item() {
    let stats = Explorer::new(3).check(|sim| {
        let victim = SimDeque::new(sim);
        let home = SimDeque::new(sim);
        victim.preload(&[5]);
        let mask = sim.cell(0);
        let count = sim.cell(0);
        spawn_owner_drain(sim, &victim, &mask, &count);
        spawn_thief(sim, &victim, &home, &mask, &count);
        let (mask, count, victim) = (mask.clone(), count.clone(), victim.clone());
        sim.finally(move || {
            assert_eq!(mask.peek(), 1 << 5);
            assert_eq!(count.peek(), 1, "the token ran exactly once");
            assert!(victim.peek_items().is_empty());
        });
    });
    assert!(stats.complete, "exploration truncated");
}

/// Seeded bug: push that forgets to update the hint. The owner's pop
/// fast path then sees a stale 0 and reports empty while the item sits
/// in the deque — the checker reports the left-behind token.
#[test]
fn seeded_bug_push_without_hint_update_is_caught() {
    use dsmatch_check::protocol::deque::DequeOps;
    fn push_no_hint(deque: &SimDeque, item: u64) {
        let mut guard = deque.lock();
        deque.push_back(&mut guard, item);
        // BUG: hint not updated.
        drop(guard);
    }
    let err = Explorer::new(2)
        .explore(|sim| {
            let own = SimDeque::new(sim);
            let mask = sim.cell(0);
            let count = sim.cell(0);
            {
                let own = own.clone();
                sim.thread(move || push_no_hint(&own, 3));
            }
            spawn_owner_drain(sim, &own, &mask, &count);
            let (mask, own) = (mask.clone(), own.clone());
            sim.finally(move || {
                assert!(
                    own.peek_items().is_empty() && mask.peek() == 0b1000,
                    "token stranded by the stale hint"
                );
            });
        })
        .unwrap_err();
    assert!(
        matches!(err, dsmatch_check::sim::Violation::FinallyFailed { .. }),
        "expected the stranded token to fail the final check, got: {err}"
    );
}
