//! Pins every `dsmatch-lint` rule against the fixture corpus in
//! `tests/fixtures/`. Each violating fixture must keep producing its
//! exact findings (rule + line), and each clean twin must stay silent —
//! so a rule that silently stops matching, or an allow marker that stops
//! suppressing, fails here instead of rotting.

use std::fs;
use std::path::Path;

use dsmatch_check::lint::engine::lint_source;
use dsmatch_check::lint::{Config, Finding};

/// Lint a fixture file's text as if it lived at `rel` in the workspace.
fn lint_fixture_at(fixture: &str, rel: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    lint_source(rel, text, &Config::repo_default())
}

/// Assert the findings are exactly `expected` (rule, line) pairs, in order.
fn assert_findings(found: &[Finding], expected: &[(&str, usize)]) {
    let got: Vec<(&str, usize)> = found.iter().map(|f| (f.rule.as_str(), f.line)).collect();
    assert_eq!(got, expected, "findings: {found:?}");
}

#[test]
fn unsafe_block_without_safety_comment_is_flagged() {
    let found = lint_fixture_at("unsafe_no_safety.rs", "src/fixture.rs");
    assert_findings(&found, &[("unsafe-block", 3)]);
}

#[test]
fn safety_comment_satisfies_unsafe_block() {
    let found = lint_fixture_at("unsafe_with_safety.rs", "src/fixture.rs");
    assert_findings(&found, &[]);
}

#[test]
fn lock_unwrap_and_expect_are_flagged_on_scoped_paths() {
    let found = lint_fixture_at("lock_unwrap.rs", "src/fixture.rs");
    assert_findings(&found, &[("lock-unwrap", 6), ("lock-unwrap", 7)]);
}

#[test]
fn lock_unwrap_scope_excludes_unscoped_paths() {
    // The rule is scoped to src/ by the default config; the same text at
    // a crate path must not fire.
    let found = lint_fixture_at("lock_unwrap.rs", "crates/graph/src/fixture.rs");
    assert_findings(&found, &[]);
}

#[test]
fn justified_marker_and_poison_tolerance_silence_lock_unwrap() {
    let found = lint_fixture_at("lock_unwrap_allowed.rs", "src/fixture.rs");
    assert_findings(&found, &[]);
}

#[test]
fn wall_clock_reads_are_flagged_in_crates() {
    let found = lint_fixture_at("wall_clock.rs", "crates/graph/src/fixture.rs");
    assert_findings(&found, &[("wall-clock", 5), ("wall-clock", 6)]);
}

#[test]
fn wall_clock_exemption_covers_bench_crate() {
    // crates/bench/ is on the default exempt list for wall-clock: timing
    // harnesses are the one place wall-clock reads are the point.
    let found = lint_fixture_at("wall_clock.rs", "crates/bench/src/fixture.rs");
    assert_findings(&found, &[]);
}

#[test]
fn hard_coded_test_deadline_is_flagged() {
    // Only the 30s literal fires; the 1s literal is below the threshold.
    let found = lint_fixture_at("test_deadline.rs", "src/fixture.rs");
    assert_findings(&found, &[("test-deadline", 10)]);
}

#[test]
fn timeout_knob_default_silences_test_deadline() {
    let found = lint_fixture_at("test_deadline_knob.rs", "src/fixture.rs");
    assert_findings(&found, &[]);
}

#[test]
fn debug_macros_are_flagged_outside_comments_and_strings() {
    let found = lint_fixture_at("debug_macro.rs", "src/fixture.rs");
    assert_findings(&found, &[("debug-macro", 4), ("debug-macro", 6), ("debug-macro", 10)]);
}

#[test]
fn malformed_markers_are_flagged_by_the_meta_rule() {
    // The bare marker still suppresses its dbg! (line 5) — suppression
    // and marker wellformedness are deliberately separate — but both bad
    // markers are reported and cannot themselves be allowed away.
    let found = lint_fixture_at("bad_marker.rs", "src/fixture.rs");
    assert_findings(&found, &[("allow-marker", 5), ("allow-marker", 6)]);
}

#[test]
fn fixture_corpus_is_skipped_by_the_default_config() {
    // The violating fixtures live inside the repo; the default skip list
    // must keep `dsmatch-lint --root .` clean despite them.
    let cfg = Config::repo_default();
    assert!(cfg.skipped("crates/check/tests/fixtures/"));
}
