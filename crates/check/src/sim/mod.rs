//! A hand-rolled loom-style bounded model checker.
//!
//! [`Explorer`] drives N *model threads* — real OS threads, gated so that
//! exactly one runs at a time — through every interleaving of their
//! shared-memory operations, up to a configurable preemption bound
//! (context-bounded stateless model checking). Every operation on a
//! simulated primitive ([`Cell`], [`SimMutex`], [`SimCondvar`]) is a
//! scheduling point; between two points a thread runs thread-local code
//! atomically. The explored memory model is sequential consistency,
//! which covers every outcome the pool's `SeqCst` protocol operations
//! admit (the deque hint's `Acquire`/`Release` pair is strictly weaker;
//! its staleness tolerance is argued in [`crate::protocol::deque`]).
//!
//! A schedule that leaves unfinished threads with no runnable successor
//! is reported as a [`Violation::Deadlock`] — the shape a lost wakeup or
//! a stranded job takes in a finite test. Assertion failures inside model
//! threads and in the [`Sim::finally`] check surface as violations too,
//! carrying the exact schedule (sequence of thread ids) that produced
//! them, so a reported bug is replayable by hand.
//!
//! Exploration is exhaustive within the preemption bound: the DFS
//! backtracks over every scheduling decision whose alternative stays
//! within budget, and [`Stats::complete`] reports whether the walk
//! finished without hitting the schedule cap.

mod cells;
pub mod env;
mod runtime;

pub use cells::{Cell, SimCondvar, SimGuard, SimMutex, SimQueue};
pub use env::{SimDeque, SimEventcount};
pub use runtime::{Explorer, Sim, Stats, Violation};
