//! Simulated implementations of the protocol `Ops` traits — the model
//! checker's counterparts to the real pool's `std`-backed ones. The
//! protocol free functions in [`crate::protocol`] run unchanged over
//! these, so the interleavings the explorer walks are interleavings of
//! exactly the operations the pool performs.

use super::{Cell, Sim, SimCondvar, SimGuard, SimMutex, SimQueue};
use crate::protocol::deque::DequeOps;
use crate::protocol::eventcount::EventcountOps;

/// Simulated eventcount: the epoch / sleepers / shutdown atomics plus
/// the sleep mutex + condvar, as allocated slots of one model run.
#[derive(Clone)]
pub struct SimEventcount {
    epoch: Cell,
    sleepers: Cell,
    shutdown: Cell,
    sleep: SimMutex,
    cv: SimCondvar,
}

impl SimEventcount {
    /// Allocate the eventcount's state in `sim`'s world.
    pub fn new(sim: &mut Sim) -> Self {
        SimEventcount {
            epoch: sim.cell(0),
            sleepers: sim.cell(0),
            shutdown: sim.cell(0),
            sleep: sim.mutex(),
            cv: sim.condvar(),
        }
    }
}

impl EventcountOps for SimEventcount {
    type Guard<'a> = SimGuard;

    fn epoch(&self) -> u64 {
        self.epoch.load()
    }
    fn bump_epoch(&self) {
        self.epoch.fetch_add(1);
    }
    fn sleepers(&self) -> usize {
        self.sleepers.load() as usize
    }
    fn add_sleeper(&self) {
        self.sleepers.fetch_add(1);
    }
    fn remove_sleeper(&self) {
        self.sleepers.fetch_sub(1);
    }
    fn is_shutdown(&self) -> bool {
        self.shutdown.load() != 0
    }
    fn set_shutdown(&self) {
        self.shutdown.store(1);
    }
    fn lock_sleep(&self) -> SimGuard {
        self.sleep.lock()
    }
    fn wait_sleep(&self, guard: SimGuard) -> SimGuard {
        self.cv.wait(guard)
    }
    fn notify_one(&self) {
        self.cv.notify_one();
    }
    fn notify_all(&self) {
        self.cv.notify_all();
    }
}

/// Simulated length-hinted deque: a [`SimQueue`] behind a [`SimMutex`]
/// with a [`Cell`] occupancy hint. Items are `u64` tokens so model tests
/// can track execution in a bitmask.
#[derive(Clone)]
pub struct SimDeque {
    items: SimQueue,
    hint: Cell,
    lock: SimMutex,
}

impl SimDeque {
    /// Allocate the deque's state in `sim`'s world.
    pub fn new(sim: &mut Sim) -> Self {
        SimDeque { items: sim.queue(), hint: sim.cell(0), lock: sim.mutex() }
    }

    /// Setup-only: fill the deque (and hint) before threads run.
    pub fn preload(&self, tokens: &[u64]) {
        for &t in tokens {
            self.items.push_back(t);
        }
        self.hint.poke(self.items.len() as u64);
    }

    /// Final-check read of the remaining items, front to back.
    pub fn peek_items(&self) -> Vec<u64> {
        self.items.peek_items()
    }

    /// Final-check read of the hint.
    pub fn peek_hint(&self) -> u64 {
        self.hint.peek()
    }
}

impl DequeOps for SimDeque {
    type Item = u64;
    type Guard<'a> = SimGuard;

    fn hint(&self) -> usize {
        self.hint.load() as usize
    }
    fn set_hint(&self, _guard: &mut SimGuard, len: usize) {
        self.hint.store(len as u64);
    }
    fn lock(&self) -> SimGuard {
        self.lock.lock()
    }
    fn len(&self, _guard: &SimGuard) -> usize {
        self.items.len()
    }
    fn push_back(&self, _guard: &mut SimGuard, item: u64) {
        self.items.push_back(item);
    }
    fn push_front(&self, _guard: &mut SimGuard, item: u64) {
        self.items.push_front(item);
    }
    fn pop_back(&self, _guard: &mut SimGuard) -> Option<u64> {
        self.items.pop_back()
    }
    fn pop_front(&self, _guard: &mut SimGuard) -> Option<u64> {
        self.items.pop_front()
    }
}
