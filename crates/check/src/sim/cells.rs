//! Simulated shared-memory primitives. Every handle is a cheap clone
//! (run id + slot index) into the run's [`World`](super::runtime); the
//! operations marked as scheduling points pause the calling model thread
//! until the controller picks it, which is what lets the explorer
//! interleave them.

use std::sync::Arc;

use super::runtime::{cv_notify, cv_wait, direct_op, mutex_lock, mutex_unlock, sim_op, RunShared};

pub(crate) fn new_cell(shared: Arc<RunShared>, id: usize) -> Cell {
    Cell { shared, id }
}

pub(crate) fn new_mutex(shared: Arc<RunShared>, id: usize) -> SimMutex {
    SimMutex { shared, id }
}

pub(crate) fn new_condvar(shared: Arc<RunShared>, id: usize) -> SimCondvar {
    SimCondvar { shared, id }
}

pub(crate) fn new_queue(shared: Arc<RunShared>, id: usize) -> SimQueue {
    SimQueue { shared, id }
}

/// A simulated atomic `u64`. Every `load`/`store`/`fetch_*` is a
/// scheduling point (they are exactly the operations whose interleaving
/// the checker explores); `peek`/`poke` access the value directly for
/// setup and [`Sim::finally`](super::Sim::finally) checks.
#[derive(Clone)]
pub struct Cell {
    shared: Arc<RunShared>,
    id: usize,
}

impl Cell {
    /// Atomic load (scheduling point).
    pub fn load(&self) -> u64 {
        let id = self.id;
        sim_op(&self.shared, |w| w.cells[id])
    }

    /// Atomic store (scheduling point).
    pub fn store(&self, value: u64) {
        let id = self.id;
        sim_op(&self.shared, |w| w.cells[id] = value);
    }

    /// Atomic wrapping add; returns the previous value (scheduling point).
    pub fn fetch_add(&self, delta: u64) -> u64 {
        let id = self.id;
        sim_op(&self.shared, |w| {
            let old = w.cells[id];
            w.cells[id] = old.wrapping_add(delta);
            old
        })
    }

    /// Atomic wrapping subtract; returns the previous value (scheduling
    /// point).
    pub fn fetch_sub(&self, delta: u64) -> u64 {
        let id = self.id;
        sim_op(&self.shared, |w| {
            let old = w.cells[id];
            w.cells[id] = old.wrapping_sub(delta);
            old
        })
    }

    /// Atomic bitwise or; returns the previous value (scheduling point).
    pub fn fetch_or(&self, bits: u64) -> u64 {
        let id = self.id;
        sim_op(&self.shared, |w| {
            let old = w.cells[id];
            w.cells[id] = old | bits;
            old
        })
    }

    /// Atomically decrement if positive; true on success (scheduling
    /// point). The model-test analogue of a compare-and-swap claim loop.
    pub fn dec_if_positive(&self) -> bool {
        let id = self.id;
        sim_op(&self.shared, |w| {
            if w.cells[id] > 0 {
                w.cells[id] -= 1;
                true
            } else {
                false
            }
        })
    }

    /// Direct read, no scheduling point — setup / final checks only.
    pub fn peek(&self) -> u64 {
        let id = self.id;
        direct_op(&self.shared, |w| w.cells[id])
    }

    /// Direct write, no scheduling point — setup only.
    pub fn poke(&self, value: u64) {
        let id = self.id;
        direct_op(&self.shared, |w| w.cells[id] = value);
    }
}

/// A simulated mutex. `lock` is a scheduling point and blocks through
/// the controller; release (guard drop) is not a scheduling point —
/// acquirers re-poll under the world lock, so releasing is only
/// observable at the releaser's next operation anyway.
#[derive(Clone)]
pub struct SimMutex {
    shared: Arc<RunShared>,
    id: usize,
}

impl SimMutex {
    /// Acquire; blocks (through the controller) while held elsewhere.
    pub fn lock(&self) -> SimGuard {
        mutex_lock(&self.shared, self.id);
        SimGuard { shared: Arc::clone(&self.shared), mid: self.id, armed: true }
    }
}

/// Guard of a [`SimMutex`]; releases on drop.
pub struct SimGuard {
    shared: Arc<RunShared>,
    mid: usize,
    armed: bool,
}

impl Drop for SimGuard {
    fn drop(&mut self) {
        if self.armed {
            mutex_unlock(&self.shared, self.mid);
        }
    }
}

/// A simulated condvar with FIFO wakeups.
#[derive(Clone)]
pub struct SimCondvar {
    shared: Arc<RunShared>,
    id: usize,
}

impl SimCondvar {
    /// Atomically release the guard's mutex and wait for a notification;
    /// reacquires the mutex before returning (both steps scheduling
    /// points, like a real condvar wait).
    pub fn wait(&self, mut guard: SimGuard) -> SimGuard {
        assert!(Arc::ptr_eq(&guard.shared, &self.shared), "guard from a different run");
        let mid = guard.mid;
        guard.armed = false;
        drop(guard);
        cv_wait(&self.shared, self.id, mid);
        SimGuard { shared: Arc::clone(&self.shared), mid, armed: true }
    }

    /// Wake the longest-waiting waiter, if any (scheduling point).
    pub fn notify_one(&self) {
        cv_notify(&self.shared, self.id, false);
    }

    /// Wake every waiter (scheduling point).
    pub fn notify_all(&self) {
        cv_notify(&self.shared, self.id, true);
    }
}

/// A simulated `VecDeque<u64>` — the queue a deque lock protects.
///
/// Operations are **not** scheduling points: the protocol only touches
/// the queue while holding its [`SimMutex`], so distinct interleavings
/// of queue operations are already distinct interleavings of the lock
/// operations around them. Callers outside a critical section (setup,
/// final checks) get direct access for the same reason.
#[derive(Clone)]
pub struct SimQueue {
    shared: Arc<RunShared>,
    id: usize,
}

impl SimQueue {
    /// Append at the back.
    pub fn push_back(&self, value: u64) {
        let id = self.id;
        direct_op(&self.shared, |w| w.queues[id].push_back(value));
    }

    /// Insert at the front.
    pub fn push_front(&self, value: u64) {
        let id = self.id;
        direct_op(&self.shared, |w| w.queues[id].push_front(value));
    }

    /// Remove from the back.
    pub fn pop_back(&self) -> Option<u64> {
        let id = self.id;
        direct_op(&self.shared, |w| w.queues[id].pop_back())
    }

    /// Remove from the front.
    pub fn pop_front(&self) -> Option<u64> {
        let id = self.id;
        direct_op(&self.shared, |w| w.queues[id].pop_front())
    }

    /// Current length.
    pub fn len(&self) -> usize {
        let id = self.id;
        direct_op(&self.shared, |w| w.queues[id].len())
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the contents, front to back — final checks.
    pub fn peek_items(&self) -> Vec<u64> {
        let id = self.id;
        direct_op(&self.shared, |w| w.queues[id].iter().copied().collect())
    }
}
