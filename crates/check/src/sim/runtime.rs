//! The model-checker runtime: gated model threads, the schedule
//! controller, and the preemption-bounded DFS over schedules.
//!
//! Execution model: each model thread is a real OS thread that parks on a
//! private gate channel before every shared-memory operation and reports
//! back to the controller over a shared event channel after reaching its
//! next scheduling point. The controller opens exactly one gate at a
//! time, so the world (all simulated shared state) is only ever mutated
//! by one thread between decisions — interleavings are explored at the
//! granularity of shared-memory operations, which is exactly the
//! granularity at which the protocols can race.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Model-thread id: index into the spawn order of [`Sim::thread`] calls.
pub(crate) type Tid = usize;

/// How long the controller waits for a scheduled thread to reach its next
/// scheduling point before declaring the run stalled. A correct checker
/// never gets near this; it exists so a non-yielding infinite loop in a
/// protocol under test fails the run instead of hanging the suite.
const STALL_LIMIT: Duration = Duration::from_secs(30);

/// Scheduler-visible state of one model thread, kept in [`World`] so both
/// the controller and the runner threads (under the world lock) agree on
/// who is runnable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ThreadSt {
    /// Parked at a scheduling point, runnable.
    Ready,
    /// Waiting to acquire the given simulated mutex; runnable once it is
    /// unowned.
    BlockedMutex(usize),
    /// Waiting on the given simulated condvar; not runnable until a
    /// notify moves it to [`ThreadSt::BlockedMutex`].
    BlockedCv(usize),
    /// Body returned.
    Finished,
}

/// Owner marker for a mutex acquired outside any model thread (setup or
/// `finally` code running on the controller).
pub(crate) const CONTROLLER: Tid = usize::MAX;

/// All simulated shared state of one run.
#[derive(Default)]
pub(crate) struct World {
    /// Simulated atomics ([`super::Cell`]), by id.
    pub(crate) cells: Vec<u64>,
    /// Current owner of each simulated mutex, `None` when free.
    pub(crate) mutex_owner: Vec<Option<Tid>>,
    /// FIFO waiters per simulated condvar: `(thread, mutex to reacquire)`.
    pub(crate) cv_waiters: Vec<VecDeque<(Tid, usize)>>,
    /// Simulated queues ([`super::SimQueue`]), by id.
    pub(crate) queues: Vec<VecDeque<u64>>,
    /// Scheduler-visible thread states.
    pub(crate) threads: Vec<ThreadSt>,
}

/// Shared between the controller and every runner of one run.
pub(crate) struct RunShared {
    pub(crate) world: Mutex<World>,
}

impl RunShared {
    /// Lock the world, tolerating poison: a model thread that panics
    /// mid-operation must not wedge teardown or mask the original panic.
    pub(crate) fn world(&self) -> std::sync::MutexGuard<'_, World> {
        self.world.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// What a runner reports to the controller after its step.
pub(crate) enum EventKind {
    /// Parked at the next scheduling point, still [`ThreadSt::Ready`].
    AtYield,
    /// Blocked; the runner already recorded *on what* in
    /// [`World::threads`] before sending.
    Blocked,
    /// Body returned.
    Finished,
    /// Body panicked with this message.
    Panicked(String),
}

pub(crate) struct Event {
    pub(crate) tid: Tid,
    pub(crate) kind: EventKind,
}

/// Per-runner context installed in TLS for the duration of the body.
pub(crate) struct Ctx {
    pub(crate) shared: Arc<RunShared>,
    pub(crate) tid: Tid,
    pub(crate) events: mpsc::Sender<Event>,
    pub(crate) gate: mpsc::Receiver<()>,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// Panic payload used to unwind runner threads whose run the controller
/// has abandoned (violation found or prefix replay done); the runner's
/// catch_unwind swallows it silently.
struct Abandon;

fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// True when the calling thread is a model thread of `shared`'s run.
/// Handles used from setup/`finally` code (controller thread, no TLS
/// context) operate on the world directly without scheduling.
fn on_sim_thread(shared: &Arc<RunShared>) -> bool {
    CTX.with(|c| match c.borrow().as_ref() {
        Some(ctx) => {
            assert!(
                Arc::ptr_eq(&ctx.shared, shared),
                "sim handle used from a model thread of a different run"
            );
            true
        }
        None => false,
    })
}

/// Report an event to the controller. Ignores send failure: the receiver
/// is only gone when the run is being abandoned, and then the gate recv
/// will unwind us.
fn send_event(kind: EventKind) {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b.as_ref().expect("send_event outside model thread");
        let _ = ctx.events.send(Event { tid: ctx.tid, kind });
    });
}

/// Park until the controller opens this thread's gate; unwind with
/// [`Abandon`] if the controller dropped it.
fn gate_recv() {
    let ok = CTX.with(|c| {
        let b = c.borrow();
        let ctx = b.as_ref().expect("gate_recv outside model thread");
        ctx.gate.recv().is_ok()
    });
    if !ok {
        std::panic::panic_any(Abandon);
    }
}

/// The scheduling point itself: report and wait to be chosen.
fn yield_point() {
    send_event(EventKind::AtYield);
    gate_recv();
}

/// Run one shared-memory operation as a scheduling point (when called
/// from a model thread) or directly (setup/`finally` on the controller).
pub(crate) fn sim_op<R>(shared: &Arc<RunShared>, op: impl FnOnce(&mut World) -> R) -> R {
    if on_sim_thread(shared) {
        yield_point();
    }
    op(&mut shared.world())
}

/// Run an operation on the world without a scheduling point. Used for
/// operations that are not independently observable interleaving-wise:
/// queue access under an already-held simulated mutex, and mutex release
/// (release-then-reschedule is equivalent to scheduling at the releaser's
/// next operation, since acquirers re-poll under the world lock).
pub(crate) fn direct_op<R>(shared: &Arc<RunShared>, op: impl FnOnce(&mut World) -> R) -> R {
    op(&mut shared.world())
}

/// Acquire simulated mutex `mid`, blocking through the controller.
pub(crate) fn mutex_lock(shared: &Arc<RunShared>, mid: usize) {
    if !on_sim_thread(shared) {
        let mut w = shared.world();
        assert!(w.mutex_owner[mid].is_none(), "controller-side lock of a held sim mutex");
        w.mutex_owner[mid] = Some(CONTROLLER);
        return;
    }
    yield_point();
    let tid = CTX.with(|c| c.borrow().as_ref().expect("model thread").tid);
    loop {
        {
            let mut w = shared.world();
            if w.mutex_owner[mid].is_none() {
                w.mutex_owner[mid] = Some(tid);
                w.threads[tid] = ThreadSt::Ready;
                return;
            }
            w.threads[tid] = ThreadSt::BlockedMutex(mid);
        }
        send_event(EventKind::Blocked);
        gate_recv();
    }
}

/// Release simulated mutex `mid`. Not a scheduling point (see
/// [`direct_op`]); called from guard drop, possibly during unwind.
pub(crate) fn mutex_unlock(shared: &Arc<RunShared>, mid: usize) {
    let mut w = shared.world();
    debug_assert!(w.mutex_owner[mid].is_some(), "unlock of a free sim mutex");
    w.mutex_owner[mid] = None;
}

/// Atomically release `mid` and wait on condvar `cvid`, reacquiring `mid`
/// before returning — the caller's guard must already be disarmed.
pub(crate) fn cv_wait(shared: &Arc<RunShared>, cvid: usize, mid: usize) {
    assert!(on_sim_thread(shared), "condvar wait requires a model thread");
    let tid = CTX.with(|c| c.borrow().as_ref().expect("model thread").tid);
    yield_point();
    {
        let mut w = shared.world();
        debug_assert_eq!(w.mutex_owner[mid], Some(tid), "wait without the lock");
        w.mutex_owner[mid] = None;
        w.cv_waiters[cvid].push_back((tid, mid));
        w.threads[tid] = ThreadSt::BlockedCv(cvid);
    }
    send_event(EventKind::Blocked);
    gate_recv();
    // A notifier moved us to BlockedMutex(mid); the controller scheduled
    // us because the mutex is (momentarily) free — reacquire it.
    loop {
        {
            let mut w = shared.world();
            if w.mutex_owner[mid].is_none() {
                w.mutex_owner[mid] = Some(tid);
                w.threads[tid] = ThreadSt::Ready;
                return;
            }
            w.threads[tid] = ThreadSt::BlockedMutex(mid);
        }
        send_event(EventKind::Blocked);
        gate_recv();
    }
}

/// Wake waiters of condvar `cvid`: the first in FIFO order, or all.
/// A scheduling point (it is observable: it decides who can run).
pub(crate) fn cv_notify(shared: &Arc<RunShared>, cvid: usize, all: bool) {
    sim_op(shared, |w| {
        while let Some((t, m)) = w.cv_waiters[cvid].pop_front() {
            w.threads[t] = ThreadSt::BlockedMutex(m);
            if !all {
                break;
            }
        }
    });
}

/// Registration surface handed to the test closure: allocate shared
/// state, spawn model threads, install the post-run check.
pub struct Sim {
    shared: Arc<RunShared>,
    bodies: Vec<Box<dyn FnOnce() + Send>>,
    finally: Option<Box<dyn FnOnce()>>,
}

impl Sim {
    /// Allocate a simulated atomic initialized to `init`.
    pub fn cell(&mut self, init: u64) -> super::Cell {
        let id = {
            let mut w = self.shared.world();
            w.cells.push(init);
            w.cells.len() - 1
        };
        super::cells::new_cell(Arc::clone(&self.shared), id)
    }

    /// Allocate a simulated mutex.
    pub fn mutex(&mut self) -> super::SimMutex {
        let id = {
            let mut w = self.shared.world();
            w.mutex_owner.push(None);
            w.mutex_owner.len() - 1
        };
        super::cells::new_mutex(Arc::clone(&self.shared), id)
    }

    /// Allocate a simulated condvar.
    pub fn condvar(&mut self) -> super::SimCondvar {
        let id = {
            let mut w = self.shared.world();
            w.cv_waiters.push(VecDeque::new());
            w.cv_waiters.len() - 1
        };
        super::cells::new_condvar(Arc::clone(&self.shared), id)
    }

    /// Allocate a simulated queue (the `VecDeque` behind a deque lock).
    pub fn queue(&mut self) -> super::SimQueue {
        let id = {
            let mut w = self.shared.world();
            w.queues.push(VecDeque::new());
            w.queues.len() - 1
        };
        super::cells::new_queue(Arc::clone(&self.shared), id)
    }

    /// Spawn a model thread; returns its id (the id events and schedules
    /// refer to). Threads start concurrently at their first scheduling
    /// point — code before the first shared-memory operation is setup.
    pub fn thread(&mut self, body: impl FnOnce() + Send + 'static) -> Tid {
        self.bodies.push(Box::new(body));
        self.bodies.len() - 1
    }

    /// Install a check to run on the controller after every complete
    /// schedule (use `peek`-style accessors; not a model thread). An
    /// assertion failure here is reported as a violation with the
    /// schedule that produced it.
    pub fn finally(&mut self, f: impl FnOnce() + 'static) {
        assert!(self.finally.is_none(), "finally installed twice");
        self.finally = Some(Box::new(f));
    }
}

/// Why a schedule was rejected. Carries the schedule — the sequence of
/// thread ids chosen at each decision — so the interleaving is
/// reconstructible by hand.
#[derive(Debug)]
pub enum Violation {
    /// Unfinished threads exist but none is runnable: a lost wakeup /
    /// stranded job / classic deadlock.
    Deadlock {
        /// One line per unfinished thread describing what it waits on.
        waiting: Vec<String>,
        /// The schedule that got here.
        schedule: Vec<Tid>,
    },
    /// A model thread panicked (assertion failure in the test body or
    /// protocol code).
    ThreadPanic {
        /// Which thread.
        tid: Tid,
        /// Panic message.
        message: String,
        /// The schedule that got here.
        schedule: Vec<Tid>,
    },
    /// The [`Sim::finally`] check failed after a complete schedule.
    FinallyFailed {
        /// Panic message from the check.
        message: String,
        /// The complete schedule that produced the bad final state.
        schedule: Vec<Tid>,
    },
    /// A single schedule exceeded the per-run step cap — the protocol
    /// under test livelocks (yields forever without finishing).
    StepLimit {
        /// The schedule so far.
        schedule: Vec<Tid>,
    },
    /// A scheduled thread failed to reach its next scheduling point
    /// within the 30 s stall limit — a non-yielding infinite loop.
    Stalled {
        /// The schedule so far.
        schedule: Vec<Tid>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Deadlock { waiting, schedule } => write!(
                f,
                "deadlock (lost wakeup or stranded work): {}; schedule {:?}",
                waiting.join(", "),
                schedule
            ),
            Violation::ThreadPanic { tid, message, schedule } => {
                write!(f, "model thread {tid} panicked: {message}; schedule {schedule:?}")
            }
            Violation::FinallyFailed { message, schedule } => {
                write!(f, "post-run check failed: {message}; schedule {schedule:?}")
            }
            Violation::StepLimit { schedule } => write!(
                f,
                "step limit exceeded (livelock?); schedule prefix {:?}…",
                &schedule[..schedule.len().min(64)]
            ),
            Violation::Stalled { schedule } => {
                write!(f, "scheduled thread stalled (non-yielding loop?); schedule {schedule:?}")
            }
        }
    }
}

/// Exploration summary for a passing check.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Number of complete schedules executed.
    pub schedules: usize,
    /// True when the DFS exhausted every schedule within the preemption
    /// bound; false when it stopped at the schedule cap.
    pub complete: bool,
}

/// One scheduling decision, recorded for DFS backtracking.
struct Frame {
    /// Runnable threads at this decision, previously-running thread
    /// first (continuing it costs no preemption), the rest ascending.
    ordered: Vec<Tid>,
    /// Index into `ordered` actually taken.
    choice: usize,
    /// Preemptions spent strictly before this decision.
    preempt_before: usize,
    /// Whether the previously-running thread was still runnable here
    /// (i.e. whether a non-zero choice costs a preemption).
    prev_enabled: bool,
}

/// The bounded DFS schedule explorer.
///
/// `Explorer::new(p)` explores every schedule with at most `p`
/// preemptions — context switches at points where the running thread
/// could have continued. Preemption bounding is the standard lever for
/// exhaustive-yet-tractable exploration: concurrency bugs overwhelmingly
/// manifest within two or three preemptions.
pub struct Explorer {
    max_preemptions: usize,
    max_schedules: usize,
    max_steps: usize,
}

impl Explorer {
    /// Explorer with the given preemption bound and default caps
    /// (500 000 schedules, 10 000 steps per schedule).
    pub fn new(max_preemptions: usize) -> Self {
        Explorer { max_preemptions, max_schedules: 500_000, max_steps: 10_000 }
    }

    /// Override the schedule cap (exploration reports `complete: false`
    /// when it hits the cap).
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Explore every schedule of the test within the preemption bound.
    ///
    /// `test` is invoked once per schedule to build a fresh [`Sim`]
    /// (allocate state, spawn threads, install the final check); it must
    /// be deterministic. Returns the first violation found, with its
    /// schedule, or exploration stats.
    pub fn explore(&self, test: impl Fn(&mut Sim)) -> Result<Stats, Violation> {
        let mut prefix: Vec<Tid> = Vec::new();
        let mut schedules = 0usize;
        loop {
            let frames = self.run_one(&test, &prefix)?;
            schedules += 1;
            if schedules >= self.max_schedules {
                return Ok(Stats { schedules, complete: false });
            }
            // Backtrack: deepest decision with an unexplored alternative
            // that stays within the preemption budget. Alternatives to a
            // decision all cost one preemption iff the previous thread
            // was runnable there (continuing it was free), zero if not.
            let mut next: Option<Vec<Tid>> = None;
            for idx in (0..frames.len()).rev() {
                let fr = &frames[idx];
                if fr.choice + 1 < fr.ordered.len() {
                    let cost = usize::from(fr.prev_enabled);
                    if fr.preempt_before + cost <= self.max_preemptions {
                        let mut p: Vec<Tid> =
                            frames[..idx].iter().map(|g| g.ordered[g.choice]).collect();
                        p.push(fr.ordered[fr.choice + 1]);
                        next = Some(p);
                        break;
                    }
                }
            }
            match next {
                Some(p) => prefix = p,
                None => return Ok(Stats { schedules, complete: true }),
            }
        }
    }

    /// [`Explorer::explore`], panicking with the violation's display on
    /// failure — the form tests use (`#[should_panic]` for seeded bugs).
    pub fn check(&self, test: impl Fn(&mut Sim)) -> Stats {
        match self.explore(test) {
            Ok(stats) => stats,
            Err(v) => panic!("model checking failed: {v}"),
        }
    }

    /// Execute one schedule: follow `prefix`, then always continue the
    /// running thread (default choice 0). Returns the decision trace.
    fn run_one(&self, test: &impl Fn(&mut Sim), prefix: &[Tid]) -> Result<Vec<Frame>, Violation> {
        let shared = Arc::new(RunShared { world: Mutex::new(World::default()) });
        let mut sim = Sim { shared: Arc::clone(&shared), bodies: Vec::new(), finally: None };
        test(&mut sim);
        let Sim { bodies, finally, .. } = sim;
        let n = bodies.len();
        assert!(n > 0, "model test spawned no threads");
        shared.world().threads = vec![ThreadSt::Ready; n];

        let (etx, erx) = mpsc::channel::<Event>();
        let mut gates = Vec::with_capacity(n);
        let mut joins = Vec::with_capacity(n);
        for (tid, body) in bodies.into_iter().enumerate() {
            let (gtx, grx) = mpsc::sync_channel::<()>(1);
            gates.push(gtx);
            let ctx = Ctx { shared: Arc::clone(&shared), tid, events: etx.clone(), gate: grx };
            let handle = std::thread::Builder::new()
                .name(format!("sim-{tid}"))
                .stack_size(128 * 1024)
                .spawn(move || {
                    let tid = ctx.tid;
                    CTX.with(|c| *c.borrow_mut() = Some(ctx));
                    let result = catch_unwind(AssertUnwindSafe(body));
                    let ctx =
                        CTX.with(|c| c.borrow_mut().take()).expect("model thread context vanished");
                    match result {
                        Ok(()) => {
                            let _ = ctx.events.send(Event { tid, kind: EventKind::Finished });
                        }
                        Err(p) if p.downcast_ref::<Abandon>().is_some() => {}
                        Err(p) => {
                            let _ = ctx.events.send(Event {
                                tid,
                                kind: EventKind::Panicked(panic_msg(p.as_ref())),
                            });
                        }
                    }
                })
                .expect("spawn model thread");
            joins.push(handle);
        }
        drop(etx);

        let mut finished = 0usize;
        let mut violation: Option<Violation> = None;
        let mut schedule: Vec<Tid> = Vec::new();
        let mut frames: Vec<Frame> = Vec::new();

        // Phase 1: every thread runs (concurrently — no shared-memory
        // operation has executed yet) to its first scheduling point, or
        // finishes/panics outright.
        for _ in 0..n {
            match erx.recv_timeout(STALL_LIMIT) {
                Ok(ev) => match ev.kind {
                    EventKind::AtYield | EventKind::Blocked => {}
                    EventKind::Finished => {
                        shared.world().threads[ev.tid] = ThreadSt::Finished;
                        finished += 1;
                    }
                    EventKind::Panicked(message) => {
                        violation = Some(Violation::ThreadPanic {
                            tid: ev.tid,
                            message,
                            schedule: schedule.clone(),
                        });
                        break;
                    }
                },
                Err(_) => {
                    violation = Some(Violation::Stalled { schedule: schedule.clone() });
                    break;
                }
            }
        }

        // Phase 2: one decision per step until everyone finished.
        let mut prev: Option<Tid> = None;
        let mut preemptions = 0usize;
        while violation.is_none() && finished < n {
            let enabled: Vec<Tid> = {
                let w = shared.world();
                (0..n)
                    .filter(|&t| match w.threads[t] {
                        ThreadSt::Ready => true,
                        ThreadSt::BlockedMutex(m) => w.mutex_owner[m].is_none(),
                        ThreadSt::BlockedCv(_) | ThreadSt::Finished => false,
                    })
                    .collect()
            };
            if enabled.is_empty() {
                let waiting = {
                    let w = shared.world();
                    (0..n)
                        .filter(|&t| w.threads[t] != ThreadSt::Finished)
                        .map(|t| match w.threads[t] {
                            ThreadSt::BlockedMutex(m) => format!("t{t} on mutex {m}"),
                            ThreadSt::BlockedCv(cv) => format!("t{t} on condvar {cv}"),
                            _ => format!("t{t} (unscheduled)"),
                        })
                        .collect()
                };
                violation = Some(Violation::Deadlock { waiting, schedule });
                break;
            }
            let prev_enabled = prev.is_some_and(|p| enabled.contains(&p));
            let mut ordered = enabled;
            if let Some(p) = prev {
                if prev_enabled {
                    ordered.retain(|&t| t != p);
                    ordered.insert(0, p);
                }
            }
            let choice = if frames.len() < prefix.len() {
                let want = prefix[frames.len()];
                ordered
                    .iter()
                    .position(|&t| t == want)
                    .expect("prefix thread must be runnable on replay")
            } else {
                0
            };
            let chosen = ordered[choice];
            frames.push(Frame {
                ordered: ordered.clone(),
                choice,
                preempt_before: preemptions,
                prev_enabled,
            });
            if prev_enabled && Some(chosen) != prev {
                preemptions += 1;
            }
            prev = Some(chosen);
            schedule.push(chosen);
            if frames.len() > self.max_steps {
                violation = Some(Violation::StepLimit { schedule });
                break;
            }
            gates[chosen].send(()).expect("scheduled model thread already exited");
            match erx.recv_timeout(STALL_LIMIT) {
                Ok(ev) => {
                    debug_assert_eq!(ev.tid, chosen, "event from unscheduled thread");
                    match ev.kind {
                        EventKind::AtYield => {
                            shared.world().threads[ev.tid] = ThreadSt::Ready;
                        }
                        EventKind::Blocked => {}
                        EventKind::Finished => {
                            shared.world().threads[ev.tid] = ThreadSt::Finished;
                            finished += 1;
                        }
                        EventKind::Panicked(message) => {
                            violation = Some(Violation::ThreadPanic {
                                tid: ev.tid,
                                message,
                                schedule: schedule.clone(),
                            });
                        }
                    }
                }
                Err(_) => {
                    violation = Some(Violation::Stalled { schedule: schedule.clone() });
                }
            }
        }

        // Teardown: closing the gates unwinds any still-parked runner.
        drop(gates);
        for handle in joins {
            let _ = handle.join();
        }

        if violation.is_none() {
            if let Some(f) = finally {
                if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
                    violation = Some(Violation::FinallyFailed {
                        message: panic_msg(p.as_ref()),
                        schedule: frames.iter().map(|f| f.ordered[f.choice]).collect(),
                    });
                }
            }
        }

        match violation {
            Some(v) => Err(v),
            None => Ok(frames),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads × two independent atomic ops each: exactly C(4,2) = 6
    /// interleavings, all reachable within 3 preemptions. Pins the DFS
    /// enumeration itself.
    #[test]
    fn dfs_enumerates_exactly_the_interleavings() {
        let stats = Explorer::new(3).check(|sim| {
            let a = sim.cell(0);
            let b = sim.cell(0);
            {
                let a = a.clone();
                sim.thread(move || {
                    a.fetch_add(1);
                    a.fetch_add(1);
                });
            }
            {
                let b = b.clone();
                sim.thread(move || {
                    b.fetch_add(1);
                    b.fetch_add(1);
                });
            }
            let (a, b) = (a.clone(), b.clone());
            sim.finally(move || {
                assert_eq!(a.peek(), 2);
                assert_eq!(b.peek(), 2);
            });
        });
        assert!(stats.complete);
        assert_eq!(stats.schedules, 6);
    }

    /// With a preemption bound of 1 the same test explores only the 4
    /// schedules with at most one context switch away from a runnable
    /// thread.
    #[test]
    fn preemption_bound_prunes_schedules() {
        let stats = Explorer::new(1).check(|sim| {
            let a = sim.cell(0);
            {
                let a = a.clone();
                sim.thread(move || {
                    a.fetch_add(1);
                    a.fetch_add(1);
                });
            }
            {
                let a = a.clone();
                sim.thread(move || {
                    a.fetch_add(1);
                    a.fetch_add(1);
                });
            }
        });
        assert!(stats.complete);
        assert_eq!(stats.schedules, 4);
    }

    /// A guaranteed-deadlock shape (both threads wait, nobody notifies)
    /// is detected and reported with the schedule.
    #[test]
    fn deadlock_is_detected() {
        let err = Explorer::new(2)
            .explore(|sim| {
                let m = sim.mutex();
                let cv = sim.condvar();
                for _ in 0..2 {
                    let (m, cv) = (m.clone(), cv.clone());
                    sim.thread(move || {
                        let g = m.lock();
                        drop(cv.wait(g));
                    });
                }
            })
            .unwrap_err();
        match err {
            Violation::Deadlock { waiting, .. } => assert_eq!(waiting.len(), 2),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    /// Mutual exclusion: the simulated mutex actually excludes — a
    /// read-modify-write race under the lock never loses an update.
    #[test]
    fn sim_mutex_provides_mutual_exclusion() {
        let stats = Explorer::new(2).check(|sim| {
            let m = sim.mutex();
            let q = sim.queue();
            for _ in 0..2 {
                let (m, q) = (m.clone(), q.clone());
                sim.thread(move || {
                    let g = m.lock();
                    let len = q.len();
                    q.push_back(len as u64);
                    drop(g);
                });
            }
            let q = q.clone();
            sim.finally(move || {
                assert_eq!(q.peek_items(), vec![0, 1], "updates must not be lost");
            });
        });
        assert!(stats.complete);
    }
}
