//! # dsmatch_check — the verification layer
//!
//! Machine-checked evidence about the concurrency protocols the rayon
//! shim's scheduler is built on, plus a repo-invariant static analyzer.
//! The paper's speedup claims rest on a correct shared-memory runtime;
//! this crate is how the workspace argues that correctness by exploration
//! and enforcement rather than by tests that happen to pass.
//!
//! Three layers:
//!
//! - [`protocol`] — the scheduler's two synchronization protocols
//!   (eventcount sleep/wake, length-hinted deque), extracted out of
//!   `shims/rayon/src/pool.rs` as *parameterized* modules: the protocol
//!   logic is written once against small `Ops` traits and executed both
//!   by the real pool (over `std` atomics, `Mutex`, `Condvar`) and by the
//!   model checker (over simulated primitives).
//! - [`sim`] — a hand-rolled loom-style bounded model checker: a DFS
//!   schedule explorer that drives N model threads through **every**
//!   interleaving of the protocol's shared-memory operations up to a
//!   preemption bound, detecting lost wakeups, stranded jobs and
//!   deadlocks. No crates.io in this build environment, so like the rayon
//!   shim it is written from scratch.
//! - [`lint`] — `dsmatch-lint`, a text/token-level static analyzer (no
//!   `syn`) enforcing the repo's cross-cutting invariants in CI: `SAFETY:`
//!   comments on `unsafe`, poison-tolerant locking on engine paths,
//!   clock-free deterministic kernels, the `DSMATCH_TEST_TIMEOUT_SECS`
//!   deadline knob, and no stray debug macros.
//!
//! The model-checking tests live in `tests/` and run in the default
//! `cargo test` suite; the preemption bound keeps full exploration under
//! a few seconds. See the README's "Static analysis & verification"
//! section for scope and bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
pub mod protocol;
pub mod sim;
