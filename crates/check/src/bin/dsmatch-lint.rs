//! `dsmatch-lint` — the repo-invariant lint pass.
//!
//! Usage: `dsmatch-lint [--root <dir>] [--config <file.json>] [--list-rules]`
//!
//! Walks every `.rs` file under the root (skipping `target/`, `.git/`
//! and the lint's own violation fixtures), applies the rule set from
//! [`dsmatch_check::lint::rules`], prints findings as
//! `path:line: [rule] message`, and exits non-zero when any exist —
//! `-D warnings` semantics for CI.

use std::path::PathBuf;
use std::process::ExitCode;

use dsmatch_check::lint::rules::RULES;
use dsmatch_check::lint::{lint_tree, Config};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(file) => config = Some(PathBuf::from(file)),
                None => return usage("--config needs a file"),
            },
            "--list-rules" => {
                for rule in RULES {
                    println!("{:<14} {}", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let cfg = match config {
        None => Config::repo_default(),
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("dsmatch-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match Config::from_json(&text) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("dsmatch-lint: bad config {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match lint_tree(&root, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("dsmatch-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for finding in &report.findings {
        println!("{finding}");
    }
    if report.findings.is_empty() {
        eprintln!("dsmatch-lint: clean ({} files)", report.files);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "dsmatch-lint: {} finding(s) across {} files",
            report.findings.len(),
            report.files
        );
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("dsmatch-lint: {problem}");
    eprintln!("usage: dsmatch-lint [--root <dir>] [--config <file.json>] [--list-rules]");
    ExitCode::from(2)
}
