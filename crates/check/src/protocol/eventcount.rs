//! The eventcount sleep protocol: how idle pool workers park without ever
//! losing a wakeup.
//!
//! The protocol keeps uncontended pushes lock-free. State:
//!
//! - `epoch` — bumped (`SeqCst`) on every work announcement;
//! - `sleepers` — workers parked or committed to parking;
//! - `shutdown` — latched true when the pool is told to exit;
//! - a mutex + condvar pair used **only** for the park/notify rendezvous
//!   (the condvar's guarded state lives in the atomics, re-checked under
//!   the lock before every wait).
//!
//! The lost-wakeup argument: a worker reads `epoch` *before* its failed
//! work-finding sweep ([`park`] is called with that pre-sweep value), and
//! an announcer bumps `epoch` *before* checking `sleepers`. Both sides
//! are `SeqCst`, so either the announcer observes the sleeper's
//! registration and notifies under the lock, or the parking worker
//! observes the bumped epoch during its re-check under the lock and never
//! waits — never neither. [`crate::sim`]'s explorer verifies this over
//! every interleaving at 2–3 threads, and the seeded-bug regression
//! tests show the same explorer catching each single-step weakening of
//! the protocol (bump after the sleeper check, missing re-check, …).

/// The shared-memory operations the eventcount protocol performs,
/// implemented over `std` primitives by the real pool and over simulated
/// primitives by the model checker.
///
/// Atomic accessors are `SeqCst`. `Guard` is the sleep-lock guard:
/// dropping it releases the lock.
pub trait EventcountOps {
    /// Guard of the sleep mutex; released on drop.
    type Guard<'a>
    where
        Self: 'a;

    /// `SeqCst` load of the wakeup epoch.
    fn epoch(&self) -> u64;
    /// `SeqCst` bump of the wakeup epoch.
    fn bump_epoch(&self);
    /// `SeqCst` load of the parked-worker count.
    fn sleepers(&self) -> usize;
    /// `SeqCst` increment of the parked-worker count.
    fn add_sleeper(&self);
    /// `SeqCst` decrement of the parked-worker count.
    fn remove_sleeper(&self);
    /// `SeqCst` load of the shutdown latch.
    fn is_shutdown(&self) -> bool;
    /// `SeqCst` store latching shutdown on.
    fn set_shutdown(&self);
    /// Acquire the sleep lock.
    fn lock_sleep(&self) -> Self::Guard<'_>;
    /// Atomically release the sleep lock and wait for a notification,
    /// reacquiring the lock before returning.
    fn wait_sleep<'a>(&'a self, guard: Self::Guard<'a>) -> Self::Guard<'a>;
    /// Wake one waiter (caller holds the sleep lock).
    fn notify_one(&self);
    /// Wake every waiter (caller holds the sleep lock).
    fn notify_all(&self);
}

/// Announce new work: advance the wakeup epoch and wake a parked worker,
/// if any. The epoch bump **must** precede the sleeper check — this
/// ordering (against [`park`]'s registration-then-re-check) is the whole
/// protocol; the model checker's seeded-bug regression demonstrates that
/// reversing it loses wakeups.
///
/// The sleeper check keeps the common case (no one parked) entirely
/// lock-free.
pub fn announce<E: EventcountOps>(ec: &E) {
    ec.bump_epoch();
    if ec.sleepers() > 0 {
        let guard = ec.lock_sleep();
        ec.notify_one();
        drop(guard);
    }
}

/// Park until the epoch moves past `seen` or shutdown is latched.
///
/// `seen` must be the epoch value read **before** the failed work-finding
/// sweep that led here: any announcement the sweep missed necessarily
/// bumped the epoch afterwards, so the re-check under the lock observes
/// it and returns instead of waiting.
pub fn park<E: EventcountOps>(ec: &E, seen: u64) {
    let mut guard = ec.lock_sleep();
    ec.add_sleeper();
    while ec.epoch() == seen && !ec.is_shutdown() {
        guard = ec.wait_sleep(guard);
    }
    ec.remove_sleeper();
    drop(guard);
}

/// Latch shutdown and wake every parked worker. Unlike [`announce`] this
/// always takes the lock: shutdown is rare and must reach sleepers that
/// registered concurrently with the latch.
pub fn shutdown<E: EventcountOps>(ec: &E) {
    ec.set_shutdown();
    let guard = ec.lock_sleep();
    ec.notify_all();
    drop(guard);
}
