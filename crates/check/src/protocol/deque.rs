//! The length-hinted work-stealing deque protocol: a mutexed `VecDeque`
//! whose occupancy is mirrored in an atomic hint so sweeps skip empty
//! deques without touching their locks.
//!
//! Invariant: the hint is written **only under the deque lock**, to the
//! exact post-operation length. A lock-free hint read may therefore be
//! stale, but staleness is one-sided in the direction that matters:
//!
//! - While a *remover* (pop/steal) holds the lock, the not-yet-updated
//!   hint **overestimates** the length — a concurrent fast-path read sees
//!   "non-empty", takes the lock, and finds the truth. Never a false
//!   empty.
//! - Only the owner pushes to its own deque ([`push`]) and only a thief
//!   prepends to *its own* deque ([`prepend`]), so a fast-path read that
//!   underestimates during someone else's insertion can only make a thief
//!   skip a victim it could have robbed — the job is not lost, because
//!   the inserter announces the work through the eventcount afterwards
//!   (see [`super::eventcount`]) and the owner drains its own deque
//!   before parking.
//!
//! The model checker verifies the consequences directly: across every
//! interleaving of push/pop/steal/steal-half at 2–3 threads, no job is
//! lost, none is executed twice, and the composed pool loop (sweep with
//! hint fast paths, then park) never strands a pushed job.

/// The shared-memory operations the hinted-deque protocol performs.
///
/// `hint` is read lock-free (`Acquire` in the real pool); every other
/// operation requires the deque lock, passed explicitly as `Guard` so the
/// protocol functions cannot touch the queue without holding it.
pub trait DequeOps {
    /// The queued item type (type-erased jobs in the real pool).
    type Item;
    /// Guard of the deque lock; released on drop.
    type Guard<'a>
    where
        Self: 'a;

    /// Lock-free load of the occupancy hint.
    fn hint(&self) -> usize;
    /// Store the occupancy hint (caller holds the lock).
    fn set_hint(&self, guard: &mut Self::Guard<'_>, len: usize);
    /// Acquire the deque lock.
    fn lock(&self) -> Self::Guard<'_>;
    /// Queue length under the lock.
    fn len(&self, guard: &Self::Guard<'_>) -> usize;
    /// Append at the back (owner side).
    fn push_back(&self, guard: &mut Self::Guard<'_>, item: Self::Item);
    /// Insert at the front (thief re-homing stolen surplus).
    fn push_front(&self, guard: &mut Self::Guard<'_>, item: Self::Item);
    /// Remove from the back (owner side, LIFO).
    fn pop_back(&self, guard: &mut Self::Guard<'_>) -> Option<Self::Item>;
    /// Remove from the front (thief side, FIFO).
    fn pop_front(&self, guard: &mut Self::Guard<'_>) -> Option<Self::Item>;
}

/// Owner-side push at the back, updating the hint under the lock.
pub fn push<D: DequeOps>(deque: &D, item: D::Item) {
    let mut guard = deque.lock();
    deque.push_back(&mut guard, item);
    let len = deque.len(&guard);
    deque.set_hint(&mut guard, len);
}

/// Owner-side pop at the back (LIFO). Lock-free when the hint says empty
/// — safe because the hint never underestimates the owner's own deque
/// (only the owner inserts into it, and removals overestimate while in
/// progress; see the module docs).
pub fn pop<D: DequeOps>(deque: &D) -> Option<D::Item> {
    if deque.hint() == 0 {
        return None;
    }
    let mut guard = deque.lock();
    let item = deque.pop_back(&mut guard);
    let len = deque.len(&guard);
    deque.set_hint(&mut guard, len);
    item
}

/// Thief-side batch pop (FIFO): take the older *half* of the deque (at
/// least one item) in one lock acquisition — steal-half amortizes lock
/// traffic to O(workers · log jobs) per region instead of one victim
/// lock per job. Lock-free when the hint says empty. The surplus beyond
/// the first item is pushed into `surplus` for the thief to re-home with
/// [`prepend`]; the victim's lock is released first, so no thread ever
/// holds two deque locks (which could deadlock two symmetric thieves).
pub fn steal_half<D: DequeOps>(deque: &D, surplus: &mut Vec<D::Item>) -> Option<D::Item> {
    if deque.hint() == 0 {
        return None;
    }
    let mut guard = deque.lock();
    let take = deque.len(&guard).div_ceil(2);
    let first = deque.pop_front(&mut guard);
    for _ in 1..take {
        surplus.push(deque.pop_front(&mut guard).expect("take <= len"));
    }
    let len = deque.len(&guard);
    deque.set_hint(&mut guard, len);
    first
}

/// Re-home stolen surplus onto the thief's **own** deque. Stolen jobs are
/// older than anything the owner will push later, so they go to the
/// front (in reverse, preserving their order) to keep FIFO-ish order for
/// onward thieves.
pub fn prepend<D: DequeOps>(deque: &D, surplus: &mut Vec<D::Item>) {
    if surplus.is_empty() {
        return;
    }
    let mut guard = deque.lock();
    for item in surplus.drain(..).rev() {
        deque.push_front(&mut guard, item);
    }
    let len = deque.len(&guard);
    deque.set_hint(&mut guard, len);
}
