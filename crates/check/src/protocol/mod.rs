//! The scheduler's synchronization protocols, written once and executed
//! twice.
//!
//! Each submodule defines a small `Ops` trait naming the shared-memory
//! operations a protocol performs, plus free functions containing the
//! protocol logic itself. `shims/rayon` implements the traits over real
//! `std` primitives and calls the same free functions from its hot paths;
//! [`crate::sim`] implements them over simulated primitives whose every
//! operation is a scheduling point, so the model checker explores every
//! interleaving of exactly the code the pool runs.
//!
//! The protocols assume sequentially consistent atomics. The real pool
//! uses `SeqCst` for the eventcount pair (epoch, sleepers) — the orderings
//! the lost-wakeup argument rests on — and `Acquire`/`Release` for the
//! deque length hint, whose staleness is tolerated by design (a stale
//! hint can only overestimate emptiness transiently; see
//! [`deque`]). The checker explores the SC interleavings, which covers
//! every outcome the `SeqCst` operations admit.

pub mod deque;
pub mod eventcount;
