//! Lint configuration: which paths each rule covers. The repo default is
//! compiled in; a JSON file (`--config`) can override any field, parsed
//! with the workspace's own `dsmatch_json` (no external deps).

use std::collections::BTreeMap;

use dsmatch_json::Json;

/// Path scoping for the rule set. All paths are workspace-relative with
/// forward slashes; matching is by prefix.
#[derive(Clone, Debug)]
pub struct Config {
    /// Prefixes skipped entirely (generated output, the violation
    /// fixtures the lint's own tests feed it, …).
    pub skip: Vec<String>,
    /// Per-rule applicability: when a rule has a non-empty list here it
    /// only runs under those prefixes; absent/empty means everywhere.
    pub scope: BTreeMap<String, Vec<String>>,
    /// Per-rule exemptions: prefixes where the rule is off even inside
    /// its scope.
    pub exempt: BTreeMap<String, Vec<String>>,
    /// `test-deadline` ignores literals below this many seconds — short
    /// durations in tests are data (job deadlines, latency budgets), not
    /// harness timeouts.
    pub test_deadline_min_secs: u64,
}

impl Config {
    /// The repo's checked-in default scoping.
    pub fn repo_default() -> Config {
        let mut scope = BTreeMap::new();
        // Poison-tolerant locking is an invariant of the serve/engine
        // shared-state paths (the facade crate); elsewhere unwrap-on-lock
        // is fine or covered by its own reasoning.
        scope.insert("lock-unwrap".to_string(), vec!["src/".to_string()]);
        // Determinism: algorithm crates must not read wall clocks.
        scope.insert("wall-clock".to_string(), vec!["crates/".to_string()]);
        let mut exempt = BTreeMap::new();
        // The bench harness exists to measure time.
        exempt.insert("wall-clock".to_string(), vec!["crates/bench/".to_string()]);
        // The lint implementation necessarily spells out the marker
        // syntax in format strings and docs; a token-level pass cannot
        // tell those templates from real (malformed) markers.
        exempt.insert("allow-marker".to_string(), vec!["crates/check/src/lint/".to_string()]);
        Config {
            skip: vec![
                "target/".to_string(),
                ".git/".to_string(),
                "crates/check/tests/fixtures/".to_string(),
            ],
            scope,
            exempt,
            test_deadline_min_secs: 3,
        }
    }

    /// Parse a JSON override file on top of [`Config::repo_default`].
    ///
    /// Recognized keys (all optional): `"skip"` (array of prefixes),
    /// `"scope"` / `"exempt"` (objects mapping rule name → array of
    /// prefixes, replacing the default entry for that rule), and
    /// `"test_deadline_min_secs"` (integer).
    pub fn from_json(text: &str) -> Result<Config, String> {
        let json = Json::parse(text)?;
        let mut cfg = Config::repo_default();
        if let Some(skip) = json.get("skip") {
            cfg.skip = str_list("skip", skip)?;
        }
        if let Some(scope) = json.get("scope") {
            merge_map("scope", scope, &mut cfg.scope)?;
        }
        if let Some(exempt) = json.get("exempt") {
            merge_map("exempt", exempt, &mut cfg.exempt)?;
        }
        if let Some(min) = json.get("test_deadline_min_secs") {
            cfg.test_deadline_min_secs =
                min.as_u64().ok_or("test_deadline_min_secs must be an integer")?;
        }
        Ok(cfg)
    }

    /// Whether `rule` applies to `rel` under this scoping.
    pub fn applies(&self, rule: &str, rel: &str) -> bool {
        if let Some(prefixes) = self.scope.get(rule) {
            if !prefixes.is_empty() && !prefixes.iter().any(|p| rel.starts_with(p.as_str())) {
                return false;
            }
        }
        if let Some(prefixes) = self.exempt.get(rule) {
            if prefixes.iter().any(|p| rel.starts_with(p.as_str())) {
                return false;
            }
        }
        true
    }

    /// Whether `rel` is skipped outright.
    pub fn skipped(&self, rel: &str) -> bool {
        self.skip.iter().any(|p| rel.starts_with(p.as_str()))
    }
}

fn str_list(key: &str, json: &Json) -> Result<Vec<String>, String> {
    let arr = json.as_arr().ok_or_else(|| format!("{key} must be an array of strings"))?;
    arr.iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{key} must be an array of strings"))
        })
        .collect()
}

fn merge_map(
    key: &str,
    json: &Json,
    into: &mut BTreeMap<String, Vec<String>>,
) -> Result<(), String> {
    let Json::Obj(pairs) = json else {
        return Err(format!("{key} must be an object of rule → prefix arrays"));
    };
    for (rule, prefixes) in pairs {
        into.insert(rule.clone(), str_list(key, prefixes)?);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scoping() {
        let cfg = Config::repo_default();
        assert!(cfg.applies("lock-unwrap", "src/engine/serve.rs"));
        assert!(!cfg.applies("lock-unwrap", "crates/graph/src/lib.rs"));
        assert!(cfg.applies("wall-clock", "crates/graph/src/lib.rs"));
        assert!(!cfg.applies("wall-clock", "crates/bench/src/lib.rs"));
        assert!(cfg.applies("unsafe-block", "anything/at/all.rs"));
        assert!(cfg.skipped("crates/check/tests/fixtures/bad.rs"));
    }

    #[test]
    fn json_overrides_merge_over_default() {
        let cfg = Config::from_json(
            r#"{"skip": ["vendor/"],
                "scope": {"lock-unwrap": ["src/", "shims/"]},
                "exempt": {"debug-macro": ["crates/gen/"]},
                "test_deadline_min_secs": 10}"#,
        )
        .unwrap();
        assert!(cfg.skipped("vendor/x.rs"));
        assert!(!cfg.skipped("target/x.rs"), "skip list is replaced");
        assert!(cfg.applies("lock-unwrap", "shims/rayon/src/pool.rs"));
        assert!(!cfg.applies("debug-macro", "crates/gen/src/lib.rs"));
        assert_eq!(cfg.test_deadline_min_secs, 10);
        // untouched defaults survive
        assert!(!cfg.applies("wall-clock", "crates/bench/src/lib.rs"));
    }

    #[test]
    fn malformed_config_is_an_error() {
        assert!(Config::from_json("{\"scope\": [1,2]}").is_err());
        assert!(Config::from_json("not json").is_err());
    }
}
