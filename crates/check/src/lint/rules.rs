//! The rule set. Each rule is a pure function over a lexed [`Source`]
//! plus path context; the engine handles scoping, allow markers and
//! reporting. Rules search the *masked* text (so string/comment content
//! can't trigger them) and read *raw* lines only where comment text is
//! the point (`SAFETY:` audits).

use super::config::Config;
use super::scan::{find_all, word_at, Source};

/// A rule hit before allow-marker filtering.
pub struct RawFinding {
    /// 1-based line.
    pub line: usize,
    /// Human-readable description with the fix.
    pub message: String,
}

/// Per-file context handed to every rule.
pub struct RuleCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// Lexed source.
    pub src: &'a Source,
    /// Active configuration.
    pub cfg: &'a Config,
    /// 1-based line of the first `#[cfg(test)]` attribute, if any. The
    /// engine treats everything from there to EOF as test code — a
    /// deliberate over-approximation (the repo keeps test modules last in
    /// a file) that a token-level pass can get right without parsing.
    pub test_start: Option<usize>,
    /// True when the file lives under a `tests/` directory.
    pub in_tests_dir: bool,
}

impl RuleCtx<'_> {
    /// Whether `line` is test code under the heuristic above.
    pub fn is_test_code(&self, line: usize) -> bool {
        self.in_tests_dir || self.test_start.is_some_and(|start| line >= start)
    }
}

/// A named lint rule.
pub struct Rule {
    /// Rule name — the token used in `lint:allow(<name>)` markers and
    /// config keys.
    pub name: &'static str,
    /// One-line description for `--list-rules` and the README table.
    pub summary: &'static str,
    /// The check itself.
    pub check: fn(&RuleCtx<'_>) -> Vec<RawFinding>,
}

/// Every rule, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "unsafe-block",
        summary: "every `unsafe` keyword needs a `// SAFETY:` comment on the same line or in the comment block directly above",
        check: check_unsafe_block,
    },
    Rule {
        name: "lock-unwrap",
        summary: "no `.lock().unwrap()` / `.lock().expect(...)` on serve/engine shared-state paths — use poison-tolerant `unwrap_or_else(|p| p.into_inner())` or return a structured error",
        check: check_lock_unwrap,
    },
    Rule {
        name: "wall-clock",
        summary: "no `Instant::now` / `SystemTime::now` in algorithm crates — kernels must be deterministic; clocks live in the harness",
        check: check_wall_clock,
    },
    Rule {
        name: "test-deadline",
        summary: "no hard-coded multi-second test deadlines — route them through the DSMATCH_TEST_TIMEOUT_SECS knob",
        check: check_test_deadline,
    },
    Rule {
        name: "debug-macro",
        summary: "no `dbg!` / `todo!` / `unimplemented!` anywhere",
        check: check_debug_macro,
    },
];

/// Name of the marker-wellformedness meta rule (reported by the engine,
/// not listed in [`RULES`] since it cannot itself be allowed away).
pub const ALLOW_MARKER_RULE: &str = "allow-marker";

/// Look up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

fn check_unsafe_block(ctx: &RuleCtx<'_>) -> Vec<RawFinding> {
    let masked = ctx.src.masked();
    let mut out = Vec::new();
    for pos in find_all(masked, "unsafe") {
        if !word_at(masked, pos, "unsafe") {
            continue;
        }
        let line = ctx.src.line_of(pos);
        if !safety_documented(ctx.src, line) {
            out.push(RawFinding {
                line,
                message: "`unsafe` without a `// SAFETY:` comment justifying it".to_string(),
            });
        }
    }
    out
}

/// True when `line` carries a `SAFETY:` comment, or the contiguous run
/// of `//` comment lines directly above it does. Scanning the whole
/// comment block (rather than a fixed window) lets long justifications
/// keep their `SAFETY:` tag on the first line.
fn safety_documented(src: &Source, line: usize) -> bool {
    if src.raw_line(line).contains("SAFETY:") {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let above = src.raw_line(l);
        if !above.trim_start().starts_with("//") {
            return false;
        }
        if above.contains("SAFETY:") {
            return true;
        }
    }
    false
}

fn check_lock_unwrap(ctx: &RuleCtx<'_>) -> Vec<RawFinding> {
    let masked = ctx.src.masked();
    let mut out = Vec::new();
    for needle in [".lock().unwrap()", ".lock().expect("] {
        for pos in find_all(masked, needle) {
            let line = ctx.src.line_of(pos);
            if ctx.is_test_code(line) {
                continue;
            }
            out.push(RawFinding {
                line,
                message: format!(
                    "`{needle}…` panics on a poisoned lock; use `.lock().unwrap_or_else(|p| p.into_inner())` or reply with a structured error"
                ),
            });
        }
    }
    out
}

fn check_wall_clock(ctx: &RuleCtx<'_>) -> Vec<RawFinding> {
    let masked = ctx.src.masked();
    let mut out = Vec::new();
    for needle in ["Instant::now", "SystemTime::now"] {
        for pos in find_all(masked, needle) {
            let line = ctx.src.line_of(pos);
            if ctx.is_test_code(line) {
                continue;
            }
            out.push(RawFinding {
                line,
                message: format!(
                    "`{needle}` in an algorithm crate breaks determinism; thread time in from the caller"
                ),
            });
        }
    }
    out
}

fn check_test_deadline(ctx: &RuleCtx<'_>) -> Vec<RawFinding> {
    let masked = ctx.src.masked();
    let mut out = Vec::new();
    for pos in find_all(masked, "from_secs(") {
        let line = ctx.src.line_of(pos);
        if !ctx.is_test_code(line) {
            continue;
        }
        let after = &masked[pos + "from_secs(".len()..];
        let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
        let Ok(secs) = digits.parse::<u64>() else {
            continue; // non-literal argument: a named constant or knob
        };
        if secs < ctx.cfg.test_deadline_min_secs {
            continue;
        }
        // A nearby mention of the knob means this literal is its default.
        let lo = line.saturating_sub(8).max(1);
        let knob_nearby =
            (lo..=line).any(|l| ctx.src.raw_line(l).contains("DSMATCH_TEST_TIMEOUT_SECS"));
        if !knob_nearby {
            out.push(RawFinding {
                line,
                message: format!(
                    "hard-coded {secs}s test deadline; derive it from DSMATCH_TEST_TIMEOUT_SECS so slow runners (tsan, ci) can widen it"
                ),
            });
        }
    }
    out
}

fn check_debug_macro(ctx: &RuleCtx<'_>) -> Vec<RawFinding> {
    let masked = ctx.src.masked();
    let mut out = Vec::new();
    for name in ["dbg", "todo", "unimplemented"] {
        let needle = format!("{name}!(");
        for pos in find_all(masked, &needle) {
            if !word_at(masked, pos, name) {
                continue;
            }
            out.push(RawFinding {
                line: ctx.src.line_of(pos),
                message: format!("`{name}!` must not ship"),
            });
        }
    }
    out
}
