//! The masking scanner: a single pass over Rust source that blanks the
//! interiors of comments, string/char literals and doc text with spaces,
//! leaving code tokens at their original byte offsets.
//!
//! Rules search the masked text, so `"lock().unwrap()"` inside a string
//! literal or a comment can never trigger a code rule — and rules that
//! *need* comment text (`SAFETY:` audits, `lint:allow` markers) read the
//! untouched raw lines. This is deliberately a lexer, not a parser: the
//! repo invariants it checks are token-shaped, and a token-level pass
//! cannot be wrong about nesting the way a regex would be.

/// A lexed source file: the raw text, its code-only masked twin (same
/// length, comments/strings blanked to spaces, newlines preserved), and
/// a line index shared by both.
pub struct Source {
    raw: String,
    masked: String,
    line_starts: Vec<usize>,
}

impl Source {
    /// Lex `raw` into a masked view.
    pub fn new(raw: String) -> Source {
        let masked = mask(&raw);
        let mut line_starts = vec![0usize];
        for (i, b) in raw.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Source { raw, masked, line_starts }
    }

    /// The untouched source text.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// The masked (code-only) text, byte-for-byte aligned with `raw`.
    pub fn masked(&self) -> &str {
        &self.masked
    }

    /// Number of lines (a trailing newline does not start a new line).
    pub fn line_count(&self) -> usize {
        if self.line_starts.last() == Some(&self.raw.len()) && self.raw.ends_with('\n') {
            self.line_starts.len() - 1
        } else {
            self.line_starts.len()
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    fn line_span(&self, line: usize) -> (usize, usize) {
        let start = self.line_starts[line - 1];
        let end = self.line_starts.get(line).map_or(self.raw.len(), |&next| next.saturating_sub(1));
        (start, end)
    }

    /// Raw text of 1-based `line`, without the newline.
    pub fn raw_line(&self, line: usize) -> &str {
        let (start, end) = self.line_span(line);
        &self.raw[start..end]
    }

    /// Masked text of 1-based `line`, without the newline.
    pub fn masked_line(&self, line: usize) -> &str {
        let (start, end) = self.line_span(line);
        &self.masked[start..end]
    }
}

/// True when `text[pos..]` starts with `token` at an identifier boundary
/// on both sides (so `unsafe` does not match inside `unsafe_code`).
pub fn word_at(text: &str, pos: usize, token: &str) -> bool {
    let bytes = text.as_bytes();
    if !text[pos..].starts_with(token) {
        return false;
    }
    let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    if pos > 0 && ident(bytes[pos - 1]) {
        return false;
    }
    let end = pos + token.len();
    end >= bytes.len() || !ident(bytes[end])
}

/// Byte offsets at which `needle` occurs in `haystack`.
pub fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        out.push(from + rel);
        from += rel + needle.len().max(1);
    }
    out
}

/// Blank comment and string/char interiors to spaces, preserving length
/// and newlines.
fn mask(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = bytes.to_vec();
    let blank = |out: &mut [u8], range: std::ops::Range<usize>| {
        for b in &mut out[range] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = raw[i..].find('\n').map_or(bytes.len(), |rel| i + rel);
                blank(&mut out, i..end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i..j);
                i = j;
            }
            b'"' => {
                let end = skip_string(bytes, i);
                blank(&mut out, i..end);
                i = end;
            }
            b'r' | b'b' if !prev_is_ident(bytes, i) => {
                if let Some(end) = skip_raw_or_byte_string(bytes, i) {
                    blank(&mut out, i..end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                if let Some(end) = skip_char_literal(raw, i) {
                    blank(&mut out, i..end);
                    i = end;
                } else {
                    i += 1; // lifetime or loop label: not a literal
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("masking only writes ASCII spaces")
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// `i` points at an opening `"`; return the offset just past the close.
fn skip_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// `i` points at `r` or `b`; recognize `r"`, `r#"`, `b"`, `br"`, `br#"`,
/// `b'…'` prefixes and return the offset past the literal.
fn skip_raw_or_byte_string(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'\'') {
            // byte char literal b'x' / b'\n'
            let mut k = j + 1;
            while k < bytes.len() {
                match bytes[k] {
                    b'\\' => k += 2,
                    b'\'' => return Some(k + 1),
                    _ => k += 1,
                }
            }
            return Some(bytes.len());
        }
        if bytes.get(j) == Some(&b'"') {
            return Some(skip_string(bytes, j));
        }
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    // scan for `"` followed by `hashes` hashes
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(bytes.len())
}

/// `i` points at `'`; return `Some(end)` when it opens a char literal,
/// `None` when it is a lifetime/label tick.
fn skip_char_literal(raw: &str, i: usize) -> Option<usize> {
    let rest = &raw[i + 1..];
    let mut chars = rest.char_indices();
    let (_, first) = chars.next()?;
    if first == '\\' {
        // escaped char: scan to the closing quote
        let bytes = raw.as_bytes();
        let mut j = i + 2;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(raw.len());
    }
    // `'c'` (any single char, maybe multibyte) — else a lifetime
    match chars.next() {
        Some((off, '\'')) => Some(i + 1 + off + 1),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = Source::new(
            "let x = \"unsafe { }\"; // dbg!(x)\nlet y = 'a'; /* todo!() */ let z = 1;\n"
                .to_string(),
        );
        assert!(!src.masked().contains("unsafe"));
        assert!(!src.masked().contains("dbg!"));
        assert!(!src.masked().contains("todo!"));
        assert!(src.masked().contains("let z = 1;"));
        assert_eq!(src.masked().len(), src.raw().len());
    }

    #[test]
    fn raw_strings_and_lifetimes_survive() {
        let src = Source::new(
            "fn f<'a>(s: &'a str) -> &'a str { s }\nlet r = r#\"lock().unwrap()\"#;\n".to_string(),
        );
        assert!(src.masked().contains("fn f<'a>(s: &'a str)"));
        assert!(!src.masked().contains("lock().unwrap()"));
    }

    #[test]
    fn nested_block_comments() {
        let src = Source::new("/* a /* b */ dbg!(1) */ let ok = 2;".to_string());
        assert!(!src.masked().contains("dbg!"));
        assert!(src.masked().contains("let ok = 2;"));
    }

    #[test]
    fn word_boundaries() {
        let text = "forbid(unsafe_code) unsafe {";
        let hits: Vec<usize> =
            find_all(text, "unsafe").into_iter().filter(|&p| word_at(text, p, "unsafe")).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(&text[hits[0]..hits[0] + 8], "unsafe {");
    }

    #[test]
    fn line_index() {
        let src = Source::new("a\nbb\nccc\n".to_string());
        assert_eq!(src.line_count(), 3);
        assert_eq!(src.line_of(0), 1);
        assert_eq!(src.line_of(2), 2);
        assert_eq!(src.raw_line(2), "bb");
        assert_eq!(src.raw_line(3), "ccc");
    }
}
