//! The lint driver: file walking, test-region detection, allow-marker
//! handling, and finding assembly.
//!
//! Allow markers are the escape hatch: a comment `lint:allow(<rule>):
//! <justification>` on the offending line or the line directly above
//! suppresses that rule there. The justification is mandatory — a marker
//! without one (or naming an unknown rule) is itself reported under the
//! `allow-marker` meta rule, which cannot be allowed away.

use std::fs;
use std::io;
use std::path::Path;

use super::config::Config;
use super::rules::{rule_by_name, RuleCtx, ALLOW_MARKER_RULE, RULES};
use super::scan::Source;

/// A reportable lint violation.
#[derive(Debug)]
pub struct Finding {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Description with the fix.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Result of linting a tree.
pub struct Report {
    /// All findings, in path/line order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

/// Lint one source text as if it lived at `rel`.
pub fn lint_source(rel: &str, text: String, cfg: &Config) -> Vec<Finding> {
    let src = Source::new(text);
    let test_start = (1..=src.line_count())
        .find(|&l| src.masked_line(l).trim_start().starts_with("#[cfg(test)]"));
    let in_tests_dir = rel.starts_with("tests/") || rel.contains("/tests/");
    let ctx = RuleCtx { rel, src: &src, cfg, test_start, in_tests_dir };
    let mut findings = Vec::new();
    for rule in RULES {
        if !cfg.applies(rule.name, rel) {
            continue;
        }
        for raw in (rule.check)(&ctx) {
            if has_allow_marker(&src, raw.line, rule.name) {
                continue;
            }
            findings.push(Finding {
                rule: rule.name.to_string(),
                path: rel.to_string(),
                line: raw.line,
                message: raw.message,
            });
        }
    }
    if cfg.applies(ALLOW_MARKER_RULE, rel) {
        findings.extend(check_markers(rel, &src));
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
    findings
}

/// Lint the file at `root/rel`.
pub fn lint_file(root: &Path, rel: &str, cfg: &Config) -> io::Result<Vec<Finding>> {
    let text = fs::read_to_string(root.join(rel))?;
    Ok(lint_source(rel, text, cfg))
}

/// Lint every `.rs` file under `root` (deterministic order), honoring
/// the config's skip list.
pub fn lint_tree(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut report = Report { findings: Vec::new(), files: 0 };
    walk(root, String::new(), cfg, &mut report)?;
    Ok(report)
}

fn walk(root: &Path, rel: String, cfg: &Config, report: &mut Report) -> io::Result<()> {
    let dir = if rel.is_empty() { root.to_path_buf() } else { root.join(&rel) };
    let mut entries: Vec<(String, bool)> = Vec::new();
    for entry in fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_dir = entry.file_type()?.is_dir();
        entries.push((name, is_dir));
    }
    entries.sort();
    for (name, is_dir) in entries {
        let child_rel = if rel.is_empty() { name.clone() } else { format!("{rel}/{name}") };
        let probe = if is_dir { format!("{child_rel}/") } else { child_rel.clone() };
        if cfg.skipped(&probe) {
            continue;
        }
        if is_dir {
            walk(root, child_rel, cfg, report)?;
        } else if name.ends_with(".rs") {
            report.files += 1;
            report.findings.extend(lint_file(root, &child_rel, cfg)?);
        }
    }
    Ok(())
}

/// True when line `line` or the one above carries `lint:allow(<rule>)`.
fn has_allow_marker(src: &Source, line: usize, rule: &str) -> bool {
    let needle = format!("lint:allow({rule})");
    let lo = line.saturating_sub(1).max(1);
    (lo..=line).any(|l| src.raw_line(l).contains(needle.as_str()))
}

/// The `allow-marker` meta rule: every marker in the file must name a
/// known rule and carry a non-empty justification after a colon.
fn check_markers(rel: &str, src: &Source) -> Vec<Finding> {
    let mut out = Vec::new();
    for line in 1..=src.line_count() {
        let text = src.raw_line(line);
        let mut from = 0;
        while let Some(pos) = text[from..].find("lint:allow(") {
            let start = from + pos + "lint:allow(".len();
            let problem = match text[start..].find(')') {
                None => Some("unterminated marker".to_string()),
                Some(close) => {
                    let name = &text[start..start + close];
                    let rest = &text[start + close + 1..];
                    if rule_by_name(name).is_none() {
                        Some(format!("marker names unknown rule `{name}`"))
                    } else if !rest.trim_start().starts_with(':')
                        || rest.trim_start()[1..].trim().is_empty()
                    {
                        Some(format!(
                            "marker for `{name}` lacks a justification — write `lint:allow({name}): <why>`"
                        ))
                    } else {
                        None
                    }
                }
            };
            if let Some(message) = problem {
                out.push(Finding {
                    rule: ALLOW_MARKER_RULE.to_string(),
                    path: rel.to_string(),
                    line,
                    message,
                });
            }
            from = start;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, text: &str) -> Vec<Finding> {
        lint_source(rel, text.to_string(), &Config::repo_default())
    }

    #[test]
    fn allow_marker_suppresses_on_same_or_previous_line() {
        let same =
            "fn f() { let x = 1; dbg!(x); } // lint:allow(debug-macro): exercising the marker\n";
        assert!(lint("src/a.rs", same).is_empty());
        let above = "// lint:allow(debug-macro): exercising the marker\ndbg!(1);\n";
        assert!(lint("src/a.rs", above).is_empty());
        let far = "// lint:allow(debug-macro): too far away\n\n\ndbg!(1);\n";
        assert_eq!(lint("src/a.rs", far).len(), 1);
    }

    #[test]
    fn marker_without_justification_is_flagged() {
        let bare = "dbg!(1); // lint:allow(debug-macro)\n";
        let found = lint("src/a.rs", bare);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "allow-marker");
        let unknown = "// lint:allow(no-such-rule): whatever\n";
        let found = lint("src/a.rs", unknown);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("unknown rule"));
    }

    #[test]
    fn test_region_heuristic() {
        let text = "fn prod(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }\n\
                    #[cfg(test)]\n\
                    mod tests { fn t(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); } }\n";
        let found = lint("src/a.rs", text);
        assert_eq!(found.len(), 1, "only the non-test site: {found:?}");
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn scoping_respects_config() {
        let text = "fn f(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }\n";
        assert_eq!(lint("src/a.rs", text).len(), 1);
        assert!(lint("crates/graph/src/a.rs", text).is_empty());
    }
}
