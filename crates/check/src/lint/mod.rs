//! `dsmatch-lint`: a text/token-level static analyzer (no `syn`, no
//! crates.io) enforcing the repo's cross-cutting invariants. See
//! [`rules`] for the rule set and [`scan`] for the comment/string-masking
//! tokenizer the rules run over.

pub mod config;
pub mod engine;
pub mod rules;
pub mod scan;

pub use config::Config;
pub use engine::{lint_file, lint_tree, Finding};
