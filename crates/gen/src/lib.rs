//! # dsmatch-gen — instance generators
//!
//! Synthetic instances substituting for the paper's workloads (see
//! DESIGN.md §3 for the substitution rationale):
//!
//! - [`erdos_renyi_square`] / [`erdos_renyi_rect`] — MATLAB `sprand`
//!   equivalents (Erdős–Rényi random patterns) used by the paper's Table 2
//!   sprank-deficiency study;
//! - [`adversarial_ks`] — the Figure-2 family engineered to defeat the
//!   classic Karp–Sipser heuristic (Table 1);
//! - [`dense_ones`] — the all-ones matrix of the Conjecture-1 discussion
//!   (its scaled sampling is the random 1-out model);
//! - [`chung_lu`] — skewed (power-law-ish) degree sequences reproducing the
//!   high row-variance matrices (`torso1`, `audikw_1`) that drive the
//!   paper's load-imbalance observations;
//! - [`grid_mesh`] — 5-point-stencil meshes standing in for the PDE
//!   matrices (`atmosmodl`, `venturiLevel3`, …);
//! - [`random_regular`] — near-`d`-regular patterns (road-network-like,
//!   `europe_osm` / `road_usa` have avg degree ≈ 2);
//! - [`rmat`] — Graph500-style recursive-matrix patterns with
//!   hierarchical skew;
//! - [`ring`] / [`path_graph`] / [`permutation`] — structured instances for
//!   tests and examples;
//! - [`suite`] — named surrogate configurations for the 12 UFL matrices of
//!   the paper's Table 3 / Figures 3–5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod random;
mod rmat;
mod structured;
pub mod suite;

pub use adversarial::adversarial_ks;
pub use random::{chung_lu, erdos_renyi_rect, erdos_renyi_square, random_regular};
pub use rmat::{rmat, RmatParams};
pub use structured::{dense_ones, grid_mesh, path_graph, permutation, ring};
