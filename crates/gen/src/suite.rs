//! Surrogate suite for the paper's 12 UFL test matrices (Table 3,
//! Figures 3–5).
//!
//! The UFL/SuiteSparse files are not available offline, so each matrix is
//! replaced by a synthetic generator matched on the structural axes that
//! drive the paper's observations: vertex count, average degree, degree
//! *variance* (the paper explains the poor scalability of `torso1` and
//! `audikw_1` by row-degree variances of 176056 and 1802), and
//! sprank-deficiency (`europe_osm` 0.99, `road_usa` 0.95). See DESIGN.md §3.
//!
//! By default instances are shrunk by a configurable factor so the whole
//! harness runs on a laptop; pass `shrink = 1` to build paper-sized
//! instances (up to 5×10⁷ vertices — you will need tens of GB of RAM, as
//! the authors' 256 GB machine did).

use dsmatch_graph::{BipartiteGraph, SplitMix64, TripletMatrix};

use crate::random::{chung_lu, erdos_renyi_square, random_regular};
use crate::structured::grid_mesh;

/// Structural family of a surrogate instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Family {
    /// 5-point-stencil mesh (PDE matrices).
    Mesh,
    /// Union of `d` random permutations with a fraction of entries deleted
    /// (road networks; deletion introduces sprank deficiency).
    Regular {
        /// Number of permutations unioned.
        d: usize,
        /// Fraction of entries removed afterwards.
        delete_frac: f64,
    },
    /// Chung–Lu power-law degrees, optionally with a zero-free diagonal
    /// added to guarantee full sprank (FEM / biomedical matrices with
    /// heavy-tailed rows).
    ChungLu {
        /// Power-law exponent (smaller = heavier tail).
        gamma: f64,
        /// Target average degree.
        avg_deg: f64,
        /// Add the identity diagonal (forces a perfect matching).
        diagonal: bool,
    },
    /// Erdős–Rényi with the given average degree (unstructured matrices).
    ErdosRenyi {
        /// Target average degree.
        avg_deg: f64,
    },
}

/// One surrogate instance description.
#[derive(Clone, Copy, Debug)]
pub struct SuiteEntry {
    /// UFL matrix name this entry substitutes for.
    pub name: &'static str,
    /// Row/column count of the original matrix.
    pub paper_n: usize,
    /// Average degree reported in the paper's Table 3.
    pub paper_avg_deg: f64,
    /// `sprank / n` reported in the paper's Table 3.
    pub paper_sprank_ratio: f64,
    /// Generator family used as the surrogate.
    pub family: Family,
}

impl SuiteEntry {
    /// Instance size after dividing the paper size by `shrink` (floored at
    /// 4096 so the smallest instances stay meaningful).
    pub fn scaled_n(&self, shrink: usize) -> usize {
        (self.paper_n / shrink.max(1)).max(4096)
    }

    /// Build the surrogate with `n` rows/columns.
    pub fn build(&self, n: usize, seed: u64) -> BipartiteGraph {
        match self.family {
            Family::Mesh => {
                let side = (n as f64).sqrt().round() as usize;
                grid_mesh(side.max(2), side.max(2))
            }
            Family::Regular { d, delete_frac } => {
                let g = random_regular(n, d, seed);
                if delete_frac > 0.0 {
                    delete_entries(&g, delete_frac, seed ^ 0xDE1E7E)
                } else {
                    g
                }
            }
            Family::ChungLu { gamma, avg_deg, diagonal } => {
                let g = chung_lu(n, avg_deg, gamma, seed);
                if diagonal {
                    add_diagonal(&g)
                } else {
                    g
                }
            }
            Family::ErdosRenyi { avg_deg } => erdos_renyi_square(n, avg_deg, seed),
        }
    }

    /// Build at the default shrunk size.
    pub fn build_scaled(&self, shrink: usize, seed: u64) -> BipartiteGraph {
        self.build(self.scaled_n(shrink), seed)
    }
}

/// Remove each entry independently with probability `frac`.
fn delete_entries(g: &BipartiteGraph, frac: f64, seed: u64) -> BipartiteGraph {
    let mut rng = SplitMix64::new(seed);
    let mut t = TripletMatrix::with_capacity(g.nrows(), g.ncols(), g.nnz());
    for (i, j) in g.csr().iter_entries() {
        if rng.next_f64() >= frac {
            t.push(i, j);
        }
    }
    BipartiteGraph::from_csr(t.into_csr())
}

/// Union the pattern with the identity diagonal.
fn add_diagonal(g: &BipartiteGraph) -> BipartiteGraph {
    let n = g.nrows().min(g.ncols());
    let mut t = TripletMatrix::with_capacity(g.nrows(), g.ncols(), g.nnz() + n);
    for (i, j) in g.csr().iter_entries() {
        t.push(i, j);
    }
    for i in 0..n {
        t.push(i, i);
    }
    BipartiteGraph::from_csr(t.into_csr())
}

/// The 12 surrogate descriptions, in the paper's Table 3 order.
pub fn instances() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "atmosmodl",
            paper_n: 1_489_752,
            paper_avg_deg: 6.9,
            paper_sprank_ratio: 1.00,
            family: Family::Mesh,
        },
        SuiteEntry {
            name: "audikw_1",
            paper_n: 943_695,
            paper_avg_deg: 82.2,
            paper_sprank_ratio: 1.00,
            family: Family::ChungLu { gamma: 2.6, avg_deg: 40.0, diagonal: true },
        },
        SuiteEntry {
            name: "cage15",
            paper_n: 5_154_859,
            paper_avg_deg: 19.2,
            paper_sprank_ratio: 1.00,
            family: Family::ErdosRenyi { avg_deg: 19.2 },
        },
        SuiteEntry {
            name: "channel",
            paper_n: 4_802_000,
            paper_avg_deg: 17.8,
            paper_sprank_ratio: 1.00,
            family: Family::ErdosRenyi { avg_deg: 17.8 },
        },
        SuiteEntry {
            name: "europe_osm",
            paper_n: 50_912_018,
            paper_avg_deg: 2.1,
            paper_sprank_ratio: 0.99,
            family: Family::Regular { d: 2, delete_frac: 0.03 },
        },
        SuiteEntry {
            name: "Hamrle3",
            paper_n: 1_447_360,
            paper_avg_deg: 3.8,
            paper_sprank_ratio: 1.00,
            family: Family::Regular { d: 4, delete_frac: 0.0 },
        },
        SuiteEntry {
            name: "hugebubbles",
            paper_n: 21_198_119,
            paper_avg_deg: 3.0,
            paper_sprank_ratio: 1.00,
            family: Family::Regular { d: 3, delete_frac: 0.0 },
        },
        SuiteEntry {
            name: "kkt_power",
            paper_n: 2_063_494,
            paper_avg_deg: 6.2,
            paper_sprank_ratio: 1.00,
            family: Family::ChungLu { gamma: 3.0, avg_deg: 6.2, diagonal: true },
        },
        SuiteEntry {
            name: "nlpkkt240",
            paper_n: 27_993_600,
            paper_avg_deg: 26.7,
            paper_sprank_ratio: 1.00,
            family: Family::ErdosRenyi { avg_deg: 26.7 },
        },
        SuiteEntry {
            name: "road_usa",
            paper_n: 23_947_347,
            paper_avg_deg: 2.4,
            paper_sprank_ratio: 0.95,
            family: Family::Regular { d: 2, delete_frac: 0.10 },
        },
        SuiteEntry {
            name: "torso1",
            paper_n: 116_158,
            paper_avg_deg: 73.3,
            paper_sprank_ratio: 1.00,
            family: Family::ChungLu { gamma: 1.9, avg_deg: 73.3, diagonal: true },
        },
        SuiteEntry {
            name: "venturiLevel3",
            paper_n: 4_026_819,
            paper_avg_deg: 4.0,
            paper_sprank_ratio: 1.00,
            family: Family::Mesh,
        },
    ]
}

/// Build the whole suite at `paper_n / shrink` sizes.
pub fn build_suite(shrink: usize, seed: u64) -> Vec<(&'static str, BipartiteGraph)> {
    instances()
        .into_iter()
        .enumerate()
        .map(|(k, e)| (e.name, e.build_scaled(shrink, seed.wrapping_add(k as u64))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::stats::DegreeStats;

    #[test]
    fn twelve_instances_in_paper_order() {
        let v = instances();
        assert_eq!(v.len(), 12);
        assert_eq!(v[0].name, "atmosmodl");
        assert_eq!(v[11].name, "venturiLevel3");
    }

    #[test]
    fn scaled_sizes_respect_floor() {
        let torso = instances()[10];
        assert_eq!(torso.scaled_n(1), 116_158);
        assert_eq!(torso.scaled_n(1000), 4096);
    }

    #[test]
    fn surrogates_build_and_are_nonempty() {
        for e in instances() {
            let g = e.build(5_000, 42);
            assert!(g.nnz() > 0, "{} produced an empty instance", e.name);
            assert!(g.nrows() >= 4_000, "{}", e.name);
        }
    }

    #[test]
    fn torso_surrogate_has_extreme_variance() {
        let e = instances()[10];
        let g = e.build(8_000, 7);
        let s = DegreeStats::rows_of(g.csr());
        assert!(s.variance > 50.0 * s.mean, "torso1 surrogate should be heavy-tailed: {s}");
    }

    #[test]
    fn road_usa_surrogate_is_deficient() {
        use dsmatch_graph::components::connected_components;
        let e = instances()[9];
        let g = e.build(20_000, 3);
        // 10% deletions on a 2-regular pattern leave isolated vertices with
        // noticeable probability → sprank < n. Cheap proxy check: some
        // vertex lost all entries.
        let has_empty_row = (0..g.nrows()).any(|i| g.row_degree(i) == 0);
        assert!(has_empty_row, "expected deficiency from deletions");
        let (_, _, k) = connected_components(&g);
        assert!(k > 1);
    }

    #[test]
    fn diagonal_families_have_full_support_diagonal() {
        for e in instances() {
            if let Family::ChungLu { diagonal: true, .. } = e.family {
                let g = e.build(4_096, 5);
                for i in 0..g.nrows() {
                    assert!(g.csr().contains(i, i), "{}: missing diagonal {i}", e.name);
                }
            }
        }
    }

    #[test]
    fn build_suite_returns_named_graphs() {
        let suite = build_suite(2_000, 1);
        assert_eq!(suite.len(), 12);
        for (name, g) in &suite {
            assert!(!name.is_empty());
            assert!(g.nnz() > 0);
        }
    }
}
