//! Structured deterministic instances.

use dsmatch_graph::{BipartiteGraph, SplitMix64, TripletMatrix};

/// The all-ones `n × n` matrix of the Conjecture-1 discussion: its doubly
/// stochastic scaling is uniform `1/n`, so `TwoSidedMatch`'s sampled
/// subgraph is exactly a **random 1-out bipartite graph**, whose maximum
/// matching is `2(1 − ρ)n ≈ 0.866n` asymptotically (Karoński–Pittel,
/// Meir–Moon).
///
/// Memory is `O(n²)`; keep `n ≲ 10⁴`.
pub fn dense_ones(n: usize) -> BipartiteGraph {
    assert!(n > 0);
    assert!(n <= 20_000, "dense_ones is quadratic; n = {n} is too large");
    let mut t = TripletMatrix::with_capacity(n, n, n * n);
    for i in 0..n {
        for j in 0..n {
            t.push(i, j);
        }
    }
    BipartiteGraph::from_csr(t.into_csr())
}

/// 5-point-stencil mesh pattern on a `rows × cols` grid: vertex `(x, y)` is
/// adjacent (as a matrix row) to the column vertices of itself and its 4
/// grid neighbours. Symmetric, average degree < 5, zero-free diagonal ⇒
/// full sprank. A stand-in for the paper's PDE matrices (`atmosmodl`,
/// `venturiLevel3`).
pub fn grid_mesh(rows: usize, cols: usize) -> BipartiteGraph {
    assert!(rows > 0 && cols > 0);
    let n = rows * cols;
    let idx = |x: usize, y: usize| x * cols + y;
    let mut t = TripletMatrix::with_capacity(n, n, 5 * n);
    for x in 0..rows {
        for y in 0..cols {
            let u = idx(x, y);
            t.push(u, u);
            if x > 0 {
                t.push(u, idx(x - 1, y));
            }
            if x + 1 < rows {
                t.push(u, idx(x + 1, y));
            }
            if y > 0 {
                t.push(u, idx(x, y - 1));
            }
            if y + 1 < cols {
                t.push(u, idx(x, y + 1));
            }
        }
    }
    BipartiteGraph::from_csr(t.into_csr())
}

/// Ring pattern: row `i` adjacent to columns `i` and `(i+1) mod n`. The
/// smallest fully indecomposable family; every edge is in a perfect
/// matching, and the doubly stochastic limit is uniform `1/2`.
pub fn ring(n: usize) -> BipartiteGraph {
    assert!(n >= 2);
    let mut t = TripletMatrix::with_capacity(n, n, 2 * n);
    for i in 0..n {
        t.push(i, i);
        t.push(i, (i + 1) % n);
    }
    BipartiteGraph::from_csr(t.into_csr())
}

/// Path pattern: like [`ring`] without the wrap-around edge. A tree, so
/// Karp–Sipser Phase 1 solves it completely.
pub fn path_graph(n: usize) -> BipartiteGraph {
    assert!(n >= 1);
    let mut t = TripletMatrix::with_capacity(n, n, 2 * n);
    for i in 0..n {
        t.push(i, i);
        if i + 1 < n {
            t.push(i + 1, i);
        }
    }
    BipartiteGraph::from_csr(t.into_csr())
}

/// A random permutation matrix: every row has exactly one column. Each
/// heuristic must return the full permutation.
pub fn permutation(n: usize, seed: u64) -> BipartiteGraph {
    assert!(n >= 1);
    let mut rng = SplitMix64::new(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut perm);
    let mut t = TripletMatrix::with_capacity(n, n, n);
    for (i, &j) in perm.iter().enumerate() {
        t.push(i, j as usize);
    }
    BipartiteGraph::from_csr(t.into_csr())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ones_is_full() {
        let g = dense_ones(20);
        assert_eq!(g.nnz(), 400);
        assert_eq!(g.row_degree(7), 20);
        assert_eq!(g.col_degree(13), 20);
    }

    #[test]
    fn mesh_degrees() {
        let g = grid_mesh(4, 5);
        assert_eq!(g.nrows(), 20);
        // Corner: self + 2 neighbours.
        assert_eq!(g.row_degree(0), 3);
        // Interior: self + 4.
        assert_eq!(g.row_degree(6), 5);
        // Symmetric pattern.
        assert!(g.csr().is_transpose_of(g.csr()));
    }

    #[test]
    fn ring_and_path_shapes() {
        let r = ring(10);
        assert_eq!(r.nnz(), 20);
        assert!(r.has_no_isolated_vertices());
        let p = path_graph(10);
        assert_eq!(p.nnz(), 19);
        assert_eq!(p.row_degree(0), 1);
        assert_eq!(p.col_degree(9), 1);
    }

    #[test]
    fn permutation_has_degree_one_everywhere() {
        let g = permutation(50, 3);
        for i in 0..50 {
            assert_eq!(g.row_degree(i), 1);
            assert_eq!(g.col_degree(i), 1);
        }
        assert_eq!(permutation(50, 3).csr(), g.csr());
        assert_ne!(permutation(50, 4).csr(), g.csr());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn dense_ones_guard() {
        let _ = dense_ones(100_000);
    }
}
