//! Random-pattern generators.

use dsmatch_graph::{BipartiteGraph, SplitMix64, TripletMatrix};

/// Erdős–Rényi square pattern: `n × n` with each of the `⌈d·n⌉` draws
/// placed uniformly at random (duplicates collapse), matching MATLAB's
/// `sprand(n, n, d/n)` used in the paper's Table 2 ("uniform nonzero
/// distribution", ~`d` nonzeros per row/column on average).
pub fn erdos_renyi_square(n: usize, d: f64, seed: u64) -> BipartiteGraph {
    erdos_renyi_rect(n, n, d, seed)
}

/// Erdős–Rényi rectangular pattern with ~`d · max(m, n)` nonzeros, the
/// paper's rectangular sprank-deficiency experiment (`m = 100000`,
/// `n = 120000`).
pub fn erdos_renyi_rect(m: usize, n: usize, d: f64, seed: u64) -> BipartiteGraph {
    assert!(m > 0 && n > 0, "dimensions must be positive");
    assert!(d >= 0.0);
    let mut rng = SplitMix64::new(seed);
    let draws = (d * m.max(n) as f64).round() as usize;
    let mut t = TripletMatrix::with_capacity(m, n, draws);
    for _ in 0..draws {
        let i = rng.next_index(m);
        let j = rng.next_index(n);
        t.push(i, j);
    }
    BipartiteGraph::from_csr(t.into_csr())
}

/// Chung–Lu random graph with a power-law expected-degree sequence: row and
/// column `k` have expected degree proportional to `(k+1)^{-1/(γ−1)}`,
/// scaled so the expected nonzero count is `avg_deg · n`. Produces the
/// high-variance rows that make `torso1`-like instances scale poorly
/// (paper §4.2).
///
/// Sampling: for each of the target edge draws, pick the row (column)
/// endpoint with probability proportional to its weight, via inverse-CDF on
/// a precomputed prefix table. Duplicates collapse.
pub fn chung_lu(n: usize, avg_deg: f64, gamma: f64, seed: u64) -> BipartiteGraph {
    assert!(n > 0);
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let mut rng = SplitMix64::new(seed);
    let alpha = 1.0 / (gamma - 1.0);
    let weights: Vec<f64> = (0..n).map(|k| ((k + 1) as f64).powf(-alpha)).collect();
    let mut prefix = Vec::with_capacity(n + 1);
    let mut acc = 0.0;
    prefix.push(0.0);
    for &w in &weights {
        acc += w;
        prefix.push(acc);
    }
    let total = acc;
    let draws = (avg_deg * n as f64).round() as usize;
    let pick = |rng: &mut SplitMix64| -> usize {
        let r = rng.next_f64() * total;
        // Binary search in prefix (first index with prefix[idx+1] > r).
        match prefix.binary_search_by(|p| p.partial_cmp(&r).unwrap()) {
            Ok(idx) => idx.min(n - 1),
            Err(idx) => (idx - 1).min(n - 1),
        }
    };
    let mut t = TripletMatrix::with_capacity(n, n, draws);
    for _ in 0..draws {
        let i = pick(&mut rng);
        let j = pick(&mut rng);
        t.push(i, j);
    }
    BipartiteGraph::from_csr(t.into_csr())
}

/// Near-`d`-regular random pattern: the union of `d` random permutation
/// matrices (duplicate positions collapse, so degrees are ≤ `d` but
/// concentrate at `d`). Every instance has a perfect matching by
/// construction — each permutation is one — making it a full-sprank
/// workload with the low, almost constant degree of road networks.
pub fn random_regular(n: usize, d: usize, seed: u64) -> BipartiteGraph {
    assert!(n > 0);
    let mut rng = SplitMix64::new(seed);
    let mut t = TripletMatrix::with_capacity(n, n, n * d);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for _ in 0..d {
        rng.shuffle(&mut perm);
        for (i, &j) in perm.iter().enumerate() {
            t.push(i, j as usize);
        }
    }
    BipartiteGraph::from_csr(t.into_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::stats::DegreeStats;

    #[test]
    fn erdos_renyi_has_expected_density() {
        let g = erdos_renyi_square(10_000, 4.0, 1);
        let d = g.nnz() as f64 / 10_000.0;
        // Collisions remove a few percent at this density.
        assert!(d > 3.7 && d <= 4.0, "avg degree {d}");
        assert_eq!(g.nrows(), 10_000);
        assert_eq!(g.ncols(), 10_000);
    }

    #[test]
    fn erdos_renyi_deterministic() {
        let a = erdos_renyi_square(500, 3.0, 7);
        let b = erdos_renyi_square(500, 3.0, 7);
        assert_eq!(a.csr(), b.csr());
        let c = erdos_renyi_square(500, 3.0, 8);
        assert_ne!(a.csr(), c.csr());
    }

    #[test]
    fn rectangular_shape() {
        let g = erdos_renyi_rect(100, 120, 2.0, 3);
        assert_eq!(g.nrows(), 100);
        assert_eq!(g.ncols(), 120);
        assert!(g.nnz() > 150);
    }

    #[test]
    fn chung_lu_is_skewed() {
        let g = chung_lu(5_000, 8.0, 2.2, 11);
        let stats = DegreeStats::rows_of(g.csr());
        // Power-law: max degree far above the mean, variance high.
        assert!(stats.max as f64 > 8.0 * stats.mean, "{stats}");
        assert!(stats.variance > 4.0 * stats.mean, "{stats}");
    }

    #[test]
    fn chung_lu_first_vertices_heaviest() {
        let g = chung_lu(2_000, 6.0, 2.0, 5);
        let head: usize = (0..20).map(|i| g.row_degree(i)).sum();
        let tail: usize = (1980..2000).map(|i| g.row_degree(i)).sum();
        assert!(head > 4 * tail.max(1), "head {head}, tail {tail}");
    }

    #[test]
    fn random_regular_degrees_concentrate() {
        let g = random_regular(3_000, 3, 9);
        let stats = DegreeStats::rows_of(g.csr());
        assert!(stats.max <= 3);
        assert!(stats.mean > 2.9, "{stats}");
        // Perfect matching exists (union of permutations).
        assert!(g.has_no_isolated_vertices());
    }

    #[test]
    fn random_regular_contains_permutation() {
        use dsmatch_graph::Matching;
        // The first permutation is a perfect matching; verify sprank == n
        // indirectly by checking each row nonempty and handing a
        // permutation diagonal to Matching::verify.
        let n = 200;
        let g = random_regular(n, 2, 13);
        // Rebuild the first permutation deterministically.
        let mut rng = SplitMix64::new(13);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut perm);
        let mut m = Matching::new(n, n);
        for (i, &j) in perm.iter().enumerate() {
            m.set(i, j as usize);
        }
        m.verify(&g).unwrap();
        assert!(m.is_perfect());
    }
}
