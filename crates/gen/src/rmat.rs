//! R-MAT (recursive matrix) generator — the Graph500-style skewed random
//! pattern used throughout the parallel-graph-processing literature the
//! paper belongs to.
//!
//! Each edge is placed by recursively descending into one of the four
//! quadrants of the adjacency matrix with probabilities `(a, b, c, d)`;
//! `a > d` concentrates edges in the top-left corner, producing the
//! power-law degree distributions and extreme load imbalance that the
//! paper's §4.2 identifies as the enemy of static scheduling. Complements
//! [`crate::chung_lu`] with a different (hierarchical, self-similar)
//! skew mechanism.

use dsmatch_graph::{BipartiteGraph, SplitMix64, TripletMatrix};

/// R-MAT quadrant probabilities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters (a, b, c, d) = (.57, .19, .19, .05).
    pub const GRAPH500: Self = Self { a: 0.57, b: 0.19, c: 0.19 };

    /// Implied bottom-right probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    fn validate(&self) {
        assert!(self.a > 0.0 && self.b >= 0.0 && self.c >= 0.0, "probabilities must be ≥ 0");
        assert!(
            self.d() >= -1e-12,
            "a + b + c must not exceed 1 (got {})",
            self.a + self.b + self.c
        );
    }
}

/// Generate a `2^scale × 2^scale` R-MAT pattern with `avg_deg · 2^scale`
/// edge draws (duplicates collapse).
pub fn rmat(scale: u32, avg_deg: f64, params: RmatParams, seed: u64) -> BipartiteGraph {
    params.validate();
    assert!((1..=26).contains(&scale), "scale out of supported range");
    let n = 1usize << scale;
    let draws = (avg_deg * n as f64).round() as usize;
    let mut rng = SplitMix64::new(seed);
    let mut t = TripletMatrix::with_capacity(n, n, draws);
    let ab = params.a + params.b;
    let abc = ab + params.c;
    for _ in 0..draws {
        let mut i = 0usize;
        let mut j = 0usize;
        for level in (0..scale).rev() {
            let r = rng.next_f64();
            let bit = 1usize << level;
            if r < params.a {
                // top-left: nothing to add
            } else if r < ab {
                j |= bit;
            } else if r < abc {
                i |= bit;
            } else {
                i |= bit;
                j |= bit;
            }
        }
        t.push(i, j);
    }
    BipartiteGraph::from_csr(t.into_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::stats::DegreeStats;

    #[test]
    fn shape_and_density() {
        let g = rmat(12, 8.0, RmatParams::GRAPH500, 1);
        assert_eq!(g.nrows(), 4096);
        assert_eq!(g.ncols(), 4096);
        // Collisions remove a chunk at this skew, but most draws survive.
        assert!(g.nnz() > 2048 * 8 / 2);
        assert!(g.nnz() <= 4096 * 8);
    }

    #[test]
    fn graph500_params_sum_to_one() {
        let p = RmatParams::GRAPH500;
        assert!((p.a + p.b + p.c + p.d() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_concentrates_on_low_indices() {
        let g = rmat(13, 8.0, RmatParams::GRAPH500, 3);
        let head: usize = (0..64).map(|i| g.row_degree(i)).sum();
        let tail: usize = (8128..8192).map(|i| g.row_degree(i)).sum();
        assert!(head > 10 * tail.max(1), "head {head} vs tail {tail}");
        let s = DegreeStats::rows_of(g.csr());
        assert!(s.variance > 10.0 * s.mean, "{s}");
    }

    #[test]
    fn uniform_params_behave_like_er() {
        // a = b = c = d = 0.25 is an unskewed uniform distribution.
        let p = RmatParams { a: 0.25, b: 0.25, c: 0.25 };
        let g = rmat(12, 4.0, p, 9);
        let s = DegreeStats::rows_of(g.csr());
        // Poisson-ish: variance ≈ mean.
        assert!(s.variance < 3.0 * s.mean, "{s}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(10, 4.0, RmatParams::GRAPH500, 5);
        let b = rmat(10, 4.0, RmatParams::GRAPH500, 5);
        assert_eq!(a.csr(), b.csr());
        let c = rmat(10, 4.0, RmatParams::GRAPH500, 6);
        assert_ne!(a.csr(), c.csr());
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn invalid_params_rejected() {
        let _ = rmat(8, 2.0, RmatParams { a: 0.7, b: 0.3, c: 0.2 }, 1);
    }
}
