//! The Karp–Sipser adversarial family of the paper's Figure 2 / Table 1.
//!
//! Layout of the `n × n` matrix (`R1`/`C1` = first half, `R2`/`C2` = second
//! half of the rows/columns):
//!
//! - block `R1 × C1` is **full**;
//! - block `R2 × C2` is **empty**;
//! - the last `k ≪ n` rows of `R1` are full, and the last `k` columns of
//!   `C1` are full (full rows/columns across the whole matrix);
//! - blocks `R1 × C2` and `R2 × C1` each carry a **nonzero diagonal**;
//!   together those two diagonals form a perfect matching.
//!
//! For `k ≤ 1` Karp–Sipser solves the instance in Phase 1. For `k > 1`
//! there is no degree-one vertex, so KS immediately picks random edges —
//! mostly inside the full `R1 × C1` block, wasting `R1` rows that are the
//! only hope for `C2` columns (and vice versa): its quality degrades toward
//! ~0.67 as `k` grows (paper Table 1). Scaling drives the `R1 × C1` block's
//! entries to zero because they cannot participate in any perfect matching,
//! so `TwoSidedMatch` is unaffected.

use dsmatch_graph::{BipartiteGraph, TripletMatrix};

/// Build the Figure-2 adversarial matrix.
///
/// `n` must be even and `k ≤ n/2`. The matrix is full-sprank (a perfect
/// matching exists).
pub fn adversarial_ks(n: usize, k: usize) -> BipartiteGraph {
    assert!(n >= 2 && n % 2 == 0, "n must be even, got {n}");
    let h = n / 2;
    assert!(k <= h, "k = {k} must be at most n/2 = {h}");

    // Capacity: full R1×C1 block (h²) + 2 diagonals (n) + full row/col
    // stripes (≈ 2·k·h, overlapping the block).
    let mut t = TripletMatrix::with_capacity(n, n, h * h + 2 * n + 2 * k * h);

    // R1 × C1 full block.
    for i in 0..h {
        for j in 0..h {
            t.push(i, j);
        }
    }
    // Last k rows of R1 are full rows: extend into C2.
    for i in h.saturating_sub(k)..h {
        for j in h..n {
            t.push(i, j);
        }
    }
    // Last k columns of C1 are full columns: extend into R2.
    for j in h.saturating_sub(k)..h {
        for i in h..n {
            t.push(i, j);
        }
    }
    // Diagonal of R1 × C2: (i, h + i).
    for i in 0..h {
        t.push(i, h + i);
    }
    // Diagonal of R2 × C1: (h + i, i).
    for i in 0..h {
        t.push(h + i, i);
    }
    BipartiteGraph::from_csr(t.into_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::Matching;

    #[test]
    fn shape_and_blocks() {
        let n = 16;
        let g = adversarial_ks(n, 2);
        let h = n / 2;
        // R1×C1 full.
        for i in 0..h {
            for j in 0..h {
                assert!(g.csr().contains(i, j), "({i},{j}) missing in full block");
            }
        }
        // R2×C2 empty.
        for i in h..n {
            for j in h..n {
                assert!(!g.csr().contains(i, j), "({i},{j}) must be empty");
            }
        }
        // Cross diagonals present.
        for i in 0..h {
            assert!(g.csr().contains(i, h + i));
            assert!(g.csr().contains(h + i, i));
        }
    }

    #[test]
    fn full_rows_and_columns() {
        let n = 12;
        let k = 3;
        let g = adversarial_ks(n, k);
        let h = n / 2;
        for i in h - k..h {
            assert_eq!(g.row_degree(i), n, "row {i} must be full");
        }
        for j in h - k..h {
            assert_eq!(g.col_degree(j), n, "col {j} must be full");
        }
    }

    #[test]
    fn perfect_matching_exists_via_diagonals() {
        let n = 20;
        let g = adversarial_ks(n, 4);
        let h = n / 2;
        let mut m = Matching::new(n, n);
        for i in 0..h {
            m.set(i, h + i);
            m.set(h + i, i);
        }
        m.verify(&g).unwrap();
        assert!(m.is_perfect());
    }

    #[test]
    fn k_zero_and_one_are_valid() {
        let g = adversarial_ks(8, 0);
        assert!(g.nnz() > 0);
        let g = adversarial_ks(8, 1);
        assert_eq!(g.row_degree(3), 8); // row h-1 full for k = 1
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_n_rejected() {
        let _ = adversarial_ks(7, 1);
    }

    #[test]
    #[should_panic(expected = "must be at most")]
    fn oversized_k_rejected() {
        let _ = adversarial_ks(8, 5);
    }
}
