//! Sequential ½-approximation baselines for maximum weight matching.

use dsmatch_graph::UndirectedMatching;

use crate::graph::WeightedGraph;

/// Global greedy: scan edges in decreasing weight order, keep every edge
/// whose endpoints are both free. Guarantees weight ≥ ½ of the optimum.
///
/// Ties are broken by `(weight, u, v)` lexicographically (heavier first,
/// then smaller endpoints) — the same rule [`crate::suitor`] uses, which
/// makes the two algorithms produce identical matchings.
pub fn greedy_weighted(g: &WeightedGraph) -> UndirectedMatching {
    let mut edges: Vec<(f64, u32, u32)> =
        g.iter_weighted_edges().map(|(u, v, w)| (w, u as u32, v as u32)).collect();
    edges.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut m = UndirectedMatching::new(g.n());
    for (_, u, v) in edges {
        if !m.is_matched(u as usize) && !m.is_matched(v as usize) {
            m.set(u as usize, v as usize);
        }
    }
    m
}

/// Drake–Hougardy path growing: repeatedly extend a path from an arbitrary
/// uncovered vertex along the heaviest incident remaining edge, splitting
/// the collected edges into two alternating sets and keeping the heavier.
/// Also a ½-approximation, with a single pass over the adjacency.
pub fn path_growing(g: &WeightedGraph) -> UndirectedMatching {
    let n = g.n();
    let mut used = vec![false; n];
    let mut m = UndirectedMatching::new(n);
    // The two alternating edge sets of the current path.
    let mut sets: [Vec<(u32, u32)>; 2] = [Vec::new(), Vec::new()];

    for start in 0..n {
        if used[start] || g.topology().degree(start) == 0 {
            continue;
        }
        sets[0].clear();
        sets[1].clear();
        let mut weights = [0.0f64; 2];
        let mut parity = 0usize;
        let mut v = start;
        used[v] = true;
        loop {
            // Heaviest edge to an unused neighbour.
            let mut best: Option<(u32, f64)> = None;
            for (u, w) in g.adj(v) {
                if !used[u as usize] && best.is_none_or(|(_, bw)| w > bw) {
                    best = Some((u, w));
                }
            }
            let Some((u, w)) = best else { break };
            sets[parity].push((v as u32, u));
            weights[parity] += w;
            parity ^= 1;
            v = u as usize;
            used[v] = true;
        }
        let keep = if weights[0] >= weights[1] { 0 } else { 1 };
        for &(a, b) in &sets[keep] {
            m.set(a as usize, b as usize);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force_max_weight, matching_weight};

    fn path3() -> WeightedGraph {
        // 0 -2- 1 -3- 2 -2- 3 : optimum is {0-1, 2-3} = 4; greedy takes the
        // middle edge first = 3.
        WeightedGraph::from_weighted_edges(4, &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 2.0)])
    }

    #[test]
    fn greedy_takes_heaviest_first() {
        let g = path3();
        let m = greedy_weighted(&g);
        assert_eq!(m.mate(1), 2);
        assert!((matching_weight(&g, &m) - 3.0).abs() < 1e-12);
        // Half guarantee: 3 ≥ 4 / 2.
        assert!(matching_weight(&g, &m) * 2.0 >= brute_force_max_weight(&g));
    }

    #[test]
    fn greedy_is_maximal() {
        let g = WeightedGraph::from_weighted_edges(
            6,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 2.0), (4, 5, 1.0)],
        );
        let m = greedy_weighted(&g);
        m.verify(g.topology()).unwrap();
        for (u, v, _) in g.iter_weighted_edges() {
            assert!(m.is_matched(u) || m.is_matched(v));
        }
    }

    #[test]
    fn path_growing_half_guarantee_on_randoms() {
        use dsmatch_graph::SplitMix64;
        let mut rng = SplitMix64::new(31);
        for trial in 0..100 {
            let n = 4 + rng.next_index(9);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.next_below(3) == 0 {
                        edges.push((u, v, 1.0 + rng.next_f64() * 9.0));
                    }
                }
            }
            if edges.is_empty() {
                continue;
            }
            let g = WeightedGraph::from_weighted_edges(n, &edges);
            let opt = brute_force_max_weight(&g);
            for m in [greedy_weighted(&g), path_growing(&g)] {
                m.verify(g.topology()).unwrap();
                let w = matching_weight(&g, &m);
                assert!(2.0 * w + 1e-9 >= opt, "trial {trial}: weight {w} < half of {opt}");
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::from_weighted_edges(3, &[]);
        assert_eq!(greedy_weighted(&g).cardinality(), 0);
        assert_eq!(path_growing(&g).cardinality(), 0);
    }
}
