//! # dsmatch-weighted — approximate weighted matching
//!
//! The paper's related-work section surveys shared-memory heuristics for
//! *weighted* graph matching (Halappanavar et al. \[16\], Fagginger Auer &
//! Bisseling \[15\], Çatalyürek et al. \[6\]). This crate implements that
//! substrate so the workspace covers the full landscape the paper situates
//! itself in:
//!
//! - [`greedy_weighted`] — sort edges by decreasing weight and take every
//!   edge whose endpoints are free. The classical ½-approximation for
//!   maximum weight matching.
//! - [`suitor`] / [`suitor_parallel`] — the Suitor algorithm (Manne &
//!   Halappanavar, IPDPS 2014): every vertex proposes to its
//!   heaviest-reachable neighbour, proposals displace weaker suitors, and
//!   displaced vertices re-propose. Produces **the same matching as the
//!   greedy algorithm** under consistent tie-breaking, with far better
//!   locality and a natural lock-free parallelization — the same design
//!   philosophy as the paper's `KarpSipserMT`.
//! - [`path_growing`] — the Drake–Hougardy path-growing ½-approximation,
//!   a further sequential baseline.
//!
//! Weights are attached to an [`dsmatch_graph::UndirectedGraph`] through
//! [`WeightedGraph`], which stores one `f64` per stored (directed) entry
//! and enforces symmetry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod greedy;
mod suitor;

pub use graph::WeightedGraph;
pub use greedy::{greedy_weighted, path_growing};
pub use suitor::{suitor, suitor_parallel};

use dsmatch_graph::UndirectedMatching;

/// Total weight of a matching in a weighted graph.
pub fn matching_weight(g: &WeightedGraph, m: &UndirectedMatching) -> f64 {
    m.iter_pairs().map(|(u, v)| g.weight(u, v).expect("matched pair must be an edge")).sum()
}

/// Exponential maximum-weight oracle for tests (≤ ~14 vertices).
pub fn brute_force_max_weight(g: &WeightedGraph) -> f64 {
    fn go(g: &WeightedGraph, free: &mut Vec<bool>, from: usize) -> f64 {
        let Some(v) = (from..g.n()).find(|&v| free[v]) else {
            return 0.0;
        };
        free[v] = false;
        let mut best = go(g, free, v + 1);
        for (u, w) in g.adj(v) {
            let u = u as usize;
            if free[u] {
                free[u] = false;
                best = best.max(w + go(g, free, v + 1));
                free[u] = true;
            }
        }
        free[v] = true;
        best
    }
    assert!(g.n() <= 16, "brute force limited to small graphs");
    let mut free = vec![true; g.n()];
    go(g, &mut free, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_weight_sums_pairs() {
        let g = WeightedGraph::from_weighted_edges(4, &[(0, 1, 2.5), (2, 3, 1.0)]);
        let mut m = UndirectedMatching::new(4);
        m.set(0, 1);
        m.set(2, 3);
        assert!((matching_weight(&g, &m) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn brute_force_picks_heavier_combination() {
        // Triangle with one heavy edge vs two light edges elsewhere.
        let g = WeightedGraph::from_weighted_edges(
            4,
            &[(0, 1, 1.0), (1, 2, 3.0), (2, 0, 1.0), (0, 3, 1.5)],
        );
        // Best: (1,2) + (0,3) = 4.5.
        assert!((brute_force_max_weight(&g) - 4.5).abs() < 1e-12);
    }
}
