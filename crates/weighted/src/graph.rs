//! Weighted undirected graph: symmetric pattern + one weight per entry.

use dsmatch_graph::{UndirectedGraph, VertexId};

/// An undirected graph with positive edge weights.
///
/// Weights are stored per *directed* entry of the symmetric CSR, with the
/// symmetry `w(u,v) = w(v,u)` enforced at construction.
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    topo: UndirectedGraph,
    weights: Vec<f64>, // aligned with topo.csr() entries
}

impl WeightedGraph {
    /// Build from `(u, v, w)` triples; the reverse entries are added
    /// automatically. Duplicate edges keep the **maximum** weight.
    ///
    /// # Panics
    /// If any weight is not finite and positive, or `u == v`.
    pub fn from_weighted_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        for &(u, v, w) in edges {
            assert!(u != v, "self-loop ({u},{v})");
            assert!(w.is_finite() && w > 0.0, "weight must be positive and finite, got {w}");
        }
        let pairs: Vec<(usize, usize)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        let topo = UndirectedGraph::from_edges(n, &pairs);
        // Scatter weights into entry order (max on duplicates).
        let csr = topo.csr();
        let mut weights = vec![0.0f64; csr.nnz()];
        let mut place = |u: usize, v: usize, w: f64| {
            let row = csr.row(u);
            let k = row.binary_search(&(v as VertexId)).expect("edge must exist");
            let idx = csr.row_ptr()[u] + k;
            if w > weights[idx] {
                weights[idx] = w;
            }
        };
        for &(u, v, w) in edges {
            place(u, v, w);
            place(v, u, w);
        }
        Self { topo, weights }
    }

    /// Attach weights to an existing symmetric graph; `weight_of(u, v)` is
    /// evaluated once per stored entry and must be symmetric.
    pub fn from_fn(topo: UndirectedGraph, weight_of: impl Fn(usize, usize) -> f64) -> Self {
        let csr = topo.csr();
        let mut weights = Vec::with_capacity(csr.nnz());
        for u in 0..topo.n() {
            for &v in csr.row(u) {
                let w = weight_of(u, v as usize);
                assert!(w.is_finite() && w > 0.0, "weight({u},{v}) = {w} invalid");
                weights.push(w);
            }
        }
        let g = Self { topo, weights };
        debug_assert!(g.check_symmetric(), "weight function must be symmetric");
        g
    }

    fn check_symmetric(&self) -> bool {
        (0..self.n()).all(|u| {
            self.adj(u).all(|(v, w)| {
                self.weight(v as usize, u).is_some_and(|back| (back - w).abs() < 1e-12)
            })
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.topo.n()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.topo.edge_count()
    }

    /// The unweighted topology.
    #[inline]
    pub fn topology(&self) -> &UndirectedGraph {
        &self.topo
    }

    /// Weighted adjacency of `u`: `(neighbour, weight)` pairs.
    pub fn adj(&self, u: usize) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        let start = self.topo.csr().row_ptr()[u];
        self.topo.adj(u).iter().enumerate().map(move |(k, &v)| (v, self.weights[start + k]))
    }

    /// Weight of edge `(u, v)`, if present.
    pub fn weight(&self, u: usize, v: usize) -> Option<f64> {
        let row = self.topo.adj(u);
        row.binary_search(&(v as VertexId))
            .ok()
            .map(|k| self.weights[self.topo.csr().row_ptr()[u] + k])
    }

    /// All undirected edges as `(u, v, w)` with `u < v`.
    pub fn iter_weighted_edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n()).flat_map(move |u| {
            self.adj(u).filter(move |&(v, _)| u < v as usize).map(move |(v, w)| (u, v as usize, w))
        })
    }

    /// Total vertex count with at least one edge.
    pub fn non_isolated(&self) -> usize {
        (0..self.n()).filter(|&v| self.topo.degree(v) > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_symmetric_and_queryable() {
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 5.0)]);
        assert_eq!(g.weight(0, 1), Some(2.0));
        assert_eq!(g.weight(1, 0), Some(2.0));
        assert_eq!(g.weight(2, 1), Some(5.0));
        assert_eq!(g.weight(0, 2), None);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn duplicate_edges_keep_max() {
        let g = WeightedGraph::from_weighted_edges(2, &[(0, 1, 1.0), (1, 0, 7.0)]);
        assert_eq!(g.weight(0, 1), Some(7.0));
    }

    #[test]
    fn from_fn_builds_weights() {
        let topo = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let g = WeightedGraph::from_fn(topo, |u, v| (u + v + 1) as f64);
        assert_eq!(g.weight(0, 1), Some(2.0));
        assert_eq!(g.weight(1, 2), Some(4.0));
    }

    #[test]
    fn iter_weighted_edges_unique() {
        let g = WeightedGraph::from_weighted_edges(4, &[(0, 1, 1.0), (2, 3, 2.0), (1, 2, 3.0)]);
        let edges: Vec<_> = g.iter_weighted_edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|&(u, v, _)| u < v));
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn rejects_nonpositive_weights() {
        let _ = WeightedGraph::from_weighted_edges(2, &[(0, 1, 0.0)]);
    }

    #[test]
    fn adj_pairs_aligned() {
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 9.0), (0, 2, 4.0)]);
        let adj: Vec<_> = g.adj(0).collect();
        assert_eq!(adj, vec![(1, 9.0), (2, 4.0)]);
    }
}
