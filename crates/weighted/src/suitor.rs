//! The Suitor algorithm for ½-approximate maximum weight matching
//! (Manne & Halappanavar, IPDPS 2014 — the same venue and hardware class
//! as the paper; reference [16]'s lineage).
//!
//! Every vertex *proposes* to the heaviest neighbour whose standing offer
//! it can beat; a displaced suitor immediately re-proposes elsewhere. With
//! a total order on edges the fixed point is unique and **identical to the
//! matching found by the global greedy algorithm**, but the computation is
//! local per vertex — which is what makes the lock-free parallel version
//! correct: conflicting proposals are resolved with a single
//! compare-and-swap per slot, the loser simply retries, exactly the
//! conflict-resolution pattern of the paper's `KarpSipserMT`.
//!
//! Edges are ordered by `(weight, −min(u,v), −max(u,v))` — heavier first,
//! then lexicographically smaller endpoints — matching
//! [`crate::greedy_weighted`]'s sort, so the two agree bitwise (tested).

use dsmatch_graph::{UndirectedMatching, VertexId, NIL};
use rayon::prelude::*;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU32, Ordering as AtOrd};

use crate::graph::WeightedGraph;

/// Total order on edges `(w1, {a1,b1})` vs `(w2, {a2,b2})`: heavier wins;
/// ties prefer the lexicographically smaller endpoint pair.
#[inline]
fn edge_cmp(w1: f64, u1: usize, v1: usize, w2: f64, u2: usize, v2: usize) -> Ordering {
    match w1.partial_cmp(&w2).unwrap() {
        Ordering::Equal => {
            let k1 = (u1.min(v1), u1.max(v1));
            let k2 = (u2.min(v2), u2.max(v2));
            // Smaller endpoints rank HIGHER (greedy takes them first).
            k2.cmp(&k1)
        }
        ord => ord,
    }
}

/// Key of the standing offer at `p` (−∞ when no suitor).
#[inline]
fn beats_offer(g: &WeightedGraph, cand: usize, p: usize, w: f64, holder: VertexId) -> bool {
    if holder == NIL {
        return true;
    }
    let hw = g.weight(p, holder as usize).expect("suitor must be a neighbour");
    edge_cmp(w, cand, p, hw, holder as usize, p) == Ordering::Greater
}

/// Sequential Suitor.
///
/// ```
/// use dsmatch_weighted::{suitor, matching_weight, WeightedGraph};
///
/// // Path 0 -2- 1 -3- 2 -2- 3: greedy/Suitor take the heavy middle edge.
/// let g = WeightedGraph::from_weighted_edges(
///     4,
///     &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 2.0)],
/// );
/// let m = suitor(&g);
/// assert_eq!(m.mate(1), 2);
/// assert_eq!(matching_weight(&g, &m), 3.0);
/// ```
pub fn suitor(g: &WeightedGraph) -> UndirectedMatching {
    let n = g.n();
    let mut suitor_of: Vec<VertexId> = vec![NIL; n];
    for start in 0..n {
        let mut current = start as u32;
        loop {
            // Heaviest neighbour whose standing offer `current` beats.
            let mut best: Option<(VertexId, f64)> = None;
            for (p, w) in g.adj(current as usize) {
                if !beats_offer(g, current as usize, p as usize, w, suitor_of[p as usize]) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bp, bw)) => {
                        edge_cmp(w, current as usize, p as usize, bw, current as usize, bp as usize)
                            == Ordering::Greater
                    }
                };
                if better {
                    best = Some((p, w));
                }
            }
            let Some((p, _)) = best else { break };
            let prev = suitor_of[p as usize];
            suitor_of[p as usize] = current;
            if prev == NIL {
                break;
            }
            current = prev; // displaced vertex re-proposes
        }
    }
    extract(&suitor_of)
}

/// Lock-free parallel Suitor: proposals land with compare-and-swap; a
/// losing CAS re-evaluates and retries. Produces the same matching as
/// [`suitor`] (the fixed point is unique under the total edge order).
pub fn suitor_parallel(g: &WeightedGraph) -> UndirectedMatching {
    let n = g.n();
    let suitor_of: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NIL)).collect();
    (0..n as u32).into_par_iter().for_each(|start| {
        let mut current = start;
        'propose: loop {
            let mut best: Option<(VertexId, f64)> = None;
            for (p, w) in g.adj(current as usize) {
                let holder = suitor_of[p as usize].load(AtOrd::Acquire);
                if !beats_offer(g, current as usize, p as usize, w, holder) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bp, bw)) => {
                        edge_cmp(w, current as usize, p as usize, bw, current as usize, bp as usize)
                            == Ordering::Greater
                    }
                };
                if better {
                    best = Some((p, w));
                }
            }
            let Some((p, w)) = best else { break };
            // Claim the slot; retry the whole selection if the offer at p
            // improved concurrently.
            let mut observed = suitor_of[p as usize].load(AtOrd::Acquire);
            loop {
                if !beats_offer(g, current as usize, p as usize, w, observed) {
                    continue 'propose; // lost the race; pick another target
                }
                match suitor_of[p as usize].compare_exchange_weak(
                    observed,
                    current,
                    AtOrd::AcqRel,
                    AtOrd::Acquire,
                ) {
                    Ok(_) => {
                        if observed == NIL {
                            break 'propose;
                        }
                        current = observed; // displaced vertex re-proposes
                        continue 'propose;
                    }
                    Err(now) => observed = now,
                }
            }
        }
    });
    let suitor_of: Vec<VertexId> = suitor_of.into_iter().map(|a| a.into_inner()).collect();
    extract(&suitor_of)
}

/// Mutual suitors form the matching.
fn extract(suitor_of: &[VertexId]) -> UndirectedMatching {
    let n = suitor_of.len();
    let mut m = UndirectedMatching::new(n);
    for v in 0..n {
        let s = suitor_of[v];
        if s != NIL && (s as usize) < v && suitor_of[s as usize] == v as u32 {
            m.set(v, s as usize);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_weighted;
    use crate::{brute_force_max_weight, matching_weight};
    use dsmatch_graph::SplitMix64;

    fn random_weighted(n: usize, density: u64, seed: u64) -> WeightedGraph {
        let mut rng = SplitMix64::new(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.next_below(density) == 0 {
                    edges.push((u, v, 1.0 + rng.next_f64() * 9.0));
                }
            }
        }
        WeightedGraph::from_weighted_edges(n, &edges)
    }

    #[test]
    fn matches_greedy_on_small_path() {
        let g = WeightedGraph::from_weighted_edges(4, &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 2.0)]);
        let s = suitor(&g);
        let gr = greedy_weighted(&g);
        assert_eq!(s, gr);
        assert_eq!(s.mate(1), 2);
    }

    #[test]
    fn equals_greedy_on_random_instances() {
        for trial in 0..100 {
            let g = random_weighted(12, 3, trial);
            let s = suitor(&g);
            let gr = greedy_weighted(&g);
            assert_eq!(s, gr, "trial {trial}");
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        for trial in 0..30 {
            let g = random_weighted(60, 4, 1000 + trial);
            let seq = suitor(&g);
            let par = suitor_parallel(&g);
            assert_eq!(seq, par, "trial {trial}");
        }
    }

    #[test]
    fn half_approximation_guarantee() {
        for trial in 0..50 {
            let g = random_weighted(10, 2, 5000 + trial);
            if g.edge_count() == 0 {
                continue;
            }
            let m = suitor(&g);
            m.verify(g.topology()).unwrap();
            let w = matching_weight(&g, &m);
            let opt = brute_force_max_weight(&g);
            assert!(2.0 * w + 1e-9 >= opt, "trial {trial}: {w} vs opt {opt}");
        }
    }

    #[test]
    fn equal_weights_resolved_deterministically() {
        // All weights equal: tie-breaking must still make seq == par == greedy.
        let mut edges = Vec::new();
        for u in 0..8usize {
            for v in (u + 1)..8 {
                edges.push((u, v, 1.0));
            }
        }
        let g = WeightedGraph::from_weighted_edges(8, &edges);
        let s = suitor(&g);
        let gr = greedy_weighted(&g);
        let par = suitor_parallel(&g);
        assert_eq!(s, gr);
        assert_eq!(s, par);
        assert_eq!(s.cardinality(), 4);
    }

    #[test]
    fn isolated_vertices_unmatched() {
        let g = WeightedGraph::from_weighted_edges(5, &[(1, 3, 2.0)]);
        let m = suitor(&g);
        assert_eq!(m.cardinality(), 1);
        assert!(!m.is_matched(0));
        assert!(!m.is_matched(4));
    }

    #[test]
    fn larger_parallel_stress() {
        // Ring + chords, 20k vertices: parallel must agree with sequential.
        let n = 20_000;
        let mut rng = SplitMix64::new(9);
        let mut edges: Vec<(usize, usize, f64)> =
            (0..n).map(|v| (v, (v + 1) % n, 1.0 + rng.next_f64())).collect();
        for _ in 0..n / 2 {
            let u = rng.next_index(n);
            let v = rng.next_index(n);
            if u != v {
                edges.push((u, v, 1.0 + rng.next_f64()));
            }
        }
        let g = WeightedGraph::from_weighted_edges(n, &edges);
        let seq = suitor(&g);
        let par = suitor_parallel(&g);
        assert_eq!(seq.cardinality(), par.cardinality());
        assert!((matching_weight(&g, &seq) - matching_weight(&g, &par)).abs() < 1e-9);
    }
}
