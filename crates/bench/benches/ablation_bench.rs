//! Ablation benchmarks for the design choices called out in DESIGN.md §5:
//!
//! - **Scaling algorithm**: Sinkhorn–Knopp vs Ruiz at equal iteration
//!   budgets — the paper (§2.2) claims SK converges faster on unsymmetric
//!   matrices; we also measure the resulting matching quality.
//! - **Warm-starting exact solvers** with heuristic matchings — the
//!   motivating use case from the paper's introduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmatch_core::{two_sided_match_with_scaling, TwoSidedConfig};
use dsmatch_exact::{hopcroft_karp_from, pothen_fan_from};
use dsmatch_gen::erdos_renyi_square;
use dsmatch_graph::Matching;
use dsmatch_scale::{ruiz, sinkhorn_knopp, ScalingConfig};

fn bench_scaling_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scaling_algorithm");
    group.sample_size(15);
    let g = erdos_renyi_square(50_000, 6.0, 17);
    for iters in [1usize, 5] {
        group.bench_with_input(BenchmarkId::new("sinkhorn", iters), &iters, |b, &it| {
            b.iter(|| sinkhorn_knopp(&g, &ScalingConfig::iterations(it)))
        });
        group.bench_with_input(BenchmarkId::new("ruiz", iters), &iters, |b, &it| {
            b.iter(|| ruiz(&g, &ScalingConfig::iterations(it)))
        });
    }
    group.finish();
}

fn bench_jumpstart(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_exact_solver_jumpstart");
    group.sample_size(10);
    let g = erdos_renyi_square(50_000, 5.0, 23);
    let scaling = sinkhorn_knopp(&g, &ScalingConfig::iterations(5));
    let warm = two_sided_match_with_scaling(&g, &scaling, 7);
    let _ = TwoSidedConfig::default();

    group.bench_function("hopcroft_karp_cold", |b| {
        b.iter(|| hopcroft_karp_from(&g, Matching::new(g.nrows(), g.ncols())))
    });
    group.bench_function("hopcroft_karp_twosided_warm", |b| {
        b.iter(|| hopcroft_karp_from(&g, warm.clone()))
    });
    group.bench_function("pothen_fan_cold", |b| {
        b.iter(|| pothen_fan_from(&g, Matching::new(g.nrows(), g.ncols())))
    });
    group.bench_function("pothen_fan_twosided_warm", |b| {
        b.iter(|| pothen_fan_from(&g, warm.clone()))
    });
    group.finish();
}

criterion_group!(benches, bench_scaling_choice, bench_jumpstart);
criterion_main!(benches);
