//! Criterion micro-benchmarks for `OneSidedMatch` (backs Table 3's
//! `OneSided` column and Figure 3b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsmatch_core::{cheap_random_edge, cheap_random_vertex, one_sided_match_with_scaling};
use dsmatch_gen::{erdos_renyi_square, random_regular};
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig};

fn bench_one_sided_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_sided_sampling_only");
    group.sample_size(20);
    for (name, g) in [
        ("er_d8_100k", erdos_renyi_square(100_000, 8.0, 1)),
        ("regular_d3_100k", random_regular(100_000, 3, 1)),
    ] {
        let scaling = sinkhorn_knopp(&g, &ScalingConfig::iterations(5));
        group.throughput(Throughput::Elements(g.nrows() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| one_sided_match_with_scaling(g, &scaling, 7))
        });
    }
    group.finish();
}

fn bench_against_cheap_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic_comparison_er_d4_50k");
    group.sample_size(20);
    let g = erdos_renyi_square(50_000, 4.0, 3);
    let scaling = sinkhorn_knopp(&g, &ScalingConfig::iterations(5));
    group.bench_function("one_sided(sampling)", |b| {
        b.iter(|| one_sided_match_with_scaling(&g, &scaling, 7))
    });
    group.bench_function("cheap_random_edge", |b| b.iter(|| cheap_random_edge(&g, 7)));
    group.bench_function("cheap_random_vertex", |b| b.iter(|| cheap_random_vertex(&g, 7)));
    group.finish();
}

criterion_group!(benches, bench_one_sided_sampling, bench_against_cheap_baselines);
criterion_main!(benches);
