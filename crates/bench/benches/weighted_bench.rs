//! Criterion micro-benchmarks for the weighted-matching substrate
//! (related-work baselines: greedy, path growing, Suitor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsmatch_graph::SplitMix64;
use dsmatch_weighted::{greedy_weighted, path_growing, suitor, suitor_parallel, WeightedGraph};

fn random_weighted(n: usize, extra: usize, seed: u64) -> WeightedGraph {
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(usize, usize, f64)> =
        (0..n).map(|v| (v, (v + 1) % n, 1.0 + rng.next_f64())).collect();
    for _ in 0..extra {
        let u = rng.next_index(n);
        let v = rng.next_index(n);
        if u != v {
            edges.push((u, v, 1.0 + rng.next_f64()));
        }
    }
    WeightedGraph::from_weighted_edges(n, &edges)
}

fn bench_weighted(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_matching_100k");
    group.sample_size(15);
    let g = random_weighted(100_000, 200_000, 42);
    group.throughput(Throughput::Elements(g.edge_count() as u64));
    group.bench_with_input(BenchmarkId::from_parameter("greedy"), &g, |b, g| {
        b.iter(|| greedy_weighted(g))
    });
    group.bench_with_input(BenchmarkId::from_parameter("path_growing"), &g, |b, g| {
        b.iter(|| path_growing(g))
    });
    group.bench_with_input(BenchmarkId::from_parameter("suitor_seq"), &g, |b, g| {
        b.iter(|| suitor(g))
    });
    group.bench_with_input(BenchmarkId::from_parameter("suitor_par"), &g, |b, g| {
        b.iter(|| suitor_parallel(g))
    });
    group.finish();
}

criterion_group!(benches, bench_weighted);
criterion_main!(benches);
