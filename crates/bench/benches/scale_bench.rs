//! Criterion micro-benchmarks for the scaling kernels (backs Table 3's
//! `ScaleSK` column and Figure 3a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsmatch_gen::{erdos_renyi_square, grid_mesh};
use dsmatch_scale::{ruiz, sinkhorn_knopp, sinkhorn_knopp_seq, ScalingConfig};

fn bench_sinkhorn(c: &mut Criterion) {
    let mut group = c.benchmark_group("sinkhorn_knopp_1iter");
    group.sample_size(20);
    for d in [4.0f64, 16.0] {
        let g = erdos_renyi_square(100_000, d, 42);
        group.throughput(Throughput::Elements(g.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("parallel", format!("er_d{d}")), &g, |b, g| {
            b.iter(|| sinkhorn_knopp(g, &ScalingConfig::iterations(1)))
        });
        group.bench_with_input(BenchmarkId::new("sequential", format!("er_d{d}")), &g, |b, g| {
            b.iter(|| sinkhorn_knopp_seq(g, &ScalingConfig::iterations(1)))
        });
    }
    group.finish();
}

fn bench_scaling_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_to_5_iters");
    group.sample_size(20);
    let g = grid_mesh(316, 316); // ~100k vertices
    group.bench_function("sinkhorn_knopp", |b| {
        b.iter(|| sinkhorn_knopp(&g, &ScalingConfig::iterations(5)))
    });
    group.bench_function("ruiz", |b| b.iter(|| ruiz(&g, &ScalingConfig::iterations(5))));
    group.finish();
}

criterion_group!(benches, bench_sinkhorn, bench_scaling_algorithms);
criterion_main!(benches);
