//! Criterion micro-benchmarks for the Karp–Sipser kernels (backs Table 3's
//! `KarpSipserMT` column, Figure 4a, and the KS baseline of Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsmatch_core::{karp_sipser, karp_sipser_mt, karp_sipser_mt_seq, KarpSipserConfig};
use dsmatch_gen::adversarial_ks;
use dsmatch_graph::SplitMix64;

fn uniform_choices(n: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut rng = SplitMix64::new(seed);
    let rc = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
    let cc = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
    (rc, cc)
}

fn bench_ksmt(c: &mut Criterion) {
    let mut group = c.benchmark_group("karp_sipser_mt_random_1out");
    group.sample_size(20);
    for n in [100_000usize, 1_000_000] {
        let (rc, cc) = uniform_choices(n, 42);
        group.throughput(Throughput::Elements(2 * n as u64));
        group.bench_with_input(BenchmarkId::new("parallel", n), &(&rc, &cc), |b, (rc, cc)| {
            b.iter(|| karp_sipser_mt(rc, cc))
        });
        if n <= 100_000 {
            group.bench_with_input(
                BenchmarkId::new("sequential_exact", n),
                &(&rc, &cc),
                |b, (rc, cc)| b.iter(|| karp_sipser_mt_seq(rc, cc)),
            );
        }
    }
    group.finish();
}

fn bench_classic_ks(c: &mut Criterion) {
    let mut group = c.benchmark_group("classic_karp_sipser_adversarial");
    group.sample_size(10);
    for k in [2usize, 32] {
        let g = adversarial_ks(3200, k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &g, |b, g| {
            b.iter(|| karp_sipser(g, &KarpSipserConfig { seed: 7 }))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ksmt, bench_classic_ks);
criterion_main!(benches);
