//! Criterion micro-benchmarks for the `TwoSidedMatch` pipeline (backs
//! Table 3's `TwoSided` column and Figure 4b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsmatch_core::{
    two_sided_choices, two_sided_match, two_sided_match_with_scaling, TwoSidedConfig,
};
use dsmatch_gen::{erdos_renyi_square, grid_mesh};
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_sided_full_pipeline");
    group.sample_size(20);
    for (name, g) in
        [("er_d4_100k", erdos_renyi_square(100_000, 4.0, 1)), ("mesh_100k", grid_mesh(316, 316))]
    {
        group.throughput(Throughput::Elements(g.nnz() as u64));
        let cfg = TwoSidedConfig { scaling: ScalingConfig::iterations(1), seed: 7 };
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| two_sided_match(g, &cfg))
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_sided_stage_breakdown_er_d4_100k");
    group.sample_size(20);
    let g = erdos_renyi_square(100_000, 4.0, 1);
    group.bench_function("scale_1iter", |b| {
        b.iter(|| sinkhorn_knopp(&g, &ScalingConfig::iterations(1)))
    });
    let scaling = sinkhorn_knopp(&g, &ScalingConfig::iterations(1));
    group.bench_function("choices", |b| b.iter(|| two_sided_choices(&g, &scaling, 7)));
    group.bench_function("sampling+matching", |b| {
        b.iter(|| two_sided_match_with_scaling(&g, &scaling, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_stages);
criterion_main!(benches);
