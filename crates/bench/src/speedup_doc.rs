//! The `BENCH_speedup.json` kernel schema, shared by its writer (the
//! `speedup` sweep) and its reader (the `trendcheck` regression gate).
//!
//! One kernel entry is
//!
//! ```text
//! {"kernel":"ksmt","phases":null,"times":[{"threads":1,"seconds":…,"speedup":…}, …]}
//! ```
//!
//! `"phases"` is the kernel's deterministic search-phase count (the
//! wall-time-independent work measure behind the grafted finisher's win),
//! `null` for kernels without a phase structure.
//!
//! [`kernel_entry`] is the single place that shape is produced;
//! [`speedups_at`] and [`kernel_phases`] are the single places it is
//! consumed. Keeping both in one module means a schema change cannot
//! silently break the CI gate: writer and reader move together, under the
//! round-trip test below.

use dsmatch_json::Json;

/// Build one kernel's entry for the sweep document's `"kernels"` array:
/// the per-thread wall times plus speedups relative to the first (1-thread)
/// measurement, plus the kernel's deterministic phase count (`None` for
/// kernels without one — measured once, untimed, since the parallel
/// finishers are byte-identical at every pool size).
pub fn kernel_entry(
    name: &str,
    threads: &[usize],
    seconds: &[f64],
    speedups: &[f64],
    phases: Option<usize>,
) -> Json {
    Json::obj(vec![
        ("kernel", Json::from(name)),
        ("phases", Json::opt(phases)),
        (
            "times",
            Json::Arr(
                threads
                    .iter()
                    .zip(seconds)
                    .zip(speedups)
                    .map(|((&t, &s), &sp)| {
                        Json::obj(vec![
                            ("threads", Json::from(t)),
                            ("seconds", Json::from(s)),
                            ("speedup", Json::from(sp)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// `kernel name → speedup at the reference thread count`, from one sweep
/// document.
///
/// A kernel without an entry at the reference thread count is an error,
/// not a skip: silently dropping it would let that kernel fall out of the
/// regression gate (a sweep regenerated with a truncated thread ladder
/// would pass vacuously for it).
pub fn speedups_at(doc: &Json, threads: f64) -> Result<Vec<(String, f64)>, String> {
    let kernels =
        doc.get("kernels").and_then(Json::as_arr).ok_or("document has no \"kernels\" array")?;
    let mut out = Vec::new();
    for kernel in kernels {
        let name =
            kernel.get("kernel").and_then(Json::as_str).ok_or("kernel entry without a name")?;
        let times =
            kernel.get("times").and_then(Json::as_arr).ok_or("kernel entry without times")?;
        let entry = times
            .iter()
            .find(|t| t.get("threads").and_then(Json::as_f64) == Some(threads))
            .ok_or_else(|| format!("kernel {name}: no times entry at t={threads}"))?;
        let speedup = entry
            .get("speedup")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("kernel {name}: no speedup at t={threads}"))?;
        out.push((name.to_string(), speedup));
    }
    Ok(out)
}

/// The deterministic phase count of one named kernel in a sweep document.
///
/// A missing **kernel** is an error (a gate keyed on it would otherwise
/// pass vacuously against a truncated sweep); a present kernel without a
/// `"phases"` value is `Ok(None)` — not every kernel has phase structure.
pub fn kernel_phases(doc: &Json, name: &str) -> Result<Option<f64>, String> {
    let kernels =
        doc.get("kernels").and_then(Json::as_arr).ok_or("document has no \"kernels\" array")?;
    let kernel = kernels
        .iter()
        .find(|k| k.get("kernel").and_then(Json::as_str) == Some(name))
        .ok_or_else(|| format!("document has no kernel {name:?}"))?;
    Ok(kernel.get("phases").and_then(Json::as_f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_json::parse_json;

    #[test]
    fn speedups_at_reads_kernels_and_rejects_truncated_ladders() {
        let doc = parse_json(
            r#"{"kernels":[
                {"kernel":"ksmt","times":[
                    {"threads":1,"seconds":1.0,"speedup":1.0},
                    {"threads":4,"seconds":0.5,"speedup":2.0}]},
                {"kernel":"pf_par_finish","times":[
                    {"threads":1,"seconds":1.0,"speedup":1.0},
                    {"threads":4,"seconds":0.4,"speedup":2.5}]}
            ]}"#,
        )
        .unwrap();
        let s = speedups_at(&doc, 4.0).unwrap();
        assert_eq!(s, vec![("ksmt".into(), 2.0), ("pf_par_finish".into(), 2.5)]);
        // A kernel with no entry at the reference thread count is an
        // error, not a silent skip.
        assert!(speedups_at(&doc, 8.0).unwrap_err().contains("no times entry"));
    }

    #[test]
    fn writer_output_round_trips_through_the_reader() {
        let doc = Json::obj(vec![(
            "kernels",
            Json::Arr(vec![
                kernel_entry("two_sided", &[1, 2, 4], &[1.0, 0.6, 0.4], &[1.0, 1.6666, 2.5], None),
                kernel_entry("pf_graft_finish", &[1, 4], &[1.0, 0.5], &[1.0, 2.0], Some(7)),
            ]),
        )]);
        // Through text, exactly as CI sees it: write → parse → gate.
        let parsed = parse_json(&doc.to_string()).unwrap();
        let s = speedups_at(&parsed, 4.0).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, "two_sided");
        assert!((s[0].1 - 2.5).abs() < 1e-12);
        // Phase counters: None for phase-less kernels, the count otherwise,
        // and a loud error (not a silent None) for a kernel that fell out.
        assert_eq!(kernel_phases(&parsed, "two_sided").unwrap(), None);
        assert_eq!(kernel_phases(&parsed, "pf_graft_finish").unwrap(), Some(7.0));
        assert!(kernel_phases(&parsed, "gone").unwrap_err().contains("no kernel"));
    }
}
