//! The `BENCH_speedup.json` kernel schema, shared by its writer (the
//! `speedup` sweep) and its reader (the `trendcheck` regression gate).
//!
//! One kernel entry is
//!
//! ```text
//! {"kernel":"ksmt","times":[{"threads":1,"seconds":…,"speedup":…}, …]}
//! ```
//!
//! [`kernel_entry`] is the single place that shape is produced;
//! [`speedups_at`] is the single place it is consumed. Keeping both in one
//! module means a schema change cannot silently break the CI gate: writer
//! and reader move together, under the round-trip test below.

use dsmatch_json::Json;

/// Build one kernel's entry for the sweep document's `"kernels"` array:
/// the per-thread wall times plus speedups relative to the first (1-thread)
/// measurement.
pub fn kernel_entry(name: &str, threads: &[usize], seconds: &[f64], speedups: &[f64]) -> Json {
    Json::obj(vec![
        ("kernel", Json::from(name)),
        (
            "times",
            Json::Arr(
                threads
                    .iter()
                    .zip(seconds)
                    .zip(speedups)
                    .map(|((&t, &s), &sp)| {
                        Json::obj(vec![
                            ("threads", Json::from(t)),
                            ("seconds", Json::from(s)),
                            ("speedup", Json::from(sp)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// `kernel name → speedup at the reference thread count`, from one sweep
/// document.
///
/// A kernel without an entry at the reference thread count is an error,
/// not a skip: silently dropping it would let that kernel fall out of the
/// regression gate (a sweep regenerated with a truncated thread ladder
/// would pass vacuously for it).
pub fn speedups_at(doc: &Json, threads: f64) -> Result<Vec<(String, f64)>, String> {
    let kernels =
        doc.get("kernels").and_then(Json::as_arr).ok_or("document has no \"kernels\" array")?;
    let mut out = Vec::new();
    for kernel in kernels {
        let name =
            kernel.get("kernel").and_then(Json::as_str).ok_or("kernel entry without a name")?;
        let times =
            kernel.get("times").and_then(Json::as_arr).ok_or("kernel entry without times")?;
        let entry = times
            .iter()
            .find(|t| t.get("threads").and_then(Json::as_f64) == Some(threads))
            .ok_or_else(|| format!("kernel {name}: no times entry at t={threads}"))?;
        let speedup = entry
            .get("speedup")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("kernel {name}: no speedup at t={threads}"))?;
        out.push((name.to_string(), speedup));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_json::parse_json;

    #[test]
    fn speedups_at_reads_kernels_and_rejects_truncated_ladders() {
        let doc = parse_json(
            r#"{"kernels":[
                {"kernel":"ksmt","times":[
                    {"threads":1,"seconds":1.0,"speedup":1.0},
                    {"threads":4,"seconds":0.5,"speedup":2.0}]},
                {"kernel":"pf_par_finish","times":[
                    {"threads":1,"seconds":1.0,"speedup":1.0},
                    {"threads":4,"seconds":0.4,"speedup":2.5}]}
            ]}"#,
        )
        .unwrap();
        let s = speedups_at(&doc, 4.0).unwrap();
        assert_eq!(s, vec![("ksmt".into(), 2.0), ("pf_par_finish".into(), 2.5)]);
        // A kernel with no entry at the reference thread count is an
        // error, not a silent skip.
        assert!(speedups_at(&doc, 8.0).unwrap_err().contains("no times entry"));
    }

    #[test]
    fn writer_output_round_trips_through_the_reader() {
        let doc = Json::obj(vec![(
            "kernels",
            Json::Arr(vec![kernel_entry(
                "two_sided",
                &[1, 2, 4],
                &[1.0, 0.6, 0.4],
                &[1.0, 1.6666, 2.5],
            )]),
        )]);
        // Through text, exactly as CI sees it: write → parse → gate.
        let parsed = parse_json(&doc.to_string()).unwrap();
        let s = speedups_at(&parsed, 4.0).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, "two_sided");
        assert!((s[0].1 - 2.5).abs() < 1e-12);
    }
}
