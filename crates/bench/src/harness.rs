//! Timing, thread-pool and table-printing helpers.
//!
//! The paper's measurement protocol (§4.2): every timed kernel is run 20
//! times, the first five discarded, and the **geometric mean** of the rest
//! reported; speedups are relative to the single-thread execution. The
//! helpers here encode that protocol so the figure binaries stay short.

use std::time::{Duration, Instant};

/// Parse `--name <value>` or `--name=<value>` from `std::env::args`.
///
/// The experiment binaries take only a handful of numeric knobs, so a tiny
/// hand-rolled parser keeps the dependency set to the blessed crates.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let args: Vec<String> = std::env::args().collect();
    for (k, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            if let Ok(parsed) = v.parse() {
                return parsed;
            }
        } else if *a == flag {
            if let Some(v) = args.get(k + 1) {
                if let Ok(parsed) = v.parse() {
                    return parsed;
                }
            }
        }
    }
    default
}

/// True when `--name` appears among the CLI arguments.
pub fn flag(name: &str) -> bool {
    let needle = format!("--{name}");
    std::env::args().any(|a| a == needle)
}

/// Thread counts for the speedup experiments: 1, 2, 4, 8, 16 capped at the
/// machine's logical CPU count (the paper's Xeon had 16 cores + HT).
pub fn thread_ladder() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(4, |n| n.get());
    [1usize, 2, 4, 8, 16].into_iter().filter(|&t| t == 1 || t <= max).collect()
}

/// Run `f` once and return `(result, wall time)`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// The paper's protocol: `total` runs, first `warmup` ignored, geometric
/// mean of the remaining wall times (in seconds).
pub fn time_stats(total: usize, warmup: usize, mut f: impl FnMut()) -> f64 {
    assert!(warmup < total);
    let mut times = Vec::with_capacity(total - warmup);
    for run in 0..total {
        let (_, dt) = time_once(&mut f);
        if run >= warmup {
            times.push(dt.as_secs_f64());
        }
    }
    geometric_mean(&times)
}

/// Geometric mean of positive samples.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Median of samples.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

/// Minimum of `n` evaluations of `f` — the paper's Tables 1–2 report the
/// minimum quality over 10 executions ("we are investigating the
/// worst-case behavior").
pub fn min_of(n: usize, f: impl FnMut(usize) -> f64) -> f64 {
    (0..n).map(f).fold(f64::INFINITY, f64::min)
}

/// Write a machine-readable result document (the engine layer's hand-rolled
/// [`Json`](dsmatch::engine::Json) value) to `path`, newline-terminated —
/// the writer behind `BENCH_pipeline.json` and friends. No external
/// dependencies involved.
pub fn write_json_file(path: &str, json: &dsmatch::engine::Json) -> std::io::Result<()> {
    std::fs::write(path, format!("{json}\n"))
}

/// Run `f` inside a Rayon pool with exactly `threads` worker threads.
pub fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool")
        .install(f)
}

/// A printable experiment table (markdown-ish alignment).
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Row>,
}

/// One row of a [`Table`].
pub type Row = Vec<String>;

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header length).
    pub fn push(&mut self, row: Row) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (k, h) in self.header.iter().enumerate() {
            width[k] = h.len();
        }
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate() {
                width[k] = width[k].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(width) {
                line.push_str(&format!(" {c:>w$} |", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('|');
        for w in &width {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_known() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn min_of_runs_all() {
        let mut calls = 0;
        let m = min_of(5, |k| {
            calls += 1;
            (5 - k) as f64
        });
        assert_eq!(calls, 5);
        assert_eq!(m, 1.0);
    }

    #[test]
    fn with_threads_controls_pool_size() {
        let n = with_threads(3, rayon::current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["long-name".into(), "2.345".into()]);
        let s = t.render();
        assert!(s.contains("| long-name |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn time_stats_positive() {
        let t = time_stats(6, 2, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_checks_width() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec!["x".into()]);
    }
}
