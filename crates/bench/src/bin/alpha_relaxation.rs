//! The §3.3 relaxation experiment: quality of `OneSidedMatch` vs the
//! relaxed bound `1 − 1/e^α`.
//!
//! Theorem 1 needs exact doubly-stochasticity, but the paper shows the
//! proof degrades gracefully: if after a *partial* scaling every column sum
//! is at least `α`, the expected quality is still `1 − 1/e^α` (e.g.
//! α = 0.92 → 0.6015). This binary measures, per iteration count, the
//! achieved `α = min_j Σ_i s_ij` and checks the measured quality against
//! the relaxed bound — validating the paper's claim that "the scaling
//! algorithms should be run only a few iterations".
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin alpha_relaxation [--n 20000]
//! ```

use dsmatch_bench::{arg, Table};
use dsmatch_core::one_sided_match_with_scaling;
use dsmatch_exact::sprank;
use dsmatch_gen as gen;
use dsmatch_graph::BipartiteGraph;
use dsmatch_scale::{min_col_sum, sinkhorn_knopp, ScalingConfig};

fn main() {
    let n: usize = arg("n", 20_000);
    println!("# §3.3 relaxation — measured α = min column sum vs quality bound 1 − e^(−α)");
    let instances: Vec<(String, BipartiteGraph)> = vec![
        ("ring".into(), gen::ring(n)),
        ("er_d8".into(), gen::erdos_renyi_square(n, 8.0, 3)),
        ("mesh".into(), gen::grid_mesh((n as f64).sqrt() as usize, (n as f64).sqrt() as usize)),
        ("chung_lu+diag".into(), gen::suite::instances()[7].build(n, 5)),
    ];
    let mut table = Table::new(vec![
        "instance",
        "iters",
        "α",
        "bound 1−e^{−α}",
        "measured quality",
        "bound met",
    ]);
    for (name, g) in instances {
        let opt = sprank(&g);
        for iters in [1usize, 2, 5, 10] {
            let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(iters));
            let alpha = min_col_sum(&g, &s).min(1.0);
            let bound = 1.0 - (-alpha).exp();
            // Average over a few seeds: the bound is on the expectation.
            let runs = 5;
            let mean_q: f64 = (0..runs)
                .map(|r| one_sided_match_with_scaling(&g, &s, 40 + r).quality(opt))
                .sum::<f64>()
                / runs as f64;
            table.push(vec![
                name.clone(),
                iters.to_string(),
                format!("{alpha:.3}"),
                format!("{bound:.4}"),
                format!("{mean_q:.4}"),
                if mean_q + 0.01 >= bound { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    table.print();
    println!();
    println!("expected: α climbs toward 1 within a few iterations and the measured");
    println!("quality always clears 1 − e^(−α) (the bound is loose in practice).");
}
