//! Chain-length analysis of `KarpSipserMT` Phase 1 — evidence for the
//! paper's Lemma-4 scalability argument ("we did not observe such paths to
//! be long enough to hurt the parallel performance").
//!
//! For every suite instance, samples the TwoSidedMatch choices and reports
//! the out-one chain-length distribution: if chains were long, a thread
//! following one would serialize a large part of Phase 1.
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin chains [--shrink 64]
//! ```

use dsmatch_bench::{arg, Table};
use dsmatch_core::{ks_mt_chain_stats, two_sided_choices};
use dsmatch_gen::suite;
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig};

fn main() {
    let shrink: usize = arg("shrink", 64);
    let seed: u64 = arg("seed", 0xC4A1);

    println!("# KarpSipserMT Phase-1 chain lengths (shrink = {shrink})");
    let mut table = Table::new(vec![
        "name",
        "chains",
        "mean len",
        "max len",
        "P1 matches",
        "P2 matches",
        "≥15 (tail)",
    ]);
    for (k, entry) in suite::instances().into_iter().enumerate() {
        let g = entry.build_scaled(shrink, seed.wrapping_add(k as u64));
        let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(1));
        let (rc, cc) = two_sided_choices(&g, &s, 7);
        let st = ks_mt_chain_stats(&rc, &cc);
        table.push(vec![
            entry.name.to_string(),
            st.chains.to_string(),
            format!("{:.2}", st.mean_chain()),
            st.max_chain.to_string(),
            st.phase1_matches.to_string(),
            st.phase2_matches.to_string(),
            st.histogram[15].to_string(),
        ]);
    }
    table.print();
    println!();
    println!("expected: mean chain length ~1–3 and max length O(log n) on every");
    println!("instance — chains never serialize a meaningful fraction of Phase 1.");
}
