//! Convergence-rate diagnosis: σ₂ of the scaled matrix vs the scaling
//! iterations needed to reach the quality guarantees.
//!
//! §3.3 of the paper cites Knight's theorem — Sinkhorn–Knopp converges
//! linearly at rate σ₂² (second singular value of the doubly stochastic
//! limit). This binary makes that connection concrete on the paper's
//! instance families: instances with σ₂ → 1 (the adversarial family at
//! large k) need visibly more iterations to reach the TwoSidedMatch
//! conjecture line.
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin sigma2 [--n 800]
//! ```

use dsmatch_bench::{arg, Table};
use dsmatch_core::{two_sided_match_with_scaling, TWO_SIDED_CONJECTURE};
use dsmatch_gen as gen;
use dsmatch_graph::BipartiteGraph;
use dsmatch_scale::{second_singular_value, sinkhorn_knopp, ScalingConfig};

fn iterations_to_conjecture(g: &BipartiteGraph, max: usize) -> Option<usize> {
    let n = g.nrows();
    for iters in 1..=max {
        let s = sinkhorn_knopp(g, &ScalingConfig::iterations(iters));
        let m = two_sided_match_with_scaling(g, &s, 7);
        if m.cardinality() as f64 / n as f64 >= TWO_SIDED_CONJECTURE {
            return Some(iters);
        }
    }
    None
}

fn main() {
    let n: usize = arg("n", 800);
    println!("# σ₂ of the scaled matrix vs iterations needed for quality ≥ 0.866 (n = {n})");
    let mut table = Table::new(vec!["instance", "σ₂", "SK rate σ₂²", "iters to 0.866"]);
    let instances: Vec<(String, BipartiteGraph)> = vec![
        ("ring".into(), gen::ring(n)),
        ("er_d8".into(), gen::erdos_renyi_square(n, 8.0, 3)),
        ("adversarial k=2".into(), gen::adversarial_ks(n, 2)),
        ("adversarial k=8".into(), gen::adversarial_ks(n, 8)),
        ("adversarial k=32".into(), gen::adversarial_ks(n, 32)),
    ];
    for (name, g) in instances {
        let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(100));
        let sigma = second_singular_value(&g, &s, 150, 11);
        let iters = iterations_to_conjecture(&g, 60).map_or("> 60".to_string(), |k| k.to_string());
        table.push(vec![name, format!("{sigma:.4}"), format!("{:.4}", sigma * sigma), iters]);
    }
    table.print();
    println!();
    println!("expected: iterations-to-0.866 grows with the adversarial k — the");
    println!("mechanism behind Table 1's '5 iterations are not enough at k = 32'");
    println!("observation. (σ₂ itself sits near 1 for every sparse instance; the");
    println!("practically relevant quantity is the row in the last column.)");
}
