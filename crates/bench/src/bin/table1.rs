//! Reproduce **Table 1** of the paper: quality of the classic Karp–Sipser
//! heuristic vs `TwoSidedMatch` on the Figure-2 adversarial matrices.
//!
//! Paper protocol: n = 3200, k ∈ {2, 4, 8, 16, 32}, Sinkhorn–Knopp
//! iterations ∈ {0, 1, 5, 10}, minimum quality over 10 executions, plus the
//! scaling error after each iteration count. The instances are full-sprank
//! (a perfect matching exists), so quality = cardinality / n.
//!
//! Expected shape (paper): KS degrades from ~0.78 (k=2) to ~0.67 (k=32);
//! TwoSidedMatch with 5 iterations exceeds 0.94 everywhere; with 10
//! iterations ≥ 0.98.
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin table1 [--n 3200] [--runs 10]
//! ```

use dsmatch_bench::{arg, min_of, Table};
use dsmatch_core::{karp_sipser, two_sided_match_with_scaling, KarpSipserConfig};
use dsmatch_gen::adversarial_ks;
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig, ScalingResult};

fn main() {
    let n: usize = arg("n", 3200);
    let runs: usize = arg("runs", 10);
    let ks_values: Vec<usize> = vec![2, 4, 8, 16, 32];
    let iter_counts: Vec<usize> = vec![0, 1, 5, 10];

    println!(
        "# Table 1 — KS vs TwoSidedMatch on adversarial matrices (n = {n}, min of {runs} runs)"
    );
    let mut header: Vec<String> = vec!["k".into(), "KarpSipser".into()];
    for it in &iter_counts {
        header.push(format!("{it} it: Err"));
        header.push(format!("{it} it: Qual"));
    }
    let mut table = Table::new(header);

    for &k in &ks_values {
        let g = adversarial_ks(n, k);
        let ks_quality = min_of(runs, |r| {
            let stats = karp_sipser(&g, &KarpSipserConfig { seed: 1000 + r as u64 });
            stats.matching.cardinality() as f64 / n as f64
        });
        let mut row = vec![k.to_string(), format!("{ks_quality:.3}")];
        for &iters in &iter_counts {
            let scaling = if iters == 0 {
                ScalingResult::identity(&g)
            } else {
                sinkhorn_knopp(&g, &ScalingConfig::iterations(iters))
            };
            let quality = min_of(runs, |r| {
                let m = two_sided_match_with_scaling(&g, &scaling, 2000 + r as u64);
                m.cardinality() as f64 / n as f64
            });
            row.push(format!("{:.3}", scaling.error));
            row.push(format!("{quality:.3}"));
        }
        table.push(row);
    }
    table.print();
    println!();
    println!("paper reference (n = 3200): KS 0.782→0.670 as k grows;");
    println!("TwoSided @5 iters ≥ 0.946, @10 iters ≥ 0.980 for all k.");
}
