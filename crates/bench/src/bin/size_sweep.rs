//! Speedup-vs-size sweep: how parallel efficiency depends on instance
//! size.
//!
//! The paper's Figures 3–4 report 8–12× speedups at 16 threads on
//! instances of 10⁶–10⁸ edges. On smaller surrogates the fixed parallel
//! overhead (pool wakeup, cache-line ping-pong on the atomics) dominates.
//! This binary quantifies the crossover so EXPERIMENTS.md can relate our
//! shrunk-instance speedups to the paper's full-size ones.
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin size_sweep [--threads 16]
//! ```

use dsmatch_bench::{arg, time_stats, with_threads, Table};
use dsmatch_core::{two_sided_match, TwoSidedConfig};
use dsmatch_gen::erdos_renyi_square;
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig};

fn main() {
    let threads: usize =
        arg("threads", std::thread::available_parallelism().map_or(8, |n| n.get().min(16)));
    let runs: usize = arg("runs", 6);
    let warmup: usize = arg("warmup", 2);

    println!("# Speedup vs instance size (ER d = 8, {threads} threads vs 1)");
    let mut table = Table::new(vec!["n", "edges", "ScaleSK ×", "TwoSided ×"]);
    for exp in 12..=21usize {
        let n = 1usize << exp;
        let g = erdos_renyi_square(n, 8.0, 5);
        let cfg = ScalingConfig::iterations(1);
        let t1_scale = with_threads(1, || {
            time_stats(runs, warmup, || {
                std::hint::black_box(sinkhorn_knopp(&g, &cfg));
            })
        });
        let tp_scale = with_threads(threads, || {
            time_stats(runs, warmup, || {
                std::hint::black_box(sinkhorn_knopp(&g, &cfg));
            })
        });
        let two_cfg = TwoSidedConfig { scaling: cfg, seed: 7 };
        let t1_two = with_threads(1, || {
            time_stats(runs, warmup, || {
                std::hint::black_box(two_sided_match(&g, &two_cfg));
            })
        });
        let tp_two = with_threads(threads, || {
            time_stats(runs, warmup, || {
                std::hint::black_box(two_sided_match(&g, &two_cfg));
            })
        });
        table.push(vec![
            n.to_string(),
            g.nnz().to_string(),
            format!("{:.2}", t1_scale / tp_scale),
            format!("{:.2}", t1_two / tp_two),
        ]);
    }
    table.print();
    println!();
    println!("expected: speedup grows monotonically with n and approaches the paper's");
    println!("8–12× once the instance stops fitting in the shared cache.");
}
