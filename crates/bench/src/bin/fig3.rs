//! Reproduce **Figures 3a and 3b** of the paper: speedups of `ScaleSK`
//! (one scaling iteration) and of `OneSidedMatch` (scaling + sampling) on
//! the 12-matrix suite with 2, 4, 8 and 16 threads, relative to the
//! single-thread run.
//!
//! Paper protocol: 20 executions per point, first 5 discarded, geometric
//! mean of the rest. Expected shape: near-linear scaling up to the core
//! count; the high-degree-variance instances (`torso1`, `audikw_1`) scale
//! worst (paper: 7.7 / 8.4 vs ≥ 10 elsewhere at 16 threads).
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin fig3 \
//!     [--shrink 64] [--runs 8] [--warmup 2] [--paper]   # --paper = 20/5 protocol
//! ```

use dsmatch_bench::{arg, flag, thread_ladder, time_stats, with_threads, Table};
use dsmatch_core::one_sided_match_with_scaling;
use dsmatch_gen::suite;
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig};

fn main() {
    let shrink: usize = arg("shrink", 64);
    let (runs, warmup) = if flag("paper") { (20, 5) } else { (arg("runs", 8), arg("warmup", 2)) };
    let seed: u64 = arg("seed", 0xF3);
    let threads = thread_ladder();

    println!("# Figure 3a — ScaleSK speedups (1 iteration, shrink = {shrink})");
    let mut header = vec!["name".to_string()];
    header.extend(threads.iter().map(|t| format!("{t}T")));
    let mut t3a = Table::new(header.clone());
    let mut t3b = Table::new(header);

    for (k, entry) in suite::instances().into_iter().enumerate() {
        let g = entry.build_scaled(shrink, seed.wrapping_add(k as u64));
        let cfg = ScalingConfig::iterations(1);

        // Figure 3a: ScaleSK.
        let mut base = 0.0f64;
        let mut row_a = vec![entry.name.to_string()];
        for &t in &threads {
            let dt = with_threads(t, || {
                time_stats(runs, warmup, || {
                    std::hint::black_box(sinkhorn_knopp(&g, &cfg));
                })
            });
            if t == 1 {
                base = dt;
                row_a.push("1.00".into());
            } else {
                row_a.push(format!("{:.2}", base / dt));
            }
        }
        t3a.push(row_a);

        // Figure 3b: OneSidedMatch = ScaleSK + sampling (paper's
        // OneSidedMatch time includes scaling).
        let mut base = 0.0f64;
        let mut row_b = vec![entry.name.to_string()];
        for &t in &threads {
            let dt = with_threads(t, || {
                time_stats(runs, warmup, || {
                    let s = sinkhorn_knopp(&g, &cfg);
                    std::hint::black_box(one_sided_match_with_scaling(&g, &s, 7));
                })
            });
            if t == 1 {
                base = dt;
                row_b.push("1.00".into());
            } else {
                row_b.push(format!("{:.2}", base / dt));
            }
        }
        t3b.push(row_b);
    }
    t3a.print();
    println!();
    println!("# Figure 3b — OneSidedMatch speedups (scaling + sampling)");
    t3b.print();
    println!();
    println!("paper reference @16T: ScaleSK 7.7–10.6; OneSidedMatch 8.4–11.4,");
    println!("worst on the high-degree-variance instances torso1 and audikw_1.");
}
