//! The §5 extension experiment: quality of the undirected 1-out heuristic
//! across graph families, with and without symmetric scaling.
//!
//! The paper only announces this variant ("the algorithms and results
//! extend naturally"); this binary provides the evidence table the
//! follow-up paper would contain: fraction of vertices matched relative to
//! the maximum matching, on graph families with perfect matchings.
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin undirected [--n 100000]
//! ```

use dsmatch_bench::{arg, min_of, Table};
use dsmatch_core::{one_out_undirected, OneOutConfig};
use dsmatch_graph::{SplitMix64, UndirectedGraph};
use dsmatch_scale::ScalingConfig;

/// Even cycle: perfect matching of size n/2.
fn cycle(n: usize) -> UndirectedGraph {
    UndirectedGraph::from_edges(n, &(0..n).map(|v| (v, (v + 1) % n)).collect::<Vec<_>>())
}

/// Cycle + random perfect matching chords: 3-regular-ish, perfect matching.
fn cycle_plus_matching(n: usize, seed: u64) -> UndirectedGraph {
    let mut edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    let mut rng = SplitMix64::new(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut perm);
    for pair in perm.chunks_exact(2) {
        edges.push((pair[0] as usize, pair[1] as usize));
    }
    UndirectedGraph::from_edges(n, &edges)
}

/// Star-heavy skewed graph + perfect matching backbone.
fn skewed(n: usize, seed: u64) -> UndirectedGraph {
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(usize, usize)> = (0..n / 2).map(|k| (2 * k, 2 * k + 1)).collect();
    // Hubs: first 1% of vertices receive many extra edges.
    let hubs = (n / 100).max(1);
    for _ in 0..3 * n {
        let h = rng.next_index(hubs);
        let v = rng.next_index(n);
        if h != v {
            edges.push((h, v));
        }
    }
    UndirectedGraph::from_edges(n, &edges)
}

fn main() {
    let n: usize = arg("n", 100_000);
    let runs: usize = arg("runs", 5);
    let n = if n % 2 == 1 { n + 1 } else { n };

    println!("# §5 extension — undirected 1-out matching quality (n = {n}, min of {runs} runs)");
    println!("every family has a perfect matching: quality = 2|M| / n");
    let mut table = Table::new(vec!["family", "0 it", "1 it", "5 it", "10 it"]);
    let families: Vec<(&str, UndirectedGraph)> = vec![
        ("cycle", cycle(n)),
        ("cycle+matching", cycle_plus_matching(n, 1)),
        ("skewed hubs", skewed(n, 2)),
    ];
    for (name, g) in families {
        let mut row = vec![name.to_string()];
        for iters in [0usize, 1, 5, 10] {
            let q = min_of(runs, |r| {
                let m = one_out_undirected(
                    &g,
                    &OneOutConfig {
                        scaling: ScalingConfig::iterations(iters),
                        seed: 100 + r as u64,
                    },
                );
                2.0 * m.cardinality() as f64 / n as f64
            });
            row.push(format!("{q:.3}"));
        }
        table.push(row);
    }
    table.print();
    println!();
    println!("expected: scaling lifts the skewed family the most; regular families sit");
    println!("near the bipartite constant 0.866 already without scaling.");
}
