//! Empirical evidence for **Conjecture 1** of the paper: on an `n × n`
//! matrix with total support, `TwoSidedMatch` finds a matching of size
//! `2(1 − ρ)n ≈ 0.8657 n`, where `ρ e^ρ = 1`.
//!
//! Two experiments, following the paper's §3.2 discussion:
//!
//! 1. **Random 1-out bipartite graphs** (the all-ones-matrix limit): sample
//!    `rchoice`/`cchoice` uniformly and let `KarpSipserMT` (exact on these
//!    graphs) report the maximum matching. Karoński–Pittel/Walkup give the
//!    0.8657 limit.
//! 2. **Dense all-ones matrices** end-to-end through `TwoSidedMatch` (the
//!    scaling is exactly uniform, so this must coincide with experiment 1
//!    in distribution). Also cross-checked against Hopcroft–Karp.
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin conjecture [--trials 5]
//! ```

use dsmatch_bench::{arg, Table};
use dsmatch_core::{karp_sipser_mt, two_sided_match, TwoSidedConfig, TWO_SIDED_CONJECTURE};
use dsmatch_exact::hopcroft_karp;
use dsmatch_gen::dense_ones;
use dsmatch_graph::SplitMix64;
use dsmatch_scale::ScalingConfig;

fn main() {
    let trials: usize = arg("trials", 5);

    println!("# Conjecture 1 — random 1-out bipartite graphs (exact maximum via KarpSipserMT)");
    let mut table = Table::new(vec!["n", "mean |M|/n", "min", "max", "limit"]);
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let mut qs = Vec::with_capacity(trials);
        for trial in 0..trials {
            let mut rng = SplitMix64::new(0xC0 + trial as u64);
            let rchoice: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
            let cchoice: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
            let m = karp_sipser_mt(&rchoice, &cchoice);
            qs.push(m.cardinality() as f64 / n as f64);
        }
        let mean = qs.iter().sum::<f64>() / qs.len() as f64;
        let min = qs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = qs.iter().cloned().fold(0.0f64, f64::max);
        table.push(vec![
            n.to_string(),
            format!("{mean:.4}"),
            format!("{min:.4}"),
            format!("{max:.4}"),
            format!("{TWO_SIDED_CONJECTURE:.4}"),
        ]);
    }
    table.print();

    println!();
    println!("# Dense all-ones matrices through the full TwoSidedMatch pipeline");
    let mut table = Table::new(vec!["n", "TwoSided |M|/n", "KS-MT exact on subgraph?"]);
    for n in [500usize, 1_000, 2_000, 4_000] {
        let g = dense_ones(n);
        let m = two_sided_match(
            &g,
            &TwoSidedConfig { scaling: ScalingConfig::iterations(1), seed: 0xAB },
        );
        m.verify(&g).unwrap();
        // Cross-check: the matching must be maximum on the sampled
        // subgraph; comparing to HK on the full graph gives quality vs n.
        let opt = hopcroft_karp(&g).cardinality();
        assert_eq!(opt, n, "all-ones is full sprank");
        table.push(vec![
            n.to_string(),
            format!("{:.4}", m.cardinality() as f64 / n as f64),
            "verified".into(),
        ]);
    }
    table.print();
    println!();
    println!("expected: ratios concentrate at 2(1 − ρ) = {TWO_SIDED_CONJECTURE:.4} as n grows.");
}
