//! Reproduce **Table 2** of the paper: matching quality of `OneSidedMatch`
//! and `TwoSidedMatch` on sprank-deficient Erdős–Rényi matrices.
//!
//! Paper protocol: square n = 100 000 with average degree d ∈ {2, 3, 4, 5},
//! Sinkhorn–Knopp iterations ∈ {0, 1, 5, 10}, minimum quality over 10
//! executions, quality = cardinality / sprank (computed exactly with
//! Hopcroft–Karp). Then the rectangular case 100 000 × 120 000 with 5
//! iterations (paper: OneSided ≥ 0.753, TwoSided ≥ 0.930).
//!
//! Expected shape: higher deficiency (small d) → easier to approximate;
//! quality grows with scaling iterations; TwoSided ≥ 0.838 everywhere,
//! OneSided ≥ 0.635 everywhere.
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin table2 [--n 100000] [--runs 10]
//! ```

use dsmatch_bench::{arg, min_of, Table};
use dsmatch_core::{one_sided_match_with_scaling, two_sided_match_with_scaling};
use dsmatch_exact::sprank;
use dsmatch_gen::{erdos_renyi_rect, erdos_renyi_square};
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig, ScalingResult};

fn main() {
    let n: usize = arg("n", 100_000);
    let runs: usize = arg("runs", 10);
    let degrees = [2.0f64, 3.0, 4.0, 5.0];
    let iter_counts = [0usize, 1, 5, 10];

    println!(
        "# Table 2 — quality on sprank-deficient random matrices (n = {n}, min of {runs} runs)"
    );
    let mut table = Table::new(vec!["d", "iter", "sprank", "OneSidedMatch", "TwoSidedMatch"]);
    for &d in &degrees {
        let g = erdos_renyi_square(n, d, 0xE5 + d as u64);
        let opt = sprank(&g);
        for &iters in &iter_counts {
            let scaling = if iters == 0 {
                ScalingResult::identity(&g)
            } else {
                sinkhorn_knopp(&g, &ScalingConfig::iterations(iters))
            };
            let one = min_of(runs, |r| {
                one_sided_match_with_scaling(&g, &scaling, 10 + r as u64).quality(opt)
            });
            let two = min_of(runs, |r| {
                two_sided_match_with_scaling(&g, &scaling, 500 + r as u64).quality(opt)
            });
            table.push(vec![
                format!("{d:.0}"),
                iters.to_string(),
                opt.to_string(),
                format!("{one:.3}"),
                format!("{two:.3}"),
            ]);
        }
    }
    table.print();

    // Rectangular case (paper §4.1.3 closing remark).
    let m = n;
    let n2 = n + n / 5; // 100k × 120k proportions
    let g = erdos_renyi_rect(m, n2, 3.0, 0xBEEF);
    let opt = sprank(&g);
    let scaling = sinkhorn_knopp(&g, &ScalingConfig::iterations(5));
    let one =
        min_of(runs, |r| one_sided_match_with_scaling(&g, &scaling, 77 + r as u64).quality(opt));
    let two =
        min_of(runs, |r| two_sided_match_with_scaling(&g, &scaling, 997 + r as u64).quality(opt));
    println!();
    println!(
        "rectangular {m}×{n2}, 5 iterations: OneSided = {one:.3}, TwoSided = {two:.3} \
         (paper: 0.753 / 0.930)"
    );
    println!();
    println!("paper reference (n = 100000): d=2 @10it → 0.879/0.954; d=5 @10it → 0.716/0.882.");
}
