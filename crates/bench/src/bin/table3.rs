//! Reproduce **Table 3** of the paper: instance properties, scaling errors
//! and sequential execution times on the 12-matrix suite.
//!
//! Columns, as in the paper: instance name, n, number of edges, average
//! degree, sprank/n, scaling error after 1/5/10 Sinkhorn–Knopp iterations,
//! then single-thread times of `ScaleSK` (one iteration), `OneSidedMatch`
//! (including scaling), `KarpSipserMT` (matching only) and `TwoSidedMatch`
//! (scaling + sampling + matching).
//!
//! The instances are synthetic surrogates for the UFL matrices (DESIGN.md
//! §3); absolute times will differ from the paper's 2012 Xeon, but the
//! relative ordering (TwoSided ≈ 2–3 × OneSided; KarpSipserMT dominating
//! TwoSided's cost) should hold.
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin table3 [--shrink 64] [--runs 5] [--warmup 1]
//! ```

use dsmatch_bench::{arg, time_stats, with_threads, Table};
use dsmatch_core::{
    karp_sipser_mt, one_sided_match_with_scaling, two_sided_choices, two_sided_match,
    TwoSidedConfig,
};
use dsmatch_exact::sprank;
use dsmatch_gen::suite;
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig};

fn main() {
    let shrink: usize = arg("shrink", 64);
    let runs: usize = arg("runs", 5);
    let warmup: usize = arg("warmup", 1);
    let seed: u64 = arg("seed", 0xD5);

    println!("# Table 3 — suite properties and sequential times (shrink = {shrink}, geo-mean of {} timed runs)", runs - warmup);
    let mut table = Table::new(vec![
        "name",
        "n",
        "edges",
        "avg.deg",
        "sprank/n",
        "err@1",
        "err@5",
        "err@10",
        "ScaleSK(s)",
        "OneSided(s)",
        "KarpSipserMT(s)",
        "TwoSided(s)",
    ]);

    for (k, entry) in suite::instances().into_iter().enumerate() {
        let g = entry.build_scaled(shrink, seed.wrapping_add(k as u64));
        let n = g.nrows();
        let spr = sprank(&g) as f64 / n as f64;
        let err1 = sinkhorn_knopp(&g, &ScalingConfig::iterations(1)).error;
        let err5 = sinkhorn_knopp(&g, &ScalingConfig::iterations(5)).error;
        let err10 = sinkhorn_knopp(&g, &ScalingConfig::iterations(10)).error;

        // All sequential timings inside a 1-thread pool, mirroring the
        // paper's single-thread baseline column.
        let (t_scale, t_one, t_ksmt, t_two) = with_threads(1, || {
            let t_scale = time_stats(runs, warmup, || {
                std::hint::black_box(sinkhorn_knopp(&g, &ScalingConfig::iterations(1)));
            });
            let scaling = sinkhorn_knopp(&g, &ScalingConfig::iterations(1));
            let t_one = t_scale
                + time_stats(runs, warmup, || {
                    std::hint::black_box(one_sided_match_with_scaling(&g, &scaling, 7));
                });
            let (rc, cc) = two_sided_choices(&g, &scaling, 7);
            let t_ksmt = time_stats(runs, warmup, || {
                std::hint::black_box(karp_sipser_mt(&rc, &cc));
            });
            let t_two = time_stats(runs, warmup, || {
                std::hint::black_box(two_sided_match(
                    &g,
                    &TwoSidedConfig { scaling: ScalingConfig::iterations(1), seed: 7 },
                ));
            });
            (t_scale, t_one, t_ksmt, t_two)
        });

        table.push(vec![
            entry.name.to_string(),
            n.to_string(),
            g.nnz().to_string(),
            format!("{:.1}", g.avg_degree()),
            format!("{spr:.2}"),
            format!("{err1:.2}"),
            format!("{err5:.2}"),
            format!("{err10:.2}"),
            format!("{t_scale:.4}"),
            format!("{t_one:.4}"),
            format!("{t_ksmt:.4}"),
            format!("{t_two:.4}"),
        ]);
    }
    table.print();
    println!();
    println!("paper reference shape: OneSided ≈ 2–2.5 × ScaleSK; TwoSided ≈ 2.5–3 × OneSided;");
    println!("sprank/n = 1.00 everywhere except europe_osm (0.99) and road_usa (0.95).");
}
