//! Reproduce the paper's **§4.1.1 quality sweep**: on square, fully
//! indecomposable matrices the guarantees 0.632 (`OneSidedMatch`) and 0.866
//! (`TwoSidedMatch`) are surpassed after 10 scaling iterations for nearly
//! every instance, and after 20 iterations for all of them.
//!
//! The paper ran all 743 square fully indecomposable UFL matrices with
//! 1000 ≤ n and nnz ≤ 2·10⁷; we substitute a generated ensemble spanning
//! the same structural variety (rings, meshes, regular unions, power-law
//! with diagonal, ER with diagonal), keep only those the Dulmage–Mendelsohn
//! fine decomposition certifies as fully indecomposable, and report how
//! many instances clear each guarantee at 10 and 20 iterations.
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin quality_sweep [--count 60] [--nmax 20000]
//! ```

use dsmatch_bench::{arg, Table};
use dsmatch_core::{
    one_sided_match_with_scaling, two_sided_match_with_scaling, ONE_SIDED_GUARANTEE,
    TWO_SIDED_CONJECTURE,
};
use dsmatch_dm::is_fully_indecomposable;
use dsmatch_exact::sprank;
use dsmatch_gen as gen;
use dsmatch_graph::BipartiteGraph;
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig};

fn ensemble(count: usize, nmax: usize) -> Vec<(String, BipartiteGraph)> {
    let mut out: Vec<(String, BipartiteGraph)> = Vec::new();
    let sizes: Vec<usize> =
        (0..count).map(|k| 1000 + (k * 9973) % (nmax.saturating_sub(1000).max(1))).collect();
    for (k, &n) in sizes.iter().enumerate() {
        let g = match k % 5 {
            0 => ("ring", gen::ring(n)),
            1 => {
                let side = (n as f64).sqrt().ceil() as usize;
                ("mesh", gen::grid_mesh(side, side))
            }
            2 => ("regular", gen::random_regular(n, 3, k as u64)),
            3 => ("chung_lu+diag", {
                let e = gen::suite::instances()[7]; // kkt_power family
                e.build(n, k as u64)
            }),
            _ => ("er8", gen::erdos_renyi_square(n, 8.0, k as u64)),
        };
        out.push((format!("{}-{n}", g.0), g.1));
    }
    out
}

fn main() {
    let count: usize = arg("count", 60);
    let nmax: usize = arg("nmax", 20_000);

    let candidates = ensemble(count, nmax);
    let mut kept = Vec::new();
    for (name, g) in candidates {
        if is_fully_indecomposable(&g) {
            kept.push((name, g));
        }
    }
    println!(
        "# §4.1.1 quality sweep — {} fully indecomposable instances (of {count} generated)",
        kept.len()
    );

    let mut table = Table::new(vec![
        "iterations",
        "OneSided ≥ 0.632",
        "TwoSided ≥ 0.866",
        "worst 1S",
        "worst 2S",
    ]);
    for iters in [10usize, 20] {
        let mut ok1 = 0usize;
        let mut ok2 = 0usize;
        let mut worst1 = f64::INFINITY;
        let mut worst2 = f64::INFINITY;
        for (_, g) in &kept {
            let opt = sprank(g);
            let scaling = sinkhorn_knopp(g, &ScalingConfig::iterations(iters));
            let q1 = one_sided_match_with_scaling(g, &scaling, 1).quality(opt);
            let q2 = two_sided_match_with_scaling(g, &scaling, 1).quality(opt);
            if q1 >= ONE_SIDED_GUARANTEE {
                ok1 += 1;
            }
            if q2 >= TWO_SIDED_CONJECTURE {
                ok2 += 1;
            }
            worst1 = worst1.min(q1);
            worst2 = worst2.min(q2);
        }
        table.push(vec![
            iters.to_string(),
            format!("{ok1}/{}", kept.len()),
            format!("{ok2}/{}", kept.len()),
            format!("{worst1:.3}"),
            format!("{worst2:.3}"),
        ]);
    }
    table.print();
    println!();
    println!("paper reference: 706/743 clear both at 10 iterations; all 743 at 20.");
}
