//! Reproduce **Figures 5a and 5b** of the paper: matching quality of
//! `OneSidedMatch` and `TwoSidedMatch` on the 12-matrix suite with 0, 1 and
//! 5 scaling iterations, against the guarantee lines 0.632 (Theorem 1) and
//! 0.866 (Conjecture 1).
//!
//! Expected shape (paper): with 5 iterations both heuristics clear their
//! lines on (almost) every instance; with 0 iterations (uniform sampling)
//! OneSided sits in 0.56–0.76 and TwoSided in 0.80–0.88; OneSided never
//! reaches 0.80 even with more iterations.
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin fig5 [--shrink 64] [--seed 1]
//! ```

use dsmatch_bench::{arg, Table};
use dsmatch_core::{
    one_sided_match_with_scaling, two_sided_match_with_scaling, ONE_SIDED_GUARANTEE,
    TWO_SIDED_CONJECTURE,
};
use dsmatch_exact::sprank;
use dsmatch_gen::suite;
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig, ScalingResult};

fn main() {
    let shrink: usize = arg("shrink", 64);
    let seed: u64 = arg("seed", 0xF5);
    let iter_counts = [0usize, 1, 5];

    println!("# Figure 5 — quality per instance and scaling-iteration count (shrink = {shrink})");
    let mut header = vec!["name".to_string(), "sprank".into()];
    for it in iter_counts {
        header.push(format!("1S@{it}it"));
    }
    for it in iter_counts {
        header.push(format!("2S@{it}it"));
    }
    let mut table = Table::new(header);

    let mut one_ok = 0usize;
    let mut two_ok = 0usize;
    let total = suite::instances().len();

    for (k, entry) in suite::instances().into_iter().enumerate() {
        let g = entry.build_scaled(shrink, seed.wrapping_add(k as u64));
        let opt = sprank(&g);
        let mut row = vec![entry.name.to_string(), opt.to_string()];
        let mut one5 = 0.0;
        let mut two5 = 0.0;
        for &iters in &iter_counts {
            let scaling = if iters == 0 {
                ScalingResult::identity(&g)
            } else {
                sinkhorn_knopp(&g, &ScalingConfig::iterations(iters))
            };
            let q = one_sided_match_with_scaling(&g, &scaling, 3).quality(opt);
            if iters == 5 {
                one5 = q;
            }
            row.push(format!("{q:.3}"));
        }
        for &iters in &iter_counts {
            let scaling = if iters == 0 {
                ScalingResult::identity(&g)
            } else {
                sinkhorn_knopp(&g, &ScalingConfig::iterations(iters))
            };
            let q = two_sided_match_with_scaling(&g, &scaling, 3).quality(opt);
            if iters == 5 {
                two5 = q;
            }
            row.push(format!("{q:.3}"));
        }
        if one5 >= ONE_SIDED_GUARANTEE {
            one_ok += 1;
        }
        if two5 >= TWO_SIDED_CONJECTURE - 0.01 {
            two_ok += 1;
        }
        table.push(row);
    }
    table.print();
    println!();
    println!(
        "guarantee lines: OneSided {ONE_SIDED_GUARANTEE:.3} (met @5it on {one_ok}/{total}), \
         TwoSided {TWO_SIDED_CONJECTURE:.3} (met @5it on {two_ok}/{total})"
    );
    println!(
        "paper reference: all instances clear the lines with 5 iterations (nlpkkt240 needs 15)."
    );
}
