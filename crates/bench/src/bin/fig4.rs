//! Reproduce **Figures 4a and 4b** of the paper: speedups of
//! `KarpSipserMT` (the matching kernel alone, on pre-sampled choices) and
//! of the full `TwoSidedMatch` pipeline (scaling + two-sided sampling +
//! `KarpSipserMT`) on the 12-matrix suite.
//!
//! Expected shape (paper): KarpSipserMT is the best scaler of all kernels
//! (geo-mean 11.1, up to 12.6 at 16 threads) because the choice-array
//! representation is contention-free except for the three atomics;
//! TwoSidedMatch averages ~10.6.
//!
//! ```text
//! cargo run --release -p dsmatch-bench --bin fig4 \
//!     [--shrink 64] [--runs 8] [--warmup 2] [--paper]
//! ```

use dsmatch_bench::{arg, flag, geometric_mean, thread_ladder, time_stats, with_threads, Table};
use dsmatch_core::{karp_sipser_mt, two_sided_choices, two_sided_match, TwoSidedConfig};
use dsmatch_gen::suite;
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig};

fn main() {
    let shrink: usize = arg("shrink", 64);
    let (runs, warmup) = if flag("paper") { (20, 5) } else { (arg("runs", 8), arg("warmup", 2)) };
    let seed: u64 = arg("seed", 0xF4);
    let threads = thread_ladder();

    println!("# Figure 4a — KarpSipserMT speedups (shrink = {shrink})");
    let mut header = vec!["name".to_string()];
    header.extend(threads.iter().map(|t| format!("{t}T")));
    let mut t4a = Table::new(header.clone());
    let mut t4b = Table::new(header);
    let mut ksmt_top = Vec::new();
    let mut two_top = Vec::new();

    for (k, entry) in suite::instances().into_iter().enumerate() {
        let g = entry.build_scaled(shrink, seed.wrapping_add(k as u64));
        let scaling = sinkhorn_knopp(&g, &ScalingConfig::iterations(1));
        let (rc, cc) = two_sided_choices(&g, &scaling, 7);

        let mut base = 0.0f64;
        let mut row_a = vec![entry.name.to_string()];
        for &t in &threads {
            let dt = with_threads(t, || {
                time_stats(runs, warmup, || {
                    std::hint::black_box(karp_sipser_mt(&rc, &cc));
                })
            });
            if t == 1 {
                base = dt;
                row_a.push("1.00".into());
            } else {
                let s = base / dt;
                row_a.push(format!("{s:.2}"));
                if t == *threads.last().unwrap() {
                    ksmt_top.push(s);
                }
            }
        }
        t4a.push(row_a);

        let cfg = TwoSidedConfig { scaling: ScalingConfig::iterations(1), seed: 7 };
        let mut base = 0.0f64;
        let mut row_b = vec![entry.name.to_string()];
        for &t in &threads {
            let dt = with_threads(t, || {
                time_stats(runs, warmup, || {
                    std::hint::black_box(two_sided_match(&g, &cfg));
                })
            });
            if t == 1 {
                base = dt;
                row_b.push("1.00".into());
            } else {
                let s = base / dt;
                row_b.push(format!("{s:.2}"));
                if t == *threads.last().unwrap() {
                    two_top.push(s);
                }
            }
        }
        t4b.push(row_b);
    }
    t4a.print();
    println!();
    println!("# Figure 4b — TwoSidedMatch speedups (full pipeline)");
    t4b.print();
    println!();
    if !ksmt_top.is_empty() {
        println!(
            "geo-mean speedup at {} threads: KarpSipserMT = {:.2}, TwoSidedMatch = {:.2}",
            thread_ladder().last().unwrap(),
            geometric_mean(&ksmt_top),
            geometric_mean(&two_top)
        );
    }
    println!("paper reference @16T: KarpSipserMT geo-mean 11.1 (max 12.6); TwoSidedMatch 10.6.");
}
