//! Speedup regression gate: compare a fresh `speedup` sweep against the
//! committed `BENCH_speedup.json` baseline and fail when a kernel's
//! speedup at the reference thread count has regressed beyond the
//! tolerance band.
//!
//! CI runs the sweep into a fresh file and then:
//!
//! ```text
//! trendcheck --baseline BENCH_speedup.json --fresh BENCH_speedup_fresh.json \
//!            [--threads 4] [--tolerance 0.30] [--slack 0.15]
//! ```
//!
//! A kernel regresses when
//! `fresh < baseline * (1 - tolerance) - slack`: the relative band
//! absorbs run-to-run noise, the absolute slack keeps near-1× speedups
//! (1-core runners report ≈1× honestly at every thread count) from
//! flapping. Kernels present in the baseline must be present in the fresh
//! sweep (dropping one would silently shrink coverage); new kernels in
//! the fresh sweep are reported but not judged. Exit code is non-zero on
//! any regression, missing kernel, or unreadable input — this is the
//! enforcement half of the ROADMAP's "speedup regression tracking" item.

use dsmatch_bench::{arg, geometric_mean, parse_json, JsonValue, Table};
use std::process::ExitCode;

/// `kernel name → speedup at the reference thread count`, from one sweep
/// document.
fn speedups_at(doc: &JsonValue, threads: f64) -> Result<Vec<(String, f64)>, String> {
    let kernels = doc
        .get("kernels")
        .and_then(JsonValue::as_arr)
        .ok_or("document has no \"kernels\" array")?;
    let mut out = Vec::new();
    for kernel in kernels {
        let name = kernel
            .get("kernel")
            .and_then(JsonValue::as_str)
            .ok_or("kernel entry without a name")?;
        let times =
            kernel.get("times").and_then(JsonValue::as_arr).ok_or("kernel entry without times")?;
        // A kernel without an entry at the reference thread count is an
        // error, not a skip: silently dropping it here would let that
        // kernel fall out of the regression gate (a sweep regenerated
        // with a truncated thread ladder would pass vacuously for it).
        let entry = times
            .iter()
            .find(|t| t.get("threads").and_then(JsonValue::as_f64) == Some(threads))
            .ok_or_else(|| format!("kernel {name}: no times entry at t={threads}"))?;
        let speedup = entry
            .get("speedup")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("kernel {name}: no speedup at t={threads}"))?;
        out.push((name.to_string(), speedup));
    }
    Ok(out)
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn main() -> ExitCode {
    let baseline_path: String = arg("baseline", "BENCH_speedup.json".to_string());
    let fresh_path: String = arg("fresh", "BENCH_speedup_fresh.json".to_string());
    let threads: usize = arg("threads", 4);
    let tolerance: f64 = arg("tolerance", 0.30);
    let slack: f64 = arg("slack", 0.15);

    let (baseline, fresh) = match (load(&baseline_path), load(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("trendcheck: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let (base_speedups, fresh_speedups) =
        match (speedups_at(&baseline, threads as f64), speedups_at(&fresh, threads as f64)) {
            (Ok(b), Ok(f)) => (b, f),
            (b, f) => {
                for err in [b.err(), f.err()].into_iter().flatten() {
                    eprintln!("trendcheck: {err}");
                }
                return ExitCode::FAILURE;
            }
        };
    if base_speedups.is_empty() {
        // A baseline with nothing to compare at the reference thread count
        // would make every run pass vacuously — that is a broken gate, not
        // a green one (e.g. a sweep regenerated with a truncated ladder).
        eprintln!(
            "trendcheck: baseline {baseline_path} has no kernel with a t={threads} entry; \
             the gate would enforce nothing"
        );
        return ExitCode::FAILURE;
    }

    let mut table = Table::new(vec![
        "kernel".into(),
        format!("baseline@{threads}t"),
        format!("fresh@{threads}t"),
        "floor".into(),
        "status".into(),
    ]);
    let mut failures = 0usize;
    for (name, base) in &base_speedups {
        let floor = base * (1.0 - tolerance) - slack;
        match fresh_speedups.iter().find(|(n, _)| n == name) {
            None => {
                failures += 1;
                table.push(vec![
                    name.clone(),
                    format!("{base:.2}x"),
                    "—".into(),
                    format!("{floor:.2}x"),
                    "MISSING".into(),
                ]);
            }
            Some((_, now)) => {
                let ok = *now >= floor;
                if !ok {
                    failures += 1;
                }
                table.push(vec![
                    name.clone(),
                    format!("{base:.2}x"),
                    format!("{now:.2}x"),
                    format!("{floor:.2}x"),
                    if ok { "ok" } else { "REGRESSED" }.into(),
                ]);
            }
        }
    }
    for (name, now) in &fresh_speedups {
        if !base_speedups.iter().any(|(n, _)| n == name) {
            table.push(vec![
                name.clone(),
                "—".into(),
                format!("{now:.2}x"),
                "—".into(),
                "new".into(),
            ]);
        }
    }
    table.print();

    let gm = |xs: &[(String, f64)]| {
        let v: Vec<f64> = xs.iter().map(|&(_, s)| s).collect();
        if v.is_empty() {
            1.0
        } else {
            geometric_mean(&v)
        }
    };
    println!(
        "geomean speedup @{threads}t: baseline {:.3}x, fresh {:.3}x \
         (band: -{:.0}% relative, -{slack} absolute)",
        gm(&base_speedups),
        gm(&fresh_speedups),
        tolerance * 100.0,
    );
    if failures > 0 {
        eprintln!("trendcheck: {failures} kernel(s) regressed or went missing");
        return ExitCode::FAILURE;
    }
    println!("trendcheck: all {} kernels within the tolerance band", base_speedups.len());
    ExitCode::SUCCESS
}
