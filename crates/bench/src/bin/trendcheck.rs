//! Speedup regression gate: compare a fresh `speedup` sweep against the
//! committed `BENCH_speedup.json` baseline and fail when a kernel's
//! speedup at the reference thread count has regressed beyond the
//! tolerance band.
//!
//! CI runs the sweep into a fresh file and then:
//!
//! ```text
//! trendcheck --baseline BENCH_speedup.json --fresh BENCH_speedup_fresh.json \
//!            [--threads 4] [--tolerance 0.30] [--slack 0.15]
//! ```
//!
//! A kernel regresses when
//! `fresh < baseline * (1 - tolerance) - slack`: the relative band
//! absorbs run-to-run noise, the absolute slack keeps near-1× speedups
//! (1-core runners report ≈1× honestly at every thread count) from
//! flapping. A baseline speedup that is non-finite or ≈0 makes that floor
//! meaningless (≤ 0 — everything would pass), so degenerate baselines
//! **fail** with a message instead of gating nothing, mirroring the
//! `s.max(1e-12)` guard the sweep itself applies when it divides wall
//! times. Kernels present in the baseline must be present in the fresh
//! sweep (dropping one would silently shrink coverage); new kernels in
//! the fresh sweep are reported but not judged. Exit code is non-zero on
//! any regression, degenerate baseline, missing kernel, or unreadable
//! input — this is the enforcement half of the ROADMAP's "speedup
//! regression tracking" item.
//!
//! The gate also enforces the **phase-reduction win** of the incremental
//! tree-grafting finisher: in the fresh sweep, `pf_graft_finish` must
//! report strictly fewer deterministic phases than `pf_par_finish` (the
//! per-phase forest rebuild it eliminates). Either kernel or counter
//! missing from the fresh sweep fails loudly — a truncated sweep must not
//! pass the gate vacuously.

use dsmatch_bench::speedup_doc::{kernel_phases, speedups_at};
use dsmatch_bench::{arg, geometric_mean, parse_json, JsonValue, Table};
use std::process::ExitCode;

/// Smallest baseline speedup the gate will accept as meaningful. Honest
/// sweeps report O(1) speedups (0.5–8×); anything at or below this is a
/// corrupted or hand-edited baseline whose floor would be vacuous.
const MIN_BASELINE_SPEEDUP: f64 = 1e-6;

/// Verdict for one kernel's `(baseline, fresh)` speedup pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Verdict {
    /// Fresh speedup is at or above the tolerance floor.
    Ok,
    /// Fresh speedup fell below `baseline * (1 - tolerance) - slack`.
    Regressed,
    /// The baseline itself is unusable (non-finite or ≈0): the gate must
    /// fail loudly rather than pass vacuously against a floor ≤ 0.
    DegenerateBaseline,
}

/// Judge one kernel. `NaN` propagates to a failure on either side: a NaN
/// baseline is degenerate, a NaN fresh value never clears the floor.
fn judge(baseline: f64, fresh: f64, tolerance: f64, slack: f64) -> Verdict {
    if !baseline.is_finite() || baseline <= MIN_BASELINE_SPEEDUP {
        return Verdict::DegenerateBaseline;
    }
    if fresh >= floor(baseline, tolerance, slack) {
        Verdict::Ok
    } else {
        Verdict::Regressed
    }
}

fn floor(baseline: f64, tolerance: f64, slack: f64) -> f64 {
    baseline * (1.0 - tolerance) - slack
}

/// The grafted finisher's reason to exist, as a gate: strictly fewer
/// search phases than the rebuild-per-phase `pf-par` on the same warm
/// start. Judged on the fresh sweep (phase counts are deterministic, so
/// there is no noise band to absorb); any missing kernel or counter is a
/// loud failure, not a skip.
fn judge_phase_reduction(fresh: &JsonValue) -> Result<(f64, f64), String> {
    let graft = kernel_phases(fresh, "pf_graft_finish")?
        .ok_or("fresh sweep: pf_graft_finish has no \"phases\" counter")?;
    let par = kernel_phases(fresh, "pf_par_finish")?
        .ok_or("fresh sweep: pf_par_finish has no \"phases\" counter")?;
    if !(graft.is_finite() && par.is_finite() && graft >= 1.0 && par >= 1.0) {
        return Err(format!("phase counters are not meaningful (graft {graft}, pf-par {par})"));
    }
    if graft >= par {
        return Err(format!(
            "pf_graft_finish ran {graft} phases vs pf_par_finish's {par} — the incremental \
             forest saved nothing; the grafting win has regressed"
        ));
    }
    Ok((graft, par))
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn main() -> ExitCode {
    let baseline_path: String = arg("baseline", "BENCH_speedup.json".to_string());
    let fresh_path: String = arg("fresh", "BENCH_speedup_fresh.json".to_string());
    let threads: usize = arg("threads", 4);
    let tolerance: f64 = arg("tolerance", 0.30);
    let slack: f64 = arg("slack", 0.15);

    let (baseline, fresh) = match (load(&baseline_path), load(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("trendcheck: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let (base_speedups, fresh_speedups) =
        match (speedups_at(&baseline, threads as f64), speedups_at(&fresh, threads as f64)) {
            (Ok(b), Ok(f)) => (b, f),
            (b, f) => {
                for err in [b.err(), f.err()].into_iter().flatten() {
                    eprintln!("trendcheck: {err}");
                }
                return ExitCode::FAILURE;
            }
        };
    if base_speedups.is_empty() {
        // A baseline with nothing to compare at the reference thread count
        // would make every run pass vacuously — that is a broken gate, not
        // a green one (e.g. a sweep regenerated with a truncated ladder).
        eprintln!(
            "trendcheck: baseline {baseline_path} has no kernel with a t={threads} entry; \
             the gate would enforce nothing"
        );
        return ExitCode::FAILURE;
    }

    let mut table = Table::new(vec![
        "kernel".into(),
        format!("baseline@{threads}t"),
        format!("fresh@{threads}t"),
        "floor".into(),
        "status".into(),
    ]);
    let mut failures = 0usize;
    for (name, base) in &base_speedups {
        let floor_str = format!("{:.2}x", floor(*base, tolerance, slack));
        match fresh_speedups.iter().find(|(n, _)| n == name) {
            None => {
                failures += 1;
                table.push(vec![
                    name.clone(),
                    format!("{base:.2}x"),
                    "—".into(),
                    floor_str,
                    "MISSING".into(),
                ]);
            }
            Some((_, now)) => {
                let verdict = judge(*base, *now, tolerance, slack);
                if verdict != Verdict::Ok {
                    failures += 1;
                }
                table.push(vec![
                    name.clone(),
                    format!("{base:.2}x"),
                    format!("{now:.2}x"),
                    floor_str,
                    match verdict {
                        Verdict::Ok => "ok",
                        Verdict::Regressed => "REGRESSED",
                        Verdict::DegenerateBaseline => "DEGENERATE BASELINE",
                    }
                    .into(),
                ]);
                if verdict == Verdict::DegenerateBaseline {
                    eprintln!(
                        "trendcheck: kernel {name}: baseline speedup {base} is not a \
                         meaningful reference (non-finite or ≈0) — regenerate \
                         {baseline_path} with the speedup sweep"
                    );
                }
            }
        }
    }
    for (name, now) in &fresh_speedups {
        if !base_speedups.iter().any(|(n, _)| n == name) {
            table.push(vec![
                name.clone(),
                "—".into(),
                format!("{now:.2}x"),
                "—".into(),
                "new".into(),
            ]);
        }
    }
    table.print();

    let gm = |xs: &[(String, f64)]| {
        let v: Vec<f64> = xs.iter().map(|&(_, s)| s).collect();
        if v.is_empty() {
            1.0
        } else {
            geometric_mean(&v)
        }
    };
    println!(
        "geomean speedup @{threads}t: baseline {:.3}x, fresh {:.3}x \
         (band: -{:.0}% relative, -{slack} absolute)",
        gm(&base_speedups),
        gm(&fresh_speedups),
        tolerance * 100.0,
    );
    match judge_phase_reduction(&fresh) {
        Ok((graft, par)) => println!(
            "phase reduction: pf_graft_finish {graft} phases < pf_par_finish {par} phases — ok"
        ),
        Err(e) => {
            failures += 1;
            eprintln!("trendcheck: {e}");
        }
    }

    if failures > 0 {
        eprintln!("trendcheck: {failures} kernel(s) regressed, went missing, or had a degenerate baseline");
        return ExitCode::FAILURE;
    }
    println!("trendcheck: all {} kernels within the tolerance band", base_speedups.len());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn judge_passes_within_band_and_fails_below_floor() {
        // floor = 1.0 * 0.7 - 0.15 = 0.55
        assert_eq!(judge(1.0, 1.0, 0.30, 0.15), Verdict::Ok);
        assert_eq!(judge(1.0, 0.56, 0.30, 0.15), Verdict::Ok);
        assert_eq!(judge(1.0, 0.54, 0.30, 0.15), Verdict::Regressed);
        assert_eq!(judge(4.0, 2.0, 0.30, 0.15), Verdict::Regressed, "floor 2.65");
    }

    #[test]
    fn degenerate_baselines_fail_instead_of_passing_vacuously() {
        // Before the guard, a zero baseline made the floor negative and
        // every fresh value (even 0, even a regression to nothing) passed.
        for bad in [0.0, -1.0, 1e-9, f64::NAN, f64::INFINITY] {
            assert_eq!(judge(bad, 5.0, 0.30, 0.15), Verdict::DegenerateBaseline, "baseline {bad}");
        }
        // A NaN fresh value is a failure, not a pass.
        assert_eq!(judge(1.0, f64::NAN, 0.30, 0.15), Verdict::Regressed);
    }

    #[test]
    fn phase_reduction_gate_demands_a_strict_win_and_fails_loudly() {
        let doc = |graft: &str, par: &str| {
            parse_json(&format!(
                r#"{{"kernels":[
                    {{"kernel":"pf_graft_finish","phases":{graft},"times":[]}},
                    {{"kernel":"pf_par_finish","phases":{par},"times":[]}}
                ]}}"#
            ))
            .unwrap()
        };
        assert_eq!(judge_phase_reduction(&doc("4", "17")).unwrap(), (4.0, 17.0));
        // A tie means the incremental forest saved nothing.
        assert!(judge_phase_reduction(&doc("17", "17")).unwrap_err().contains("saved nothing"));
        assert!(judge_phase_reduction(&doc("18", "17")).is_err());
        // Degenerate or missing counters fail loudly instead of skipping.
        assert!(judge_phase_reduction(&doc("0", "17")).is_err());
        assert!(judge_phase_reduction(&doc("null", "17")).unwrap_err().contains("no \"phases\""));
        let truncated = parse_json(r#"{"kernels":[]}"#).unwrap();
        assert!(judge_phase_reduction(&truncated).unwrap_err().contains("no kernel"));
    }
}
