//! Pipeline sweep: time and grade engine pipelines on one instance, and
//! write the machine-readable `BENCH_pipeline.json` that seeds the repo's
//! performance trajectory.
//!
//! Protocol (paper §4.2): every pipeline is solved `--runs` times with the
//! first `--warmup` discarded and the geometric mean of the remaining wall
//! times reported; quality is the **minimum** ratio over `--runs` seeds
//! (Tables 1–2 report worst-case quality). All solves share one engine
//! [`Workspace`], so after the first solve nothing allocates scratch — this
//! binary doubles as the allocation-reuse regression harness.
//!
//! ```text
//! cargo run --release -p dsmatch_bench --bin pipeline -- \
//!     [--n 20000] [--deg 4.0] [--runs 8] [--warmup 2] [--seed 1] \
//!     [--out BENCH_pipeline.json]
//! ```

use dsmatch::engine::{Json, Pipeline, Solver, Workspace};
use dsmatch_bench::{arg, geometric_mean, min_of, write_json_file, Table};

/// The pipelines the sweep covers: every heuristic family, both finishers
/// on the paper's headline heuristic, and the exact baselines.
const PIPELINES: &[&str] = &[
    "scale:sk:5,one",
    "scale:sk:5,two",
    "scale:sk:5,ksmt",
    "scale:sk:5,one-out",
    "ks",
    "cheap",
    "cheap-vertex",
    "scale:sk:5,two,pf",
    "scale:sk:5,two,hk",
    "pf",
    "hk",
];

fn main() {
    let n: usize = arg("n", 20_000);
    let deg: f64 = arg("deg", 4.0);
    let runs: usize = arg("runs", 8);
    let warmup: usize = arg("warmup", 2);
    let seed: u64 = arg("seed", 1);
    let out: String = arg("out", "BENCH_pipeline.json".to_string());
    assert!(warmup < runs, "--warmup must be below --runs");

    let g = dsmatch::gen::erdos_renyi_square(n, deg, seed);
    let opt = dsmatch::exact::sprank(&g);
    println!("instance: er n={n} deg={deg} seed={seed}  nnz={}  sprank={opt}", g.nnz());

    let mut ws = Workspace::new();
    let mut table =
        Table::new(vec!["pipeline", "geomean s", "min quality", "cardinality", "stages"]);
    let mut results: Vec<Json> = Vec::new();

    for spec in PIPELINES {
        let pipeline: Pipeline = spec.parse().expect("sweep specs are valid");

        // Timing: fixed seed, geometric mean after warmup (§4.2).
        let mut times = Vec::with_capacity(runs - warmup);
        let mut last = None;
        for run in 0..runs {
            let report = pipeline.clone().with_seed(seed).solve(&g, &mut ws);
            if run >= warmup {
                times.push(report.total_seconds());
            }
            last = Some(report);
        }
        let last = last.expect("runs >= 1");
        let geomean = geometric_mean(&times);

        // Quality: worst case over `runs` distinct seeds (Tables 1–2).
        let min_quality = min_of(runs, |k| {
            let report = pipeline.clone().with_seed(seed.wrapping_add(k as u64)).solve(&g, &mut ws);
            report.matching.quality(opt)
        });

        let stage_summary: Vec<String> =
            last.stages.iter().map(|s| format!("{}={:.4}s", s.stage, s.seconds)).collect();
        table.push(vec![
            spec.to_string(),
            format!("{geomean:.5}"),
            format!("{min_quality:.4}"),
            format!("{}", last.cardinality()),
            stage_summary.join(" "),
        ]);
        results.push(Json::obj(vec![
            ("pipeline", Json::from(*spec)),
            ("geomean_seconds", Json::from(geomean)),
            ("min_quality", Json::from(min_quality)),
            ("cardinality", Json::from(last.cardinality())),
            (
                "stages",
                Json::Arr(
                    last.stages
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("stage", Json::from(s.stage.as_str())),
                                ("seconds", Json::from(s.seconds)),
                                ("cardinality", Json::opt(s.cardinality)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    table.print();

    let doc = Json::obj(vec![
        (
            "instance",
            Json::obj(vec![
                ("family", Json::from("er")),
                ("n", Json::from(n)),
                ("avg_degree", Json::from(deg)),
                ("seed", Json::from(seed)),
                ("nnz", Json::from(g.nnz())),
                ("sprank", Json::from(opt)),
            ]),
        ),
        (
            "protocol",
            Json::obj(vec![
                ("runs", Json::from(runs)),
                ("warmup", Json::from(warmup)),
                ("timing", Json::from("geometric mean after warmup, fixed seed")),
                ("quality", Json::from("minimum over seeds (paper Tables 1-2)")),
            ]),
        ),
        ("threads", Json::from(rayon::current_num_threads())),
        ("results", Json::Arr(results)),
    ]);
    write_json_file(&out, &doc).expect("writing the JSON result file");
    println!("wrote {out}");
}
