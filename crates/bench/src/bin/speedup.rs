//! Multicore speedup sweep — the measurement behind the paper's Figures
//! 3–4, rerun on the workspace's real `std::thread` parallel runtime, and
//! written to the machine-readable `BENCH_speedup.json` artifact.
//!
//! For every kernel and every thread count in the ladder (default
//! `{1, 2, 4, 8}`), the kernel runs inside a dedicated pool of exactly
//! that many workers; wall times follow the paper's §4.2 protocol
//! (`--runs` executions, first `--warmup` discarded, geometric mean) and
//! speedups are reported relative to the 1-thread pool.
//!
//! Kernels:
//!
//! - `ksmt` — Algorithm 4 (`KarpSipserMT`) on pre-sampled choice arrays,
//!   reusing one scratch so only matching work is timed — the skewed
//!   chain-walk kernel the work-stealing scheduler targets;
//! - `scale_sk5` / `scale_ruiz5` — five scaling iterations into a reused
//!   [`ScalingResult`];
//! - `one_sided` / `two_sided` — the full pipelines
//!   `scale:sk:5,one` / `scale:sk:5,two` through the engine;
//! - `pf_par_finish` / `hk_par_finish` / `pf_graft_finish` / `pr_finish` /
//!   `auto_finish` — the exact finishers (`pf-par` tree-grafting BFS,
//!   `hk-par` level-synchronized BFS, `pf-graft` incremental tree
//!   grafting, `pr` push-relabel, and the statistics-driven `auto` pick)
//!   warm-started from a pre-computed two-sided heuristic matching: only
//!   finisher work (the paper pipelines' last sequential bottleneck) is
//!   timed. Finishers with phase structure also report their
//!   deterministic phase count (measured once, untimed) — the work
//!   measure behind `pf-graft`'s fewer-forest-rebuilds win, gated by
//!   `trendcheck`;
//! - `suitor_par` — the parallel suitor weighted matching on the
//!   scaling-entry weights (grammar v2's `scale:sk:5,suitor-par`
//!   workload), graph built once untimed so only matching work is timed;
//! - `batch32` — 32 small instances solved through
//!   [`Pipeline::solve_batch`] over a per-worker [`WorkspacePool`] of the
//!   ladder's thread count: batch-level parallelism, one stealable task
//!   per instance;
//! - `dm_block_batch` — a block-diagonal instance solved through the
//!   `dm,scale:sk:5,two,pf` decomposition pipeline: fine blocks fan out
//!   as stealable per-block jobs on the workspace's dm pool, sized to the
//!   ladder's thread count.
//!
//! The report includes the machine's available parallelism so downstream
//! tooling can judge whether the ladder oversubscribed the host (on a
//! 1-core container every speedup is honestly ~1×).
//!
//! ```text
//! cargo run --release -p dsmatch_bench --bin speedup -- \
//!     [--n 100000] [--deg 8.0] [--runs 7] [--warmup 2] [--seed 1] \
//!     [--max-threads 8] [--out BENCH_speedup.json]
//! ```

use dsmatch::engine::{
    select_finisher, AlgorithmKind, Json, Pipeline, Solver, Workspace, WorkspacePool,
};
use dsmatch::weighted::{suitor_parallel, WeightedGraph};
use dsmatch_bench::{arg, write_json_file, Table};
use dsmatch_core::{karp_sipser_mt_ws, two_sided_choices, KsMtScratch};
use dsmatch_exact::{
    hopcroft_karp_par_ws, pothen_fan_graft_ws, pothen_fan_par_ws, push_relabel_from,
    AugmentWorkspace,
};
use dsmatch_graph::{BipartiteGraph, TripletMatrix};
use dsmatch_scale::{ruiz_into, sinkhorn_knopp, sinkhorn_knopp_into, ScalingConfig, ScalingResult};

/// One timed kernel: a name, a closure run entirely inside the pool, and
/// (for the exact finishers) the kernel's deterministic phase count,
/// measured once untimed — the parallel finishers are byte-identical at
/// every pool size, so one count describes the whole ladder.
struct Kernel<'a> {
    name: &'static str,
    run: Box<dyn FnMut() + Send + 'a>,
    phases: Option<usize>,
}

fn ladder(max: usize) -> Vec<usize> {
    [1usize, 2, 4, 8].into_iter().filter(|&t| t <= max.max(1)).collect()
}

fn time_kernel(pool: &rayon::ThreadPool, runs: usize, warmup: usize, k: &mut Kernel) -> f64 {
    // `time_stats` is the harness's single copy of the §4.2 protocol
    // (runs, warmup discard, geometric mean) — every kernel in the sweep
    // must go through it so their numbers stay comparable.
    dsmatch_bench::time_stats(runs, warmup, || pool.install(&mut k.run))
}

/// Append one kernel's thread-ladder timings to the table and the JSON
/// kernel list (times, plus speedups relative to the 1-thread pool). The
/// JSON shape comes from [`dsmatch_bench::speedup_doc`], the schema module
/// `trendcheck` reads with — writer and gate cannot drift apart.
fn record(
    name: &str,
    ts: &[usize],
    seconds: &[f64],
    phases: Option<usize>,
    table: &mut Table,
    kernel_docs: &mut Vec<Json>,
) {
    let base = seconds[0];
    let speedups: Vec<f64> = seconds.iter().map(|&s| base / s.max(1e-12)).collect();
    let mut row = vec![name.to_string()];
    row.extend(seconds.iter().map(|s| format!("{s:.5}")));
    row.push(format!("{:.2}x", speedups.last().copied().unwrap_or(1.0)));
    row.push(phases.map_or_else(|| "—".into(), |p| p.to_string()));
    table.push(row);
    kernel_docs
        .push(dsmatch_bench::speedup_doc::kernel_entry(name, ts, seconds, &speedups, phases));
}

fn main() {
    let n: usize = arg("n", 100_000);
    let deg: f64 = arg("deg", 8.0);
    let runs: usize = arg("runs", 7);
    let warmup: usize = arg("warmup", 2);
    let seed: u64 = arg("seed", 1);
    let max_threads: usize = arg("max-threads", 8);
    let out: String = arg("out", "BENCH_speedup.json".to_string());
    assert!(warmup < runs, "--warmup must be below --runs");

    let available = std::thread::available_parallelism().map_or(1, |p| p.get());
    let g: BipartiteGraph = dsmatch::gen::erdos_renyi_square(n, deg, seed);
    println!(
        "instance: er n={n} deg={deg} seed={seed}  nnz={}  (host parallelism: {available})",
        g.nnz()
    );

    // Shared pre-computed inputs so each kernel times only its own work.
    let scaling = sinkhorn_knopp(&g, &ScalingConfig::iterations(5));
    let (rchoice, cchoice) = two_sided_choices(&g, &scaling, seed);

    // The weighted view of the instance (scaling entries as edge weights,
    // the engine's probability bridge), built once untimed so the
    // `suitor_par` kernel times matching work only.
    let mut weighted_edges: Vec<(usize, usize, f64)> = Vec::with_capacity(g.nnz());
    for i in 0..g.nrows() {
        for &j in g.row_adj(i) {
            let w = scaling.entry(i, j as usize);
            let w = if w.is_finite() && w > 0.0 { w } else { f64::MIN_POSITIVE };
            weighted_edges.push((i, g.nrows() + j as usize, w));
        }
    }
    let wg = WeightedGraph::from_weighted_edges(g.nrows() + g.ncols(), &weighted_edges);

    let ts = ladder(max_threads);
    let mut table = Table::new(
        std::iter::once("kernel".to_string())
            .chain(ts.iter().map(|t| format!("t={t} (s)")))
            .chain(["speedup@max".to_string(), "phases".to_string()])
            .collect(),
    );
    let mut kernel_docs: Vec<Json> = Vec::new();

    // Reused scratch, one per kernel, warmed inside the timed closures on
    // their first (discarded) run.
    let mut ksmt_ws = KsMtScratch::new();
    let mut sk_out = ScalingResult::empty();
    let mut ruiz_out = ScalingResult::empty();
    let mut one_ws = Workspace::new();
    let mut two_ws = Workspace::new();
    let one_pipeline: Pipeline = "scale:sk:5,one".parse().expect("valid spec");
    let two_pipeline: Pipeline = "scale:sk:5,two".parse().expect("valid spec");
    let sk_cfg = ScalingConfig::iterations(5);

    // Warm start for the finisher kernels: the §4 protocol's two-sided
    // heuristic matching at the sweep seed, computed once and untimed, so
    // the finisher kernels measure only augmentation work.
    let finisher_init =
        two_pipeline.clone().with_seed(seed).solve(&g, &mut Workspace::new()).matching;
    let mut pf_par_ws = AugmentWorkspace::new();
    let mut hk_par_ws = AugmentWorkspace::new();
    let mut pf_graft_ws = AugmentWorkspace::new();
    let mut auto_ws = AugmentWorkspace::new();

    // Deterministic phase counts of the finisher kernels, one untimed run
    // each (byte-identical at every pool size, so also phase-identical).
    let pf_par_phases =
        pothen_fan_par_ws(&g, Some(&finisher_init), &mut AugmentWorkspace::new()).1.phases;
    let hk_par_phases =
        hopcroft_karp_par_ws(&g, Some(&finisher_init), &mut AugmentWorkspace::new()).1.phases;
    let pf_graft_phases =
        pothen_fan_graft_ws(&g, Some(&finisher_init), &mut AugmentWorkspace::new()).1.phases;

    // The statistics-driven pick, resolved once (the policy is a pure
    // function of the instance) and dispatched directly so the kernel
    // times only finisher work — the engine would add pipeline plumbing.
    let auto_pick = select_finisher(&g);
    let auto_phases = match auto_pick {
        AlgorithmKind::PothenFanGraft => Some(pf_graft_phases),
        AlgorithmKind::HopcroftKarpPar => Some(hk_par_phases),
        _ => None,
    };
    println!("auto finisher pick for this instance: {auto_pick}");

    let mut kernels: Vec<Kernel> = vec![
        Kernel {
            name: "ksmt",
            run: Box::new(|| {
                std::hint::black_box(karp_sipser_mt_ws(&rchoice, &cchoice, &mut ksmt_ws));
            }),
            phases: None,
        },
        Kernel {
            name: "scale_sk5",
            run: Box::new(|| {
                sinkhorn_knopp_into(&g, &sk_cfg, &mut sk_out);
                std::hint::black_box(sk_out.error);
            }),
            phases: None,
        },
        Kernel {
            name: "scale_ruiz5",
            run: Box::new(|| {
                ruiz_into(&g, &sk_cfg, &mut ruiz_out);
                std::hint::black_box(ruiz_out.error);
            }),
            phases: None,
        },
        Kernel {
            name: "one_sided",
            run: Box::new(|| {
                std::hint::black_box(
                    one_pipeline.clone().with_seed(seed).solve(&g, &mut one_ws).cardinality(),
                );
            }),
            phases: None,
        },
        Kernel {
            name: "two_sided",
            run: Box::new(|| {
                std::hint::black_box(
                    two_pipeline.clone().with_seed(seed).solve(&g, &mut two_ws).cardinality(),
                );
            }),
            phases: None,
        },
        Kernel {
            name: "pf_par_finish",
            run: Box::new(|| {
                std::hint::black_box(
                    pothen_fan_par_ws(&g, Some(&finisher_init), &mut pf_par_ws).0.cardinality(),
                );
            }),
            phases: Some(pf_par_phases),
        },
        Kernel {
            name: "hk_par_finish",
            run: Box::new(|| {
                std::hint::black_box(
                    hopcroft_karp_par_ws(&g, Some(&finisher_init), &mut hk_par_ws).0.cardinality(),
                );
            }),
            phases: Some(hk_par_phases),
        },
        Kernel {
            name: "pf_graft_finish",
            run: Box::new(|| {
                std::hint::black_box(
                    pothen_fan_graft_ws(&g, Some(&finisher_init), &mut pf_graft_ws).0.cardinality(),
                );
            }),
            phases: Some(pf_graft_phases),
        },
        Kernel {
            name: "suitor_par",
            run: Box::new(|| {
                std::hint::black_box(suitor_parallel(&wg).cardinality());
            }),
            phases: None,
        },
        Kernel {
            name: "pr_finish",
            // `push_relabel_from` consumes its warm start; the O(n) clone
            // is timed but is noise next to the O(nnz)+ augmentation work.
            run: Box::new(|| {
                std::hint::black_box(push_relabel_from(&g, finisher_init.clone()).0.cardinality());
            }),
            phases: None,
        },
        Kernel {
            name: "auto_finish",
            run: Box::new(|| {
                std::hint::black_box(match auto_pick {
                    AlgorithmKind::PothenFanGraft => {
                        pothen_fan_graft_ws(&g, Some(&finisher_init), &mut auto_ws).0.cardinality()
                    }
                    AlgorithmKind::HopcroftKarpPar => {
                        hopcroft_karp_par_ws(&g, Some(&finisher_init), &mut auto_ws).0.cardinality()
                    }
                    _ => push_relabel_from(&g, finisher_init.clone()).0.cardinality(),
                });
            }),
            phases: auto_phases,
        },
    ];

    for kernel in &mut kernels {
        let mut seconds = Vec::with_capacity(ts.len());
        for &t in &ts {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(t).build().expect("pool build");
            seconds.push(time_kernel(&pool, runs, warmup, kernel));
        }
        record(kernel.name, &ts, &seconds, kernel.phases, &mut table, &mut kernel_docs);
    }

    // Batch-level parallelism: 32 small instances fanned across a
    // per-worker workspace pool (`Pipeline::solve_batch`) — the server
    // workload where parallelism pays one level above the solver stages.
    // Each thread count gets its own WorkspacePool (built untimed).
    let batch_instances: Vec<BipartiteGraph> = (0..32)
        .map(|k| dsmatch::gen::erdos_renyi_square((n / 16).max(64), deg, seed.wrapping_add(k)))
        .collect();
    let batch_jobs: Vec<(&BipartiteGraph, u64)> =
        batch_instances.iter().map(|g| (g, seed)).collect();
    let batch_pipeline: Pipeline = "scale:sk:5,two".parse().expect("valid spec");
    let mut batch_seconds = Vec::with_capacity(ts.len());
    for &t in &ts {
        let wsp: WorkspacePool = Workspace::per_worker(t);
        batch_seconds.push(dsmatch_bench::time_stats(runs, warmup, || {
            std::hint::black_box(batch_pipeline.solve_batch(&batch_jobs, &wsp).len());
        }));
    }
    record("batch32", &ts, &batch_seconds, None, &mut table, &mut kernel_docs);

    // Decomposition fan-out: a block-diagonal instance whose fine blocks
    // become stealable per-block jobs on the workspace's dm pool. Each
    // thread count gets its own workspace (and so its own pool size); the
    // stitched mates are byte-identical across the whole ladder, so the
    // sweep times pure scheduling.
    let dm_blocks = 16;
    let dm_bn = (n / 64).max(64);
    let mut dm_tm = TripletMatrix::new(dm_blocks * dm_bn, dm_blocks * dm_bn);
    for b in 0..dm_blocks {
        let sub = dsmatch::gen::erdos_renyi_square(dm_bn, deg, seed.wrapping_add(b as u64));
        for i in 0..dm_bn {
            for &j in sub.row_adj(i) {
                dm_tm.push(b * dm_bn + i, b * dm_bn + j as usize);
            }
        }
    }
    let dm_g = BipartiteGraph::from_csr(dm_tm.into_csr());
    let dm_pipeline: Pipeline = "dm,scale:sk:5,two,pf".parse().expect("valid spec");
    let mut dm_seconds = Vec::with_capacity(ts.len());
    for &t in &ts {
        let mut ws = Workspace::with_threads(t);
        dm_seconds.push(dsmatch_bench::time_stats(runs, warmup, || {
            std::hint::black_box(
                dm_pipeline.clone().with_seed(seed).solve(&dm_g, &mut ws).cardinality(),
            );
        }));
    }
    record("dm_block_batch", &ts, &dm_seconds, None, &mut table, &mut kernel_docs);
    table.print();

    let doc = Json::obj(vec![
        (
            "machine",
            Json::obj(vec![
                ("available_parallelism", Json::from(available)),
                ("thread_ladder", Json::Arr(ts.iter().map(|&t| Json::from(t)).collect())),
            ]),
        ),
        (
            "instance",
            Json::obj(vec![
                ("family", Json::from("er")),
                ("n", Json::from(n)),
                ("avg_degree", Json::from(deg)),
                ("seed", Json::from(seed)),
                ("nnz", Json::from(g.nnz())),
            ]),
        ),
        (
            "protocol",
            Json::obj(vec![
                ("runs", Json::from(runs)),
                ("warmup", Json::from(warmup)),
                ("timing", Json::from("geometric mean after warmup; speedup vs 1-thread pool")),
            ]),
        ),
        ("kernels", Json::Arr(kernel_docs)),
    ]);
    write_json_file(&out, &doc).expect("writing the JSON result file");
    println!("wrote {out}");
}
