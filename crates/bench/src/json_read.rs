//! Minimal hand-rolled JSON reader — the parsing counterpart of the
//! engine's `Json` writer, just enough for the bench tooling to consume
//! its own artifacts (`BENCH_speedup.json` & co.) without external
//! dependencies.
//!
//! Supports the full value grammar the writer emits: objects, arrays,
//! strings with the writer's escape set, numbers (integer, fractional,
//! exponent), booleans and `null`. Unknown escapes and malformed input
//! produce an error with a byte offset, never a panic.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match), `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value (`None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("numeric bytes are ASCII");
    text.parse::<f64>().map(JsonValue::Num).map_err(|_| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into());
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        let c =
                            char::from_u32(code).ok_or_else(|| "bad \\u code point".to_string())?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        pairs.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        let doc =
            parse_json(r#"{"a": 1, "b": -2.5e-3, "c": [true, false, null], "s": "x\n\"y\" é"}"#)
                .unwrap();
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("b").unwrap().as_f64(), Some(-2.5e-3));
        assert_eq!(doc.get("c").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x\n\"y\" é"));
    }

    #[test]
    fn roundtrips_the_engine_writer() {
        use dsmatch::engine::Json;
        let written = Json::obj(vec![
            ("kernel", Json::from("ksmt")),
            ("speedup", Json::from(3.75f64)),
            ("threads", Json::Arr(vec![Json::from(1usize), Json::from(8usize)])),
            ("note", Json::from("a \"quoted\" string\nwith newline")),
        ])
        .to_string();
        let read = parse_json(&written).unwrap();
        assert_eq!(read.get("kernel").unwrap().as_str(), Some("ksmt"));
        assert_eq!(read.get("speedup").unwrap().as_f64(), Some(3.75));
        assert_eq!(read.get("threads").unwrap().as_arr().unwrap()[1].as_f64(), Some(8.0));
        assert_eq!(read.get("note").unwrap().as_str(), Some("a \"quoted\" string\nwith newline"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }
}
