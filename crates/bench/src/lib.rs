//! # dsmatch-bench — experiment harness
//!
//! Shared utilities for the binaries that regenerate every table and figure
//! of the paper (see DESIGN.md §4 for the experiment index) and for the
//! Criterion micro-benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod speedup_doc;

pub use dsmatch_json::{parse_json, Json as JsonValue};
pub use harness::{
    arg, flag, geometric_mean, median, min_of, thread_ladder, time_once, time_stats, with_threads,
    write_json_file, Row, Table,
};
