//! Property tests for the heuristics crate: validity on arbitrary inputs,
//! exactness of `KarpSipserMT` on sampled subgraphs, maximality of the
//! greedy baselines.

use dsmatch_core::{
    cheap_random_edge, cheap_random_vertex, choice_subgraph, karp_sipser, karp_sipser_mt,
    one_out_matching, one_sided_match, two_sided_choices, two_sided_match, KarpSipserConfig,
    OneSidedConfig, TwoSidedConfig,
};
use dsmatch_exact::{brute_force_maximum, hopcroft_karp};
use dsmatch_graph::{BipartiteGraph, TripletMatrix, UndirectedGraph, NIL};
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..12, 1usize..12).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m, 0..n), 0..50).prop_map(move |entries| {
            let mut t = TripletMatrix::new(m, n);
            for (i, j) in entries {
                t.push(i, j);
            }
            BipartiteGraph::from_csr(t.into_csr())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn one_sided_matching_always_valid(g in arb_graph(), seed in any::<u64>(), iters in 0usize..5) {
        let m = one_sided_match(&g, &OneSidedConfig {
            scaling: ScalingConfig::iterations(iters), seed });
        m.verify(&g).unwrap();
        // Every non-empty row makes a choice, so every column that some
        // row can reach exclusively must be matched... weaker universal
        // claim: cardinality ≥ 1 whenever the graph has edges.
        if g.nnz() > 0 {
            prop_assert!(m.cardinality() >= 1);
        }
    }

    #[test]
    fn two_sided_is_maximum_on_its_subgraph(g in arb_graph(), seed in any::<u64>()) {
        let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(2));
        let (rc, cc) = two_sided_choices(&g, &s, seed);
        let m = karp_sipser_mt(&rc, &cc);
        let sub = choice_subgraph(&rc, &cc);
        m.verify(&sub).unwrap();
        let opt = hopcroft_karp(&sub).cardinality();
        prop_assert_eq!(m.cardinality(), opt);
    }

    #[test]
    fn two_sided_never_exceeds_optimum(g in arb_graph(), seed in any::<u64>()) {
        let m = two_sided_match(&g, &TwoSidedConfig {
            scaling: ScalingConfig::iterations(2), seed });
        m.verify(&g).unwrap();
        prop_assert!(m.cardinality() <= brute_force_maximum(&g));
    }

    #[test]
    fn karp_sipser_maximal_hence_half(g in arb_graph(), seed in any::<u64>()) {
        let ks = karp_sipser(&g, &KarpSipserConfig { seed }).matching;
        ks.verify(&g).unwrap();
        for (i, j) in g.csr().iter_entries() {
            prop_assert!(ks.is_row_matched(i) || ks.is_col_matched(j));
        }
        prop_assert!(2 * ks.cardinality() >= brute_force_maximum(&g));
    }

    #[test]
    fn cheap_variants_maximal(g in arb_graph(), seed in any::<u64>()) {
        for m in [cheap_random_edge(&g, seed), cheap_random_vertex(&g, seed)] {
            m.verify(&g).unwrap();
            for (i, j) in g.csr().iter_entries() {
                prop_assert!(m.is_row_matched(i) || m.is_col_matched(j));
            }
        }
    }

    #[test]
    fn one_out_matching_valid_and_maximum(
        raw in proptest::collection::vec(proptest::option::of(0u32..12), 2..12),
    ) {
        let n = raw.len();
        let choice: Vec<u32> = raw.iter().enumerate().map(|(v, o)| match o {
            None => NIL,
            Some(c) => {
                let mut c = *c % n as u32;
                if c as usize == v {
                    c = (c + 1) % n as u32;
                }
                if c as usize == v { NIL } else { c } // n == 1 degenerate
            }
        }).collect();
        let m = one_out_matching(&choice);
        m.check_consistent().unwrap();
        // Materialize and compare to a brute-force general matching.
        let edges: Vec<(usize, usize)> = choice.iter().enumerate()
            .filter(|&(_, &c)| c != NIL)
            .map(|(v, &c)| (v, c as usize))
            .collect();
        let g = UndirectedGraph::from_edges(n, &edges);
        m.verify(&g).unwrap();
        prop_assert_eq!(m.cardinality(), brute_force_general(&g));
    }
}

/// Exponential general-matching oracle for ≤ ~14 vertices.
fn brute_force_general(g: &UndirectedGraph) -> usize {
    fn go(g: &UndirectedGraph, free: &mut Vec<bool>, from: usize) -> usize {
        let Some(v) = (from..g.n()).find(|&v| free[v]) else {
            return 0;
        };
        free[v] = false;
        let mut best = go(g, free, v + 1);
        for &u in g.adj(v) {
            let u = u as usize;
            if free[u] {
                free[u] = false;
                best = best.max(1 + go(g, free, v + 1));
                free[u] = true;
            }
        }
        free[v] = true;
        best
    }
    let mut free = vec![true; g.n()];
    go(g, &mut free, 0)
}
