//! The classic Karp–Sipser heuristic (paper §2.1).
//!
//! Rule: while the graph is non-empty, match a degree-one vertex with its
//! unique neighbour if one exists (an *optimal* decision — some maximum
//! matching contains that edge); otherwise match the endpoints of a
//! uniformly random alive edge. Matched vertices and their incident edges
//! are removed.
//!
//! The phase before the first random pick is *Phase 1*; everything after is
//! *Phase 2* (new degree-one vertices keep being honoured there too). The
//! heuristic is exact on graphs whose components contain at most one cycle
//! — which is why `TwoSidedMatch` can use it as an exact algorithm — but
//! has no constant-factor guarantee in general, and the paper's Table 1
//! exhibits a family (our `dsmatch-gen::adversarial`) driving it to ~0.67.
//!
//! Random edge selection is implemented as uniformly popping (swap-remove)
//! from the alive-edge pool and discarding edges with a matched endpoint:
//! every alive edge remains in the pool, so conditioned on hitting an alive
//! edge the draw is uniform over alive edges, as the analysis requires.
//!
//! This implementation is sequential; it is the baseline the paper compares
//! against (their parallel-KS citation [4] is inexact, which is the gap
//! `KarpSipserMT` fills for the sampled subgraphs).

use dsmatch_graph::{BipartiteGraph, CancelToken, Cancelled, Matching, SplitMix64, VertexId};

/// Configuration for [`karp_sipser`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KarpSipserConfig {
    /// Seed for the random edge draws.
    pub seed: u64,
}

/// Result of a Karp–Sipser run with decision statistics.
#[derive(Clone, Debug)]
pub struct KarpSipserStats {
    /// The computed matching.
    pub matching: Matching,
    /// Matches made through the degree-one rule (optimal decisions).
    pub degree_one_matches: usize,
    /// Matches made through random edge picks (heuristic decisions).
    pub random_matches: usize,
}

/// Vertex reference on either side of the bipartition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Side {
    Row(u32),
    Col(u32),
}

/// Reusable scratch state of the classic Karp–Sipser (see
/// [`karp_sipser_ws`]). Buffers keep their allocation across solves.
#[derive(Debug, Default)]
pub struct KarpSipserScratch {
    /// Alive-edge pool for the Phase 2 uniform draws (`nnz` entries).
    pub pool: Vec<(VertexId, VertexId)>,
    /// Remaining degree per row.
    pub deg_r: Vec<u32>,
    /// Remaining degree per column.
    pub deg_c: Vec<u32>,
    pub(crate) stack: Vec<Side>,
}

impl KarpSipserScratch {
    /// An empty scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

struct State<'g, 'w> {
    g: &'g BipartiteGraph,
    deg_r: &'w mut Vec<u32>,
    deg_c: &'w mut Vec<u32>,
    matching: Matching,
    stack: &'w mut Vec<Side>,
    degree_one_matches: usize,
}

impl<'g, 'w> State<'g, 'w> {
    fn new(g: &'g BipartiteGraph, ws: &'w mut KarpSipserScratch) -> Self {
        ws.deg_r.clear();
        ws.deg_r.extend((0..g.nrows()).map(|i| g.row_degree(i) as u32));
        ws.deg_c.clear();
        ws.deg_c.extend((0..g.ncols()).map(|j| g.col_degree(j) as u32));
        ws.stack.clear();
        for (i, &d) in ws.deg_r.iter().enumerate() {
            if d == 1 {
                ws.stack.push(Side::Row(i as u32));
            }
        }
        for (j, &d) in ws.deg_c.iter().enumerate() {
            if d == 1 {
                ws.stack.push(Side::Col(j as u32));
            }
        }
        Self {
            g,
            deg_r: &mut ws.deg_r,
            deg_c: &mut ws.deg_c,
            matching: Matching::new(g.nrows(), g.ncols()),
            stack: &mut ws.stack,
            degree_one_matches: 0,
        }
    }

    /// The unique unmatched neighbour of a degree-one vertex.
    fn sole_neighbor(&self, v: Side) -> Option<Side> {
        match v {
            Side::Row(i) => self
                .g
                .row_adj(i as usize)
                .iter()
                .find(|&&j| !self.matching.is_col_matched(j as usize))
                .map(|&j| Side::Col(j)),
            Side::Col(j) => self
                .g
                .col_adj(j as usize)
                .iter()
                .find(|&&i| !self.matching.is_row_matched(i as usize))
                .map(|&i| Side::Row(i)),
        }
    }

    /// Match row `i` with column `j` and update neighbour degrees, pushing
    /// newly created degree-one vertices.
    fn consume(&mut self, i: u32, j: u32) {
        self.matching.set(i as usize, j as usize);
        for &c in self.g.row_adj(i as usize) {
            if c != j && !self.matching.is_col_matched(c as usize) {
                self.deg_c[c as usize] -= 1;
                if self.deg_c[c as usize] == 1 {
                    self.stack.push(Side::Col(c));
                }
            }
        }
        for &r in self.g.col_adj(j as usize) {
            if r != i && !self.matching.is_row_matched(r as usize) {
                self.deg_r[r as usize] -= 1;
                if self.deg_r[r as usize] == 1 {
                    self.stack.push(Side::Row(r));
                }
            }
        }
    }

    fn is_matched(&self, v: Side) -> bool {
        match v {
            Side::Row(i) => self.matching.is_row_matched(i as usize),
            Side::Col(j) => self.matching.is_col_matched(j as usize),
        }
    }

    fn degree(&self, v: Side) -> u32 {
        match v {
            Side::Row(i) => self.deg_r[i as usize],
            Side::Col(j) => self.deg_c[j as usize],
        }
    }

    /// Exhaust the degree-one rule, polling `token` every 256 pops so a
    /// deadline lands mid-drain instead of after the full cascade.
    fn drain(&mut self, token: &CancelToken) -> Result<(), Cancelled> {
        let mut steps = 0usize;
        while let Some(v) = self.stack.pop() {
            steps += 1;
            if steps & 0xFF == 0 {
                token.check()?;
            }
            if self.is_matched(v) || self.degree(v) != 1 {
                continue; // stale entry
            }
            let Some(w) = self.sole_neighbor(v) else { continue };
            let (i, j) = match (v, w) {
                (Side::Row(i), Side::Col(j)) | (Side::Col(j), Side::Row(i)) => (i, j),
                _ => unreachable!("neighbours are on opposite sides"),
            };
            self.consume(i, j);
            self.degree_one_matches += 1;
        }
        Ok(())
    }
}

/// Run the classic Karp–Sipser heuristic.
pub fn karp_sipser(g: &BipartiteGraph, cfg: &KarpSipserConfig) -> KarpSipserStats {
    karp_sipser_ws(g, cfg, &mut KarpSipserScratch::new())
}

/// Buffer-reuse variant of [`karp_sipser`]: the degree arrays, the
/// degree-one stack and the alive-edge pool live in `ws` and keep their
/// allocation across solves; only the returned matching is fresh.
pub fn karp_sipser_ws(
    g: &BipartiteGraph,
    cfg: &KarpSipserConfig,
    ws: &mut KarpSipserScratch,
) -> KarpSipserStats {
    karp_sipser_cancel_ws(g, cfg, ws, &CancelToken::unbounded())
        .expect("unbounded token never cancels")
}

/// Cancellable variant of [`karp_sipser_ws`]: the token is polled every 256
/// degree-one pops and every 256 random draws, so a deadline or explicit
/// cancel is observed mid-run even on one huge drain cascade. On
/// [`Cancelled`] the scratch stays reusable (buffers are reset on entry).
pub fn karp_sipser_cancel_ws(
    g: &BipartiteGraph,
    cfg: &KarpSipserConfig,
    ws: &mut KarpSipserScratch,
    token: &CancelToken,
) -> Result<KarpSipserStats, Cancelled> {
    // Fill the Phase 2 edge pool first so `State` can borrow the rest.
    ws.pool.clear();
    ws.pool.extend(g.csr().iter_entries().map(|(i, j)| (i as VertexId, j as VertexId)));
    let mut pool = std::mem::take(&mut ws.pool);
    let outcome = (|| {
        let mut st = State::new(g, ws);
        let mut rng = SplitMix64::new(cfg.seed);

        // Phase 1: all forced decisions available initially (transitively).
        st.drain(token)?;

        // Phase 2: uniformly random alive edges, re-draining after each
        // match.
        let mut random_matches = 0usize;
        let mut draws = 0usize;
        while !pool.is_empty() {
            draws += 1;
            if draws & 0xFF == 0 {
                token.check()?;
            }
            let k = rng.next_index(pool.len());
            let (i, j) = pool.swap_remove(k);
            if st.matching.is_row_matched(i as usize) || st.matching.is_col_matched(j as usize) {
                continue; // dead edge
            }
            st.consume(i, j);
            random_matches += 1;
            st.drain(token)?;
        }
        Ok(KarpSipserStats {
            matching: st.matching,
            degree_one_matches: st.degree_one_matches,
            random_matches,
        })
    })();
    ws.pool = pool; // hand the (drained but allocated) pool back
    outcome
}

/// Convenience: run [`karp_sipser`] and return only the matching.
pub fn karp_sipser_matching(g: &BipartiteGraph, seed: u64) -> Matching {
    karp_sipser(g, &KarpSipserConfig { seed }).matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::{Csr, TripletMatrix};

    fn graph(rows: &[&[u8]]) -> BipartiteGraph {
        BipartiteGraph::from_csr(Csr::from_dense(rows))
    }

    #[test]
    fn perfect_on_path_graph() {
        // Path: r0–c0–r1–c1 … : all decisions forced, perfect matching.
        let n = 50;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i);
            if i + 1 < n {
                t.push(i + 1, i);
            }
        }
        let g = BipartiteGraph::from_csr(t.into_csr());
        let s = karp_sipser(&g, &KarpSipserConfig::default());
        assert_eq!(s.matching.cardinality(), n);
        assert_eq!(s.random_matches, 0, "a forest needs no random decisions");
        assert_eq!(s.degree_one_matches, n);
        s.matching.verify(&g).unwrap();
    }

    #[test]
    fn exact_on_single_cycle() {
        // 3×3 cycle pattern (each row two entries): one random pick, then
        // forced decisions; max matching = 3.
        let g = graph(&[&[1, 1, 0], &[0, 1, 1], &[1, 0, 1]]);
        for seed in 0..20 {
            let s = karp_sipser(&g, &KarpSipserConfig { seed });
            assert_eq!(s.matching.cardinality(), 3, "seed {seed}");
            s.matching.verify(&g).unwrap();
        }
    }

    #[test]
    fn maximal_matching_always() {
        // KS always returns a *maximal* matching: no alive edge remains.
        let g = graph(&[&[1, 1, 1, 0], &[1, 1, 0, 1], &[0, 1, 1, 1], &[1, 0, 1, 1]]);
        for seed in 0..20 {
            let s = karp_sipser(&g, &KarpSipserConfig { seed });
            let m = &s.matching;
            m.verify(&g).unwrap();
            for (i, j) in g.csr().iter_entries() {
                assert!(
                    m.is_row_matched(i) || m.is_col_matched(j),
                    "edge ({i},{j}) alive after KS"
                );
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_csr(Csr::empty(3, 3));
        let s = karp_sipser(&g, &KarpSipserConfig::default());
        assert_eq!(s.matching.cardinality(), 0);
    }

    #[test]
    fn stats_add_up() {
        let g = graph(&[&[1, 1], &[1, 1]]);
        let s = karp_sipser(&g, &KarpSipserConfig { seed: 3 });
        assert_eq!(s.matching.cardinality(), s.degree_one_matches + s.random_matches);
        assert_eq!(s.matching.cardinality(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = graph(&[&[1, 1, 0, 1], &[1, 0, 1, 1], &[0, 1, 1, 0], &[1, 1, 0, 1]]);
        let a = karp_sipser(&g, &KarpSipserConfig { seed: 11 });
        let b = karp_sipser(&g, &KarpSipserConfig { seed: 11 });
        assert_eq!(a.matching, b.matching);
    }

    #[test]
    fn isolated_vertices_ignored() {
        let g = graph(&[&[0, 0, 0], &[0, 1, 0], &[0, 0, 0]]);
        let s = karp_sipser(&g, &KarpSipserConfig::default());
        assert_eq!(s.matching.cardinality(), 1);
        assert_eq!(s.matching.rmate(1), 1);
    }
}
