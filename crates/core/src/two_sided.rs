//! `TwoSidedMatch` — paper Algorithm 3.
//!
//! After scaling, **every row picks a column and every column picks a row**,
//! both with probabilities proportional to the scaled entries. The (at most
//! `2n`) chosen edges form the subgraph `G`; by Lemma 1 each of its
//! components contains at most one cycle, so Karp–Sipser — here the
//! specialized parallel [`karp_sipser_mt`](crate::karp_sipser_mt) — finds a
//! **maximum** matching of `G` in linear time. Conjecture 1 (supported by
//! the random 1-out analysis of Karoński–Pittel/Walkup and by the paper's
//! experiments) puts the expected quality at `2(1 − ρ) ≈ 0.866` of the
//! optimum for matrices with total support.

use dsmatch_graph::{BipartiteGraph, CancelToken, Cancelled, Matching, SplitMix64, VertexId};
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig, ScalingResult};
use rayon::prelude::*;

use crate::ks_mt::karp_sipser_mt_seq;
use crate::sample::sample_neighbor;

/// Configuration of [`two_sided_match`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwoSidedConfig {
    /// Sinkhorn–Knopp stopping rule (paper experiments: 0/1/5/10 iterations).
    pub scaling: ScalingConfig,
    /// PRNG seed. Row `i` uses stream `i`, column `j` stream `nrows + j`.
    pub seed: u64,
}

impl Default for TwoSidedConfig {
    fn default() -> Self {
        Self { scaling: ScalingConfig::default(), seed: 0x5EED }
    }
}

/// Sample the two choice arrays (lines 2–7 of Algorithm 3) in parallel.
///
/// Row `i` draws `j ∈ A_i*` with probability `s_ij / Σ_ℓ s_iℓ` — within a
/// row, weight `dc[j]`; column `j` draws `i ∈ A_*j` with weight `dr[i]`.
/// Vertices with empty adjacency get [`dsmatch_graph::NIL`].
pub fn two_sided_choices(
    g: &BipartiteGraph,
    scaling: &ScalingResult,
    seed: u64,
) -> (Vec<VertexId>, Vec<VertexId>) {
    let mut rchoice = Vec::new();
    let mut cchoice = Vec::new();
    two_sided_choices_into(g, scaling, seed, &mut rchoice, &mut cchoice);
    (rchoice, cchoice)
}

/// Buffer-reuse variant of [`two_sided_choices`]: the two choice arrays are
/// overwritten **in place** (resize + parallel per-slot writes), keeping
/// their allocation across solves on same-shaped instances and allocating
/// no temporaries at all — unlike a `collect`, which would stage per-chunk
/// vectors. Each slot is a pure function of `(seed, index)`, so the arrays
/// are byte-identical for every pool size.
pub fn two_sided_choices_into(
    g: &BipartiteGraph,
    scaling: &ScalingResult,
    seed: u64,
    rchoice: &mut Vec<VertexId>,
    cchoice: &mut Vec<VertexId>,
) {
    let n_r = g.nrows();
    let csr = g.csr();
    let csc = g.csc();
    let (dr, dc) = (&scaling.dr, &scaling.dc);
    // No clear(): every slot is overwritten below, so resizing alone keeps
    // same-shaped batch solves free of the O(n) fill a clear would force.
    rchoice.resize(n_r, 0);
    rchoice.par_iter_mut().enumerate().for_each(|(i, slot)| {
        let mut rng = SplitMix64::stream(seed, i as u64);
        let adj = csr.row(i);
        let total: f64 = adj.iter().map(|&j| dc[j as usize]).sum();
        *slot = sample_neighbor(adj, dc, total, &mut rng);
    });
    cchoice.resize(g.ncols(), 0);
    cchoice.par_iter_mut().enumerate().for_each(|(j, slot)| {
        let mut rng = SplitMix64::stream(seed, (n_r + j) as u64);
        let adj = csc.row(j);
        let total: f64 = adj.iter().map(|&i| dr[i as usize]).sum();
        *slot = sample_neighbor(adj, dr, total, &mut rng);
    });
}

/// Run `TwoSidedMatch` (scaling + two-sided sampling + `KarpSipserMT`) in
/// the current Rayon pool.
///
/// ```
/// use dsmatch_core::{two_sided_match, TwoSidedConfig};
/// use dsmatch_graph::{BipartiteGraph, TripletMatrix};
/// use dsmatch_scale::ScalingConfig;
///
/// // Ring pattern with a perfect matching.
/// let n = 100;
/// let mut t = TripletMatrix::new(n, n);
/// for i in 0..n {
///     t.push(i, i);
///     t.push(i, (i + 1) % n);
/// }
/// let g = BipartiteGraph::from_csr(t.into_csr());
/// let cfg = TwoSidedConfig { scaling: ScalingConfig::iterations(5), seed: 1 };
/// let m = two_sided_match(&g, &cfg);
/// m.verify(&g).unwrap();
/// // Conjecture 1: around 0.866·n in expectation; far above half here.
/// assert!(m.cardinality() > n / 2);
/// ```
pub fn two_sided_match(g: &BipartiteGraph, cfg: &TwoSidedConfig) -> Matching {
    let scaling = if cfg.scaling.max_iterations == 0 {
        ScalingResult::identity(g)
    } else {
        sinkhorn_knopp(g, &cfg.scaling)
    };
    two_sided_match_with_scaling(g, &scaling, cfg.seed)
}

/// The sampling + matching phases with externally computed scaling factors.
pub fn two_sided_match_with_scaling(
    g: &BipartiteGraph,
    scaling: &ScalingResult,
    seed: u64,
) -> Matching {
    two_sided_match_ws(g, scaling, seed, &mut crate::HeurWorkspace::new())
}

/// Buffer-reuse variant of [`two_sided_match_with_scaling`]: the choice
/// arrays and the `KarpSipserMT` state live in `ws` and keep their
/// allocation across solves; only the returned [`Matching`] is fresh.
pub fn two_sided_match_ws(
    g: &BipartiteGraph,
    scaling: &ScalingResult,
    seed: u64,
    ws: &mut crate::HeurWorkspace,
) -> Matching {
    two_sided_match_cancel_ws(g, scaling, seed, ws, &CancelToken::unbounded())
        .expect("unbounded token never cancels")
}

/// Cancellable variant of [`two_sided_match_ws`]: the token is polled before
/// the sampling pass and between the parallel phases of the inner
/// [`karp_sipser_mt_cancel_ws`](crate::karp_sipser_mt_cancel_ws).
pub fn two_sided_match_cancel_ws(
    g: &BipartiteGraph,
    scaling: &ScalingResult,
    seed: u64,
    ws: &mut crate::HeurWorkspace,
    token: &CancelToken,
) -> Result<Matching, Cancelled> {
    token.check()?;
    let crate::HeurWorkspace { rchoice, cchoice, ksmt, .. } = ws;
    two_sided_choices_into(g, scaling, seed, rchoice, cchoice);
    crate::ks_mt::karp_sipser_mt_cancel_ws(rchoice, cchoice, ksmt, token)
}

/// Sequential reference: sequential scaling, sequential sampling (same
/// per-vertex streams, hence the same subgraph) and the sequential exact
/// Karp–Sipser. Produces the same cardinality as [`two_sided_match`].
pub fn two_sided_match_seq(g: &BipartiteGraph, cfg: &TwoSidedConfig) -> Matching {
    let scaling = if cfg.scaling.max_iterations == 0 {
        ScalingResult::identity(g)
    } else {
        dsmatch_scale::sinkhorn_knopp_seq(g, &cfg.scaling)
    };
    let n_r = g.nrows();
    let csr = g.csr();
    let csc = g.csc();
    let (dr, dc) = (&scaling.dr, &scaling.dc);
    let rchoice: Vec<VertexId> = (0..n_r)
        .map(|i| {
            let mut rng = SplitMix64::stream(cfg.seed, i as u64);
            let adj = csr.row(i);
            let total: f64 = adj.iter().map(|&j| dc[j as usize]).sum();
            sample_neighbor(adj, dc, total, &mut rng)
        })
        .collect();
    let cchoice: Vec<VertexId> = (0..g.ncols())
        .map(|j| {
            let mut rng = SplitMix64::stream(cfg.seed, (n_r + j) as u64);
            let adj = csc.row(j);
            let total: f64 = adj.iter().map(|&i| dr[i as usize]).sum();
            sample_neighbor(adj, dr, total, &mut rng)
        })
        .collect();
    karp_sipser_mt_seq(&rchoice, &cchoice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::{Csr, TripletMatrix, NIL};

    fn ring(n: usize) -> BipartiteGraph {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i);
            t.push(i, (i + 1) % n);
        }
        BipartiteGraph::from_csr(t.into_csr())
    }

    #[test]
    fn choices_are_edges() {
        let g = ring(128);
        let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(3));
        let (rc, cc) = two_sided_choices(&g, &s, 17);
        for (i, &j) in rc.iter().enumerate() {
            assert_ne!(j, NIL);
            assert!(g.csr().contains(i, j as usize), "({i},{j}) not an edge");
        }
        for (j, &i) in cc.iter().enumerate() {
            assert_ne!(i, NIL);
            assert!(g.csr().contains(i as usize, j), "({i},{j}) not an edge");
        }
    }

    #[test]
    fn matching_is_valid_on_original_graph() {
        let g = ring(200);
        let m = two_sided_match(&g, &TwoSidedConfig::default());
        m.verify(&g).unwrap();
        assert!(m.cardinality() > 0);
    }

    #[test]
    fn par_and_seq_same_cardinality() {
        let g = ring(301);
        let cfg = TwoSidedConfig { scaling: ScalingConfig::iterations(4), seed: 4242 };
        let par = two_sided_match(&g, &cfg);
        let seq = two_sided_match_seq(&g, &cfg);
        assert_eq!(par.cardinality(), seq.cardinality());
    }

    #[test]
    fn quality_beats_one_sided_on_ring() {
        // Both heuristics on the same graph; TwoSided should do better
        // (0.866 vs 0.632 expectations).
        let g = ring(4000);
        let two =
            two_sided_match(&g, &TwoSidedConfig { scaling: ScalingConfig::iterations(5), seed: 1 });
        let one = crate::one_sided::one_sided_match(
            &g,
            &crate::one_sided::OneSidedConfig { scaling: ScalingConfig::iterations(5), seed: 1 },
        );
        assert!(
            two.cardinality() > one.cardinality(),
            "two-sided {} ≤ one-sided {}",
            two.cardinality(),
            one.cardinality()
        );
        assert!(two.cardinality() as f64 / 4000.0 > 0.85);
    }

    #[test]
    fn deterministic_cardinality() {
        let g = ring(500);
        let cfg = TwoSidedConfig { scaling: ScalingConfig::iterations(2), seed: 9 };
        let c0 = two_sided_match(&g, &cfg).cardinality();
        for _ in 0..5 {
            assert_eq!(two_sided_match(&g, &cfg).cardinality(), c0);
        }
    }

    #[test]
    fn handles_empty_rows_and_cols() {
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 0, 1], &[0, 0, 0], &[1, 0, 0]]));
        let m = two_sided_match(&g, &TwoSidedConfig::default());
        m.verify(&g).unwrap();
        // Max matching here is 2 (rows 0 & 2 to cols 2 & 0, say).
        assert!(m.cardinality() <= 2);
    }

    #[test]
    fn perfect_on_permutation() {
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[0, 0, 1], &[1, 0, 0], &[0, 1, 0]]));
        let m = two_sided_match(&g, &TwoSidedConfig::default());
        assert!(m.is_perfect());
    }
}
