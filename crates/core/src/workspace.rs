//! Reusable scratch buffers for the heuristics.
//!
//! The paper's target workloads (jump-starting sparse direct solvers,
//! §1) solve many same-shaped instances back to back; re-allocating the
//! choice arrays and the Algorithm 4 state on every call dominates the
//! runtime of the cheapest heuristics. [`HeurWorkspace`] owns every scratch
//! vector the `*_ws` entry points need; after the first solve on a given
//! shape the buffers stop growing, so repeated solves allocate only their
//! output [`dsmatch_graph::Matching`].
//!
//! The buffers are ordinary `pub` fields so harnesses (and the engine
//! layer's workspace-stability tests) can assert pointer/capacity
//! stability across solves.

use dsmatch_graph::VertexId;
use std::sync::atomic::AtomicU32;

use crate::karp_sipser::KarpSipserScratch;
use crate::ks_mt::KsMtScratch;

/// Reusable scratch for every heuristic in this crate.
///
/// Hand one instance to the `*_ws` entry points ([`crate::one_sided_match_ws`],
/// [`crate::two_sided_match_ws`], [`crate::karp_sipser_mt_ws`],
/// [`crate::karp_sipser_ws`]); the same workspace serves all of them, so a
/// batch driver needs exactly one per thread of control.
#[derive(Debug, Default)]
pub struct HeurWorkspace {
    /// Row choice array: `rchoice[i]` is the column sampled by row `i`.
    pub rchoice: Vec<VertexId>,
    /// Column choice array: `cchoice[j]` is the row sampled by column `j`.
    pub cchoice: Vec<VertexId>,
    /// `OneSidedMatch`'s per-column race slots (the `cmatch` array of
    /// Algorithm 2, lines 2–3).
    pub cslots: Vec<AtomicU32>,
    /// Algorithm 4 (`KarpSipserMT`) scratch state.
    pub ksmt: KsMtScratch,
    /// Classic Karp–Sipser scratch state.
    pub ks: KarpSipserScratch,
}

impl HeurWorkspace {
    /// An empty workspace; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reset a vector of `AtomicU32` to `n` copies of `val`, reusing the
/// allocation (the pointer is stable once capacity has grown to `n`).
pub(crate) fn reset_atomic_u32(v: &mut Vec<AtomicU32>, n: usize, val: u32) {
    use rayon::prelude::*;
    use std::sync::atomic::Ordering;
    let keep = v.len().min(n);
    v[..keep].par_iter().for_each(|a| a.store(val, Ordering::Relaxed));
    if n < v.len() {
        v.truncate(n);
    } else {
        v.resize_with(n, || AtomicU32::new(val));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn reset_reuses_allocation() {
        let mut v: Vec<AtomicU32> = Vec::new();
        reset_atomic_u32(&mut v, 100, 7);
        assert_eq!(v.len(), 100);
        assert!(v.iter().all(|a| a.load(Ordering::Relaxed) == 7));
        let ptr = v.as_ptr();
        let cap = v.capacity();
        v[3].store(99, Ordering::Relaxed);
        reset_atomic_u32(&mut v, 80, 1);
        assert_eq!(v.len(), 80);
        assert!(v.iter().all(|a| a.load(Ordering::Relaxed) == 1));
        assert_eq!(v.as_ptr(), ptr, "shrinking reset must not reallocate");
        assert_eq!(v.capacity(), cap);
        reset_atomic_u32(&mut v, 100, 2);
        assert_eq!(v.as_ptr(), ptr, "regrowing within capacity must not reallocate");
    }
}
