//! `OneSidedMatch` — paper Algorithm 2.
//!
//! Scale the adjacency matrix to doubly stochastic form, then let **every
//! row independently** pick one column with probability proportional to the
//! scaled entry and write itself into `cmatch[column]`. Multiple rows may
//! pick the same column; in the parallel version one write survives per
//! column (benign last-writer-wins race, here expressed as relaxed atomic
//! stores so it is well-defined), and the surviving pairs form a valid
//! matching of size ≥ n(1 − 1/e) in expectation (Theorem 1).
//!
//! There is **no synchronization and no conflict resolution** — this is the
//! paper's headline "zero algorithmic overhead" heuristic, and the reason
//! its speedup plot (Fig. 3b) scales almost linearly.

use dsmatch_graph::{BipartiteGraph, Matching, SplitMix64, NIL};
use dsmatch_scale::{sinkhorn_knopp, ScalingConfig, ScalingResult};
use rayon::prelude::*;
use std::sync::atomic::Ordering;

use crate::sample::sample_neighbor;

/// Configuration of [`one_sided_match`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OneSidedConfig {
    /// Sinkhorn–Knopp stopping rule (paper experiments: 0/1/5/10 iterations).
    pub scaling: ScalingConfig,
    /// PRNG seed; per-row streams are derived from it, making the result
    /// independent of the thread count.
    pub seed: u64,
}

impl Default for OneSidedConfig {
    fn default() -> Self {
        Self { scaling: ScalingConfig::default(), seed: 0x5EED }
    }
}

/// Run `OneSidedMatch` (scaling + sampling) in the current Rayon pool.
///
/// ```
/// use dsmatch_core::{one_sided_match, OneSidedConfig};
/// use dsmatch_graph::{BipartiteGraph, Csr};
/// use dsmatch_scale::ScalingConfig;
///
/// // A 3-cycle pattern: every edge is in a perfect matching.
/// let g = BipartiteGraph::from_csr(Csr::from_dense(&[
///     &[1, 1, 0],
///     &[0, 1, 1],
///     &[1, 0, 1],
/// ]));
/// let cfg = OneSidedConfig { scaling: ScalingConfig::iterations(5), seed: 1 };
/// let m = one_sided_match(&g, &cfg);
/// m.verify(&g).unwrap();
/// assert!(m.cardinality() >= 1);
/// ```
pub fn one_sided_match(g: &BipartiteGraph, cfg: &OneSidedConfig) -> Matching {
    let scaling = if cfg.scaling.max_iterations == 0 {
        ScalingResult::identity(g)
    } else {
        sinkhorn_knopp(g, &cfg.scaling)
    };
    one_sided_match_with_scaling(g, &scaling, cfg.seed)
}

/// The sampling phase of Algorithm 2 with externally computed scaling
/// factors (lets callers substitute Ruiz scaling or reuse one scaling for
/// several seeds).
pub fn one_sided_match_with_scaling(
    g: &BipartiteGraph,
    scaling: &ScalingResult,
    seed: u64,
) -> Matching {
    one_sided_match_ws(g, scaling, seed, &mut crate::HeurWorkspace::new())
}

/// Buffer-reuse variant of [`one_sided_match_with_scaling`]: the race slots
/// live in `ws` and keep their allocation across solves; only the returned
/// [`Matching`] is freshly allocated.
pub fn one_sided_match_ws(
    g: &BipartiteGraph,
    scaling: &ScalingResult,
    seed: u64,
    ws: &mut crate::HeurWorkspace,
) -> Matching {
    let n_r = g.nrows();
    let n_c = g.ncols();
    let csr = g.csr();
    let dc = &scaling.dc;

    // cmatch[j] ← NIL, in parallel (paper lines 2–3).
    crate::workspace::reset_atomic_u32(&mut ws.cslots, n_c, NIL);
    let cmatch = &ws.cslots[..];

    // Every row picks a column and races into cmatch (paper lines 4–6).
    (0..n_r).into_par_iter().for_each(|i| {
        let mut rng = SplitMix64::stream(seed, i as u64);
        let adj = csr.row(i);
        let total: f64 = adj.iter().map(|&j| dc[j as usize]).sum();
        let j = sample_neighbor(adj, dc, total, &mut rng);
        if j != NIL {
            // Benign race: any single writer may win; the matching stays
            // valid because each row writes at most one column slot.
            cmatch[j as usize].store(i as u32, Ordering::Relaxed);
        }
    });

    let cmatch: Vec<u32> = cmatch.par_iter().map(|a| a.load(Ordering::Relaxed)).collect();
    Matching::from_cmate(cmatch, n_r)
}

/// Sequential reference implementation: identical sampling streams, so the
/// set of (row → column) choices is identical to the parallel version; only
/// the per-column surviving row may differ (it is the last writer here, an
/// arbitrary one in parallel). Cardinality is therefore identical.
pub fn one_sided_match_seq(g: &BipartiteGraph, cfg: &OneSidedConfig) -> Matching {
    let scaling = if cfg.scaling.max_iterations == 0 {
        ScalingResult::identity(g)
    } else {
        dsmatch_scale::sinkhorn_knopp_seq(g, &cfg.scaling)
    };
    let csr = g.csr();
    let dc = &scaling.dc;
    let mut cmatch = vec![NIL; g.ncols()];
    for i in 0..g.nrows() {
        let mut rng = SplitMix64::stream(cfg.seed, i as u64);
        let adj = csr.row(i);
        let total: f64 = adj.iter().map(|&j| dc[j as usize]).sum();
        let j = sample_neighbor(adj, dc, total, &mut rng);
        if j != NIL {
            cmatch[j as usize] = i as u32;
        }
    }
    Matching::from_cmate(cmatch, g.nrows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::Csr;

    fn ring(n: usize) -> BipartiteGraph {
        // Row i adjacent to columns i and (i+1) mod n: total support.
        let mut t = dsmatch_graph::TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i);
            t.push(i, (i + 1) % n);
        }
        BipartiteGraph::from_csr(t.into_csr())
    }

    #[test]
    fn produces_valid_matching() {
        let g = ring(64);
        let m = one_sided_match(&g, &OneSidedConfig::default());
        m.verify(&g).unwrap();
        assert!(m.cardinality() > 0);
    }

    #[test]
    fn seq_and_par_same_cardinality_and_columns() {
        let g = ring(257);
        let cfg = OneSidedConfig { scaling: ScalingConfig::iterations(4), seed: 99 };
        let par = one_sided_match(&g, &cfg);
        let seq = one_sided_match_seq(&g, &cfg);
        assert_eq!(par.cardinality(), seq.cardinality());
        // The set of matched columns is exactly the set of chosen columns,
        // identical in both versions.
        let cols_par: Vec<bool> = (0..g.ncols()).map(|j| par.is_col_matched(j)).collect();
        let cols_seq: Vec<bool> = (0..g.ncols()).map(|j| seq.is_col_matched(j)).collect();
        assert_eq!(cols_par, cols_seq);
    }

    #[test]
    fn deterministic_across_runs() {
        // The per-column winner among racing rows is scheduling-dependent,
        // but the set of chosen columns — hence the cardinality — is a pure
        // function of the seed.
        let g = ring(100);
        let cfg = OneSidedConfig { scaling: ScalingConfig::iterations(2), seed: 7 };
        let a = one_sided_match(&g, &cfg);
        let b = one_sided_match(&g, &cfg);
        assert_eq!(a.cardinality(), b.cardinality());
        for j in 0..g.ncols() {
            assert_eq!(a.is_col_matched(j), b.is_col_matched(j));
        }
        // The sequential version is fully deterministic.
        let s1 = one_sided_match_seq(&g, &cfg);
        let s2 = one_sided_match_seq(&g, &cfg);
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_seeds_differ() {
        let g = ring(100);
        let a = one_sided_match(&g, &OneSidedConfig { seed: 1, ..Default::default() });
        let b = one_sided_match(&g, &OneSidedConfig { seed: 2, ..Default::default() });
        assert_ne!(a, b, "two seeds giving identical matchings is astronomically unlikely");
    }

    #[test]
    fn meets_theorem1_bound_on_ring() {
        // Ring has a perfect matching (identity), so optimum = n. Average
        // quality over seeds must clear 1 − 1/e; a single run on n = 2000
        // concentrates well above 0.60.
        let g = ring(2000);
        let m = one_sided_match(
            &g,
            &OneSidedConfig { scaling: ScalingConfig::iterations(10), seed: 5 },
        );
        let q = m.cardinality() as f64 / 2000.0;
        assert!(q >= 0.60, "quality {q} below Theorem 1 expectation");
    }

    #[test]
    fn zero_scaling_iterations_still_valid() {
        let g = ring(128);
        let cfg = OneSidedConfig { scaling: ScalingConfig::iterations(0), seed: 3 };
        let m = one_sided_match(&g, &cfg);
        m.verify(&g).unwrap();
        assert!(m.cardinality() > 64); // way better than half on a ring
    }

    #[test]
    fn tolerates_empty_rows() {
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[1, 1], &[0, 0], &[1, 0]]));
        let m = one_sided_match(&g, &OneSidedConfig::default());
        m.verify(&g).unwrap();
        assert!(!m.is_row_matched(1));
    }

    #[test]
    fn perfect_on_permutation_matrix() {
        // With a permutation pattern every row has exactly one choice:
        // the heuristic must return the full permutation.
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[0, 1, 0], &[0, 0, 1], &[1, 0, 0]]));
        let m = one_sided_match(&g, &OneSidedConfig::default());
        assert!(m.is_perfect());
        assert_eq!(m.rmate(0), 1);
        assert_eq!(m.rmate(1), 2);
        assert_eq!(m.rmate(2), 0);
    }
}
