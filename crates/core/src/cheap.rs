//! The "cheap matching" baselines of paper §2.1.
//!
//! Two classic randomized greedy heuristics, both with worst-case
//! approximation guarantee 1/2 (the vertex variant slightly above 1/2 per
//! Aronson–Dyer–Frieze–Suen and Poloczek–Szegedy):
//!
//! - [`cheap_random_edge`]: visit the edges in uniformly random order and
//!   match the endpoints of each edge whose endpoints are both free.
//! - [`cheap_random_vertex`]: repeatedly pick a random (remaining) vertex
//!   and match it with a random free neighbour.
//!
//! They serve as quality baselines in the experiment harness: the paper
//! positions `OneSidedMatch`/`TwoSidedMatch` as replacements for exactly
//! these jump-start heuristics.

use dsmatch_graph::{BipartiteGraph, Matching, SplitMix64, VertexId};

/// Random-edge greedy matching (first cheap variant of §2.1).
pub fn cheap_random_edge(g: &BipartiteGraph, seed: u64) -> Matching {
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(VertexId, VertexId)> =
        g.csr().iter_entries().map(|(i, j)| (i as VertexId, j as VertexId)).collect();
    rng.shuffle(&mut edges);
    let mut m = Matching::new(g.nrows(), g.ncols());
    for (i, j) in edges {
        if !m.is_row_matched(i as usize) && !m.is_col_matched(j as usize) {
            m.set(i as usize, j as usize);
        }
    }
    m
}

/// Random-vertex greedy matching (second cheap variant of §2.1): visit the
/// `n_r + n_c` vertices in uniformly random order; when an unmatched vertex
/// is visited, match it with a uniformly random unmatched neighbour (if
/// any). Vertices that become isolated are skipped implicitly.
pub fn cheap_random_vertex(g: &BipartiteGraph, seed: u64) -> Matching {
    let mut rng = SplitMix64::new(seed);
    let n_r = g.nrows();
    let mut order: Vec<u32> = (0..(n_r + g.ncols()) as u32).collect();
    rng.shuffle(&mut order);
    let mut m = Matching::new(n_r, g.ncols());
    let mut free: Vec<VertexId> = Vec::new();
    for v in order {
        let v = v as usize;
        free.clear();
        if v < n_r {
            if m.is_row_matched(v) {
                continue;
            }
            free.extend(g.row_adj(v).iter().filter(|&&j| !m.is_col_matched(j as usize)));
            if !free.is_empty() {
                let j = free[rng.next_index(free.len())];
                m.set(v, j as usize);
            }
        } else {
            let j = v - n_r;
            if m.is_col_matched(j) {
                continue;
            }
            free.extend(g.col_adj(j).iter().filter(|&&i| !m.is_row_matched(i as usize)));
            if !free.is_empty() {
                let i = free[rng.next_index(free.len())];
                m.set(i as usize, j);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::{Csr, TripletMatrix};

    fn ring(n: usize) -> BipartiteGraph {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i);
            t.push(i, (i + 1) % n);
        }
        BipartiteGraph::from_csr(t.into_csr())
    }

    #[test]
    fn both_produce_valid_matchings() {
        let g = ring(100);
        for seed in 0..5 {
            cheap_random_edge(&g, seed).verify(&g).unwrap();
            cheap_random_vertex(&g, seed).verify(&g).unwrap();
        }
    }

    #[test]
    fn both_are_maximal() {
        let g = ring(64);
        for seed in 0..5 {
            for m in [cheap_random_edge(&g, seed), cheap_random_vertex(&g, seed)] {
                for (i, j) in g.csr().iter_entries() {
                    assert!(
                        m.is_row_matched(i) || m.is_col_matched(j),
                        "alive edge ({i},{j}) after greedy (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn half_guarantee_via_maximality() {
        // A maximal matching is ≥ 1/2 of maximum; ring's maximum is n.
        let n = 512;
        let g = ring(n);
        for seed in 0..5 {
            assert!(cheap_random_edge(&g, seed).cardinality() * 2 >= n);
            assert!(cheap_random_vertex(&g, seed).cardinality() * 2 >= n);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = ring(50);
        assert_eq!(cheap_random_edge(&g, 3), cheap_random_edge(&g, 3));
        assert_eq!(cheap_random_vertex(&g, 3), cheap_random_vertex(&g, 3));
    }

    #[test]
    fn empty_graph_ok() {
        let g = BipartiteGraph::from_csr(Csr::empty(4, 4));
        assert_eq!(cheap_random_edge(&g, 0).cardinality(), 0);
        assert_eq!(cheap_random_vertex(&g, 0).cardinality(), 0);
    }

    #[test]
    fn single_edge() {
        let g = BipartiteGraph::from_csr(Csr::from_dense(&[&[0, 1]]));
        assert_eq!(cheap_random_edge(&g, 1).cardinality(), 1);
        assert_eq!(cheap_random_vertex(&g, 1).cardinality(), 1);
    }
}
