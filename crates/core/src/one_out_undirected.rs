//! 1-out matching for **undirected** graphs — the extension announced in
//! the paper's conclusion (§5): "We are investigating variants of the
//! proposed heuristics for finding approximate matchings in undirected
//! graphs. The algorithms and results extend naturally."
//!
//! The construction mirrors `TwoSidedMatch` with one vertex class:
//!
//! 1. scale the symmetric adjacency with a symmetry-preserving iteration
//!    (`dsmatch-scale::symmetric_scaling`), giving `s_uv = d[u]·d[v]`;
//! 2. every vertex samples **one** neighbour with probability proportional
//!    to the scaled entry (`choice[v]`);
//! 3. the chosen edges form a functional graph whose components again
//!    contain at most one cycle, so Karp–Sipser is exact on it. Phase 1 is
//!    the same chain-following out-one consumption as `KarpSipserMT`
//!    (whose correctness argument never used bipartiteness); the leftover
//!    cycles — which may now be **odd** — are matched alternately by a
//!    cycle walk, leaving one vertex per odd cycle unmatched, which is
//!    optimal.

use dsmatch_graph::{SplitMix64, UndirectedGraph, UndirectedMatching, VertexId, NIL};
use dsmatch_scale::{symmetric_scaling, ScalingConfig, SymmetricScalingResult};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use crate::sample::sample_neighbor;

/// Configuration of [`one_out_undirected`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OneOutConfig {
    /// Symmetric-scaling stopping rule.
    pub scaling: ScalingConfig,
    /// PRNG seed (per-vertex streams derived from it).
    pub seed: u64,
}

impl Default for OneOutConfig {
    fn default() -> Self {
        Self { scaling: ScalingConfig::default(), seed: 0x5EED }
    }
}

/// Sample one neighbour per vertex, weights proportional to the scaled
/// entries (`d[u]` within vertex `v`'s adjacency).
pub fn one_out_choices(
    g: &UndirectedGraph,
    scaling: &SymmetricScalingResult,
    seed: u64,
) -> Vec<VertexId> {
    let d = &scaling.d;
    (0..g.n())
        .into_par_iter()
        .map(|v| {
            let mut rng = SplitMix64::stream(seed, v as u64);
            let adj = g.adj(v);
            let total: f64 = adj.iter().map(|&u| d[u as usize]).sum();
            sample_neighbor(adj, d, total, &mut rng)
        })
        .collect()
}

/// Maximum matching of the functional graph `{(v, choice[v])}`.
///
/// Phase 1 consumes out-one vertices in parallel exactly as
/// [`crate::karp_sipser_mt`]; the remaining cycles are walked sequentially
/// and matched alternately (each odd cycle necessarily leaves one vertex
/// unmatched).
pub fn one_out_matching(choice: &[VertexId]) -> UndirectedMatching {
    let n = choice.len();
    let mark: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(true)).collect();
    let deg: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(1)).collect();
    let mat: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NIL)).collect();

    (0..n).into_par_iter().for_each(|u| {
        let v = choice[u];
        if v != NIL {
            debug_assert_ne!(v as usize, u, "self-choices are not allowed");
            let v = v as usize;
            mark[v].store(false, Ordering::Relaxed);
            if choice[v] != u as u32 {
                deg[v].fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    // Phase 1 — identical chain-following to Algorithm 4.
    (0..n).into_par_iter().for_each(|u| {
        if !mark[u].load(Ordering::Relaxed) || choice[u] == NIL {
            return;
        }
        let mut curr = u as u32;
        while curr != NIL {
            let nbr = choice[curr as usize];
            if mat[nbr as usize]
                .compare_exchange(NIL, curr, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                mat[curr as usize].store(nbr, Ordering::Release);
                let next = choice[nbr as usize];
                curr = NIL;
                if next != NIL
                    && choice[next as usize] != NIL
                    && mat[next as usize].load(Ordering::Acquire) == NIL
                    && deg[next as usize].fetch_sub(1, Ordering::AcqRel) == 2
                {
                    curr = next;
                }
            } else {
                curr = NIL;
            }
        }
    });

    // Phase 2 — leftover components are cycles (2-cliques included). Walk
    // each cycle once and match alternate edges; odd cycles leave exactly
    // one vertex unmatched, which is optimal.
    let mut mate: Vec<u32> = mat.into_iter().map(|a| a.into_inner()).collect();
    let mut cycle: Vec<u32> = Vec::new();
    for start in 0..n {
        if mate[start] != NIL || choice[start] == NIL {
            continue;
        }
        // Collect the unmatched chain/cycle from `start`.
        cycle.clear();
        let mut v = start as u32;
        loop {
            cycle.push(v);
            let next = choice[v as usize];
            if next == NIL || mate[next as usize] != NIL || next as usize == start {
                break;
            }
            // Guard against re-walking (shouldn't happen on true cycles,
            // but NIL-robust inputs can form chains into matched regions).
            if cycle.len() > n {
                break;
            }
            v = next;
        }
        for pair in cycle.chunks_exact(2) {
            mate[pair[0] as usize] = pair[1];
            mate[pair[1] as usize] = pair[0];
        }
    }
    UndirectedMatching::from_mates(mate)
}

/// Full pipeline: symmetric scaling → 1-out sampling → exact matching of
/// the sampled subgraph.
pub fn one_out_undirected(g: &UndirectedGraph, cfg: &OneOutConfig) -> UndirectedMatching {
    let scaling = if cfg.scaling.max_iterations == 0 {
        SymmetricScalingResult::identity(g)
    } else {
        symmetric_scaling(g, &cfg.scaling)
    };
    let choice = one_out_choices(g, &scaling, cfg.seed);
    one_out_matching(&choice)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle_graph(n: usize) -> UndirectedGraph {
        let edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        UndirectedGraph::from_edges(n, &edges)
    }

    #[test]
    fn mutual_pair() {
        let m = one_out_matching(&[1, 0]);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.mate(0), 1);
    }

    #[test]
    fn triangle_cycle_leaves_one_unmatched() {
        // 0→1→2→0: odd cycle; maximum matching = 1.
        let m = one_out_matching(&[1, 2, 0]);
        assert_eq!(m.cardinality(), 1);
        m.check_consistent().unwrap();
    }

    #[test]
    fn even_cycle_perfect() {
        let m = one_out_matching(&[1, 2, 3, 0]);
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    fn chain_of_out_ones_consumed() {
        // 0→1, 1→2, 2→3, 3→2 (mutual tail): vertices 0 is out-one.
        let m = one_out_matching(&[1, 2, 3, 2]);
        m.check_consistent().unwrap();
        // Maximum here: edges {0-1, 2-3} → 2 pairs.
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    fn star_choices() {
        // Everyone chooses vertex 0; 0 chooses 1. Component is a star plus
        // the 0–1 mutual edge: maximum matching = 1.
        let m = one_out_matching(&[1, 0, 0, 0, 0]);
        assert_eq!(m.cardinality(), 1);
        m.check_consistent().unwrap();
    }

    #[test]
    fn nil_choices_skipped() {
        let m = one_out_matching(&[NIL, 2, 1, NIL]);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.mate(1), 2);
    }

    #[test]
    fn matches_brute_force_on_random_functional_graphs() {
        let mut rng = SplitMix64::new(99);
        for n in [2usize, 3, 5, 8, 12] {
            for _ in 0..200 {
                // choice[v] != v (no self-loops).
                let choice: Vec<u32> = (0..n)
                    .map(|v| {
                        let mut c = rng.next_below(n as u64) as u32;
                        if c as usize == v {
                            c = (c + 1) % n as u32;
                        }
                        c
                    })
                    .collect();
                let m = one_out_matching(&choice);
                m.check_consistent().unwrap();
                // Brute force on the materialized subgraph.
                let edges: Vec<(usize, usize)> =
                    choice.iter().enumerate().map(|(v, &c)| (v, c as usize)).collect();
                let g = UndirectedGraph::from_edges(n, &edges);
                m.verify(&g).unwrap();
                let opt = brute_force(&g);
                assert_eq!(m.cardinality(), opt, "choice = {choice:?}");
            }
        }
    }

    /// Exponential oracle: first free vertex is skipped or matched with
    /// each free neighbour.
    fn brute_force(g: &UndirectedGraph) -> usize {
        fn go(g: &UndirectedGraph, free: &mut Vec<bool>, from: usize) -> usize {
            let Some(v) = (from..g.n()).find(|&v| free[v]) else {
                return 0;
            };
            free[v] = false;
            // Skip v entirely.
            let mut best = go(g, free, v + 1);
            for &u in g.adj(v) {
                let u = u as usize;
                if free[u] {
                    free[u] = false;
                    best = best.max(1 + go(g, free, v + 1));
                    free[u] = true;
                }
            }
            free[v] = true;
            best
        }
        let mut free = vec![true; g.n()];
        go(g, &mut free, 0)
    }

    #[test]
    fn full_pipeline_on_cycle_graphs() {
        for n in [10usize, 101, 1000] {
            let g = cycle_graph(n);
            let m = one_out_undirected(
                &g,
                &OneOutConfig { scaling: ScalingConfig::iterations(5), seed: 3 },
            );
            m.verify(&g).unwrap();
            // Maximum matching of C_n is ⌊n/2⌋; the heuristic should land
            // well above half of it.
            assert!(m.cardinality() * 3 >= n, "n = {n}: {}", m.cardinality());
        }
    }

    #[test]
    fn full_pipeline_quality_on_random_regular() {
        // A union of two random perfect matchings + cycle edges: a sparse
        // graph with a perfect matching (n even).
        let n = 10_000;
        let mut edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let mut rng = SplitMix64::new(5);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut perm);
        for pair in perm.chunks_exact(2) {
            edges.push((pair[0] as usize, pair[1] as usize));
        }
        let g = UndirectedGraph::from_edges(n, &edges);
        let m = one_out_undirected(
            &g,
            &OneOutConfig { scaling: ScalingConfig::iterations(5), seed: 11 },
        );
        m.verify(&g).unwrap();
        let quality = 2.0 * m.cardinality() as f64 / n as f64;
        assert!(quality > 0.75, "1-out quality {quality:.3}");
    }

    #[test]
    fn deterministic_cardinality() {
        let g = cycle_graph(500);
        let cfg = OneOutConfig { scaling: ScalingConfig::iterations(2), seed: 9 };
        let c0 = one_out_undirected(&g, &cfg).cardinality();
        for _ in 0..5 {
            assert_eq!(one_out_undirected(&g, &cfg).cardinality(), c0);
        }
    }
}
