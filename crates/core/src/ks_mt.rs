//! `KarpSipserMT` — paper Algorithm 4.
//!
//! A multi-threaded Karp–Sipser specialized for the subgraph `G` sampled by
//! `TwoSidedMatch`: every vertex carries exactly one out-choice, so `G` is
//! the union of two functional graphs and (Lemma 1) each component has at
//! most one cycle. Consequences exploited here:
//!
//! - Karp–Sipser is **exact** on `G` (paper's discussion after Lemma 1);
//! - only *out-one* vertices need processing in Phase 1 (Observations 1–2,
//!   Lemma 2): in-one vertices are consumed transitively through out-ones;
//! - consuming an out-one creates **at most one** new out-one (Lemma 4), so
//!   no worklist is needed — a thread just walks the chain;
//! - what remains after Phase 1 is trivial vertices, 2-cliques and cycles,
//!   matched by a synchronization-light parallel sweep (Lemma 3).
//!
//! Synchronization uses exactly the paper's three primitives:
//! `fetch_add` (`_Add`) for degree construction, `compare_exchange`
//! (`_CompAndSwap`) to claim a mate, and `fetch_sub` (`_AddAndFetch` with
//! −1) to order concurrent degree decrements so exactly one thread
//! continues into each newly created out-one vertex.
//!
//! Beyond the paper, [`NIL`] choices are tolerated (vertices with empty
//! adjacency in sprank-deficient inputs simply never choose); such vertices
//! are skipped, which preserves matching validity and, on inputs satisfying
//! the paper's assumptions, changes nothing.

use dsmatch_graph::{
    BipartiteGraph, CancelToken, Cancelled, Matching, TripletMatrix, VertexId, NIL,
};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use crate::karp_sipser::{karp_sipser, KarpSipserConfig};
use crate::workspace::reset_atomic_u32;

/// Reusable scratch state of Algorithm 4 (see [`karp_sipser_mt_ws`]).
///
/// All buffers are sized `nrows + ncols` and keep their allocation across
/// solves; the fields are public so harnesses can assert pointer stability.
#[derive(Debug, Default)]
pub struct KsMtScratch {
    /// Unified choice array (rows then columns, column ids offset by
    /// `nrows`) — the concatenation the paper describes.
    pub choice: Vec<u32>,
    /// `mark[v]`: is `v` an out-one vertex candidate (nobody chose it)?
    pub mark: Vec<AtomicBool>,
    /// Degree of each vertex in the sampled subgraph (1 or 2).
    pub deg: Vec<AtomicU32>,
    /// Mate array over unified vertex ids.
    pub mat: Vec<AtomicU32>,
}

impl KsMtScratch {
    /// An empty scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resize every buffer to `total` and reset values for a fresh solve,
    /// reusing allocations.
    fn reset(&mut self, total: usize) {
        self.choice.clear();
        self.choice.resize(total, NIL);
        let keep = self.mark.len().min(total);
        self.mark[..keep].par_iter().for_each(|a| a.store(true, Ordering::Relaxed));
        if total < self.mark.len() {
            self.mark.truncate(total);
        } else {
            self.mark.resize_with(total, || AtomicBool::new(true));
        }
        reset_atomic_u32(&mut self.deg, total, 1);
        reset_atomic_u32(&mut self.mat, total, NIL);
    }
}

/// Run the multi-threaded Karp–Sipser of Algorithm 4 on the 1-out ∪ 1-in
/// subgraph described by the two choice arrays.
///
/// `rchoice[i]` is the column chosen by row `i` (or [`NIL`]), `cchoice[j]`
/// the row chosen by column `j` (or [`NIL`]). Returns a maximum-cardinality
/// matching **of the sampled subgraph** (not of the original graph).
///
/// ```
/// use dsmatch_core::karp_sipser_mt;
///
/// // Rows 0,1 choose columns 0,1; columns choose rows crosswise:
/// // a 4-cycle — the maximum matching has 2 edges.
/// let m = karp_sipser_mt(&[0, 1], &[1, 0]);
/// assert_eq!(m.cardinality(), 2);
/// ```
pub fn karp_sipser_mt(rchoice: &[VertexId], cchoice: &[VertexId]) -> Matching {
    karp_sipser_mt_ws(rchoice, cchoice, &mut KsMtScratch::new())
}

/// Buffer-reuse variant of [`karp_sipser_mt`]: identical algorithm, but the
/// choice/mark/degree/mate state lives in the caller-provided
/// [`KsMtScratch`] so repeated solves on same-shaped inputs stop allocating
/// (only the returned [`Matching`] is fresh).
pub fn karp_sipser_mt_ws(
    rchoice: &[VertexId],
    cchoice: &[VertexId],
    ws: &mut KsMtScratch,
) -> Matching {
    karp_sipser_mt_cancel_ws(rchoice, cchoice, ws, &CancelToken::unbounded())
        .expect("unbounded token never cancels")
}

/// Cancellable variant of [`karp_sipser_mt_ws`]: the token is polled between
/// the flat parallel phases (initialization, Phase 1, Phase 2, the
/// robustness sweep and extraction), the natural barriers of Algorithm 4.
/// On [`Cancelled`] the scratch stays reusable (it is reset on entry).
pub fn karp_sipser_mt_cancel_ws(
    rchoice: &[VertexId],
    cchoice: &[VertexId],
    ws: &mut KsMtScratch,
    token: &CancelToken,
) -> Result<Matching, Cancelled> {
    let n_r = rchoice.len();
    let n_c = cchoice.len();
    let total = n_r + n_c;
    token.check()?;
    ws.reset(total);

    // Unified vertex ids: rows 0..n_r, columns n_r..n_r+n_c. `choice` is
    // the concatenation of the two arrays (paper: "the choice array is a
    // concatenation of rchoice and cchoice"; no explicit graph is built).
    {
        let (rows, cols) = ws.choice.split_at_mut(n_r);
        rows.par_iter_mut().zip(rchoice.par_iter()).for_each(|(slot, &j)| {
            *slot = if j == NIL { NIL } else { (j as usize + n_r) as u32 };
        });
        cols.par_iter_mut().zip(cchoice.par_iter()).for_each(|(slot, &i)| *slot = i);
    }
    let choice = &ws.choice[..];
    let mark = &ws.mark[..];
    let deg = &ws.deg[..];
    let mat = &ws.mat[..];
    debug_assert!(choice[..n_r].iter().all(|&v| v == NIL || (v as usize) >= n_r));
    debug_assert!(choice[n_r..].iter().all(|&v| v == NIL || (v as usize) < n_r));

    // Initialization (paper lines 1–9).
    (0..total).into_par_iter().for_each(|u| {
        let v = choice[u];
        if v != NIL {
            let v = v as usize;
            mark[v].store(false, Ordering::Relaxed);
            if choice[v] != u as u32 {
                deg[v].fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    token.check()?;

    // Phase 1: consume out-one vertices, following the at-most-one new
    // out-one chain (paper lines 10–23).
    (0..total).into_par_iter().for_each(|u| {
        if !mark[u].load(Ordering::Relaxed) || choice[u] == NIL {
            return;
        }
        let mut curr = u as u32;
        while curr != NIL {
            let nbr = choice[curr as usize];
            debug_assert_ne!(nbr, NIL, "chain continued into a choiceless vertex");
            // _CompAndSwap(match[nbr], NIL, curr): claim nbr for curr.
            if mat[nbr as usize]
                .compare_exchange(NIL, curr, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                mat[curr as usize].store(nbr, Ordering::Release);
                let next = choice[nbr as usize];
                curr = NIL;
                if next != NIL
                    && choice[next as usize] != NIL
                    && mat[next as usize].load(Ordering::Acquire) == NIL
                {
                    // _AddAndFetch(deg[next], −1) = 1 ⟺ previous value 2:
                    // the unique thread seeing this transition owns `next`.
                    if deg[next as usize].fetch_sub(1, Ordering::AcqRel) == 2 {
                        curr = next;
                    }
                }
            } else {
                // nbr was matched by another thread; curr is now isolated.
                curr = NIL;
            }
        }
    });

    token.check()?;

    // Phase 2: remaining components are trivial vertices, 2-cliques or
    // cycles (Lemma 3); matching each column with its choice is maximum.
    // The CAS makes the sweep safe even on inputs violating the paper's
    // total-support assumptions.
    (n_r..total).into_par_iter().for_each(|u| {
        let v = choice[u];
        if v == NIL || mat[u].load(Ordering::Acquire) != NIL {
            return;
        }
        if mat[v as usize]
            .compare_exchange(NIL, u as u32, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            mat[u].store(v, Ordering::Release);
        }
    });

    token.check()?;

    // Robustness sweep for degenerate inputs (NIL choices can leave an
    // unmatched row whose chosen column is still free; impossible under the
    // paper's assumptions, cheap to fix when it happens).
    (0..n_r).into_par_iter().for_each(|u| {
        let v = choice[u];
        if v == NIL || mat[u].load(Ordering::Acquire) != NIL {
            return;
        }
        if mat[v as usize]
            .compare_exchange(NIL, u as u32, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            mat[u].store(v, Ordering::Release);
        }
    });

    token.check()?;

    // Extract the two-sided mate arrays.
    let rmate: Vec<u32> = (0..n_r)
        .into_par_iter()
        .map(|i| {
            let v = mat[i].load(Ordering::Acquire);
            if v == NIL {
                NIL
            } else {
                v - n_r as u32
            }
        })
        .collect();
    let cmate: Vec<u32> =
        (n_r..total).into_par_iter().map(|u| mat[u].load(Ordering::Acquire)).collect();
    Ok(Matching::from_mates(rmate, cmate))
}

/// Sequential reference: materialize the sampled subgraph and run the
/// classic Karp–Sipser on it, which is exact there (Lemma 1). Used by tests
/// and benches to validate [`karp_sipser_mt`]'s cardinality.
pub fn karp_sipser_mt_seq(rchoice: &[VertexId], cchoice: &[VertexId]) -> Matching {
    let g = choice_subgraph(rchoice, cchoice);
    karp_sipser(&g, &KarpSipserConfig { seed: 0 }).matching
}

/// Materialize the 1-out ∪ 1-in subgraph as a [`BipartiteGraph`] (line 8 of
/// Algorithm 3 — the explicit construction the parallel code avoids).
pub fn choice_subgraph(rchoice: &[VertexId], cchoice: &[VertexId]) -> BipartiteGraph {
    let mut t =
        TripletMatrix::with_capacity(rchoice.len(), cchoice.len(), rchoice.len() + cchoice.len());
    for (i, &j) in rchoice.iter().enumerate() {
        if j != NIL {
            t.push(i, j as usize);
        }
    }
    for (j, &i) in cchoice.iter().enumerate() {
        if i != NIL {
            t.push(i as usize, j);
        }
    }
    BipartiteGraph::from_csr(t.into_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::SplitMix64;

    /// Exhaustive-ish randomized cross-check against the sequential exact
    /// reference on many small instances.
    #[test]
    fn matches_sequential_reference_cardinality() {
        let mut rng = SplitMix64::new(2024);
        for n in [1usize, 2, 3, 4, 7, 16, 33, 100] {
            for _ in 0..50 {
                let rchoice: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
                let cchoice: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
                let par = karp_sipser_mt(&rchoice, &cchoice);
                let seq = karp_sipser_mt_seq(&rchoice, &cchoice);
                let g = choice_subgraph(&rchoice, &cchoice);
                par.verify(&g).unwrap();
                assert_eq!(
                    par.cardinality(),
                    seq.cardinality(),
                    "n = {n}, rchoice = {rchoice:?}, cchoice = {cchoice:?}"
                );
            }
        }
    }

    #[test]
    fn mutual_pair_matched_in_phase2() {
        // Single 2-clique: row 0 ↔ col 0.
        let m = karp_sipser_mt(&[0], &[0]);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.rmate(0), 0);
    }

    #[test]
    fn four_cycle_fully_matched() {
        // r0→c0, r1→c1, c0→r1, c1→r0: one 4-cycle, perfect matching exists.
        let m = karp_sipser_mt(&[0, 1], &[1, 0]);
        assert_eq!(m.cardinality(), 2);
        let g = choice_subgraph(&[0, 1], &[1, 0]);
        m.verify(&g).unwrap();
    }

    #[test]
    fn chain_of_out_ones() {
        // Path: r0→c0, r1→c0 (c0 in-degree 2), c0→r1, c1→r0.
        // Out-ones initially: none chose r0? c1 chose r0. Let's verify
        // against the reference instead of hand-solving.
        let rchoice = [0u32, 0];
        let cchoice = [1u32, 0];
        let par = karp_sipser_mt(&rchoice, &cchoice);
        let seq = karp_sipser_mt_seq(&rchoice, &cchoice);
        assert_eq!(par.cardinality(), seq.cardinality());
    }

    #[test]
    fn star_pattern_all_rows_choose_same_column() {
        // All rows choose column 0; all columns choose row 0.
        let n = 16;
        let rchoice = vec![0u32; n];
        let cchoice = vec![0u32; n];
        let par = karp_sipser_mt(&rchoice, &cchoice);
        let seq = karp_sipser_mt_seq(&rchoice, &cchoice);
        assert_eq!(par.cardinality(), seq.cardinality());
        // The subgraph is a double star sharing r0/c0; max matching = 2.
        assert_eq!(par.cardinality(), 2);
    }

    #[test]
    fn tolerates_nil_choices() {
        let rchoice = [NIL, 1, NIL];
        let cchoice = [0u32, NIL, 1];
        let m = karp_sipser_mt(&rchoice, &cchoice);
        let g = choice_subgraph(&rchoice, &cchoice);
        m.verify(&g).unwrap();
        let seq = karp_sipser_mt_seq(&rchoice, &cchoice);
        assert_eq!(m.cardinality(), seq.cardinality());
    }

    #[test]
    fn all_nil_is_empty_matching() {
        let m = karp_sipser_mt(&[NIL, NIL], &[NIL, NIL, NIL]);
        assert_eq!(m.cardinality(), 0);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
    }

    #[test]
    fn rectangular_shapes() {
        let mut rng = SplitMix64::new(7);
        for (nr, nc) in [(3usize, 8usize), (8, 3), (1, 5), (5, 1)] {
            for _ in 0..50 {
                let rchoice: Vec<u32> = (0..nr).map(|_| rng.next_below(nc as u64) as u32).collect();
                let cchoice: Vec<u32> = (0..nc).map(|_| rng.next_below(nr as u64) as u32).collect();
                let par = karp_sipser_mt(&rchoice, &cchoice);
                let seq = karp_sipser_mt_seq(&rchoice, &cchoice);
                let g = choice_subgraph(&rchoice, &cchoice);
                par.verify(&g).unwrap();
                assert_eq!(par.cardinality(), seq.cardinality(), "{nr}×{nc}");
            }
        }
    }

    #[test]
    fn deterministic_cardinality_under_repetition() {
        // Cardinality must be stable across runs (it equals the maximum of
        // the sampled subgraph regardless of scheduling).
        let mut rng = SplitMix64::new(31);
        let n = 500;
        let rchoice: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
        let cchoice: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
        let c0 = karp_sipser_mt(&rchoice, &cchoice).cardinality();
        for _ in 0..10 {
            assert_eq!(karp_sipser_mt(&rchoice, &cchoice).cardinality(), c0);
        }
    }
}
