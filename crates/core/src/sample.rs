//! Random neighbour sampling from scaled entries.
//!
//! Algorithm 2, line 5 of the paper: row `i` picks column `j ∈ A_i*` with
//! probability `p_i(k) = s_ik / Σ_ℓ s_iℓ` where `s_ik = dr[i]·dc[k]`.
//! Because the matrix is a (0,1) pattern, the factor `dr[i]` is constant
//! within the row and **cancels**: the weight of neighbour `k` is simply
//! `dc[k]`. The same holds column-side with `dr`.
//!
//! The paper's implementation — "choose a random number r from a uniform
//! distribution with range `(0, Σ_k s_ik]`, then find the smallest column
//! index j for which the prefix sum reaches r" — is an `O(deg)` linear scan,
//! which we reproduce in [`sample_neighbor`]. [`ChoiceSampler`] precomputes
//! the per-vertex weight totals (one parallel pass) so repeated sampling
//! never re-accumulates them.

use dsmatch_graph::{SplitMix64, VertexId, NIL};
use rayon::prelude::*;

/// Sample one neighbour from `adj` with weights `weights[adj[k]]`.
///
/// `total` must equal `Σ_k weights[adj[k]]` (up to round-off). Returns
/// [`NIL`] when `adj` is empty or the total weight is not positive.
///
/// The scan is robust to floating-point round-off: if accumulated error
/// makes the scan run past the end, the last neighbour is returned.
#[inline]
pub fn sample_neighbor(
    adj: &[VertexId],
    weights: &[f64],
    total: f64,
    rng: &mut SplitMix64,
) -> VertexId {
    if adj.is_empty() || total <= 0.0 || total.is_nan() {
        return NIL;
    }
    let r = rng.next_f64_open_closed(total);
    let mut acc = 0.0f64;
    for &k in adj {
        acc += weights[k as usize];
        if acc >= r {
            return k;
        }
    }
    *adj.last().unwrap()
}

/// Precomputed per-vertex sampling state for one side of the bipartite
/// graph: for every vertex, the total weight of its adjacency list.
#[derive(Clone, Debug)]
pub struct ChoiceSampler {
    totals: Vec<f64>,
}

impl ChoiceSampler {
    /// Build from a CSR adjacency (`adj_of(v)` = neighbours of vertex `v`)
    /// and the opposite side's scaling vector. One parallel reduction per
    /// vertex.
    pub fn new(csr: &dsmatch_graph::Csr, opposite_scaling: &[f64]) -> Self {
        let totals: Vec<f64> = (0..csr.nrows())
            .into_par_iter()
            .map(|v| csr.row(v).iter().map(|&k| opposite_scaling[k as usize]).sum())
            .collect();
        Self { totals }
    }

    /// Total adjacent weight of vertex `v`.
    #[inline]
    pub fn total(&self, v: usize) -> f64 {
        self.totals[v]
    }

    /// Sample a neighbour of `v`; [`NIL`] if `v` has no positive-weight
    /// neighbour.
    #[inline]
    pub fn sample(
        &self,
        csr: &dsmatch_graph::Csr,
        opposite_scaling: &[f64],
        v: usize,
        rng: &mut SplitMix64,
    ) -> VertexId {
        sample_neighbor(csr.row(v), opposite_scaling, self.totals[v], rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmatch_graph::Csr;

    #[test]
    fn empty_adjacency_gives_nil() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(sample_neighbor(&[], &[], 0.0, &mut rng), NIL);
    }

    #[test]
    fn single_neighbor_always_chosen() {
        let mut rng = SplitMix64::new(2);
        for _ in 0..32 {
            assert_eq!(sample_neighbor(&[5], &[0.0; 6], 0.0, &mut rng), NIL); // zero total
        }
        let w = [0.0, 0.0, 0.0, 0.25];
        for _ in 0..32 {
            assert_eq!(sample_neighbor(&[3], &w, 0.25, &mut rng), 3);
        }
    }

    #[test]
    fn zero_weight_neighbors_never_chosen() {
        // Weight pattern [0, 1, 0]: only the middle neighbour can win.
        let w = [0.0, 1.0, 0.0];
        let adj = [0u32, 1, 2];
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert_eq!(sample_neighbor(&adj, &w, 1.0, &mut rng), 1);
        }
    }

    #[test]
    fn empirical_distribution_tracks_weights() {
        // Weights 1:2:5 → frequencies ~ 12.5% : 25% : 62.5%.
        let w = [1.0, 2.0, 5.0];
        let adj = [0u32, 1, 2];
        let total = 8.0;
        let mut rng = SplitMix64::new(4);
        let mut counts = [0usize; 3];
        let trials = 80_000;
        for _ in 0..trials {
            counts[sample_neighbor(&adj, &w, total, &mut rng) as usize] += 1;
        }
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64 / trials as f64).collect();
        assert!((freq[0] - 0.125).abs() < 0.01, "{freq:?}");
        assert!((freq[1] - 0.250).abs() < 0.01, "{freq:?}");
        assert!((freq[2] - 0.625).abs() < 0.01, "{freq:?}");
    }

    #[test]
    fn sampler_totals_match_manual_sums() {
        let a = Csr::from_dense(&[&[1, 1, 0], &[0, 1, 1], &[1, 0, 0]]);
        let dc = [0.5, 0.25, 2.0];
        let s = ChoiceSampler::new(&a, &dc);
        assert!((s.total(0) - 0.75).abs() < 1e-15);
        assert!((s.total(1) - 2.25).abs() < 1e-15);
        assert!((s.total(2) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn sampler_samples_within_adjacency() {
        let a = Csr::from_dense(&[&[0, 1, 1], &[1, 0, 0]]);
        let dc = [1.0, 1.0, 1.0];
        let s = ChoiceSampler::new(&a, &dc);
        let mut rng = SplitMix64::new(7);
        for _ in 0..100 {
            let j = s.sample(&a, &dc, 0, &mut rng);
            assert!(j == 1 || j == 2);
            assert_eq!(s.sample(&a, &dc, 1, &mut rng), 0);
        }
    }

    #[test]
    fn roundoff_falls_back_to_last() {
        // total passed slightly larger than the true sum: scan may pass the
        // end; last neighbour must be returned, never NIL / panic.
        let w = [1e-30, 1e-30];
        let adj = [0u32, 1];
        let mut rng = SplitMix64::new(9);
        for _ in 0..100 {
            let j = sample_neighbor(&adj, &w, 1.0, &mut rng);
            assert!(j == 0 || j == 1);
        }
    }
}
