//! Instrumented (sequential) replay of `KarpSipserMT`'s Phase 1, measuring
//! the out-one **chain lengths**.
//!
//! The paper's key scalability argument for Algorithm 4 is Lemma 4 —
//! consuming an out-one vertex creates *at most one* new out-one vertex, so
//! a thread can follow the chain without a worklist — together with the
//! empirical remark "we did not observe such paths to be long enough to
//! hurt the parallel performance". This module quantifies that remark: it
//! replays Phase 1 sequentially (the chain structure is a property of the
//! choice arrays, not of the schedule) and reports the distribution of
//! chain lengths, plus how much of the matching each phase contributes.
//!
//! The `chains` experiment binary runs it across the instance suite.

use dsmatch_graph::{VertexId, NIL};

/// Chain-length distribution and phase contributions of a Phase-1 replay.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChainStats {
    /// Number of chains started (initial out-one vertices processed).
    pub chains: usize,
    /// Matches made in Phase 1 (sum of chain lengths).
    pub phase1_matches: usize,
    /// Matches made in Phase 2 (cycles and 2-cliques).
    pub phase2_matches: usize,
    /// Longest chain observed.
    pub max_chain: usize,
    /// Histogram: `histogram[k]` counts chains of length `min(k, 15)`;
    /// bucket 15 aggregates everything ≥ 15.
    pub histogram: [usize; 16],
}

impl ChainStats {
    /// Mean chain length (0 when no chains).
    pub fn mean_chain(&self) -> f64 {
        if self.chains == 0 {
            0.0
        } else {
            self.phase1_matches as f64 / self.chains as f64
        }
    }

    /// Total matching cardinality.
    pub fn cardinality(&self) -> usize {
        self.phase1_matches + self.phase2_matches
    }
}

/// Replay Algorithm 4 sequentially on the two choice arrays and collect
/// [`ChainStats`]. The resulting cardinality equals
/// [`crate::karp_sipser_mt`]'s (both are maximum on the sampled subgraph).
pub fn ks_mt_chain_stats(rchoice: &[VertexId], cchoice: &[VertexId]) -> ChainStats {
    let n_r = rchoice.len();
    let total = n_r + cchoice.len();
    let choice: Vec<u32> = rchoice
        .iter()
        .map(|&j| if j == NIL { NIL } else { j + n_r as u32 })
        .chain(cchoice.iter().copied())
        .collect();

    let mut mark = vec![true; total];
    let mut deg = vec![1u32; total];
    let mut mate = vec![NIL; total];
    for u in 0..total {
        let v = choice[u];
        if v != NIL {
            mark[v as usize] = false;
            if choice[v as usize] != u as u32 {
                deg[v as usize] += 1;
            }
        }
    }

    let mut stats = ChainStats::default();
    for u in 0..total {
        if !mark[u] || choice[u] == NIL || mate[u] != NIL {
            continue;
        }
        let mut len = 0usize;
        let mut curr = u as u32;
        while curr != NIL {
            let nbr = choice[curr as usize];
            if mate[nbr as usize] != NIL {
                break; // chain head's target already taken
            }
            mate[nbr as usize] = curr;
            mate[curr as usize] = nbr;
            len += 1;
            let next = choice[nbr as usize];
            curr = NIL;
            if next != NIL && choice[next as usize] != NIL && mate[next as usize] == NIL {
                deg[next as usize] -= 1;
                if deg[next as usize] == 1 {
                    curr = next;
                }
            }
        }
        if len > 0 {
            stats.chains += 1;
            stats.phase1_matches += len;
            stats.max_chain = stats.max_chain.max(len);
            stats.histogram[len.min(15)] += 1;
        }
    }

    // Phase 2: columns first (Lemma 3), then the NIL-robust row sweep.
    for u in n_r..total {
        let v = choice[u];
        if v != NIL && mate[u] == NIL && mate[v as usize] == NIL {
            mate[u] = v;
            mate[v as usize] = u as u32;
            stats.phase2_matches += 1;
        }
    }
    for u in 0..n_r {
        let v = choice[u];
        if v != NIL && mate[u] == NIL && mate[v as usize] == NIL {
            mate[u] = v;
            mate[v as usize] = u as u32;
            stats.phase2_matches += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::karp_sipser_mt;
    use dsmatch_graph::SplitMix64;

    #[test]
    fn cardinality_matches_parallel_ksmt() {
        let mut rng = SplitMix64::new(11);
        for n in [1usize, 5, 50, 500] {
            for _ in 0..20 {
                let rc: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
                let cc: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
                let stats = ks_mt_chain_stats(&rc, &cc);
                let m = karp_sipser_mt(&rc, &cc);
                assert_eq!(stats.cardinality(), m.cardinality(), "n = {n}");
            }
        }
    }

    #[test]
    fn pure_cycle_has_no_chains() {
        // 4-cycle: Phase 1 does nothing, Phase 2 matches both pairs.
        let stats = ks_mt_chain_stats(&[0, 1], &[1, 0]);
        assert_eq!(stats.chains, 0);
        assert_eq!(stats.phase1_matches, 0);
        assert_eq!(stats.phase2_matches, 2);
    }

    #[test]
    fn single_chain_counted() {
        // c1 → r0 → c0 ← r1, c0 → r1: rows choose c0; c0 chooses r1;
        // c1 chooses r0. Out-ones: c1 (nobody chose c1)... replay and
        // sanity-check the aggregate counts instead of hand-solving.
        let stats = ks_mt_chain_stats(&[0, 0], &[1, 0]);
        assert_eq!(stats.cardinality(), 2);
        assert!(stats.chains >= 1);
        assert_eq!(stats.histogram.iter().sum::<usize>(), stats.chains);
    }

    #[test]
    fn chains_are_short_on_uniform_1out() {
        // The paper's empirical claim: on random 1-out graphs chains stay
        // short (expected O(1) mean, O(log n) max).
        let n = 100_000;
        let mut rng = SplitMix64::new(3);
        let rc: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
        let cc: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
        let stats = ks_mt_chain_stats(&rc, &cc);
        assert!(stats.mean_chain() < 4.0, "mean chain {:.2}", stats.mean_chain());
        assert!(stats.max_chain < 200, "max chain {}", stats.max_chain);
        // Phase 1 does the bulk of the work on random instances.
        assert!(stats.phase1_matches > 5 * stats.phase2_matches);
    }

    #[test]
    fn histogram_sums_to_chain_count() {
        let mut rng = SplitMix64::new(5);
        let n = 1000;
        let rc: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
        let cc: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
        let stats = ks_mt_chain_stats(&rc, &cc);
        assert_eq!(stats.histogram.iter().sum::<usize>(), stats.chains);
        assert!(stats.max_chain >= 1);
    }

    #[test]
    fn nil_choices_ignored() {
        let stats = ks_mt_chain_stats(&[NIL, NIL], &[NIL]);
        assert_eq!(stats.cardinality(), 0);
        assert_eq!(stats.chains, 0);
    }
}
