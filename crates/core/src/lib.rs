//! # dsmatch-core — the paper's matching heuristics
//!
//! Implements the two heuristics of Dufossé, Kaya & Uçar (RR-8386 / IPPS
//! 2014) plus the baselines they are evaluated against:
//!
//! | Paper name | Here | Guarantee |
//! |---|---|---|
//! | `OneSidedMatch` (Alg. 2) | [`one_sided_match`] | ≥ (1 − 1/e) ≈ 0.632 (Theorem 1) |
//! | `TwoSidedMatch` (Alg. 3) | [`two_sided_match`] | ≈ 0.866 (Conjecture 1) |
//! | `KarpSipserMT` (Alg. 4)  | [`karp_sipser_mt`] | exact on 1-out ∪ 1-in subgraphs |
//! | Karp–Sipser (§2.1)       | [`karp_sipser`] | exact on very sparse random graphs |
//! | cheap matching, edge variant (§2.1) | [`cheap_random_edge`] | 1/2 |
//! | cheap matching, vertex variant (§2.1) | [`cheap_random_vertex`] | 1/2 + ε |
//!
//! Every randomized entry point takes a 64-bit seed and derives per-vertex
//! PRNG streams, so the sampled subgraph — and with it the cardinality and
//! every quality guarantee — is **identical for every thread count**, the
//! property that lets the paper claim the guarantees do not deteriorate
//! with parallelism. Under a genuinely parallel pool the concrete mate
//! arrays of the racy kernels (`one_sided_match`'s last-writer-wins slots,
//! `karp_sipser_mt`'s CAS claims) remain schedule-dependent by design;
//! only validity, maximality and cardinality are invariant.
//!
//! Parallel functions run in the ambient Rayon pool. To pin a thread count
//! (as the paper's 1/2/4/8/16-thread experiments do), install them inside
//! `rayon::ThreadPoolBuilder::new().num_threads(t).build().unwrap().install(…)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain_stats;
mod cheap;
mod karp_sipser;
mod ks_mt;
mod one_out_undirected;
mod one_sided;
mod sample;
mod two_sided;
mod workspace;

pub use chain_stats::{ks_mt_chain_stats, ChainStats};
pub use cheap::{cheap_random_edge, cheap_random_vertex};
pub use karp_sipser::{
    karp_sipser, karp_sipser_cancel_ws, karp_sipser_matching, karp_sipser_ws, KarpSipserConfig,
    KarpSipserScratch, KarpSipserStats,
};
pub use ks_mt::{
    choice_subgraph, karp_sipser_mt, karp_sipser_mt_cancel_ws, karp_sipser_mt_seq,
    karp_sipser_mt_ws, KsMtScratch,
};
pub use one_out_undirected::{one_out_choices, one_out_matching, one_out_undirected, OneOutConfig};
pub use one_sided::{
    one_sided_match, one_sided_match_seq, one_sided_match_with_scaling, one_sided_match_ws,
    OneSidedConfig,
};
pub use sample::{sample_neighbor, ChoiceSampler};
pub use two_sided::{
    two_sided_choices, two_sided_choices_into, two_sided_match, two_sided_match_cancel_ws,
    two_sided_match_seq, two_sided_match_with_scaling, two_sided_match_ws, TwoSidedConfig,
};
pub use workspace::HeurWorkspace;

/// Theorem 1's approximation guarantee: `1 − 1/e`.
pub const ONE_SIDED_GUARANTEE: f64 = 1.0 - std::f64::consts::E.recip();

/// Conjecture 1's ratio `2(1 − ρ)` where `ρ·e^ρ = 1` (ρ ≈ 0.5671432904…,
/// the Omega constant), giving ≈ 0.8657.
pub const TWO_SIDED_CONJECTURE: f64 = 2.0 * (1.0 - 0.567_143_290_409_783_8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_constants() {
        assert!((ONE_SIDED_GUARANTEE - 0.632).abs() < 1e-3);
        assert!((TWO_SIDED_CONJECTURE - 0.866).abs() < 1e-3);
        // ρ·e^ρ = 1 for ρ = 1 − TWO_SIDED_CONJECTURE / 2.
        let rho = 1.0 - TWO_SIDED_CONJECTURE / 2.0;
        assert!((rho * rho.exp() - 1.0).abs() < 1e-12);
    }
}
