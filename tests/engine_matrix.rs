//! Cross-product test: every engine algorithm × every generator family,
//! checking validity, exactness of the exact engines against each other,
//! and the paper's quality ordering where it is deterministic enough to
//! assert. (The engine successor of the old `driver_matrix` test — every
//! algorithm the old driver covered, plus `ksmt` and `one-out`.)

use dsmatch::engine::{AlgorithmKind, Pipeline, Solver, Workspace};
use dsmatch::prelude::*;

fn run(a: AlgorithmKind, g: &BipartiteGraph, iters: usize, seed: u64) -> Matching {
    Pipeline::classic(a, iters, seed).solve(g, &mut Workspace::new()).matching
}

fn families() -> Vec<(&'static str, BipartiteGraph)> {
    vec![
        ("er_d4", dsmatch::gen::erdos_renyi_square(1_500, 4.0, 21)),
        ("mesh", dsmatch::gen::grid_mesh(38, 38)),
        ("rmat", dsmatch::gen::rmat(10, 6.0, dsmatch::gen::RmatParams::GRAPH500, 3)),
        ("adversarial", dsmatch::gen::adversarial_ks(400, 8)),
        ("rect", dsmatch::gen::erdos_renyi_rect(1_000, 1_300, 3.0, 4)),
        ("permutation", dsmatch::gen::permutation(1_000, 5)),
    ]
}

#[test]
fn all_algorithms_valid_on_all_families() {
    for (name, g) in families() {
        let exact_cards: Vec<usize> = AlgorithmKind::all()
            .into_iter()
            .filter(|a| a.is_exact())
            .map(|a| {
                let m = run(a, &g, 5, 11);
                m.verify(&g).unwrap_or_else(|e| panic!("{a} invalid on {name}: {e}"));
                m.cardinality()
            })
            .collect();
        // All eight exact engines (incl. `hk-par`/`pf-par`/`pf-graft` and
        // the statistics-driven `auto`) agree.
        assert!(
            exact_cards.windows(2).all(|w| w[0] == w[1]),
            "{name}: exact engines disagree: {exact_cards:?}"
        );
        let opt = exact_cards[0];
        for a in AlgorithmKind::all() {
            if a.is_exact() {
                continue;
            }
            let m = run(a, &g, 5, 11);
            m.verify(&g).unwrap_or_else(|e| panic!("{a} invalid on {name}: {e}"));
            assert!(m.cardinality() <= opt, "{a} above optimum on {name}");
        }
    }
}

#[test]
fn auto_finisher_choice_is_family_dependent_and_reported() {
    // The Kaya–Langguth–Manne–Uçar motivation for `auto`: different
    // families have different winning finishers. Pin the policy's pick on
    // three families spanning all three outcomes — the uniform sparse
    // `er_d4` (grafted forest), the heavy-tailed `rmat` (push-relabel,
    // degree CV ≈ 2.5), and the dense-blocked `adversarial` (fill ≈ 27%,
    // Hopcroft–Karp) — and check the pick surfaces as the augment stage's
    // `selected` field in both the report struct and its JSON.
    use dsmatch::engine::select_finisher;
    let expected = [
        ("er_d4", AlgorithmKind::PothenFanGraft),
        ("rmat", AlgorithmKind::PushRelabel),
        ("adversarial", AlgorithmKind::HopcroftKarpPar),
    ];
    let families = families();
    for (name, want) in expected {
        let (_, g) = families.iter().find(|(n, _)| *n == name).unwrap();
        assert_eq!(select_finisher(g), want, "{name}");

        let pipeline: Pipeline = "cheap,auto".parse().unwrap();
        let report = pipeline.solve(g, &mut Workspace::new());
        assert_eq!(report.cardinality(), sprank(g), "{name}: auto finisher must be exact");
        let augment = report.stages.last().unwrap();
        assert_eq!(augment.stage, "augment:auto", "{name}");
        assert_eq!(augment.selected.as_deref(), Some(want.name()), "{name}");
        let json = report.to_json().to_string();
        assert!(
            json.contains(&format!("\"selected\":\"{}\"", want.name())),
            "{name}: selected engine missing from JSON: {json}"
        );
    }
}

#[test]
fn two_sided_beats_cheap_on_full_sprank_families() {
    for (name, g) in families() {
        if !g.is_square() {
            continue;
        }
        let opt = run(AlgorithmKind::HopcroftKarp, &g, 10, 2).cardinality();
        if opt < g.nrows() {
            continue;
        }
        let two = run(AlgorithmKind::TwoSided, &g, 10, 2).cardinality();
        // Worst-case cheap baseline is its guarantee 1/2; TwoSided's
        // conjecture is 0.866. Assert a comfortable separation from 1/2.
        assert!(
            two as f64 >= 0.80 * opt as f64,
            "{name}: two_sided at {:.3} of optimum",
            two as f64 / opt as f64
        );
    }
}

#[test]
fn permutation_family_is_trivial_for_everyone() {
    // Degree-one everywhere: every algorithm must return the permutation.
    let g = dsmatch::gen::permutation(2_000, 9);
    for a in AlgorithmKind::all() {
        let m = run(a, &g, 5, 1);
        assert!(m.is_perfect(), "{a} missed the forced perfect matching");
    }
}

#[test]
fn engine_respects_scaling_iterations() {
    // On the adversarial family, 0-iteration TwoSided must be much worse
    // than 10-iteration TwoSided (Table 1's central contrast).
    let g = dsmatch::gen::adversarial_ks(800, 16);
    let m0 = run(AlgorithmKind::TwoSided, &g, 0, 3);
    let m10 = run(AlgorithmKind::TwoSided, &g, 10, 3);
    assert!(
        m10.cardinality() as f64 >= m0.cardinality() as f64 * 1.5,
        "scaling should roughly double quality here: {} vs {}",
        m0.cardinality(),
        m10.cardinality()
    );
}

#[test]
fn ksmt_is_two_sided_and_one_out_agrees_on_cardinality() {
    // Algorithm 3 ≡ sampling + Algorithm 4, so `scale,two` and
    // `scale,ksmt` must coincide; the §5 one-out variant matches the same
    // sampled subgraph with the one-class sweep, so its cardinality agrees
    // (the subgraph's maximum is schedule-independent). Under a real
    // multi-thread ambient pool the *mate arrays* of two runs may differ
    // (Algorithm 4's races are benign by design), so the byte-exact half
    // of the equivalence is asserted on the deterministic 1-thread
    // schedule and the schedule-independent half — cardinality — on
    // whatever pool this test runs under.
    let g = dsmatch::gen::erdos_renyi_square(3_000, 4.0, 33);
    let two = run(AlgorithmKind::TwoSided, &g, 5, 7);
    let ksmt = run(AlgorithmKind::KarpSipserMt, &g, 5, 7);
    let one_out = run(AlgorithmKind::OneOutUndirected, &g, 5, 7);
    assert_eq!(two.cardinality(), ksmt.cardinality());
    assert_eq!(two.cardinality(), one_out.cardinality());

    let p1 = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let (two1, ksmt1) = p1.install(|| {
        (run(AlgorithmKind::TwoSided, &g, 5, 7), run(AlgorithmKind::KarpSipserMt, &g, 5, 7))
    });
    assert_eq!(two1, ksmt1, "byte-exact equivalence on the sequential schedule");
    assert_eq!(two1.cardinality(), two.cardinality(), "cardinality is schedule-independent");
}
