//! Property-based tests on the workspace-wide invariants, using proptest to
//! explore the input space of random bipartite patterns.

use dsmatch::heur::{
    karp_sipser, karp_sipser_mt, karp_sipser_mt_seq, one_sided_match, two_sided_match,
    KarpSipserConfig, OneSidedConfig, TwoSidedConfig,
};
use dsmatch::prelude::*;
use proptest::prelude::*;

/// Strategy: a random pattern as (nrows, ncols, entry bitmap).
fn small_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..10, 1usize..10).prop_flat_map(|(m, n)| {
        proptest::collection::vec(proptest::bool::weighted(0.3), m * n).prop_map(move |bits| {
            let mut t = dsmatch::graph::TripletMatrix::new(m, n);
            for (k, &b) in bits.iter().enumerate() {
                if b {
                    t.push(k / n, k % n);
                }
            }
            BipartiteGraph::from_csr(t.into_csr())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn hopcroft_karp_matches_brute_force(g in small_graph()) {
        let hk = hopcroft_karp(&g);
        hk.verify(&g).unwrap();
        prop_assert_eq!(hk.cardinality(), dsmatch::exact::brute_force_maximum(&g));
    }

    #[test]
    fn pothen_fan_matches_hopcroft_karp(g in small_graph()) {
        let pf = dsmatch::exact::pothen_fan(&g);
        pf.verify(&g).unwrap();
        prop_assert_eq!(pf.cardinality(), hopcroft_karp(&g).cardinality());
    }

    #[test]
    fn heuristics_always_valid_and_bounded(g in small_graph(), seed in 0u64..1000) {
        let opt = hopcroft_karp(&g).cardinality();
        let one = one_sided_match(&g, &OneSidedConfig {
            scaling: ScalingConfig::iterations(3), seed });
        let two = two_sided_match(&g, &TwoSidedConfig {
            scaling: ScalingConfig::iterations(3), seed });
        let ks = karp_sipser(&g, &KarpSipserConfig { seed }).matching;
        for m in [&one, &two, &ks] {
            m.verify(&g).unwrap();
            prop_assert!(m.cardinality() <= opt);
        }
        // Karp–Sipser is maximal ⇒ at least half the optimum.
        prop_assert!(2 * ks.cardinality() >= opt);
    }

    #[test]
    fn ks_mt_equals_reference_on_arbitrary_choices(
        rc in proptest::collection::vec(0u32..8, 1..8),
        cc in proptest::collection::vec(0u32..8, 1..8),
    ) {
        let n_r = rc.len();
        let n_c = cc.len();
        let rc: Vec<u32> = rc.into_iter().map(|v| v % n_c as u32).collect();
        let cc: Vec<u32> = cc.into_iter().map(|v| v % n_r as u32).collect();
        let par = karp_sipser_mt(&rc, &cc);
        let seq = karp_sipser_mt_seq(&rc, &cc);
        prop_assert_eq!(par.cardinality(), seq.cardinality());
        par.check_consistent().unwrap();
    }

    #[test]
    fn scaling_row_sums_are_one(g in small_graph(), iters in 1usize..6) {
        let s = dsmatch::scale::sinkhorn_knopp(&g, &ScalingConfig::iterations(iters));
        for i in 0..g.nrows() {
            if g.row_degree(i) > 0 {
                let rs = s.row_sum(&g, i);
                prop_assert!((rs - 1.0).abs() < 1e-9, "row {} sums to {}", i, rs);
            }
        }
        prop_assert!(s.dr.iter().all(|d| d.is_finite() && *d > 0.0));
        prop_assert!(s.dc.iter().all(|d| d.is_finite() && *d > 0.0));
    }

    #[test]
    fn dm_partition_is_consistent(g in small_graph()) {
        let dm = dsmatch::dm::dulmage_mendelsohn(&g);
        prop_assert_eq!(dm.sprank(), hopcroft_karp(&g).cardinality());
        prop_assert!(dm.verify_zero_blocks(&g));
        prop_assert_eq!(dm.s_rows, dm.s_cols);
        prop_assert_eq!(dm.h_rows + dm.s_rows + dm.v_rows, g.nrows());
        prop_assert_eq!(dm.h_cols + dm.s_cols + dm.v_cols, g.ncols());
        // H rows and V columns are all matched.
        prop_assert!(dm.h_rows <= dm.h_cols);
        prop_assert!(dm.v_cols <= dm.v_rows);
    }

    #[test]
    fn matrix_market_roundtrip(g in small_graph()) {
        let mut buf = Vec::new();
        dsmatch::graph::io::write_matrix_market(&mut buf, g.csr()).unwrap();
        let back = dsmatch::graph::io::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(g.csr(), &back);
    }

    #[test]
    fn transpose_involution(g in small_graph()) {
        prop_assert_eq!(&g.csr().transpose().transpose(), g.csr());
    }
}
