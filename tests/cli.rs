//! CLI contract tests: flag validation (the `--batch-par`-without-`--batch`
//! and `--threads 0` rejections) and smoke coverage of the parallel exact
//! finishers through the real binary.

use std::process::{Command, Output};

fn dsmatch(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dsmatch"))
        .args(args)
        .output()
        .expect("spawning the dsmatch binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn batch_par_without_batch_is_rejected() {
    let out = dsmatch(&["gen:er:100:3", "--batch-par"]);
    assert!(!out.status.success(), "--batch-par alone must not be silently ignored");
    assert!(
        stderr(&out).contains("--batch-par") && stderr(&out).contains("--batch N"),
        "error must name both flags: {}",
        stderr(&out)
    );
}

#[test]
fn batch_par_with_batch_runs() {
    let out = dsmatch(&["gen:er:300:3", "--batch", "2", "--batch-par", "--threads", "2", "--json"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("\"batch_par\":true"));
    assert!(stdout(&out).contains("\"solves\":2"));
}

#[test]
fn threads_zero_is_rejected() {
    let out = dsmatch(&["gen:er:100:3", "--threads", "0"]);
    assert!(!out.status.success(), "--threads 0 must not silently mean the default size");
    assert!(stderr(&out).contains("--threads 0"), "stderr: {}", stderr(&out));
}

#[test]
fn non_numeric_threads_and_batch_are_rejected() {
    let out = dsmatch(&["gen:er:100:3", "--threads", "many"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--threads"), "stderr: {}", stderr(&out));

    let out = dsmatch(&["gen:er:100:3", "--batch", "0"]);
    assert!(!out.status.success(), "--batch 0 must not silently mean one run");
    assert!(stderr(&out).contains("--batch"), "stderr: {}", stderr(&out));
}

#[test]
fn parallel_finisher_pipeline_runs_exactly() {
    let out = dsmatch(&[
        "gen:er:400:4",
        "--pipeline",
        "scale:sk:3,two,pf-par",
        "--threads",
        "2",
        "--quality",
        "--json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let json = stdout(&out);
    assert!(json.contains("\"pipeline\":\"scale:sk:3,two,pf-par\""), "stdout: {json}");
    // The pf-par finisher makes the composition exact: quality ratio 1.
    assert!(json.contains("\"quality\":1"), "stdout: {json}");
}

#[test]
fn hk_par_works_as_algo_shorthand() {
    let out = dsmatch(&["gen:er:400:4", "--algo", "hk-par", "--quality"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("quality       : 1.0000"), "stdout: {}", stdout(&out));
}
