//! Chaos tests: the real `dsmatch serve` binary under deterministic fault
//! injection (`DSMATCH_FAULTS`), concurrent clients, deadlines, and
//! process signals.
//!
//! The contract under test is the robustness tentpole's: a fault confined
//! to one job yields one structured error reply while **every non-faulted
//! job gets a byte-correct reply**, the daemon keeps serving, and every
//! exit path — `shutdown` op, stdin close, SIGTERM — drains in-flight
//! jobs before the summary line goes out.
//!
//! Every spawn pins `DSMATCH_FAULTS` explicitly (set or removed), so the
//! suite is immune to environment leakage between tests.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

/// Harness timeout, widened on slow runners via DSMATCH_TEST_TIMEOUT_SECS.
fn test_timeout(default_secs: u64) -> std::time::Duration {
    let secs = std::env::var("DSMATCH_TEST_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default_secs);
    std::time::Duration::from_secs(secs)
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn serve_cmd(args: &[&str], faults: Option<&str>) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dsmatch"));
    cmd.arg("serve").args(args);
    match faults {
        Some(spec) => cmd.env("DSMATCH_FAULTS", spec),
        None => cmd.env_remove("DSMATCH_FAULTS"),
    };
    cmd
}

/// Run a batch of job lines through stdin mode and return stdout's lines.
fn run_batch(args: &[&str], faults: Option<&str>, jobs: &str) -> Vec<String> {
    let mut child = serve_cmd(args, faults)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning dsmatch serve");
    child.stdin.take().unwrap().write_all(jobs.as_bytes()).expect("writing jobs");
    let out = child.wait_with_output().expect("daemon output");
    assert!(out.status.success(), "daemon exit: {}", out.status);
    String::from_utf8(out.stdout).expect("utf8 stdout").lines().map(str::to_string).collect()
}

fn line_for<'a>(lines: &'a [String], id: &str) -> &'a str {
    let needle = format!("\"id\":{id:?}");
    lines
        .iter()
        .find(|l| l.contains(&needle))
        .unwrap_or_else(|| panic!("no reply with id {id:?} in:\n{}", lines.join("\n")))
}

/// The `"rmate":[…]` fragment of a reply line, for byte-identity checks.
fn rmate_fragment(line: &str) -> &str {
    let start = line.find("\"rmate\":[").unwrap_or_else(|| panic!("no rmate in {line}"));
    let end = line[start..].find(']').expect("unterminated rmate array");
    &line[start..start + end + 1]
}

/// Lower-triangular pattern with a full diagonal: its unique perfect
/// matching is the diagonal, making reply byte-identity meaningful (see
/// `tests/serve.rs`).
fn triangular_instance(n: usize) -> String {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push(format!("[{i},{i}]"));
        if i >= 1 {
            edges.push(format!("[{i},{}]", i - 1));
        }
        if i >= 7 {
            edges.push(format!("[{i},{}]", i - 7));
        }
    }
    format!("{{\"nrows\":{n},\"ncols\":{n},\"edges\":[{}]}}", edges.join(","))
}

fn solve_job(id: &str, n: usize, extra: &str) -> String {
    format!(
        "{{\"id\":{id:?},\"pipeline\":\"hk-par\",\"instance\":{}{extra},\"mates\":true}}",
        triangular_instance(n)
    )
}

// ---------------------------------------------------------------------------
// Stdin-mode fault injection
// ---------------------------------------------------------------------------

/// `panic:job=N` turns exactly job N into a structured internal error —
/// the worker's panic is caught, the other four jobs answer correctly,
/// and the daemon still drains to a clean shutdown line (this is the CI
/// chaos smoke leg, pinned as a test).
#[test]
fn injected_panic_yields_one_internal_error_and_four_good_replies() {
    let jobs: String =
        (1..=5).map(|k| solve_job(&format!("j{k}"), 32, "")).fold(String::new(), |mut acc, j| {
            acc.push_str(&j);
            acc.push('\n');
            acc
        });
    let lines = run_batch(&["--threads", "2"], Some("panic:job=2"), &jobs);

    let poisoned = line_for(&lines, "j2");
    assert!(poisoned.contains("\"ok\":false"), "{poisoned}");
    assert!(poisoned.contains("\"code\":\"internal\""), "{poisoned}");
    assert!(poisoned.contains("injected fault: panic at job 2"), "{poisoned}");

    let reference = rmate_fragment(line_for(&lines, "j1")).to_string();
    for id in ["j1", "j3", "j4", "j5"] {
        let good = line_for(&lines, id);
        assert!(good.contains("\"ok\":true"), "job {id}: {good}");
        assert_eq!(rmate_fragment(good), reference, "job {id} mates");
    }
    assert!(lines.iter().any(|l| l.contains("\"event\":\"shutdown\"")), "clean shutdown line");
    assert_eq!(lines.iter().filter(|l| l.contains("\"ok\":false")).count(), 1);
}

/// Reply-corruption faults hit exactly the targeted reply ordinal: with
/// one worker the second reply line is garbage, while framing events and
/// all other replies stay intact — the client-visible blast radius of a
/// corrupted write is one line.
#[test]
fn garbage_reply_fault_corrupts_only_the_targeted_line() {
    let jobs = "{\"id\":\"a\",\"op\":\"ping\"}\n\
                {\"id\":\"b\",\"op\":\"ping\"}\n\
                {\"id\":\"c\",\"op\":\"ping\"}\n";
    let lines = run_batch(&["--threads", "1"], Some("garbage-reply:nth=2"), jobs);

    assert!(lines[0].contains("\"event\":\"ready\""), "{}", lines[0]);
    assert!(lines.last().unwrap().contains("\"event\":\"shutdown\""));
    assert_eq!(lines.len(), 5, "ready + three replies + shutdown:\n{}", lines.join("\n"));
    assert!(lines[1].contains("\"id\":\"a\"") && lines[1].contains("\"ok\":true"));
    assert!(lines[2].starts_with("!garbage"), "corrupted line: {}", lines[2]);
    assert!(lines[3].contains("\"id\":\"c\"") && lines[3].contains("\"ok\":true"));
}

/// A deadline-cancelled job leaves its worker's workspace reusable: the
/// very next job on the same (single) worker reports mates byte-identical
/// to the same job on a fresh fault-free daemon. The `stall:stage=start`
/// fault holds every job between submission (where its deadline is
/// armed) and execution, so the 1 ms deadline is deterministically
/// expired by the time the worker picks the job up.
#[test]
fn workspace_survives_a_cancelled_job_byte_identically() {
    let jobs = format!(
        "{}\n{}\n",
        solve_job("doomed", 64, ",\"deadline_ms\":1"),
        solve_job("after", 64, "")
    );
    let lines = run_batch(&["--threads", "1"], Some("stall:stage=start:ms=30"), &jobs);

    let doomed = line_for(&lines, "doomed");
    assert!(doomed.contains("\"code\":\"deadline\""), "{doomed}");
    assert!(doomed.contains("\"cancelled\":true"), "{doomed}");
    let after = line_for(&lines, "after");
    assert!(after.contains("\"ok\":true"), "{after}");

    // Fresh daemon, no faults, only the good job: byte-identical mates.
    let fresh = run_batch(&["--threads", "1"], None, &format!("{}\n", solve_job("after", 64, "")));
    assert_eq!(
        rmate_fragment(after),
        rmate_fragment(line_for(&fresh, "after")),
        "reused workspace must reproduce the fresh daemon's reply"
    );
}

// ---------------------------------------------------------------------------
// Socket-mode chaos (concurrent clients, signals, stale sockets)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod socket {
    use super::*;
    use std::os::unix::net::UnixStream;
    use std::path::{Path, PathBuf};

    fn socket_path(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "dsmatch-chaos-{tag}-{}-{}.sock",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn spawn_daemon(path: &Path, args: &[&str], faults: Option<&str>) -> Child {
        let mut all = vec!["--socket", path.to_str().unwrap()];
        all.extend_from_slice(args);
        serve_cmd(&all, faults)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawning socket daemon")
    }

    struct Client {
        write: UnixStream,
        lines: std::io::Lines<BufReader<UnixStream>>,
    }

    impl Client {
        /// Connect (retrying while the daemon binds) and consume the
        /// per-connection ready line.
        fn ready(path: &Path) -> Client {
            let deadline = std::time::Instant::now() + test_timeout(30);
            let stream = loop {
                match UnixStream::connect(path) {
                    Ok(s) => break s,
                    Err(_) if std::time::Instant::now() < deadline => {
                        std::thread::sleep(std::time::Duration::from_millis(20))
                    }
                    Err(e) => panic!("socket {path:?} never came up: {e}"),
                }
            };
            let lines = BufReader::new(stream.try_clone().expect("cloning stream")).lines();
            let mut c = Client { write: stream, lines };
            let first = c.next();
            assert!(first.contains("\"event\":\"ready\""), "first line: {first}");
            c
        }

        fn next(&mut self) -> String {
            self.lines.next().expect("socket closed").expect("reading socket")
        }

        fn send(&mut self, line: &str) {
            writeln!(self.write, "{line}").expect("writing to socket");
        }

        fn round_trip(&mut self, job: &str, id: &str) -> String {
            self.send(job);
            let reply = self.next();
            assert!(reply.contains(&format!("\"id\":{id:?}")), "job {job}: reply {reply}");
            reply
        }
    }

    /// Chaos composition: a universal start-stall widens every race
    /// window while three concurrent clients each run a solve, an
    /// already-expired deadline job, and a ping. Every non-faulted job's
    /// reply is byte-identical to a fault-free run, every deadline job
    /// fails with the structured deadline error, and the daemon drains to
    /// a clean exit.
    #[test]
    fn concurrent_clients_under_stall_chaos_get_byte_correct_replies() {
        let path = socket_path("stall");
        let mut child = spawn_daemon(&path, &["--threads", "2"], Some("stall:stage=start:ms=50"));

        let replies: Vec<(String, String)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|k: usize| {
                    let path = &path;
                    s.spawn(move || {
                        let mut c = Client::ready(path);
                        let solve_id = format!("solve-{k}");
                        let dead_id = format!("dead-{k}");
                        let ping_id = format!("ping-{k}");
                        let solve = c.round_trip(&solve_job(&solve_id, 40, ""), &solve_id);
                        let dead =
                            c.round_trip(&solve_job(&dead_id, 40, ",\"deadline_ms\":0"), &dead_id);
                        let ping = c.round_trip(
                            &format!("{{\"id\":{ping_id:?},\"op\":\"ping\"}}"),
                            &ping_id,
                        );
                        vec![(solve_id, solve), (dead_id, dead), (ping_id, ping)]
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
        });

        // Fault-free reference for the byte-identity pin.
        let reference =
            run_batch(&["--threads", "1"], None, &format!("{}\n", solve_job("ref", 40, "")));
        let expected = rmate_fragment(line_for(&reference, "ref")).to_string();

        for (id, line) in &replies {
            if id.starts_with("solve-") {
                assert!(line.contains("\"ok\":true"), "job {id}: {line}");
                assert_eq!(rmate_fragment(line), expected, "job {id} mates");
            } else if id.starts_with("dead-") {
                assert!(line.contains("\"code\":\"deadline\""), "job {id}: {line}");
                assert!(line.contains("\"cancelled\":true"), "job {id}: {line}");
            } else {
                assert!(line.contains("\"ok\":true"), "job {id}: {line}");
            }
        }

        let mut closer = Client::ready(&path);
        let bye = closer.round_trip("{\"id\":\"bye\",\"op\":\"shutdown\"}", "bye");
        assert!(bye.contains("\"ok\":true"), "{bye}");
        assert!(child.wait().expect("waiting for daemon").success());
    }

    /// SIGTERM drains: a job in flight when the signal lands still gets
    /// its reply, the session summary goes out, and the process exits
    /// cleanly — `kill <pid>` has the same guarantees as a shutdown op.
    #[test]
    fn sigterm_drains_in_flight_jobs_before_exiting() {
        let path = socket_path("sigterm");
        let mut child = spawn_daemon(&path, &["--threads", "1"], None);

        let mut c = Client::ready(&path);
        let pong = c.round_trip("{\"id\":\"p\",\"op\":\"ping\"}", "p");
        assert!(pong.contains("\"ok\":true"), "{pong}");

        // Park a job on the worker, then signal while it sleeps.
        c.send("{\"id\":\"slow\",\"op\":\"sleep\",\"ms\":400}");
        std::thread::sleep(std::time::Duration::from_millis(100));
        let kill = Command::new("sh")
            .arg("-c")
            .arg(format!("kill -TERM {}", child.id()))
            .status()
            .expect("running kill");
        assert!(kill.success(), "kill -TERM failed");

        let drained = c.next();
        assert!(
            drained.contains("\"id\":\"slow\"") && drained.contains("\"ok\":true"),
            "the in-flight job must drain before exit: {drained}"
        );
        let summary = c.next();
        assert!(summary.contains("\"event\":\"shutdown\""), "summary line: {summary}");
        assert!(child.wait().expect("waiting for daemon").success());
    }

    /// Stale-socket handling: a leftover file from a dead process is
    /// unlinked and rebound, while a socket with a live daemon behind it
    /// is refused with an error naming the conflict.
    #[test]
    fn stale_socket_rebinds_and_live_socket_is_refused() {
        let path = socket_path("stale");
        // Fabricate a stale file: bind and immediately drop the listener.
        drop(std::os::unix::net::UnixListener::bind(&path).expect("binding stale socket"));
        assert!(path.exists(), "the stale socket file must linger");

        let mut child = spawn_daemon(&path, &["--threads", "1"], None);
        let mut c = Client::ready(&path);
        let pong = c.round_trip("{\"id\":\"p\",\"op\":\"ping\"}", "p");
        assert!(pong.contains("\"ok\":true"), "rebound daemon serves: {pong}");

        // A second daemon must refuse the live socket, loudly.
        let clash = serve_cmd(&["--threads", "1", "--socket", path.to_str().unwrap()], None)
            .stdin(Stdio::null())
            .output()
            .expect("running clashing daemon");
        assert!(!clash.status.success(), "clashing daemon must fail");
        let stderr = String::from_utf8_lossy(&clash.stderr);
        assert!(stderr.contains("live daemon"), "stderr names the conflict: {stderr}");

        // The original daemon is unharmed.
        let bye = c.round_trip("{\"id\":\"bye\",\"op\":\"shutdown\"}", "bye");
        assert!(bye.contains("\"ok\":true"), "{bye}");
        assert!(child.wait().expect("waiting for daemon").success());
        assert!(!path.exists(), "shutdown unlinks the socket file");
    }
}
