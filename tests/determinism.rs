//! Thread-count independence: the paper stresses that the approximation
//! guarantees "do not deteriorate with the increased degree of
//! parallelization". Our implementation goes further — the sampled subgraph
//! is a pure function of the seed, so cardinalities are *identical* across
//! thread counts.

use dsmatch::heur::{one_sided_match, two_sided_match, OneSidedConfig, TwoSidedConfig};
use dsmatch::prelude::*;

fn pool(t: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(t).build().unwrap()
}

#[test]
fn one_sided_identical_across_thread_counts() {
    let g = dsmatch::gen::erdos_renyi_square(20_000, 4.0, 77);
    let cfg = OneSidedConfig { scaling: ScalingConfig::iterations(5), seed: 123 };
    let reference = pool(1).install(|| one_sided_match(&g, &cfg));
    for t in [2usize, 4, 8] {
        let m = pool(t).install(|| one_sided_match(&g, &cfg));
        assert_eq!(m.cardinality(), reference.cardinality(), "threads = {t}");
        for j in 0..g.ncols() {
            assert_eq!(
                m.is_col_matched(j),
                reference.is_col_matched(j),
                "column {j} differs at {t} threads"
            );
        }
    }
}

#[test]
fn two_sided_identical_cardinality_across_thread_counts() {
    let g = dsmatch::gen::erdos_renyi_square(20_000, 4.0, 78);
    let cfg = TwoSidedConfig { scaling: ScalingConfig::iterations(5), seed: 321 };
    let reference = pool(1).install(|| two_sided_match(&g, &cfg)).cardinality();
    for t in [2usize, 4, 8, 16] {
        let card = pool(t).install(|| two_sided_match(&g, &cfg)).cardinality();
        assert_eq!(card, reference, "threads = {t}");
    }
}

#[test]
fn scaling_vectors_bitwise_identical_across_thread_counts() {
    use dsmatch::scale::sinkhorn_knopp;
    let g = dsmatch::gen::chung_lu(10_000, 8.0, 2.2, 5);
    let a = pool(1).install(|| sinkhorn_knopp(&g, &ScalingConfig::iterations(8)));
    let b = pool(8).install(|| sinkhorn_knopp(&g, &ScalingConfig::iterations(8)));
    // Each dr/dc entry is an independent reduction over the same values in
    // the same order, so even floating point results agree bitwise.
    assert_eq!(a.dr, b.dr);
    assert_eq!(a.dc, b.dc);
    assert_eq!(a.error, b.error);
}

/// The paper's reproducibility contract, per heuristic, now enforced under
/// a **genuinely parallel** runtime at pools of 1, 2 and 4 threads —
/// determinism exactly where the paper promises it, validity everywhere:
///
/// - the sampled choice arrays and scaling factors are pure functions of
///   `(seed, index)` ⇒ **byte-identical** across pool sizes;
/// - `one_sided_match`'s per-column winner is a benign race ⇒ the *set of
///   matched columns* and the cardinality are schedule-independent, the
///   winning rows are not;
/// - `two_sided_match`/`karp_sipser_mt` return a *maximum* matching of the
///   sampled subgraph (Lemma 1) ⇒ the **cardinality** is
///   schedule-independent, the concrete mate arrays are not.
#[test]
fn heuristic_contracts_hold_across_pools_1_2_4() {
    use dsmatch::heur::{karp_sipser_mt, two_sided_choices};
    use dsmatch::scale::sinkhorn_knopp;

    let g = dsmatch::gen::erdos_renyi_square(10_000, 4.0, 99);
    let one_cfg = OneSidedConfig { scaling: ScalingConfig::iterations(5), seed: 5 };
    let two_cfg = TwoSidedConfig { scaling: ScalingConfig::iterations(5), seed: 5 };

    let one_ref = pool(1).install(|| one_sided_match(&g, &one_cfg));
    let two_ref = pool(1).install(|| two_sided_match(&g, &two_cfg));
    let (s_ref, rc_ref, cc_ref, ks_ref) = pool(1).install(|| {
        let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(5));
        let (rc, cc) = two_sided_choices(&g, &s, 5);
        let ks = karp_sipser_mt(&rc, &cc);
        (s, rc, cc, ks)
    });

    for t in [2usize, 4] {
        // Scaling factors and choices: byte-identical, promised.
        let (s, rc, cc, ks) = pool(t).install(|| {
            let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(5));
            let (rc, cc) = two_sided_choices(&g, &s, 5);
            let ks = karp_sipser_mt(&rc, &cc);
            (s, rc, cc, ks)
        });
        assert_eq!(s.dr, s_ref.dr, "scaling dr differs at {t} threads");
        assert_eq!(s.dc, s_ref.dc, "scaling dc differs at {t} threads");
        assert_eq!(rc, rc_ref, "rchoice differs at {t} threads");
        assert_eq!(cc, cc_ref, "cchoice differs at {t} threads");
        // KarpSipserMT: maximum on the sampled subgraph ⇒ same cardinality.
        assert_eq!(ks.cardinality(), ks_ref.cardinality(), "ksmt cardinality at {t} threads");

        // OneSided: matched-column set and cardinality are invariant.
        let one = pool(t).install(|| one_sided_match(&g, &one_cfg));
        one.verify(&g).unwrap();
        assert_eq!(one.cardinality(), one_ref.cardinality(), "one_sided at {t} threads");
        for j in 0..g.ncols() {
            assert_eq!(
                one.is_col_matched(j),
                one_ref.is_col_matched(j),
                "one_sided column {j} differs at {t} threads"
            );
        }

        // TwoSided: validity on the original graph + invariant cardinality.
        let two = pool(t).install(|| two_sided_match(&g, &two_cfg));
        two.verify(&g).unwrap();
        assert_eq!(two.cardinality(), two_ref.cardinality(), "two_sided at {t} threads");
    }
}

/// Repeated runs on a 1-thread pool are bit-stable for every heuristic —
/// the sequential schedule is a deterministic function of the seed.
#[test]
fn single_thread_pool_runs_are_byte_identical() {
    let g = dsmatch::gen::erdos_renyi_square(5_000, 4.0, 41);
    let one_cfg = OneSidedConfig { scaling: ScalingConfig::iterations(3), seed: 11 };
    let two_cfg = TwoSidedConfig { scaling: ScalingConfig::iterations(3), seed: 11 };
    let p = pool(1);
    let one_a = p.install(|| one_sided_match(&g, &one_cfg));
    let one_b = p.install(|| one_sided_match(&g, &one_cfg));
    assert_eq!(one_a.rmates(), one_b.rmates());
    let two_a = p.install(|| two_sided_match(&g, &two_cfg));
    let two_b = p.install(|| two_sided_match(&g, &two_cfg));
    assert_eq!(two_a.rmates(), two_b.rmates());
}

#[test]
fn seeds_change_results_thread_counts_do_not() {
    let g = dsmatch::gen::erdos_renyi_square(10_000, 3.0, 79);
    let cfg_a = TwoSidedConfig { scaling: ScalingConfig::iterations(3), seed: 1 };
    let cfg_b = TwoSidedConfig { scaling: ScalingConfig::iterations(3), seed: 2 };
    let a1 = pool(2).install(|| two_sided_match(&g, &cfg_a)).cardinality();
    let a2 = pool(7).install(|| two_sided_match(&g, &cfg_a)).cardinality();
    let b = pool(2).install(|| two_sided_match(&g, &cfg_b)).cardinality();
    assert_eq!(a1, a2);
    // Different seeds differing in cardinality is not guaranteed but holds
    // for this instance (checked when the test was written); the important
    // half of the assertion is a1 == a2 above. Allow equality but require
    // the sampled matchings to differ somewhere.
    let ma = pool(3).install(|| two_sided_match(&g, &cfg_a));
    let mb = pool(3).install(|| two_sided_match(&g, &cfg_b));
    assert!(b != a1 || ma.rmates() != mb.rmates(), "two seeds produced identical matchings");
}
