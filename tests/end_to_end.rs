//! End-to-end integration tests: every heuristic on every generator family,
//! validated against the exact optimum.

use dsmatch::heur::{
    cheap_random_edge, cheap_random_vertex, karp_sipser, one_sided_match, two_sided_match,
    KarpSipserConfig, OneSidedConfig, TwoSidedConfig, ONE_SIDED_GUARANTEE, TWO_SIDED_CONJECTURE,
};
use dsmatch::prelude::*;

fn instances() -> Vec<(&'static str, BipartiteGraph)> {
    vec![
        ("ring_2k", dsmatch::gen::ring(2_000)),
        ("mesh_45x45", dsmatch::gen::grid_mesh(45, 45)),
        ("er_d3_5k", dsmatch::gen::erdos_renyi_square(5_000, 3.0, 11)),
        ("er_d5_5k", dsmatch::gen::erdos_renyi_square(5_000, 5.0, 12)),
        ("regular_d3_4k", dsmatch::gen::random_regular(4_000, 3, 13)),
        ("adversarial_800_k8", dsmatch::gen::adversarial_ks(800, 8)),
        ("rect_3k_4k", dsmatch::gen::erdos_renyi_rect(3_000, 4_000, 3.0, 14)),
        ("permutation_3k", dsmatch::gen::permutation(3_000, 15)),
        ("path_3k", dsmatch::gen::path_graph(3_000)),
    ]
}

#[test]
fn all_heuristics_produce_valid_matchings_everywhere() {
    for (name, g) in instances() {
        let opt = sprank(&g);
        let cfg1 = OneSidedConfig { scaling: ScalingConfig::iterations(5), seed: 3 };
        let cfg2 = TwoSidedConfig { scaling: ScalingConfig::iterations(5), seed: 3 };
        for (alg, m) in [
            ("one_sided", one_sided_match(&g, &cfg1)),
            ("two_sided", two_sided_match(&g, &cfg2)),
            ("karp_sipser", karp_sipser(&g, &KarpSipserConfig { seed: 3 }).matching),
            ("cheap_edge", cheap_random_edge(&g, 3)),
            ("cheap_vertex", cheap_random_vertex(&g, 3)),
        ] {
            m.verify(&g).unwrap_or_else(|e| panic!("{alg} invalid on {name}: {e}"));
            assert!(m.cardinality() <= opt, "{alg} exceeded the optimum on {name}");
        }
    }
}

#[test]
fn quality_ordering_holds_on_full_sprank_instances() {
    // On full-sprank instances with enough scaling, the paper's ordering is
    // two_sided > one_sided and two_sided ≥ conjecture, one_sided ≥ theorem.
    for (name, g) in instances() {
        if !g.is_square() {
            continue;
        }
        let opt = sprank(&g);
        if opt < g.nrows() {
            continue; // deficient: covered by the quality_deficient test
        }
        let one = one_sided_match(
            &g,
            &OneSidedConfig { scaling: ScalingConfig::iterations(10), seed: 5 },
        );
        let two = two_sided_match(
            &g,
            &TwoSidedConfig { scaling: ScalingConfig::iterations(10), seed: 5 },
        );
        let q1 = one.quality(opt);
        let q2 = two.quality(opt);
        // Slack of 0.02 under the theoretical constants: these are single
        // runs of randomized heuristics on finite instances.
        assert!(q1 >= ONE_SIDED_GUARANTEE - 0.02, "{name}: one_sided quality {q1:.3}");
        assert!(q2 >= TWO_SIDED_CONJECTURE - 0.02, "{name}: two_sided quality {q2:.3}");
        assert!(q2 >= q1 - 0.01, "{name}: two_sided ({q2:.3}) below one_sided ({q1:.3})");
    }
}

#[test]
fn quality_on_deficient_instances() {
    // §4.1.3: deficiency makes approximation easier; both heuristics must
    // clear their guarantees relative to sprank with 5–10 iterations.
    let g = dsmatch::gen::erdos_renyi_square(20_000, 2.0, 99);
    let opt = sprank(&g);
    assert!(opt < g.nrows(), "d = 2 ER must be sprank-deficient");
    let one =
        one_sided_match(&g, &OneSidedConfig { scaling: ScalingConfig::iterations(10), seed: 1 });
    let two =
        two_sided_match(&g, &TwoSidedConfig { scaling: ScalingConfig::iterations(10), seed: 1 });
    assert!(one.quality(opt) >= 0.80, "paper Table 2: ~0.88 for d=2 @10it");
    assert!(two.quality(opt) >= 0.90, "paper Table 2: ~0.95 for d=2 @10it");
}

#[test]
fn adversarial_family_defeats_ks_but_not_two_sided() {
    // Table 1's headline claim, as a regression test.
    let n = 1600;
    let g = dsmatch::gen::adversarial_ks(n, 16);
    let mut ks_worst = f64::INFINITY;
    let mut two_worst = f64::INFINITY;
    for seed in 0..5 {
        let ks = karp_sipser(&g, &KarpSipserConfig { seed });
        ks_worst = ks_worst.min(ks.matching.cardinality() as f64 / n as f64);
        let two =
            two_sided_match(&g, &TwoSidedConfig { scaling: ScalingConfig::iterations(10), seed });
        two_worst = two_worst.min(two.cardinality() as f64 / n as f64);
    }
    assert!(ks_worst < 0.90, "KS should struggle: worst {ks_worst:.3}");
    assert!(two_worst > 0.95, "TwoSided should be robust: worst {two_worst:.3}");
    assert!(two_worst > ks_worst);
}

#[test]
fn warm_started_exact_solvers_agree_with_cold() {
    for (name, g) in instances() {
        let two =
            two_sided_match(&g, &TwoSidedConfig { scaling: ScalingConfig::iterations(5), seed: 9 });
        let cold = hopcroft_karp(&g);
        let (warm, _) = dsmatch::exact::hopcroft_karp_from(&g, two.clone());
        let (pf_warm, _) = dsmatch::exact::pothen_fan_from(&g, two);
        assert_eq!(cold.cardinality(), warm.cardinality(), "{name}");
        assert_eq!(cold.cardinality(), pf_warm.cardinality(), "{name}");
    }
}
