//! Stress and failure-injection tests: pathological inputs, contention
//! hotspots, and schedule-independence under explicit thread sweeps.

use dsmatch::heur::{karp_sipser_mt, karp_sipser_mt_seq, ks_mt_chain_stats, one_out_matching};
use dsmatch::prelude::*;

fn pool(t: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(t).build().unwrap()
}

/// The worst case for chain-following: one maximal chain through the whole
/// graph. rchoice[i] = i, cchoice[j] = j + 1 builds the path
/// c_{n-1} → r_{n-1} → c_{n-2}? — construct explicitly: row i chooses
/// column i; column j chooses row j+1. Then column n−1 is the only
/// out-one and the chain walks the entire instance.
#[test]
fn single_maximal_chain_does_not_blow_up() {
    let n: usize = 200_000;
    let rchoice: Vec<u32> = (0..n as u32).collect(); // r_i → c_i

    // c_j → r_{j+1}: a single giant cycle (2n vertices) — Phase 1 has no
    // out-one, Phase 2 matches perfectly. Break the cycle below to force one
    // giant chain.
    let cchoice: Vec<u32> = (0..n as u32).map(|j| (j + 1) % n as u32).collect();
    let mut cchoice_broken = cchoice.clone();
    cchoice_broken[n - 1] = NIL;
    let m_cycle = karp_sipser_mt(&rchoice, &cchoice);
    assert_eq!(m_cycle.cardinality(), n, "giant cycle must match perfectly");
    let m_chain = karp_sipser_mt(&rchoice, &cchoice_broken);
    let seq = karp_sipser_mt_seq(&rchoice, &cchoice_broken);
    assert_eq!(m_chain.cardinality(), seq.cardinality());
    // Chain stats must report one giant chain without overflow.
    let st = ks_mt_chain_stats(&rchoice, &cchoice_broken);
    assert!(st.max_chain >= n / 2, "expected a giant chain, got {}", st.max_chain);
}

#[test]
fn all_vertices_choose_one_hotspot() {
    // Maximum CAS contention: every row chooses column 0, every column
    // chooses row 0. Maximum matching of that double star is 2.
    let n = 100_000;
    let rchoice = vec![0u32; n];
    let cchoice = vec![0u32; n];
    for t in [1usize, 4, 16] {
        let m = pool(t).install(|| karp_sipser_mt(&rchoice, &cchoice));
        assert_eq!(m.cardinality(), 2, "threads = {t}");
    }
}

#[test]
fn mutual_pairs_only() {
    // n disjoint 2-cliques: Phase 2 must match all of them, in parallel,
    // at any thread count.
    let n = 100_000;
    let rchoice: Vec<u32> = (0..n as u32).collect();
    let cchoice: Vec<u32> = (0..n as u32).collect();
    for t in [1usize, 8] {
        let m = pool(t).install(|| karp_sipser_mt(&rchoice, &cchoice));
        assert_eq!(m.cardinality(), n, "threads = {t}");
    }
}

#[test]
fn ks_mt_thread_sweep_identical_cardinality() {
    // Fixed choice arrays: the matching cardinality is the maximum of the
    // sampled subgraph, hence identical for every schedule.
    let n = 50_000;
    let mut rng = SplitMix64::new(77);
    let rchoice: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
    let cchoice: Vec<u32> = (0..n).map(|_| rng.next_below(n as u64) as u32).collect();
    let expected = karp_sipser_mt_seq(&rchoice, &cchoice).cardinality();
    for t in [1usize, 2, 3, 4, 8, 16] {
        for rep in 0..3 {
            let card = pool(t).install(|| karp_sipser_mt(&rchoice, &cchoice)).cardinality();
            assert_eq!(card, expected, "threads = {t}, rep = {rep}");
        }
    }
}

#[test]
fn one_out_long_cycle_and_long_chain() {
    let n = 200_000;
    // Giant undirected cycle of choices: 0→1→2→…→0.
    let cycle: Vec<u32> = (0..n as u32).map(|v| (v + 1) % n as u32).collect();
    let m = one_out_matching(&cycle);
    m.check_consistent().unwrap();
    assert_eq!(m.cardinality(), n / 2, "even cycle matches perfectly");
    // Break it into a giant path.
    let mut path = cycle.clone();
    path[n - 1] = NIL;
    let m = one_out_matching(&path);
    m.check_consistent().unwrap();
    assert_eq!(m.cardinality(), n / 2);
}

#[test]
fn empty_and_degenerate_inputs() {
    assert_eq!(karp_sipser_mt(&[], &[]).cardinality(), 0);
    assert_eq!(karp_sipser_mt(&[NIL], &[]).cardinality(), 0);
    assert_eq!(one_out_matching(&[]).cardinality(), 0);
    let g = BipartiteGraph::from_csr(dsmatch::graph::Csr::empty(0, 0));
    assert_eq!(hopcroft_karp(&g).cardinality(), 0);
    let m = dsmatch::heur::one_sided_match(&g, &Default::default());
    assert_eq!(m.cardinality(), 0);
}

#[test]
fn heuristics_on_star_forests() {
    // Extreme skew: k stars of size s. Optimal matching = k.
    let (k, s) = (200usize, 500usize);
    let mut t = dsmatch::graph::TripletMatrix::new(k, k * s);
    for hub in 0..k {
        for leaf in 0..s {
            t.push(hub, hub * s + leaf);
        }
    }
    let g = BipartiteGraph::from_csr(t.into_csr());
    let opt = sprank(&g);
    assert_eq!(opt, k);
    let m = dsmatch::heur::two_sided_match(
        &g,
        &dsmatch::heur::TwoSidedConfig { scaling: ScalingConfig::iterations(5), seed: 1 },
    );
    m.verify(&g).unwrap();
    assert_eq!(m.cardinality(), k, "every hub must be matched");
}
