//! Integration tests for §3.3 of the paper: the interaction between
//! scaling and the Dulmage–Mendelsohn structure. "The scaling algorithms
//! applied to bipartite graphs without perfect matchings will zero out the
//! entries in the irrelevant parts and identify the entries that can be put
//! into a maximum cardinality matching."

use dsmatch::dm::{dulmage_mendelsohn, fine_decomposition};
use dsmatch::prelude::*;
use dsmatch::scale::sinkhorn_knopp;
use dsmatch_graph::Csr;

#[test]
fn star_entries_of_triangular_matrix_decay() {
    // Upper triangular: only the diagonal is in the (unique) perfect
    // matching. After scaling, the sampling probability of off-diagonal
    // entries must collapse.
    let n = 64;
    let mut rows: Vec<Vec<u8>> = vec![vec![0; n]; n];
    for (i, row) in rows.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            if j >= i {
                *v = 1;
            }
        }
    }
    let refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
    let g = BipartiteGraph::from_csr(Csr::from_dense(&refs));

    // Without total support, Sinkhorn–Knopp converges only sublinearly
    // (Sinkhorn's classical result, recalled in the paper's §3.3), so we
    // assert the *trend*: the worst-row diagonal mass grows monotonically
    // with the iteration count and far exceeds the uniform baseline.
    let min_diag_mass = |iters: usize| -> f64 {
        let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(iters));
        (0..n)
            .map(|i| {
                let row_sum: f64 = g.row_adj(i).iter().map(|&j| s.dc[j as usize]).sum();
                s.dc[i] / row_sum
            })
            .fold(f64::INFINITY, f64::min)
    };
    let m2 = min_diag_mass(2);
    let m20 = min_diag_mass(20);
    let m200 = min_diag_mass(200);
    assert!(m2 < m20 && m20 < m200, "mass must grow: {m2:.3} → {m20:.3} → {m200:.3}");
    // Uniform sampling would put ~1/32 on the worst row's diagonal.
    assert!(m200 > 0.45, "after 200 iterations, worst row has {m200:.3}");
}

#[test]
fn adversarial_full_block_mass_vanishes() {
    // Figure-2 matrices: the full R1 × C1 block contains no entry of any
    // perfect matching except in the stripe rows/cols; scaling must move
    // essentially all sampling mass of a generic R1 row onto its C2
    // diagonal partner.
    let n = 400;
    let k = 8;
    let g = dsmatch::gen::adversarial_ks(n, k);
    let h = n / 2;
    let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(50));
    // A generic R1 row (not in the full stripe): adjacency = C1 block plus
    // its diagonal partner h+i.
    let i = 3;
    let row_sum: f64 = g.row_adj(i).iter().map(|&j| s.dc[j as usize]).sum();
    let diag_mass = s.dc[h + i] / row_sum;
    assert!(diag_mass > 0.90, "diagonal partner should dominate after scaling, got {diag_mass:.3}");
}

#[test]
fn dm_identifies_relevant_blocks_of_deficient_er() {
    let g = dsmatch::gen::erdos_renyi_square(2_000, 2.0, 123);
    let dm = dulmage_mendelsohn(&g);
    assert!(dm.sprank() < 2_000, "d = 2 should be deficient");
    assert_eq!(dm.sprank(), sprank(&g));
    assert!(dm.verify_zero_blocks(&g));
    // Square part is perfectly matched by the DM matching.
    let fine = fine_decomposition(&g, &dm);
    let matched_pairs: usize = fine.block_sizes.iter().sum();
    assert_eq!(matched_pairs, dm.s_rows);
}

#[test]
fn heuristics_respect_sprank_bound_on_dm_structured_input() {
    use dsmatch::heur::{two_sided_match, TwoSidedConfig};
    // Horizontal + square + vertical blocks glued together.
    let mut t = dsmatch::graph::TripletMatrix::new(30, 30);
    // H: row 0 over columns 0..=4.
    for j in 0..5 {
        t.push(0, j);
    }
    // S: rows 1..=24 a ring over columns 5..=28.
    for i in 0..24 {
        t.push(1 + i, 5 + i);
        t.push(1 + i, 5 + (i + 1) % 24);
    }
    // V: rows 25..=29 all over column 29.
    for i in 25..30 {
        t.push(i, 29);
    }
    let g = BipartiteGraph::from_csr(t.into_csr());
    let opt = sprank(&g);
    assert_eq!(opt, 1 + 24 + 1);
    let m =
        two_sided_match(&g, &TwoSidedConfig { scaling: ScalingConfig::iterations(20), seed: 2 });
    m.verify(&g).unwrap();
    assert!(m.quality(opt) >= 0.85, "quality {:.3}", m.quality(opt));
}
