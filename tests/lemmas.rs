//! Integration tests for the paper's structural lemmas, exercised through
//! the real pipeline (scaling → sampling → subgraph) rather than synthetic
//! choice arrays.

use dsmatch::graph::components::choice_graph_components;
use dsmatch::heur::{karp_sipser_mt, two_sided_choices};
use dsmatch::prelude::*;
use dsmatch::scale::sinkhorn_knopp;

fn sampled_choices(g: &BipartiteGraph, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let s = sinkhorn_knopp(g, &ScalingConfig::iterations(3));
    two_sided_choices(g, &s, seed)
}

/// Materialize the sampled subgraph (line 8 of Algorithm 3).
fn subgraph(g: &BipartiteGraph, rc: &[u32], cc: &[u32]) -> BipartiteGraph {
    let mut t = dsmatch::graph::TripletMatrix::new(rc.len(), cc.len());
    for (i, &j) in rc.iter().enumerate() {
        if j != NIL {
            t.push(i, j as usize);
        }
    }
    for (j, &i) in cc.iter().enumerate() {
        if i != NIL {
            t.push(i as usize, j);
        }
    }
    let _ = g;
    BipartiteGraph::from_csr(t.into_csr())
}

#[test]
fn lemma1_at_most_one_cycle_per_component() {
    for (gname, g) in [
        ("er_d4", dsmatch::gen::erdos_renyi_square(5_000, 4.0, 2)),
        ("ring", dsmatch::gen::ring(5_000)),
        ("mesh", dsmatch::gen::grid_mesh(70, 70)),
        ("adversarial", dsmatch::gen::adversarial_ks(1_000, 8)),
    ] {
        for seed in 0..5 {
            let (rc, cc) = sampled_choices(&g, seed);
            for stats in choice_graph_components(&rc, &cc) {
                assert!(
                    stats.cycle_count() <= 1,
                    "Lemma 1 violated on {gname} (seed {seed}): {stats:?}"
                );
            }
        }
    }
}

#[test]
fn karp_sipser_mt_is_exact_on_sampled_subgraphs() {
    // The main correctness claim behind Algorithm 4: KS-MT's matching is a
    // *maximum* matching of the sampled subgraph. Cross-check against
    // Hopcroft–Karp on the materialized subgraph.
    for (gname, g) in [
        ("er_d3", dsmatch::gen::erdos_renyi_square(3_000, 3.0, 5)),
        ("er_d8", dsmatch::gen::erdos_renyi_square(3_000, 8.0, 6)),
        ("mesh", dsmatch::gen::grid_mesh(55, 55)),
        ("regular_d2", dsmatch::gen::random_regular(3_000, 2, 7)),
        ("rect", dsmatch::gen::erdos_renyi_rect(2_000, 2_500, 3.0, 8)),
    ] {
        for seed in 0..5 {
            let (rc, cc) = sampled_choices(&g, seed);
            let m = karp_sipser_mt(&rc, &cc);
            let sub = subgraph(&g, &rc, &cc);
            m.verify(&sub).unwrap_or_else(|e| panic!("invalid on {gname} subgraph: {e}"));
            let opt = hopcroft_karp(&sub).cardinality();
            assert_eq!(
                m.cardinality(),
                opt,
                "KS-MT not exact on {gname} sampled subgraph (seed {seed})"
            );
        }
    }
}

#[test]
fn sampled_subgraph_edges_exist_in_original() {
    let g = dsmatch::gen::erdos_renyi_square(4_000, 5.0, 3);
    let (rc, cc) = sampled_choices(&g, 1);
    for (i, &j) in rc.iter().enumerate() {
        if j != NIL {
            assert!(g.csr().contains(i, j as usize));
        }
    }
    for (j, &i) in cc.iter().enumerate() {
        if i != NIL {
            assert!(g.csr().contains(i as usize, j));
        }
    }
}

#[test]
fn subgraph_has_at_most_2n_edges() {
    // "at most 2n edges (if i chooses j and j chooses i, we have one edge)"
    let g = dsmatch::gen::erdos_renyi_square(4_000, 6.0, 9);
    let (rc, cc) = sampled_choices(&g, 4);
    let sub = subgraph(&g, &rc, &cc);
    assert!(sub.nnz() <= rc.len() + cc.len());
    assert!(sub.nnz() >= rc.len().max(cc.len())); // no NIL here: full support
}

#[test]
fn theorem1_expectation_on_dense_ones() {
    // For the all-ones matrix the per-column unmatched probability is
    // (1 − 1/n)^n → 1/e exactly; the matching size concentrates sharply
    // around n(1 − 1/e) ≈ 0.632 n.
    use dsmatch::heur::{one_sided_match, OneSidedConfig};
    let n = 4_000;
    let g = dsmatch::gen::dense_ones(n);
    let m =
        one_sided_match(&g, &OneSidedConfig { scaling: ScalingConfig::iterations(1), seed: 31 });
    let q = m.cardinality() as f64 / n as f64;
    assert!(
        (q - (1.0 - 1.0 / std::f64::consts::E)).abs() < 0.02,
        "one-sided on all-ones should sit at 1 − 1/e, got {q:.4}"
    );
}
