//! Correctness of the parallel kernels under **real** thread pools of 1, 2
//! and 4 workers — the contracts the paper actually promises:
//!
//! - `KarpSipserMT` (Algorithm 4): at any thread count the result is a
//!   *valid, maximal* matching of the sampled subgraph whose cardinality
//!   equals the sequential exact reference (Karp–Sipser is exact on the
//!   union of two functional graphs, Lemma 1) — the concrete mate arrays
//!   may differ between schedules;
//! - scaling (`sinkhorn_knopp_into`, `ruiz_into`): **byte-identical**
//!   factors, error and history for every pool size, with the reused
//!   output buffers staying pointer-stable;
//! - the parallel exact finishers (`hk-par`, `pf-par`, and the
//!   incremental-forest `pf-graft`): valid matchings whose cardinality
//!   equals the sequential finishers' (maximum is maximum) and whose mate
//!   arrays are **byte-identical** across pool sizes (deterministic
//!   chunk-order merges) — `hk-par` additionally reproduces sequential
//!   `hk` byte-for-byte.

use dsmatch::heur::{choice_subgraph, karp_sipser_mt, karp_sipser_mt_seq};
use dsmatch::prelude::*;
use proptest::prelude::*;

fn pool(t: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(t).build().unwrap()
}

/// No edge of the sampled subgraph may have both endpoints free — the
/// maximality half of "Karp–Sipser is exact on this graph class".
fn assert_maximal(m: &Matching, rchoice: &[u32], cchoice: &[u32], context: &str) {
    for (i, &j) in rchoice.iter().enumerate() {
        if j != NIL {
            assert!(
                m.is_row_matched(i) || m.is_col_matched(j as usize),
                "{context}: edge r{i}→c{j} has both endpoints free"
            );
        }
    }
    for (j, &i) in cchoice.iter().enumerate() {
        if i != NIL {
            assert!(
                m.is_row_matched(i as usize) || m.is_col_matched(j),
                "{context}: edge c{j}→r{i} has both endpoints free"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Property (a) of the parallel-correctness satellite: under pools of
    /// 1, 2 and 4 threads, `ks_mt` yields a valid **maximal** matching of
    /// the sampled subgraph with the exact sequential cardinality.
    #[test]
    fn ks_mt_valid_maximal_exact_across_pools(
        nr in 1usize..40,
        nc in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let rchoice: Vec<u32> = (0..nr)
            .map(|_| {
                let v = rng.next_below(8 * nc as u64);
                if v < nc as u64 { NIL } else { (v % nc as u64) as u32 }
            })
            .collect();
        let cchoice: Vec<u32> = (0..nc)
            .map(|_| {
                let v = rng.next_below(8 * nr as u64);
                if v < nr as u64 { NIL } else { (v % nr as u64) as u32 }
            })
            .collect();
        let g = choice_subgraph(&rchoice, &cchoice);
        let expected = karp_sipser_mt_seq(&rchoice, &cchoice).cardinality();
        for t in [1usize, 2, 4] {
            let m = pool(t).install(|| karp_sipser_mt(&rchoice, &cchoice));
            m.verify(&g).unwrap();
            assert_maximal(&m, &rchoice, &cchoice, &format!("threads={t} seed={seed}"));
            prop_assert_eq!(
                m.cardinality(),
                expected,
                "ks_mt not exact at {} threads (seed {})",
                t,
                seed
            );
        }
    }
}

/// The same Algorithm 4 contract on instance-scale inputs, where chunked
/// dispatch genuinely interleaves: choices sampled from a scaled
/// Erdős–Rényi graph, pools of 1, 2 and 4, repeated runs per pool.
#[test]
fn ks_mt_large_instance_exact_across_pools() {
    use dsmatch::heur::two_sided_choices;
    let g = dsmatch::gen::erdos_renyi_square(30_000, 5.0, 13);
    let s = sinkhorn_knopp(&g, &ScalingConfig::iterations(5));
    let (rc, cc) = two_sided_choices(&g, &s, 7);
    let sub = choice_subgraph(&rc, &cc);
    let expected = karp_sipser_mt_seq(&rc, &cc).cardinality();
    for t in [1usize, 2, 4] {
        let p = pool(t);
        for rep in 0..3 {
            let m = p.install(|| karp_sipser_mt(&rc, &cc));
            m.verify(&sub).unwrap();
            assert_maximal(&m, &rc, &cc, &format!("threads={t} rep={rep}"));
            assert_eq!(m.cardinality(), expected, "threads={t} rep={rep}");
        }
    }
}

/// Property (b): the `_into` scaling kernels are byte-identical across
/// pool sizes {1, 2, 4} — factors, error, and convergence history — and
/// the reused output buffers never reallocate.
#[test]
fn scaling_into_byte_identical_across_pools() {
    use dsmatch::scale::{ruiz_into, sinkhorn_knopp_into};
    let g = dsmatch::gen::erdos_renyi_square(8_000, 6.0, 3);
    let cfg = ScalingConfig::iterations(6);

    type ScaleInto = fn(&BipartiteGraph, &ScalingConfig, &mut ScalingResult);
    let kernels: [(&str, ScaleInto); 2] =
        [("sinkhorn_knopp_into", sinkhorn_knopp_into), ("ruiz_into", ruiz_into)];
    for (name, kernel) in kernels {
        let mut reference = ScalingResult::empty();
        pool(1).install(|| kernel(&g, &cfg, &mut reference));
        let mut out = ScalingResult::empty();
        // Warm the reused buffers once, then record their footprint.
        pool(1).install(|| kernel(&g, &cfg, &mut out));
        let footprint = (out.dr.as_ptr() as usize, out.dr.capacity(), out.dc.as_ptr() as usize);
        for t in [1usize, 2, 4] {
            pool(t).install(|| kernel(&g, &cfg, &mut out));
            assert_eq!(out.dr, reference.dr, "{name}: dr differs at {t} threads");
            assert_eq!(out.dc, reference.dc, "{name}: dc differs at {t} threads");
            assert_eq!(out.error, reference.error, "{name}: error differs at {t} threads");
            assert_eq!(out.history, reference.history, "{name}: history differs at {t} threads");
            assert_eq!(
                footprint,
                (out.dr.as_ptr() as usize, out.dr.capacity(), out.dc.as_ptr() as usize),
                "{name}: scaling buffers reallocated at {t} threads"
            );
        }
    }
}

/// Panic propagation under the work-stealing scheduler: a panic in a
/// *nested* spawn — pushed to its worker's own deque, hence eligible for
/// stealing — must surface at the scoping thread at pools 2, 4 and 8, and
/// the pool must stay usable afterwards.
#[test]
fn panic_in_stolen_nested_task_propagates_across_pools() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    for t in [2usize, 4, 8] {
        let p = pool(t);
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.scope(|s| {
                for k in 0..2 * t {
                    s.spawn(move |s| {
                        s.spawn(move |_| {
                            if k == 1 {
                                panic!("nested boom");
                            }
                        });
                    });
                }
            });
        }));
        assert!(result.is_err(), "nested panic lost at {t} threads");
        // The pool survives: a follow-up scope completes all its work.
        let ok = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..4 * t {
                s.spawn(|_| {
                    ok.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4 * t, "pool unusable after panic at {t} threads");
    }
}

/// Nested scopes under stealing: every level of a three-deep spawn tree
/// completes, with results visible to the scoping thread, at pools 2/4/8.
/// (Nested spawns land on their worker's own deque; idle workers steal
/// them — the skewed-chain-walk shape the scheduler exists for.)
#[test]
fn nested_scopes_complete_under_stealing() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    for t in [2usize, 4, 8] {
        let p = pool(t);
        let hits = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..t {
                s.spawn(|s| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..3 {
                        s.spawn(|s| {
                            hits.fetch_add(1, Ordering::Relaxed);
                            s.spawn(|_| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        });
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), t * 7, "threads = {t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Parallel-finisher property at pools 1/2/4: `pf-par`/`hk-par` are
    /// valid, match sequential `pf`/`hk` cardinality exactly (all four are
    /// maximum-cardinality solvers), and return byte-identical mate
    /// arrays at every pool size. `hk-par` is further byte-identical to
    /// sequential `hk` (its level-synchronized BFS assigns the same
    /// distance labels, and the blocking DFS is shared code).
    #[test]
    fn parallel_finishers_exact_and_deterministic_across_pools(
        nr in 1usize..50,
        nc in 1usize..50,
        seed in 0u64..500,
    ) {
        use dsmatch::exact::{hopcroft_karp_par, pothen_fan, pothen_fan_par};
        let mut rng = SplitMix64::new(seed);
        let mut t = TripletMatrix::new(nr, nc);
        for i in 0..nr {
            for j in 0..nc {
                if rng.next_below(4) == 0 {
                    t.push(i, j);
                }
            }
        }
        let g = BipartiteGraph::from_csr(t.into_csr());
        let opt = pothen_fan(&g).cardinality();
        let hk_seq = hopcroft_karp(&g);
        let hk_ref = pool(1).install(|| hopcroft_karp_par(&g));
        let pf_ref = pool(1).install(|| pothen_fan_par(&g));
        prop_assert_eq!(hk_ref.rmates(), hk_seq.rmates(), "hk-par must reproduce hk");
        for t in [1usize, 2, 4] {
            let hk_par = pool(t).install(|| hopcroft_karp_par(&g));
            hk_par.verify(&g).unwrap();
            prop_assert_eq!(hk_par.cardinality(), opt, "hk-par at {} threads", t);
            prop_assert_eq!(hk_par.rmates(), hk_ref.rmates(), "hk-par differs at {} threads", t);
            let pf_par = pool(t).install(|| pothen_fan_par(&g));
            pf_par.verify(&g).unwrap();
            prop_assert_eq!(pf_par.cardinality(), opt, "pf-par at {} threads", t);
            prop_assert_eq!(pf_par.rmates(), pf_ref.rmates(), "pf-par differs at {} threads", t);
        }
    }

    /// The incremental tree-grafting finisher at pools 1/2/4: exact, and
    /// byte-identical mate arrays at every pool size — grafting keeps the
    /// forest across harvests, but the chunk-merge order it harvests in
    /// depends only on frontier content, never the schedule.
    #[test]
    fn pf_graft_exact_and_deterministic_across_pools(
        nr in 1usize..50,
        nc in 1usize..50,
        seed in 0u64..500,
    ) {
        use dsmatch::exact::{pothen_fan, pothen_fan_graft};
        let mut rng = SplitMix64::new(seed);
        let mut t = TripletMatrix::new(nr, nc);
        for i in 0..nr {
            for j in 0..nc {
                if rng.next_below(4) == 0 {
                    t.push(i, j);
                }
            }
        }
        let g = BipartiteGraph::from_csr(t.into_csr());
        let opt = pothen_fan(&g).cardinality();
        let reference = pool(1).install(|| pothen_fan_graft(&g));
        for t in [1usize, 2, 4] {
            let m = pool(t).install(|| pothen_fan_graft(&g));
            m.verify(&g).unwrap();
            prop_assert_eq!(m.cardinality(), opt, "pf-graft at {} threads", t);
            prop_assert_eq!(m.rmates(), reference.rmates(), "pf-graft differs at {} threads", t);
            prop_assert_eq!(m.cmates(), reference.cmates(), "pf-graft differs at {} threads", t);
        }
    }
}

/// The finishers as *pipeline stages*: heuristic warm starts through the
/// engine at pools 1/2/4 — the exact composition the CLI exposes as
/// `scale:sk:5,two,pf-par` — must reach the optimum (cardinality equal to
/// the sequential finisher pipelines) on an instance large enough that
/// level scans genuinely fan out.
#[test]
fn finisher_pipelines_reach_the_optimum_across_pools() {
    use dsmatch::engine::{Pipeline, Solver, Workspace};
    let g = dsmatch::gen::erdos_renyi_square(20_000, 4.0, 17);
    let opt = sprank(&g);
    for spec in [
        "scale:sk:5,two,pf-par",
        "scale:sk:5,two,hk-par",
        "scale:sk:5,two,pf-graft",
        "scale:sk:5,two,auto",
        "scale:sk:0,one,pf-par",
        "cheap,hk-par",
        "cheap,pf-graft",
    ] {
        let pipeline: Pipeline = spec.parse().unwrap();
        for t in [1usize, 2, 4] {
            let mut ws = Workspace::with_threads(t);
            let report = pipeline.clone().with_seed(9).solve(&g, &mut ws);
            report.matching.verify(&g).unwrap();
            assert_eq!(report.cardinality(), opt, "{spec} at {t} threads");
        }
    }
}

/// `one_sided_match` under real pools: the matched-column set and the
/// cardinality are a pure function of the seed; every schedule's matching
/// is valid. (The winning row per column is a benign race by design.)
#[test]
fn one_sided_column_set_invariant_across_pools() {
    use dsmatch::heur::{one_sided_match, OneSidedConfig};
    let g = dsmatch::gen::erdos_renyi_square(15_000, 4.0, 21);
    let cfg = OneSidedConfig { scaling: ScalingConfig::iterations(4), seed: 77 };
    let reference = pool(1).install(|| one_sided_match(&g, &cfg));
    for t in [2usize, 4] {
        let m = pool(t).install(|| one_sided_match(&g, &cfg));
        m.verify(&g).unwrap();
        assert_eq!(m.cardinality(), reference.cardinality(), "threads={t}");
        for j in 0..g.ncols() {
            assert_eq!(m.is_col_matched(j), reference.is_col_matched(j), "col {j}, threads={t}");
        }
    }
}
