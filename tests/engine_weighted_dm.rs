//! Grammar-v2 integration tests: the v1 spec-compatibility pin, the
//! weighted workloads' approximation guarantees, and the determinism of
//! `dm,<pipeline>` decomposition solves across workspace-pool sizes.

use dsmatch::engine::{Pipeline, Solver, Workspace};
use dsmatch::exact::sprank;
use dsmatch::graph::{BipartiteGraph, TripletMatrix, NIL};
use dsmatch::weighted::{
    brute_force_max_weight, greedy_weighted, matching_weight, suitor, suitor_parallel,
    WeightedGraph,
};

/// Every pipeline spec string the v1 grammar accepted, with the exact
/// canonical rendering `Pipeline::spec` produced for it. Grammar v2 must
/// parse all of them byte-identically — this is the API-compatibility
/// contract of the redesign, pinned input by input.
#[test]
fn v1_spec_strings_parse_byte_identically_under_v2() {
    let pinned: [(&str, &str); 15] = [
        ("two", "two"),
        ("hk", "hk"),
        ("scale:sk:5,two", "scale:sk:5,two"),
        ("scale:ruiz:10,one", "scale:ruiz:10,one"),
        ("scale:sk:5,two,pf", "scale:sk:5,two,pf"),
        ("scale:sk:0,ksmt,hk", "scale:sk:0,ksmt,hk"),
        ("cheap,bfs", "cheap,bfs"),
        ("scale:sk:5,two,pf-par", "scale:sk:5,two,pf-par"),
        ("scale:sk:5,two,hk-par", "scale:sk:5,two,hk-par"),
        ("scale:sk:5,two,pf-graft", "scale:sk:5,two,pf-graft"),
        ("scale:sk:5,two,auto", "scale:sk:5,two,auto"),
        ("pf-par", "pf-par"),
        ("auto", "auto"),
        // The v1 sugar forms canonicalize, exactly as they always did.
        ("scale,two", "scale:sk:5,two"),
        ("scale:8,two", "scale:sk:8,two"),
    ];
    for (input, canonical) in pinned {
        let p: Pipeline = input.parse().unwrap_or_else(|e| panic!("v1 spec {input:?}: {e}"));
        assert_eq!(p.spec(), canonical, "canonical form of v1 spec {input:?} changed");
        let again: Pipeline = p.spec().parse().unwrap();
        assert_eq!(again, p, "roundtrip of {input:?}");
    }
}

/// A deterministic pseudo-random weighted graph on `n + n` vertices with
/// distinct edge weights (splitmix-style stream), suitable for
/// `brute_force_max_weight` when `2n ≤ 16`.
fn random_weighted(n: usize, degree: usize, seed: u64) -> WeightedGraph {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut edges = Vec::new();
    for u in 0..n {
        for _ in 0..degree {
            let v = n + (next() as usize % n);
            // Distinct weights: a strictly increasing irrational-ish tail
            // keeps ties out so the local-dominance argument is exact.
            let w = 1.0 + (next() % 1_000_000) as f64 / 1_000_000.0 + edges.len() as f64 * 1e-9;
            edges.push((u, v, w));
        }
    }
    WeightedGraph::from_weighted_edges(2 * n, &edges)
}

/// Suitor's guarantee, checked against the exact optimum: on every small
/// instance, `w(suitor) ≥ w(greedy)` and `w(suitor) ≥ ½·w(optimal)` —
/// with distinct weights both heuristics find the unique locally-dominant
/// matching, so the first inequality is equality in disguise.
#[test]
fn suitor_is_half_approximate_and_no_worse_than_greedy() {
    for seed in 0..30u64 {
        let n = 3 + (seed as usize % 6); // 2n ≤ 16 for the brute force
        let g = random_weighted(n, 3, seed * 7 + 1);
        let opt = brute_force_max_weight(&g);
        let w_suitor = matching_weight(&g, &suitor(&g));
        let w_par = matching_weight(&g, &suitor_parallel(&g));
        let w_greedy = matching_weight(&g, &greedy_weighted(&g));
        assert!(w_suitor >= w_greedy - 1e-12, "seed {seed}: {w_suitor} < greedy {w_greedy}");
        assert!(w_suitor >= 0.5 * opt - 1e-12, "seed {seed}: {w_suitor} < ½·{opt}");
        assert!(w_par >= 0.5 * opt - 1e-12, "seed {seed}: parallel {w_par} < ½·{opt}");
    }
}

fn solve_rmates(spec: &str, g: &BipartiteGraph, ws: &mut Workspace, seed: u64) -> Vec<u32> {
    let p: Pipeline = spec.parse().unwrap();
    let report = p.with_seed(seed).solve(g, ws);
    report.matching.verify(g).unwrap();
    report.matching.rmates().to_vec()
}

/// The decomposition tentpole's determinism contract: `dm,<pipeline>`
/// reaches the same sprank as the direct solve, with **byte-identical
/// mates at every workspace-pool size** — block boundaries and stitch
/// order depend only on the instance, never on how many workers raced.
#[test]
fn dm_solve_is_sprank_equal_and_byte_identical_across_pool_sizes() {
    for (label, g) in [
        ("er", dsmatch::gen::erdos_renyi_square(400, 3.0, 9)),
        ("rect", dsmatch::gen::erdos_renyi_rect(300, 200, 2.5, 4)),
        ("grid", dsmatch::gen::grid_mesh(20, 20)),
    ] {
        let opt = sprank(&g);
        let direct = solve_rmates("scale:sk:5,two,pf", &g, &mut Workspace::new(), 3);
        assert_eq!(direct.iter().filter(|&&j| j != NIL).count(), opt);

        let mut runs = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut ws = Workspace::with_threads(threads);
            let rmates = solve_rmates("dm,scale:sk:5,two,pf", &g, &mut ws, 3);
            assert_eq!(
                rmates.iter().filter(|&&j| j != NIL).count(),
                opt,
                "{label}: dm solve at {threads} threads missed sprank"
            );
            runs.push((threads, rmates));
        }
        for (threads, rmates) in &runs[1..] {
            assert_eq!(
                rmates, &runs[0].1,
                "{label}: dm mates differ between pool sizes 1 and {threads}"
            );
        }
    }
}

/// Degenerate instances through every v2 path: empty graphs, structurally
/// rank-deficient patterns, and a fully-indecomposable matrix whose fine
/// decomposition is a single block.
#[test]
fn degenerate_instances_survive_weighted_and_dm_paths() {
    // Empty pattern (no edges at all): everything matches nothing.
    let empty = BipartiteGraph::from_csr(TripletMatrix::new(5, 7).into_csr());
    for spec in ["dm,two,pf", "scale:sk:5,suitor", "greedy-w", "dm,suitor"] {
        let p: Pipeline = spec.parse().unwrap();
        let report = p.solve(&empty, &mut Workspace::new());
        report.matching.verify(&empty).unwrap();
        assert_eq!(report.cardinality(), 0, "{spec} on the empty pattern");
    }

    // Rank-deficient: a wide rectangle plus isolated rows.
    let mut t = TripletMatrix::new(6, 4);
    for i in 0..3 {
        for j in 0..4 {
            t.push(i, j);
        }
    }
    let deficient = BipartiteGraph::from_csr(t.into_csr());
    let opt = sprank(&deficient);
    assert!(opt < 6);
    for spec in ["dm,two,pf", "dm,hk", "scale:sk:5,suitor,"] {
        let spec = spec.trim_end_matches(',');
        let p: Pipeline = spec.parse().unwrap();
        let report = p.solve(&deficient, &mut Workspace::new());
        report.matching.verify(&deficient).unwrap();
        if spec.starts_with("dm") {
            assert_eq!(report.cardinality(), opt, "{spec} on the deficient pattern");
        }
    }

    // Fully indecomposable (a ring has total support and one irreducible
    // block): the dm path degenerates to a single inner solve and must
    // still agree with the direct one.
    let ring = dsmatch::gen::ring(64);
    assert!(dsmatch::dm::is_fully_indecomposable(&ring));
    let direct = solve_rmates("two,pf", &ring, &mut Workspace::new(), 1);
    let via_dm = solve_rmates("dm,two,pf", &ring, &mut Workspace::new(), 1);
    assert_eq!(via_dm.iter().filter(|&&j| j != NIL).count(), 64);
    assert_eq!(direct.len(), via_dm.len());
}

/// Weighted stages honour the probability bridge end to end: the pipeline
/// weight equals an independent recomputation from the scaling factors.
#[test]
fn pipeline_weight_matches_independent_recomputation() {
    let g = dsmatch::gen::erdos_renyi_square(150, 4.0, 21);
    let mut ws = Workspace::new();
    let p: Pipeline = "scale:sk:5,suitor".parse().unwrap();
    let report = p.solve(&g, &mut ws);
    let w = report.weight.expect("weighted solve reports a weight");

    // Recompute: the workspace retains the scaling factors of the solve.
    let mut total = 0.0;
    for (i, &j) in report.matching.rmates().iter().enumerate() {
        if j != NIL {
            let s = ws.scaling.entry(i, j as usize);
            total += if s.is_finite() && s > 0.0 { s } else { f64::MIN_POSITIVE };
        }
    }
    assert!((total - w).abs() <= 1e-9 * total.max(1.0), "reported {w}, recomputed {total}");
}
