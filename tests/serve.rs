//! Serve-daemon contract tests: the streaming job protocol end to end —
//! engine-level over in-memory streams, and through the real `dsmatch
//! serve` binary (batch stdin mode, interactive error paths, handle
//! eviction, and the Unix-socket transport).
//!
//! The load-bearing pin is the ISSUE's acceptance criterion: a `delta`
//! re-solve against a cached instance produces mates **byte-identical** to
//! a cold solve of the mutated instance while reporting **strictly fewer**
//! augmentation phases.

use dsmatch::engine::{serve, Json, ServeOptions};
use dsmatch::exact::sprank;
use dsmatch::graph::{BipartiteGraph, TripletMatrix};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// Harness timeout, widened on slow runners via DSMATCH_TEST_TIMEOUT_SECS.
fn test_timeout(default_secs: u64) -> std::time::Duration {
    let secs = std::env::var("DSMATCH_TEST_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default_secs);
    std::time::Duration::from_secs(secs)
}

// ---------------------------------------------------------------------------
// Engine-level helpers
// ---------------------------------------------------------------------------

fn run_serve(input: &str, opts: &ServeOptions) -> Vec<Json> {
    let mut out: Vec<u8> = Vec::new();
    let summary = serve(std::io::Cursor::new(input.to_string()), &mut out, opts);
    let lines: Vec<Json> = String::from_utf8(out)
        .expect("utf8 output")
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad reply line {l:?}: {e}")))
        .collect();
    // Framing invariant: ready first, shutdown last, one reply per job.
    assert_eq!(lines[0].get("event").and_then(Json::as_str), Some("ready"));
    let last = lines.len() - 1;
    assert_eq!(lines[last].get("event").and_then(Json::as_str), Some("shutdown"));
    assert_eq!(lines.len() - 2, summary.jobs, "one reply line per job line");
    lines
}

/// Reply for the job with string id `id`.
fn reply<'a>(lines: &'a [Json], id: &str) -> &'a Json {
    lines
        .iter()
        .find(|l| l.get("id").and_then(Json::as_str) == Some(id))
        .unwrap_or_else(|| panic!("no reply with id {id:?}"))
}

fn assert_ok(r: &Json) {
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "expected ok reply: {r}");
}

fn code_of(r: &Json) -> &str {
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "expected error reply: {r}");
    r.get("code").and_then(Json::as_str).expect("error replies carry a code")
}

/// Phase count of the last stage of a reply's report.
fn last_stage_phases(r: &Json) -> usize {
    let stages = r
        .get("report")
        .and_then(|rep| rep.get("stages"))
        .and_then(Json::as_arr)
        .expect("report with stages");
    stages
        .last()
        .and_then(|s| s.get("phases"))
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("last stage reports no phase counter: {r}"))
}

fn rmate_of(r: &Json) -> Vec<Option<usize>> {
    r.get("rmate")
        .and_then(Json::as_arr)
        .expect("reply with rmate")
        .iter()
        .map(Json::as_usize)
        .collect()
}

fn edges_json(edges: &[(usize, usize)]) -> String {
    let pairs: Vec<String> = edges.iter().map(|&(i, j)| format!("[{i},{j}]")).collect();
    format!("[{}]", pairs.join(","))
}

fn inline_instance(nrows: usize, ncols: usize, edges: &[(usize, usize)]) -> String {
    format!("{{\"nrows\":{nrows},\"ncols\":{ncols},\"edges\":{}}}", edges_json(edges))
}

/// A lower-triangular pattern with a full diagonal: row `i`'s adjacency is
/// a subset of columns `0..=i`, so (by induction on rows) the **only**
/// perfect matching is the diagonal — every exact solver must return the
/// same mate array, which is what makes the warm-vs-cold byte-identity
/// test meaningful rather than vacuous.
fn triangular_edges(n: usize) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, i));
        if i >= 1 {
            edges.push((i, i - 1));
        }
        if i >= 7 {
            edges.push((i, i - 7));
        }
    }
    edges
}

fn graph_from_edges(nrows: usize, ncols: usize, edges: &[(usize, usize)]) -> BipartiteGraph {
    let mut t = TripletMatrix::with_capacity(nrows, ncols, edges.len());
    for &(i, j) in edges {
        t.push(i, j);
    }
    BipartiteGraph::from_csr(t.into_csr())
}

// ---------------------------------------------------------------------------
// Engine-level protocol tests
// ---------------------------------------------------------------------------

/// The acceptance pin: a warm delta re-solve returns mates byte-identical
/// to a cold solve of the mutated instance, in strictly fewer phases.
#[test]
fn delta_resolve_is_byte_identical_to_cold_solve_with_fewer_phases() {
    let n = 64;
    let base = triangular_edges(n);
    // Mutate strictly below the diagonal: the unique perfect matching of
    // both patterns stays the diagonal, and the cached (diagonal) mates
    // survive the mutation — the warm finisher only has to certify.
    let remove = (9usize, 2usize);
    let add = (12usize, 3usize);
    assert!(base.contains(&remove) && !base.contains(&add));
    let mutated: Vec<(usize, usize)> =
        base.iter().copied().filter(|&e| e != remove).chain([add]).collect();

    let input = format!(
        "{{\"id\":\"cold-base\",\"pipeline\":\"hk-par\",\"instance\":{},\"store\":\"h\",\"mates\":true}}\n\
         {{\"id\":\"warm\",\"op\":\"delta\",\"handle\":\"h\",\"remove\":{},\"add\":{},\"finisher\":\"hk-par\",\"mates\":true}}\n\
         {{\"id\":\"cold-mut\",\"pipeline\":\"hk-par\",\"instance\":{},\"mates\":true}}\n",
        inline_instance(n, n, &base),
        edges_json(&[remove]),
        edges_json(&[add]),
        inline_instance(n, n, &mutated),
    );
    let lines = run_serve(&input, &ServeOptions { threads: 2, ..ServeOptions::default() });

    let warm = reply(&lines, "warm");
    let cold = reply(&lines, "cold-mut");
    assert_ok(warm);
    assert_ok(cold);
    assert_eq!(warm.get("warm").and_then(Json::as_bool), Some(true));

    // Byte-identical mates: the mutated pattern's unique perfect matching.
    let expected: Vec<Option<usize>> = (0..n).map(Some).collect();
    assert_eq!(rmate_of(warm), expected, "warm delta mates");
    assert_eq!(rmate_of(cold), expected, "cold solve mates");
    assert_eq!(rmate_of(warm), rmate_of(cold));

    // Strictly fewer phases: the warm start is already maximum, so the
    // finisher runs exactly its certifying phase; a cold solve cannot.
    let warm_phases = last_stage_phases(warm);
    let cold_phases = last_stage_phases(cold);
    assert!(
        warm_phases < cold_phases,
        "warm delta must re-augment in strictly fewer phases: warm {warm_phases}, cold {cold_phases}"
    );
    assert_eq!(warm_phases, 1, "a surviving maximum matching certifies in one phase");
}

/// A delta that breaks matched edges still lands on the exact optimum of
/// the mutated graph (checked against a locally computed sprank).
#[test]
fn delta_after_removing_matched_edges_reaches_the_exact_optimum() {
    let g = dsmatch::gen::erdos_renyi_square(400, 3.0, 11);
    let base: Vec<(usize, usize)> = g.csr().iter_entries().collect();
    // Remove a spread of edges (some will be matched), add a few fresh.
    let remove: Vec<(usize, usize)> = base.iter().copied().step_by(97).take(12).collect();
    let add: Vec<(usize, usize)> = vec![(0, 399), (399, 0), (200, 7)];
    let mutated: Vec<(usize, usize)> =
        base.iter().copied().filter(|e| !remove.contains(e)).chain(add.iter().copied()).collect();
    let expected = sprank(&graph_from_edges(400, 400, &mutated));

    let input = format!(
        "{{\"id\":\"seed\",\"pipeline\":\"scale:sk:3,two,pf-par\",\"instance\":{},\"store\":\"g\"}}\n\
         {{\"id\":\"delta\",\"op\":\"delta\",\"handle\":\"g\",\"remove\":{},\"add\":{}}}\n",
        inline_instance(400, 400, &base),
        edges_json(&remove),
        edges_json(&add),
    );
    let lines = run_serve(&input, &ServeOptions { threads: 2, ..ServeOptions::default() });
    let delta = reply(&lines, "delta");
    assert_ok(delta);
    assert_eq!(delta.get("warm").and_then(Json::as_bool), Some(true));
    let card = delta
        .get("report")
        .and_then(|r| r.get("cardinality"))
        .and_then(Json::as_usize)
        .expect("delta report cardinality");
    assert_eq!(card, expected, "delta must reach the mutated instance's sprank");
}

/// The in-place CSR patch behind delta jobs is byte-identical to a full
/// rebuild, including the overlap semantics: an edge in both lists is
/// added (add wins), removing an absent edge and adding a present one are
/// no-ops. A delta whose add/remove cancel out must therefore return
/// exactly the base solve's mates, certifying in one phase.
#[test]
fn delta_patch_with_overlapping_noops_matches_the_unpatched_instance() {
    let n = 48;
    let base = triangular_edges(n);
    // (9,2) is present: removed AND re-added (add wins ⇒ still present);
    // (9,9) is present: re-added (no-op); (2,9) is absent: removed (no-op).
    assert!(base.contains(&(9, 2)) && base.contains(&(9, 9)) && !base.contains(&(2, 9)));
    let input = format!(
        "{{\"id\":\"seed\",\"pipeline\":\"hk-par\",\"instance\":{},\"store\":\"h\",\"mates\":true}}\n\
         {{\"id\":\"noop\",\"op\":\"delta\",\"handle\":\"h\",\"remove\":{},\"add\":{},\"finisher\":\"hk-par\",\"mates\":true}}\n",
        inline_instance(n, n, &base),
        edges_json(&[(9, 2), (2, 9)]),
        edges_json(&[(9, 2), (9, 9)]),
    );
    let lines = run_serve(&input, &ServeOptions { threads: 2, ..ServeOptions::default() });
    let seed = reply(&lines, "seed");
    let noop = reply(&lines, "noop");
    assert_ok(seed);
    assert_ok(noop);
    assert_eq!(rmate_of(noop), rmate_of(seed), "cancelling patch must not move any mate");
    assert_eq!(last_stage_phases(noop), 1, "nothing to re-augment: one certifying phase");
}

/// A delta job may name `auto` as its finisher: the statistics policy
/// picks the engine for the *mutated* instance and the reply's stage
/// reports which one ran in its `selected` field.
#[test]
fn delta_with_auto_finisher_reports_the_selected_engine() {
    let g = dsmatch::gen::erdos_renyi_square(400, 3.0, 11);
    let base: Vec<(usize, usize)> = g.csr().iter_entries().collect();
    let remove: Vec<(usize, usize)> = base.iter().copied().step_by(151).take(5).collect();
    let add: Vec<(usize, usize)> = vec![(7, 301), (399, 12)];
    let mutated: Vec<(usize, usize)> =
        base.iter().copied().filter(|e| !remove.contains(e)).chain(add.iter().copied()).collect();
    let expected = sprank(&graph_from_edges(400, 400, &mutated));

    let input = format!(
        "{{\"id\":\"seed\",\"pipeline\":\"scale:sk:3,two,pf-par\",\"instance\":{},\"store\":\"g\"}}\n\
         {{\"id\":\"delta\",\"op\":\"delta\",\"handle\":\"g\",\"remove\":{},\"add\":{},\"finisher\":\"auto\"}}\n",
        inline_instance(400, 400, &base),
        edges_json(&remove),
        edges_json(&add),
    );
    let lines = run_serve(&input, &ServeOptions { threads: 2, ..ServeOptions::default() });
    let delta = reply(&lines, "delta");
    assert_ok(delta);
    assert_eq!(delta.get("warm").and_then(Json::as_bool), Some(true));
    let stages = delta
        .get("report")
        .and_then(|r| r.get("stages"))
        .and_then(Json::as_arr)
        .expect("delta report stages");
    let stage = stages.last().expect("delta stage");
    assert_eq!(stage.get("stage").and_then(Json::as_str), Some("delta:auto"));
    // Sparse + uniform degrees: the policy resolves to the grafted forest.
    assert_eq!(stage.get("selected").and_then(Json::as_str), Some("pf-graft"));
    let card = delta
        .get("report")
        .and_then(|r| r.get("cardinality"))
        .and_then(Json::as_usize)
        .expect("delta report cardinality");
    assert_eq!(card, expected, "auto delta must reach the mutated instance's sprank");
}

/// One cached instance, many pipeline specs: parse once, solve under
/// per-job specs, exact jobs all landing on quality 1.
#[test]
fn cached_handle_serves_many_pipeline_specs() {
    let input = concat!(
        "{\"id\":\"load\",\"pipeline\":\"two\",\"instance\":\"gen:er:500:4:3\",\"store\":\"er\"}\n",
        "{\"id\":\"hk\",\"pipeline\":\"hk\",\"instance\":{\"handle\":\"er\"},\"quality\":true}\n",
        "{\"id\":\"pf-par\",\"pipeline\":\"scale:sk:3,two,pf-par\",\"instance\":{\"handle\":\"er\"},\"quality\":true}\n",
        "{\"id\":\"heur\",\"pipeline\":\"scale:sk:5,one\",\"instance\":{\"handle\":\"er\"},\"quality\":true}\n",
    );
    let lines = run_serve(input, &ServeOptions { threads: 2, ..ServeOptions::default() });
    for id in ["load", "hk", "pf-par", "heur"] {
        assert_ok(reply(&lines, id));
    }
    for exact in ["hk", "pf-par"] {
        let q = reply(&lines, exact)
            .get("report")
            .and_then(|r| r.get("quality"))
            .and_then(Json::as_f64)
            .expect("quality requested");
        assert_eq!(q, 1.0, "exact job {exact} must report quality 1");
    }
    let heur_q = reply(&lines, "heur")
        .get("report")
        .and_then(|r| r.get("quality"))
        .and_then(Json::as_f64)
        .expect("quality requested");
    assert!(heur_q > 0.5 && heur_q <= 1.0, "heuristic quality in range: {heur_q}");
}

/// Structured error replies, and the daemon keeps serving after each.
#[test]
fn protocol_errors_are_structured_and_nonfatal() {
    let input = concat!(
        "{\"id\":\"ghost\",\"op\":\"delta\",\"handle\":\"nope\"}\n",
        "{\"id\":\"badspec\",\"pipeline\":\"two,frobnicate\",\"instance\":\"gen:er:40:3\"}\n",
        "{\"id\":\"badgen\",\"pipeline\":\"two\",\"instance\":\"gen:zipf:40\"}\n",
        "{\"id\":\"oob\",\"pipeline\":\"two\",\"instance\":{\"nrows\":4,\"ncols\":4,\"edges\":[[9,0]]}}\n",
        "{\"id\":\"alive\",\"op\":\"ping\"}\n",
    );
    let lines = run_serve(input, &ServeOptions { threads: 1, ..ServeOptions::default() });
    assert_eq!(code_of(reply(&lines, "ghost")), "handle");
    assert_eq!(code_of(reply(&lines, "badspec")), "spec");
    assert!(
        reply(&lines, "badspec")
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown algorithm"),
        "SpecError text is surfaced verbatim"
    );
    assert_eq!(code_of(reply(&lines, "badgen")), "instance");
    assert_eq!(code_of(reply(&lines, "oob")), "instance");
    assert_ok(reply(&lines, "alive"));
}

/// Admission control: with `max_queue: 1` and one job parked on a worker,
/// the next worker-bound job is rejected deterministically — the reader
/// counts in-flight jobs at submission, so no timing is involved.
#[test]
fn full_queue_rejects_with_a_structured_error() {
    let input = concat!(
        "{\"id\":\"slow\",\"op\":\"sleep\",\"ms\":300}\n",
        "{\"id\":\"rejected\",\"pipeline\":\"two\",\"instance\":\"gen:er:40:3\"}\n",
    );
    let opts = ServeOptions { threads: 1, max_queue: 1, ..ServeOptions::default() };
    let lines = run_serve(input, &opts);
    assert_ok(reply(&lines, "slow"));
    assert_eq!(code_of(reply(&lines, "rejected")), "queue");
}

/// Reports stream in completion order: a ping submitted after a sleeping
/// job is answered before it.
#[test]
fn replies_stream_in_completion_order_not_submission_order() {
    let input = concat!(
        "{\"id\":\"slow\",\"op\":\"sleep\",\"ms\":300}\n",
        "{\"id\":\"fast\",\"op\":\"ping\"}\n",
    );
    let lines = run_serve(input, &ServeOptions { threads: 2, ..ServeOptions::default() });
    let pos = |id: &str| {
        lines
            .iter()
            .position(|l| l.get("id").and_then(Json::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no reply {id}"))
    };
    assert!(pos("fast") < pos("slow"), "the ping must not wait behind the sleeping job");
}

/// A shutdown op stops the session: jobs after it are never read.
#[test]
fn shutdown_op_stops_reading() {
    let input = concat!(
        "{\"id\":\"p\",\"op\":\"ping\"}\n",
        "{\"id\":\"bye\",\"op\":\"shutdown\"}\n",
        "{\"id\":\"never\",\"op\":\"ping\"}\n",
    );
    let lines = run_serve(input, &ServeOptions { threads: 1, ..ServeOptions::default() });
    assert_ok(reply(&lines, "p"));
    assert_ok(reply(&lines, "bye"));
    assert!(
        !lines.iter().any(|l| l.get("id").and_then(Json::as_str) == Some("never")),
        "jobs after shutdown must not be processed"
    );
    let last = &lines[lines.len() - 1];
    assert_eq!(last.get("jobs").and_then(Json::as_usize), Some(2));
}

// ---------------------------------------------------------------------------
// Real-binary tests
// ---------------------------------------------------------------------------

fn serve_cmd(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dsmatch"));
    cmd.arg("serve").args(args);
    cmd
}

/// An interactive daemon child: write one job line, then block on its
/// reply — the synchronization the stateful lifecycle tests (drop,
/// eviction) need for determinism.
struct Daemon {
    child: Child,
    stdin: ChildStdin,
    stdout: std::io::Lines<BufReader<ChildStdout>>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = serve_cmd(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawning dsmatch serve");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap()).lines();
        let mut daemon = Daemon { child, stdin, stdout };
        let ready = daemon.next_line();
        assert!(ready.contains("\"event\":\"ready\""), "first line: {ready}");
        daemon
    }

    fn next_line(&mut self) -> String {
        self.stdout.next().expect("daemon closed its stdout").expect("reading daemon stdout")
    }

    /// Send one job line and return its reply line.
    fn round_trip(&mut self, job: &str) -> String {
        writeln!(self.stdin, "{job}").expect("writing to daemon stdin");
        self.next_line()
    }

    fn finish(mut self) {
        drop(self.stdin);
        let status = self.child.wait().expect("waiting for daemon");
        assert!(status.success(), "daemon exit status: {status}");
    }
}

/// Batch mode through the real binary: mixed jobs over stdin, one reply
/// line per job, the requested worker count actually observed.
#[test]
fn binary_batch_streams_one_reply_per_job() {
    let jobs = concat!(
        "{\"id\":1,\"pipeline\":\"scale:sk:3,two\",\"instance\":\"gen:er:300:3:1\",\"store\":\"a\"}\n",
        "{\"id\":2,\"op\":\"delta\",\"handle\":\"a\",\"add\":[[0,1]]}\n",
        "{\"id\":3,\"pipeline\":\"hk\",\"instance\":\"gen:er:200:3:2\"}\n",
        "{\"id\":4,\"op\":\"ping\"}\n",
    );
    let mut child = serve_cmd(&["--threads", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning dsmatch serve");
    child.stdin.take().unwrap().write_all(jobs.as_bytes()).expect("writing jobs");
    let out = child.wait_with_output().expect("daemon output");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"observed_workers\":2"), "ready line: {text}");
    let replies = text.lines().filter(|l| l.contains("\"id\":")).count();
    assert_eq!(replies, 4, "one reply line per job:\n{text}");
    assert!(!text.contains("\"ok\":false"), "all jobs succeed:\n{text}");
    assert!(text.contains("\"warm\":true"), "the delta re-solve ran warm:\n{text}");
}

/// Interactive lifecycle: errors of every class leave the daemon serving.
#[test]
fn binary_interactive_daemon_survives_error_replies() {
    let mut d = Daemon::spawn(&["--threads", "2"]);
    for (job, code) in [
        ("{oops", "\"code\":\"parse\""),
        ("{\"id\":1,\"pipeline\":\"warp\",\"instance\":\"gen:er:40:3\"}", "\"code\":\"spec\""),
        ("{\"id\":2,\"op\":\"delta\",\"handle\":\"ghost\"}", "\"code\":\"handle\""),
        ("{\"id\":3,\"pipeline\":\"two\",\"instance\":\"gen:er:0:3\"}", "\"code\":\"instance\""),
    ] {
        let reply = d.round_trip(job);
        assert!(reply.contains(code), "job {job}: reply {reply}");
        assert!(reply.contains("\"ok\":false"), "reply {reply}");
    }
    let pong = d.round_trip("{\"id\":4,\"op\":\"ping\"}");
    assert!(pong.contains("\"ok\":true"), "daemon still serves after errors: {pong}");
    d.finish();
}

/// Handle lifecycle: store, drop, and LRU eviction under a zero cache
/// budget — the older idle handle goes, the just-written one survives.
#[test]
fn binary_handle_lifecycle_drop_and_eviction() {
    let mut d = Daemon::spawn(&["--threads", "2", "--cache-mb", "0"]);
    let store = |h: &str| {
        format!(
            "{{\"id\":\"s\",\"pipeline\":\"two\",\"instance\":\"gen:er:200:3\",\"store\":{h:?}}}"
        )
    };
    assert!(d.round_trip(&store("h1")).contains("\"ok\":true"));
    // Storing h2 pushes the (zero) budget over; idle h1 is the LRU victim.
    assert!(d.round_trip(&store("h2")).contains("\"ok\":true"));
    let gone = d.round_trip("{\"id\":\"g\",\"pipeline\":\"hk\",\"instance\":{\"handle\":\"h1\"}}");
    assert!(
        gone.contains("\"code\":\"handle\""),
        "h1 must have been evicted under a zero budget: {gone}"
    );
    let kept = d.round_trip("{\"id\":\"k\",\"pipeline\":\"hk\",\"instance\":{\"handle\":\"h2\"}}");
    assert!(kept.contains("\"ok\":true"), "the just-written handle survives: {kept}");

    // Explicit drop detaches, further references fail, re-store works.
    assert!(d
        .round_trip("{\"id\":\"d\",\"op\":\"drop\",\"handle\":\"h2\"}")
        .contains("\"ok\":true"));
    let dropped =
        d.round_trip("{\"id\":\"g2\",\"pipeline\":\"hk\",\"instance\":{\"handle\":\"h2\"}}");
    assert!(dropped.contains("\"code\":\"handle\""), "{dropped}");
    assert!(d.round_trip(&store("h2")).contains("\"ok\":true"));
    d.finish();
}

// ---------------------------------------------------------------------------
// Unix-socket helpers (shared by the transport + concurrency tests)
// ---------------------------------------------------------------------------

/// A fresh per-test socket path under the system temp dir.
#[cfg(unix)]
fn socket_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "dsmatch-{tag}-{}-{}.sock",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Connect to `path`, retrying while the daemon is still binding it.
#[cfg(unix)]
fn connect_socket(path: &std::path::Path) -> std::os::unix::net::UnixStream {
    let deadline = std::time::Instant::now() + test_timeout(30);
    loop {
        match std::os::unix::net::UnixStream::connect(path) {
            Ok(s) => return s,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(20))
            }
            Err(e) => panic!("socket {path:?} never came up: {e}"),
        }
    }
}

/// One client session on the socket daemon: a write half plus a line
/// reader over a clone of the same stream.
#[cfg(unix)]
struct SocketClient {
    write: std::os::unix::net::UnixStream,
    lines: std::io::Lines<BufReader<std::os::unix::net::UnixStream>>,
}

#[cfg(unix)]
impl SocketClient {
    fn new(stream: std::os::unix::net::UnixStream) -> SocketClient {
        let lines = BufReader::new(stream.try_clone().expect("cloning stream")).lines();
        SocketClient { write: stream, lines }
    }

    /// Connect and consume the per-connection ready line.
    fn ready(path: &std::path::Path) -> SocketClient {
        let mut c = SocketClient::new(connect_socket(path));
        let first = c.next();
        assert!(first.contains("\"event\":\"ready\""), "first line: {first}");
        c
    }

    fn next(&mut self) -> String {
        self.lines.next().expect("socket closed").expect("reading socket")
    }

    fn send(&mut self, line: &str) {
        writeln!(self.write, "{line}").expect("writing to socket");
    }

    /// Send one job line and return its reply, asserting the reply's id.
    fn round_trip(&mut self, job: &str, id: &str) -> String {
        self.send(job);
        let reply = self.next();
        assert!(reply.contains(&format!("\"id\":{id:?}")), "job {job}: reply {reply}");
        reply
    }
}

/// Satellite pin: warm `delta` jobs racing on the SAME handle from
/// concurrent client connections serialize per-handle FIFO — every reply
/// is byte-identical to the one the same job id gets from a sequential
/// single-connection run, and the daemon's cached state ends up intact.
///
/// Each client toggles its own below-diagonal edge of a triangular
/// pattern, so the mutations commute and every intermediate pattern keeps
/// the diagonal as its unique perfect matching: any interleaving that
/// respects per-handle serialization must report the diagonal mates.
#[cfg(unix)]
#[test]
fn concurrent_delta_clients_on_one_handle_match_sequential_byte_for_byte() {
    let n = 48;
    let base = triangular_edges(n);
    let path = socket_path("delta-race");
    let mut child = serve_cmd(&["--threads", "2", "--socket", path.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning socket daemon");

    let seed_job = format!(
        "{{\"id\":\"seed\",\"pipeline\":\"hk-par\",\"instance\":{},\"store\":\"h\",\"mates\":true}}",
        inline_instance(n, n, &base)
    );
    // Job lines per client: toggle edge (20+k, 19+k) off and back on, twice.
    let client_jobs = |k: usize| -> Vec<(String, String)> {
        let (i, j) = (20 + k, 19 + k);
        assert!(base.contains(&(i, j)), "toggled edge must exist in the base pattern");
        (0..4)
            .map(|r| {
                let id = format!("c{k}-{r}");
                let patch = if r % 2 == 0 {
                    format!("\"remove\":[[{i},{j}]]")
                } else {
                    format!("\"add\":[[{i},{j}]]")
                };
                let job = format!(
                    "{{\"id\":{id:?},\"op\":\"delta\",\"handle\":\"h\",{patch},\
                     \"finisher\":\"hk-par\",\"mates\":true}}"
                );
                (id, job)
            })
            .collect()
    };

    let mut seeder = SocketClient::ready(&path);
    let seeded = seeder.round_trip(&seed_job, "seed");
    assert!(seeded.contains("\"ok\":true"), "{seeded}");

    // Race: three connections hammer the handle concurrently.
    let concurrent: Vec<(String, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|k| {
                let path = &path;
                let jobs = client_jobs(k);
                s.spawn(move || {
                    let mut c = SocketClient::ready(path);
                    jobs.into_iter()
                        .map(|(id, job)| {
                            let reply = c.round_trip(&job, &id);
                            (id, reply)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });

    // The cached pattern survived the race: a fresh solve on the handle
    // still finds the diagonal, and the daemon still serves.
    let check = seeder.round_trip(
        "{\"id\":\"check\",\"pipeline\":\"hk\",\"instance\":{\"handle\":\"h\"},\"mates\":true}",
        "check",
    );
    assert!(check.contains("\"ok\":true"), "{check}");
    let bye = seeder.round_trip("{\"id\":\"bye\",\"op\":\"shutdown\"}", "bye");
    assert!(bye.contains("\"ok\":true"), "{bye}");
    assert!(child.wait().expect("waiting for daemon").success());

    // Sequential reference: the same job lines down ONE connection of an
    // in-process engine, in deterministic order.
    let mut input = format!("{seed_job}\n");
    for k in 0..3 {
        for (_, job) in client_jobs(k) {
            input.push_str(&job);
            input.push('\n');
        }
    }
    let sequential = run_serve(&input, &ServeOptions { threads: 2, ..ServeOptions::default() });

    let expected: Vec<Option<usize>> = (0..n).map(Some).collect();
    assert_eq!(concurrent.len(), 12, "one reply per racing delta job");
    for (id, line) in &concurrent {
        assert!(line.contains("\"ok\":true"), "job {id}: {line}");
        assert!(line.contains("\"warm\":true"), "job {id} must run warm: {line}");
        let doc = Json::parse(line).unwrap_or_else(|e| panic!("reply {line:?}: {e}"));
        assert_eq!(rmate_of(&doc), expected, "job {id} mates");
        assert_eq!(
            rmate_of(&doc),
            rmate_of(reply(&sequential, id)),
            "job {id}: concurrent reply must be byte-identical to the sequential run"
        );
    }
}

/// Admission control on the socket transport: with `--max-clients 1` the
/// second connection is turned away with one structured busy line, and
/// the slot is reusable once the first client hangs up.
#[cfg(unix)]
#[test]
fn max_clients_overflow_is_rejected_with_busy_and_slot_is_reclaimed() {
    let path = socket_path("max-clients");
    let mut child =
        serve_cmd(&["--threads", "1", "--max-clients", "1", "--socket", path.to_str().unwrap()])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawning socket daemon");

    let mut first = SocketClient::ready(&path);
    let pong = first.round_trip("{\"id\":\"p\",\"op\":\"ping\"}", "p");
    assert!(pong.contains("\"ok\":true"), "{pong}");

    // Second concurrent connection: one busy line, then EOF.
    let mut second = SocketClient::new(connect_socket(&path));
    let line = second.next();
    assert!(line.contains("\"code\":\"busy\""), "rejection line: {line}");
    assert!(line.contains("max_clients"), "the error names the limit: {line}");
    assert!(second.lines.next().is_none(), "rejected connections are closed");

    // Hang up the occupant; the daemon reclaims the slot (the handler
    // thread exits asynchronously, so admission may lag a beat).
    drop(first);
    let deadline = std::time::Instant::now() + test_timeout(30);
    let mut third = loop {
        let mut c = SocketClient::new(connect_socket(&path));
        let first_line = c.next();
        if first_line.contains("\"event\":\"ready\"") {
            break c;
        }
        assert!(first_line.contains("\"code\":\"busy\""), "unexpected line: {first_line}");
        assert!(std::time::Instant::now() < deadline, "slot never reclaimed");
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    let bye = third.round_trip("{\"id\":\"bye\",\"op\":\"shutdown\"}", "bye");
    assert!(bye.contains("\"ok\":true"), "{bye}");
    assert!(child.wait().expect("waiting for daemon").success());
}

/// The Unix-socket transport: same protocol, daemon shared across the
/// connection, shutdown op ends the process.
#[cfg(unix)]
#[test]
fn binary_unix_socket_round_trip() {
    use std::os::unix::net::UnixStream;
    let dir = std::env::temp_dir();
    let path = dir.join(format!("dsmatch-serve-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut child = serve_cmd(&["--threads", "2", "--socket", path.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning socket daemon");

    // Wait for the socket to appear (the daemon binds it at startup).
    let deadline = std::time::Instant::now() + test_timeout(30);
    let stream = loop {
        match UnixStream::connect(&path) {
            Ok(s) => break s,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(20))
            }
            Err(e) => {
                let _ = child.kill();
                panic!("socket {path:?} never came up: {e}");
            }
        }
    };
    let mut reader = BufReader::new(stream.try_clone().expect("cloning stream")).lines();
    let mut write = stream;
    let mut next = || reader.next().expect("socket closed").expect("reading socket");

    assert!(next().contains("\"event\":\"ready\""));
    writeln!(write, "{{\"id\":1,\"pipeline\":\"two,pf-par\",\"instance\":\"gen:er:200:3\"}}")
        .unwrap();
    assert!(next().contains("\"ok\":true"));
    writeln!(write, "{{\"id\":2,\"op\":\"shutdown\"}}").unwrap();
    assert!(next().contains("\"ok\":true"));
    let status = child.wait().expect("waiting for socket daemon");
    assert!(status.success(), "daemon exit: {status}");
    let _ = std::fs::remove_file(&path);
}
