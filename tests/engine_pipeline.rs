//! Engine-layer correctness: pipeline composition reaches the optimum,
//! and workspace reuse is bit-for-bit equivalent to fresh allocation —
//! with stable buffers, so batch solving allocates the workspace once.

use dsmatch::engine::{AlgorithmKind, Pipeline, Solver, Workspace};
use dsmatch::prelude::*;
use proptest::prelude::*;

/// Strategy: a random pattern as (nrows, ncols, entry bitmap).
fn small_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..12, 1usize..12).prop_flat_map(|(m, n)| {
        proptest::collection::vec(proptest::bool::weighted(0.3), m * n).prop_map(move |bits| {
            let mut t = dsmatch::graph::TripletMatrix::new(m, n);
            for (k, &b) in bits.iter().enumerate() {
                if b {
                    t.push(k / n, k % n);
                }
            }
            BipartiteGraph::from_csr(t.into_csr())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// For **every** heuristic H, `scale → H → augment(pf)` is exact: the
    /// finisher must recover exactly the Hopcroft–Karp optimum no matter
    /// how partial the heuristic's matching was.
    #[test]
    fn every_heuristic_augmented_by_pf_is_exact(g in small_graph(), seed in 0u64..500) {
        let opt = hopcroft_karp(&g).cardinality();
        let mut ws = Workspace::new();
        for h in AlgorithmKind::all().into_iter().filter(|a| !a.is_exact()) {
            let spec = format!("scale:sk:5,{h},pf");
            let pipeline: Pipeline = spec.parse().unwrap();
            let report = pipeline.with_seed(seed).solve(&g, &mut ws);
            report.matching.verify(&g).unwrap();
            prop_assert_eq!(report.cardinality(), opt, "pipeline {} missed the optimum", spec);
            // The augment stage is reported and cannot shrink the matching.
            let heur_card = report.stages[1].cardinality.unwrap();
            prop_assert!(heur_card <= opt);
            prop_assert_eq!(report.stages.len(), 3);
        }
    }
}

/// Workspace reuse across consecutive solves must be byte-identical to
/// fresh-allocation solves: same mate arrays, not just cardinalities.
///
/// Run on a 1-thread pool: the property under test is buffer reuse, and
/// the sequential schedule makes even the racy heuristics (`one`, `two`,
/// `one-out`) bit-reproducible so the comparison can stay exact.
#[test]
fn workspace_reuse_is_byte_identical_to_fresh_allocation() {
    let g = dsmatch::gen::erdos_renyi_square(2_500, 4.0, 17);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    for spec in ["scale:sk:5,two,pf", "scale:ruiz:4,one,hk", "ks", "scale:sk:3,one-out", "hk"] {
        let pipeline: Pipeline = spec.parse().unwrap();
        let mut shared = Workspace::new();
        for seed in [1u64, 2, 3] {
            let reused = pool.install(|| pipeline.clone().with_seed(seed).solve(&g, &mut shared));
            let fresh =
                pool.install(|| pipeline.clone().with_seed(seed).solve(&g, &mut Workspace::new()));
            assert_eq!(
                reused.matching, fresh.matching,
                "{spec} seed {seed}: reused workspace diverged from fresh allocation"
            );
        }
    }
}

/// The same reuse-vs-fresh equivalence under a real 4-thread pool, at the
/// strength the algorithms actually guarantee there: identical
/// cardinalities and valid matchings (mate arrays may differ because the
/// racy heuristics are schedule-dependent — see `tests/determinism.rs`).
#[test]
fn workspace_reuse_matches_fresh_under_parallel_pool() {
    let g = dsmatch::gen::erdos_renyi_square(2_500, 4.0, 17);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    for spec in ["scale:sk:5,two,pf", "scale:ruiz:4,one,hk", "scale:sk:3,one-out"] {
        let pipeline: Pipeline = spec.parse().unwrap();
        let mut shared = Workspace::new();
        for seed in [1u64, 2, 3] {
            let reused = pool.install(|| pipeline.clone().with_seed(seed).solve(&g, &mut shared));
            let fresh =
                pool.install(|| pipeline.clone().with_seed(seed).solve(&g, &mut Workspace::new()));
            reused.matching.verify(&g).unwrap();
            fresh.matching.verify(&g).unwrap();
            assert_eq!(
                reused.cardinality(),
                fresh.cardinality(),
                "{spec} seed {seed}: reused workspace changed the solve outcome"
            );
        }
    }
}

/// The acceptance contract of batch mode: after the first solve, the
/// workspace buffers are stable — same pointer, same capacity — across
/// further solves on the same-shaped instance, i.e. the workspace is
/// allocated once.
#[test]
fn workspace_buffers_are_stable_across_batch_solves() {
    let g = dsmatch::gen::erdos_renyi_square(4_000, 4.0, 5);
    let pipeline: Pipeline = "scale:sk:5,two,pf".parse().unwrap();
    let mut ws = Workspace::new();
    // Warm-up solve: every buffer grows to the instance shape here.
    pipeline.clone().with_seed(1).solve(&g, &mut ws);

    let footprint = |ws: &Workspace| -> Vec<(usize, usize)> {
        vec![
            (ws.scaling.dr.as_ptr() as usize, ws.scaling.dr.capacity()),
            (ws.scaling.dc.as_ptr() as usize, ws.scaling.dc.capacity()),
            (ws.heur.rchoice.as_ptr() as usize, ws.heur.rchoice.capacity()),
            (ws.heur.cchoice.as_ptr() as usize, ws.heur.cchoice.capacity()),
            (ws.heur.cslots.as_ptr() as usize, ws.heur.cslots.capacity()),
            (ws.heur.ksmt.choice.as_ptr() as usize, ws.heur.ksmt.choice.capacity()),
            (ws.heur.ksmt.mat.as_ptr() as usize, ws.heur.ksmt.mat.capacity()),
            (ws.heur.ksmt.deg.as_ptr() as usize, ws.heur.ksmt.deg.capacity()),
            (ws.heur.ksmt.mark.as_ptr() as usize, ws.heur.ksmt.mark.capacity()),
            (ws.augment.rmate.as_ptr() as usize, ws.augment.rmate.capacity()),
            (ws.augment.cmate.as_ptr() as usize, ws.augment.cmate.capacity()),
            (ws.augment.dist.as_ptr() as usize, ws.augment.dist.capacity()),
            (ws.augment.iter.as_ptr() as usize, ws.augment.iter.capacity()),
            (ws.augment.visited.as_ptr() as usize, ws.augment.visited.capacity()),
            (ws.augment.look.as_ptr() as usize, ws.augment.look.capacity()),
        ]
    };
    let warm = footprint(&ws);
    for seed in 2..=10u64 {
        let report = pipeline.clone().with_seed(seed).solve(&g, &mut ws);
        report.matching.verify(&g).unwrap();
        assert_eq!(footprint(&ws), warm, "solve with seed {seed} reallocated a workspace buffer");
    }
}

/// `two_sided_choices_into` — the per-solve sampling stage — keeps both
/// choice buffers pointer-stable across repeated solves *and across pool
/// sizes*, and produces byte-identical choices for every pool size. (The
/// companion audit of `gen:er` synthesis found no per-solve churn: the
/// triplet buffer is pre-sized from the draw count and synthesis runs once
/// per instance, outside the batch loop.)
#[test]
fn choice_buffers_stable_across_solves_and_pool_sizes() {
    use dsmatch::heur::two_sided_choices_into;
    let g = dsmatch::gen::erdos_renyi_square(4_000, 4.0, 5);
    let s = dsmatch::scale::sinkhorn_knopp(&g, &ScalingConfig::iterations(3));
    let (mut rc, mut cc) = (Vec::new(), Vec::new());
    two_sided_choices_into(&g, &s, 1, &mut rc, &mut cc);
    let footprint = (rc.as_ptr() as usize, rc.capacity(), cc.as_ptr() as usize, cc.capacity());
    let reference = (rc.clone(), cc.clone());
    for t in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(t).build().unwrap();
        for seed in [1u64, 9] {
            pool.install(|| two_sided_choices_into(&g, &s, seed, &mut rc, &mut cc));
            assert_eq!(
                footprint,
                (rc.as_ptr() as usize, rc.capacity(), cc.as_ptr() as usize, cc.capacity()),
                "choice buffers reallocated at {t} threads, seed {seed}"
            );
            if seed == 1 {
                assert_eq!((rc.clone(), cc.clone()), reference, "choices differ at {t} threads");
            }
        }
    }
}

/// Per-stage instrumentation: stage list matches the spec, scaling
/// metadata is present exactly when a scale stage ran, and quality is
/// filled on request.
#[test]
fn reports_are_fully_instrumented() {
    let g = dsmatch::gen::erdos_renyi_square(1_200, 4.0, 9);
    let mut ws = Workspace::new();

    let full: Pipeline = "scale:sk:7,two,pf".parse().unwrap();
    let mut report = full.solve(&g, &mut ws);
    assert_eq!(report.stages.len(), 3);
    assert_eq!(report.stages[0].stage, "scale:sk:7");
    assert_eq!(report.stages[1].stage, "two");
    assert_eq!(report.stages[2].stage, "augment:pf");
    assert_eq!(report.scaling_iterations, Some(7));
    assert!(report.scaling_error.unwrap() >= 0.0);
    assert!(report.stages.iter().all(|s| s.seconds >= 0.0));
    assert!(report.total_seconds() >= report.stages[0].seconds);
    assert_eq!(report.quality, None);
    let opt = sprank(&g);
    report.set_quality(opt);
    assert_eq!(report.quality, Some(1.0), "pf-finished pipelines are exact");

    let bare = Pipeline::bare(AlgorithmKind::KarpSipser);
    let report = bare.solve(&g, &mut ws);
    assert_eq!(report.stages.len(), 1);
    assert_eq!(report.scaling_iterations, None);
    assert_eq!(report.scaling_error, None);

    // JSON rendering of a report is parseable-shaped and complete.
    let json = report.to_json().to_string();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"stages\":[{\"stage\":\"ks\""));
}

/// The `Solver` impl on `AlgorithmKind` is the single-stage pipeline.
#[test]
fn algorithm_kind_solves_directly() {
    let g = dsmatch::gen::permutation(500, 3);
    let mut ws = Workspace::new();
    for a in AlgorithmKind::all() {
        let report = a.solve(&g, &mut ws);
        report.matching.verify(&g).unwrap();
        assert!(report.matching.is_perfect(), "{a} on a permutation");
        assert_eq!(report.stages.len(), 1);
    }
}
