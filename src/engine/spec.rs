//! Typed errors for the pipeline spec grammar
//! (`[scale[:sk|ruiz][:iters],]<algo>[,<exact-finisher>]`).
//!
//! Every surface that parses a spec — the CLI's `--pipeline`/`--algo`
//! flags, the `dsmatch serve` job protocol, programmatic
//! [`Pipeline`](crate::engine::Pipeline) construction — gets the same
//! [`SpecError`], so callers can match on *what* went wrong instead of
//! grepping an error string, while `Display` keeps the exact human-readable
//! messages the CLI has always printed.

use super::registry::AlgorithmKind;

/// Why a pipeline or algorithm spec failed to parse.
///
/// ```
/// use dsmatch::engine::{Pipeline, SpecError};
///
/// let err = "scale:sk:5,frobnicate".parse::<Pipeline>().unwrap_err();
/// assert_eq!(err, SpecError::UnknownAlgorithm { name: "frobnicate".into() });
///
/// let err = "scale:bogus,two".parse::<Pipeline>().unwrap_err();
/// assert!(matches!(err, SpecError::UnknownScaleMethod { .. }));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// A comma-separated stage was empty (`"two,,pf"`).
    EmptyStage {
        /// The full offending spec.
        spec: String,
    },
    /// The spec named no algorithm stage (`""`, or `"scale"` alone).
    MissingAlgorithm {
        /// The full offending spec.
        spec: String,
    },
    /// More stages than `scale,algorithm,finisher`.
    TooManyStages {
        /// The full offending spec.
        spec: String,
    },
    /// An algorithm name not in the [`AlgorithmKind`] registry.
    UnknownAlgorithm {
        /// The unrecognized name.
        name: String,
    },
    /// A `scale:` option that is neither `sk`/`ruiz` nor an iteration
    /// count.
    UnknownScaleMethod {
        /// The unrecognized option token.
        option: String,
        /// The full offending spec.
        spec: String,
    },
    /// A numeric-looking `scale:` iteration count that did not parse as an
    /// unsigned integer.
    BadIters {
        /// The unparseable token.
        value: String,
        /// The full offending spec.
        spec: String,
    },
    /// The finisher stage is not an exact algorithm.
    NonExactFinisher {
        /// The rejected finisher.
        finisher: AlgorithmKind,
    },
    /// The algorithm stage is already exact; a finisher adds nothing.
    RedundantFinisher {
        /// The (exact) algorithm stage.
        algorithm: AlgorithmKind,
        /// The redundant finisher.
        finisher: AlgorithmKind,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::EmptyStage { spec } => {
                write!(f, "empty stage in pipeline spec {spec:?}")
            }
            SpecError::MissingAlgorithm { spec } => {
                write!(f, "pipeline spec {spec:?} names no algorithm")
            }
            SpecError::TooManyStages { spec } => {
                write!(f, "too many stages in pipeline spec {spec:?}")
            }
            SpecError::UnknownAlgorithm { name } => {
                let names: Vec<&str> = AlgorithmKind::all().iter().map(|a| a.name()).collect();
                write!(f, "unknown algorithm {name:?}; expected one of {}", names.join("|"))
            }
            SpecError::UnknownScaleMethod { option, spec } => {
                write!(f, "bad scale option {option:?} in {spec:?}; expected sk|ruiz|<iters>")
            }
            SpecError::BadIters { value, spec } => {
                write!(
                    f,
                    "bad scale iteration count {value:?} in {spec:?}; expected sk|ruiz|<iters>"
                )
            }
            SpecError::NonExactFinisher { finisher } => {
                write!(f, "augment stage {finisher} is not an exact algorithm")
            }
            SpecError::RedundantFinisher { algorithm, finisher } => {
                write!(f, "{algorithm} is already exact; augmenting with {finisher} is redundant")
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable_and_error_impl_exists() {
        let e = SpecError::UnknownAlgorithm { name: "nope".into() };
        assert!(e.to_string().starts_with("unknown algorithm \"nope\""));
        assert!(e.to_string().contains("pf-par"), "lists the registry");
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(boxed.source().is_none());

        let e = SpecError::RedundantFinisher {
            algorithm: AlgorithmKind::HopcroftKarp,
            finisher: AlgorithmKind::PothenFan,
        };
        assert_eq!(e.to_string(), "hk is already exact; augmenting with pf is redundant");
    }

    #[test]
    fn variants_are_matchable() {
        // The point of the typed enum: callers branch on the variant
        // instead of substring-matching a message.
        let errs = [
            SpecError::EmptyStage { spec: "two,,pf".into() },
            SpecError::BadIters { value: "9e9".into(), spec: "scale:9e9,two".into() },
            SpecError::UnknownScaleMethod {
                option: "bogus".into(),
                spec: "scale:bogus,two".into(),
            },
        ];
        assert!(matches!(errs[0], SpecError::EmptyStage { .. }));
        assert!(matches!(errs[1], SpecError::BadIters { .. }));
        assert!(matches!(errs[2], SpecError::UnknownScaleMethod { .. }));
    }
}
