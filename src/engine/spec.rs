//! Typed stages and errors for the pipeline spec grammar v2.
//!
//! Grammar (stages are **typed**, not positional):
//!
//! ```text
//! <pipeline> ::= dm,<pipeline>                              (decomposition)
//!              | [scale[:sk|ruiz][:iters],]<workload>[,<exact-finisher>]
//! <workload> ::= <algorithm>        (cardinality; the v1 grammar)
//!              | <weighted>         (greedy-w | path-grow | suitor | suitor-par)
//! ```
//!
//! Every v1 spec string parses byte-identically under v2 — the
//! compatibility test in `tests/engine_weighted_dm.rs` pins all of them.
//!
//! Every surface that parses a spec — the CLI's `--pipeline`/`--algo`
//! flags, the `dsmatch serve` job protocol, programmatic
//! [`Pipeline`](crate::engine::Pipeline) construction — gets the same
//! [`SpecError`], so callers can match on *what* went wrong instead of
//! grepping an error string, while `Display` keeps the exact human-readable
//! messages the CLI has always printed.

use super::pipeline::{ScaleMethod, ScaleStage, DEFAULT_SCALE_ITERATIONS};
use super::registry::{AlgorithmKind, WeightedKind};
use dsmatch_scale::ScalingConfig;

/// One classified token of a pipeline spec: the typed form of a
/// comma-separated stage, produced by [`StageKind::classify`]. The v2
/// grammar dispatches on this type instead of on token position, which is
/// what lets weighted workloads and `dm,` prefixes coexist with the v1
/// strings without ambiguity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StageKind {
    /// A `scale[:sk|ruiz][:iters]` stage.
    Scale(ScaleStage),
    /// A cardinality algorithm from the [`AlgorithmKind`] registry.
    Algorithm(AlgorithmKind),
    /// A weighted heuristic from the [`WeightedKind`] registry.
    Weighted(WeightedKind),
    /// The `dm` decomposition prefix (its inner pipeline is the remainder
    /// of the spec, parsed recursively).
    Decompose,
}

impl StageKind {
    /// Classify one trimmed, non-empty spec token. `spec` is the full
    /// original string, quoted in error messages.
    pub fn classify(token: &str, spec: &str) -> Result<StageKind, SpecError> {
        if token == "dm" {
            return Ok(StageKind::Decompose);
        }
        if token == "scale" || token.starts_with("scale:") {
            let mut method = ScaleMethod::SinkhornKnopp;
            let mut iters = DEFAULT_SCALE_ITERATIONS;
            for part in token.split(':').skip(1) {
                match part {
                    "sk" => method = ScaleMethod::SinkhornKnopp,
                    "ruiz" => method = ScaleMethod::Ruiz,
                    // Numeric-looking tokens are iteration counts (and must
                    // parse); anything else is a misspelled method name.
                    other if other.starts_with(|c: char| c.is_ascii_digit()) => {
                        iters = other.parse().map_err(|_| SpecError::BadIters {
                            value: other.to_string(),
                            spec: spec.to_string(),
                        })?;
                    }
                    other => {
                        return Err(SpecError::UnknownScaleMethod {
                            option: other.to_string(),
                            spec: spec.to_string(),
                        });
                    }
                }
            }
            return Ok(StageKind::Scale(ScaleStage {
                method,
                config: ScalingConfig::iterations(iters),
            }));
        }
        if let Ok(algo) = token.parse::<AlgorithmKind>() {
            return Ok(StageKind::Algorithm(algo));
        }
        if let Some(w) = WeightedKind::from_name(token) {
            return Ok(StageKind::Weighted(w));
        }
        Err(SpecError::UnknownAlgorithm { name: token.to_string() })
    }
}

/// Why a pipeline or algorithm spec failed to parse.
///
/// ```
/// use dsmatch::engine::{Pipeline, SpecError};
///
/// let err = "scale:sk:5,frobnicate".parse::<Pipeline>().unwrap_err();
/// assert_eq!(err, SpecError::UnknownAlgorithm { name: "frobnicate".into() });
///
/// let err = "scale:bogus,two".parse::<Pipeline>().unwrap_err();
/// assert!(matches!(err, SpecError::UnknownScaleMethod { .. }));
///
/// let err = "two,dm,hk".parse::<Pipeline>().unwrap_err();
/// assert!(matches!(err, SpecError::MisplacedDecomposition { .. }));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// A comma-separated stage was empty (`"two,,pf"`).
    EmptyStage {
        /// The full offending spec.
        spec: String,
    },
    /// The spec named no algorithm stage (`""`, or `"scale"` alone).
    MissingAlgorithm {
        /// The full offending spec.
        spec: String,
    },
    /// More stages than `scale,workload,finisher`.
    TooManyStages {
        /// The full offending spec.
        spec: String,
    },
    /// An algorithm name in neither the [`AlgorithmKind`] nor the
    /// [`WeightedKind`] registry.
    UnknownAlgorithm {
        /// The unrecognized name.
        name: String,
    },
    /// A `scale:` option that is neither `sk`/`ruiz` nor an iteration
    /// count.
    UnknownScaleMethod {
        /// The unrecognized option token.
        option: String,
        /// The full offending spec.
        spec: String,
    },
    /// A numeric-looking `scale:` iteration count that did not parse as an
    /// unsigned integer.
    BadIters {
        /// The unparseable token.
        value: String,
        /// The full offending spec.
        spec: String,
    },
    /// The finisher stage is not an exact algorithm.
    NonExactFinisher {
        /// The rejected finisher.
        finisher: AlgorithmKind,
    },
    /// The algorithm stage is already exact; a finisher adds nothing.
    RedundantFinisher {
        /// The (exact) algorithm stage.
        algorithm: AlgorithmKind,
        /// The redundant finisher.
        finisher: AlgorithmKind,
    },
    /// A `dm` stage with no inner pipeline (`"dm"` alone).
    EmptyDecomposition {
        /// The full offending spec.
        spec: String,
    },
    /// A `dm` stage inside another `dm` stage (`"dm,dm,two"`).
    NestedDecomposition {
        /// The full offending spec.
        spec: String,
    },
    /// A `dm` stage that is not the first stage (`"two,dm"` or
    /// `"scale:sk:5,dm,two"` — scaling factors do not survive into the
    /// per-block subgraphs, so a scale prefix before `dm` is meaningless).
    MisplacedDecomposition {
        /// The full offending spec.
        spec: String,
    },
    /// A weighted workload followed by a finisher stage (weighted
    /// matchings are not warm starts for cardinality augmentation).
    WeightedWithFinisher {
        /// The weighted workload stage.
        algorithm: WeightedKind,
        /// The rejected finisher.
        finisher: AlgorithmKind,
    },
    /// A weighted heuristic in finisher position (`"two,suitor"`).
    WeightedAsFinisher {
        /// The rejected weighted name.
        finisher: WeightedKind,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::EmptyStage { spec } => {
                write!(f, "empty stage in pipeline spec {spec:?}")
            }
            SpecError::MissingAlgorithm { spec } => {
                write!(f, "pipeline spec {spec:?} names no algorithm")
            }
            SpecError::TooManyStages { spec } => {
                write!(f, "too many stages in pipeline spec {spec:?}")
            }
            SpecError::UnknownAlgorithm { name } => {
                let mut names: Vec<&str> = AlgorithmKind::all().iter().map(|a| a.name()).collect();
                names.extend(WeightedKind::all().iter().map(|w| w.name()));
                names.push("dm");
                write!(f, "unknown algorithm {name:?}; expected one of {}", names.join("|"))
            }
            SpecError::UnknownScaleMethod { option, spec } => {
                write!(f, "bad scale option {option:?} in {spec:?}; expected sk|ruiz|<iters>")
            }
            SpecError::BadIters { value, spec } => {
                write!(
                    f,
                    "bad scale iteration count {value:?} in {spec:?}; expected sk|ruiz|<iters>"
                )
            }
            SpecError::NonExactFinisher { finisher } => {
                write!(f, "augment stage {finisher} is not an exact algorithm")
            }
            SpecError::RedundantFinisher { algorithm, finisher } => {
                write!(f, "{algorithm} is already exact; augmenting with {finisher} is redundant")
            }
            SpecError::EmptyDecomposition { spec } => {
                write!(f, "dm needs an inner pipeline in {spec:?}; write dm,<pipeline>")
            }
            SpecError::NestedDecomposition { spec } => {
                write!(f, "dm cannot nest inside another dm in {spec:?}")
            }
            SpecError::MisplacedDecomposition { spec } => {
                write!(f, "dm must be the first stage in {spec:?}")
            }
            SpecError::WeightedWithFinisher { algorithm, finisher } => {
                write!(
                    f,
                    "{algorithm} is a weighted workload; augmenting with {finisher} is not \
                     supported"
                )
            }
            SpecError::WeightedAsFinisher { finisher } => {
                write!(f, "{finisher} is a weighted heuristic, not an exact finisher")
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable_and_error_impl_exists() {
        let e = SpecError::UnknownAlgorithm { name: "nope".into() };
        assert!(e.to_string().starts_with("unknown algorithm \"nope\""));
        assert!(e.to_string().contains("pf-par"), "lists the registry");
        assert!(e.to_string().contains("suitor"), "lists the weighted registry");
        assert!(e.to_string().contains("|dm"), "lists the dm prefix");
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(boxed.source().is_none());

        let e = SpecError::RedundantFinisher {
            algorithm: AlgorithmKind::HopcroftKarp,
            finisher: AlgorithmKind::PothenFan,
        };
        assert_eq!(e.to_string(), "hk is already exact; augmenting with pf is redundant");

        let e = SpecError::WeightedAsFinisher { finisher: WeightedKind::Suitor };
        assert_eq!(e.to_string(), "suitor is a weighted heuristic, not an exact finisher");
    }

    #[test]
    fn variants_are_matchable() {
        // The point of the typed enum: callers branch on the variant
        // instead of substring-matching a message.
        let errs = [
            SpecError::EmptyStage { spec: "two,,pf".into() },
            SpecError::BadIters { value: "9e9".into(), spec: "scale:9e9,two".into() },
            SpecError::UnknownScaleMethod {
                option: "bogus".into(),
                spec: "scale:bogus,two".into(),
            },
            SpecError::NestedDecomposition { spec: "dm,dm,two".into() },
        ];
        assert!(matches!(errs[0], SpecError::EmptyStage { .. }));
        assert!(matches!(errs[1], SpecError::BadIters { .. }));
        assert!(matches!(errs[2], SpecError::UnknownScaleMethod { .. }));
        assert!(matches!(errs[3], SpecError::NestedDecomposition { .. }));
    }

    #[test]
    fn classify_types_every_stage_form() {
        let spec = "irrelevant";
        assert!(matches!(StageKind::classify("dm", spec), Ok(StageKind::Decompose)));
        assert!(matches!(
            StageKind::classify("scale:ruiz:3", spec),
            Ok(StageKind::Scale(ScaleStage { method: ScaleMethod::Ruiz, .. }))
        ));
        assert!(matches!(
            StageKind::classify("hk", spec),
            Ok(StageKind::Algorithm(AlgorithmKind::HopcroftKarp))
        ));
        assert!(matches!(
            StageKind::classify("suitor", spec),
            Ok(StageKind::Weighted(WeightedKind::Suitor))
        ));
        assert!(matches!(
            StageKind::classify("frobnicate", spec),
            Err(SpecError::UnknownAlgorithm { .. })
        ));
    }
}
