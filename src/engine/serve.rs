//! Matching-as-a-service: the long-running daemon behind `dsmatch serve`.
//!
//! The one-shot CLI solves one instance per process; the ROADMAP's north
//! star — heavy traffic from many clients — needs a front-end that stays
//! up. [`serve`] reads **newline-delimited JSON jobs** from any
//! [`BufRead`] (the CLI wires stdin, or a Unix socket via
//! [`serve_unix_socket`]) and streams **one JSON reply line per job** as
//! each finishes, tagged with the client's job id — *completion* order,
//! not submission order.
//!
//! ## Job lines
//!
//! Every job is one JSON object with an `"id"` (echoed verbatim in the
//! reply) and an `"op"` (default `"solve"`):
//!
//! ```text
//! {"id":1,"op":"solve","pipeline":"scale:sk:5,two,pf-par","seed":7,
//!  "instance":"gen:er:10000:4:1","store":"big","quality":true}
//! {"id":2,"op":"solve","pipeline":"hk","instance":{"handle":"big"}}
//! {"id":3,"op":"delta","handle":"big","add":[[0,5]],"remove":[[3,3]],
//!  "finisher":"pf-par","mates":true}
//! {"id":4,"op":"ping"}
//! {"id":5,"op":"drop","handle":"big"}
//! {"id":6,"op":"shutdown"}
//! ```
//!
//! Instances are referenced three ways: a `gen:` spec (synthesized), an
//! inline pattern (`{"nrows":N,"ncols":M,"edges":[[i,j],…]}`), or a
//! `{"handle":"name"}` naming an instance a previous job `"store"`d in the
//! daemon's cache. Each job carries its **own** pipeline spec — the
//! Duff–Kaya–Uçar transversal methodology's per-instance algorithm choice,
//! as a protocol.
//!
//! ## Scheduling & robustness
//!
//! Jobs are spawned onto the existing [`WorkspacePool`] as stealable
//! tasks: concurrent jobs solve on distinct pinned-1-thread slot
//! workspaces, so every result is byte-identical to a 1-thread solve of
//! the same `(instance, seed)`. Jobs naming the same handle execute in
//! submission order (a per-handle queue); jobs on different handles (or
//! none) run concurrently. Admission control bounds the in-flight queue
//! (`max_queue`): beyond it, jobs get an immediate structured `"queue"`
//! error instead of unbounded memory growth. *Every* failure — malformed
//! JSON, unknown algorithm, missing handle, even a solver panic — becomes
//! an error reply; the daemon never dies on a bad job.
//!
//! ## Incremental re-solves
//!
//! A `"delta"` job mutates a cached instance (`add`/`remove` edge lists)
//! by **patching the cached CSR in place** ([`Csr::patched`]: one merge
//! pass over the touched rows, byte-identical to a full rebuild) and
//! **re-augments from the cached mate array** with a warm-started exact
//! finisher (`pf-par` by default, `auto` for the statistics-driven pick)
//! instead of solving from scratch — the tree-grafting warm-start lineage.
//! The reply's `"warm":true`, the stage's `"phases"` counter and (under
//! `auto`) its `"selected"` engine make the saving observable: a delta
//! whose cached matching survives the mutation certifies in one phase.
//!
//! [`Csr::patched`]: dsmatch_graph::Csr::patched

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dsmatch_exact::sprank;
use dsmatch_graph::{BipartiteGraph, Matching, TripletMatrix, NIL};
use dsmatch_json::{parse_json, Json};

use super::batch::WorkspacePool;
use super::pipeline::{run_augment, Pipeline, Solver};
use super::registry::AlgorithmKind;
use super::report::{SolveReport, StageReport};
use super::workspace::{observed_parallelism, Workspace};

/// Error codes carried by `"ok":false` replies, stable for clients.
mod code {
    /// Malformed JSON, or a missing/ill-typed required field.
    pub const PARSE: &str = "parse";
    /// A pipeline/finisher spec error ([`SpecError`](crate::engine::SpecError) verbatim).
    pub const SPEC: &str = "spec";
    /// A bad instance reference: `gen:` spec, or out-of-bounds inline/delta edges.
    pub const INSTANCE: &str = "instance";
    /// An unknown handle, or a handle with no cached instance.
    pub const HANDLE: &str = "handle";
    /// Admission control: the in-flight queue is full.
    pub const QUEUE: &str = "queue";
    /// A daemon-side failure (solver panic, invalid matching).
    pub const INTERNAL: &str = "internal";
}

/// Configuration for one [`serve`] daemon.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads in the job pool (`0` = the default size).
    pub threads: usize,
    /// Admission bound: maximum jobs in flight (running + queued). Jobs
    /// beyond it are rejected with a `"queue"` error reply.
    pub max_queue: usize,
    /// Byte budget for the instance cache; least-recently-used idle
    /// handles are evicted when the cached graphs + mates exceed it.
    pub cache_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { threads: 0, max_queue: 64, cache_bytes: 256 << 20 }
    }
}

/// What one [`serve`] session did, also emitted as the trailing
/// `{"event":"shutdown",…}` line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Job lines received (including ones rejected with an error reply).
    pub jobs: usize,
    /// Replies with `"ok":true`.
    pub ok: usize,
    /// Replies with `"ok":false`.
    pub errors: usize,
    /// True when the session ended on a `shutdown` op (vs input EOF).
    pub shutdown: bool,
}

/// Synthesize an instance from the spec grammar shared by the CLI
/// positional argument and the serve protocol's string instance refs:
/// `er:<n>:<avg_degree>[:<seed>]` (the part after the `gen:` prefix).
pub fn parse_gen_spec(spec: &str) -> Result<BipartiteGraph, String> {
    let usage = "expected gen:er:<n>:<avg_degree>[:<seed>]";
    match spec.split(':').collect::<Vec<_>>().as_slice() {
        ["er", n, d, rest @ ..] => {
            let n: usize = n.parse().map_err(|_| format!("bad size {n:?}; {usage}"))?;
            if n == 0 {
                return Err(format!("size must be positive; {usage}"));
            }
            let d: f64 = d.parse().map_err(|_| format!("bad degree {d:?}; {usage}"))?;
            if !d.is_finite() || d <= 0.0 {
                return Err(format!("degree must be positive and finite; {usage}"));
            }
            let seed: u64 = match rest {
                [] => 1,
                [s] => s.parse().map_err(|_| format!("bad seed {s:?}; {usage}"))?,
                _ => return Err(format!("trailing fields in gen spec {spec:?}; {usage}")),
            };
            Ok(dsmatch_gen::erdos_renyi_square(n, d, seed))
        }
        _ => Err(format!("unsupported gen spec {spec:?}; {usage}")),
    }
}

// ---------------------------------------------------------------------------
// Job model
// ---------------------------------------------------------------------------

/// `(code, message)` for an error reply.
type JobError = (&'static str, String);

#[derive(Clone, Debug)]
enum InstanceRef {
    /// `"gen:er:…"` — synthesized on the worker.
    Gen(String),
    /// `{"nrows":…,"ncols":…,"edges":[[i,j],…]}`.
    Inline { nrows: usize, ncols: usize, edges: Vec<(usize, usize)> },
    /// `{"handle":"name"}` — a previously `store`d instance.
    Handle(String),
}

#[derive(Clone, Debug)]
struct SolveJob {
    pipeline: Pipeline,
    seed: u64,
    instance: InstanceRef,
    store: Option<String>,
    quality: bool,
    mates: bool,
}

#[derive(Clone, Debug)]
struct DeltaJob {
    handle: String,
    add: Vec<(usize, usize)>,
    remove: Vec<(usize, usize)>,
    finisher: AlgorithmKind,
    quality: bool,
    mates: bool,
}

#[derive(Clone, Debug)]
enum Op {
    Solve(SolveJob),
    Delta(DeltaJob),
    /// Liveness probe, answered inline by the reader.
    Ping,
    /// Detach a cached handle (refused while it has jobs in flight).
    Drop {
        handle: String,
    },
    /// Occupy one worker for `ms` milliseconds — a scheduling/testing aid
    /// that makes admission-control behaviour deterministic.
    Sleep {
        ms: u64,
    },
    /// Stop reading further jobs (and, on a socket, stop accepting).
    Shutdown,
}

#[derive(Clone, Debug)]
struct Job {
    id: Json,
    op: Op,
}

impl Job {
    /// The handle this job's execution must serialize on, if any: the
    /// mutation target for solves that `store`, the read source for
    /// handle-referencing solves, the delta's subject.
    fn primary_handle(&self) -> Option<&str> {
        match &self.op {
            Op::Solve(sj) => sj.store.as_deref().or(match &sj.instance {
                InstanceRef::Handle(h) => Some(h),
                _ => None,
            }),
            Op::Delta(dj) => Some(&dj.handle),
            _ => None,
        }
    }
}

fn parse_edge_list(v: &Json, key: &str) -> Result<Vec<(usize, usize)>, JobError> {
    let Some(field) = v.get(key) else { return Ok(Vec::new()) };
    let items = field
        .as_arr()
        .ok_or_else(|| (code::PARSE, format!("{key:?} must be an array of [row,col] pairs")))?;
    let mut edges = Vec::with_capacity(items.len());
    for item in items {
        let pair = item.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
            (code::PARSE, format!("{key:?} entries must be [row,col] pairs, got {item}"))
        })?;
        let (i, j) = (pair[0].as_usize(), pair[1].as_usize());
        match (i, j) {
            (Some(i), Some(j)) => edges.push((i, j)),
            _ => {
                return Err((
                    code::PARSE,
                    format!("{key:?} entries must be non-negative integers, got {item}"),
                ))
            }
        }
    }
    Ok(edges)
}

fn required_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, JobError> {
    v.get(key)
        .and_then(Json::as_str)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| (code::PARSE, format!("job needs a non-empty string {key:?} field")))
}

fn optional_bool(v: &Json, key: &str) -> Result<bool, JobError> {
    match v.get(key) {
        None => Ok(false),
        Some(b) => b.as_bool().ok_or_else(|| (code::PARSE, format!("{key:?} must be a boolean"))),
    }
}

fn parse_instance_ref(v: &Json) -> Result<InstanceRef, JobError> {
    let field = v.get("instance").ok_or_else(|| {
        (
            code::PARSE,
            "solve job needs an \"instance\": a \"gen:…\" spec, \
         {\"handle\":…}, or {\"nrows\",\"ncols\",\"edges\"}"
                .to_string(),
        )
    })?;
    if let Some(s) = field.as_str() {
        let Some(spec) = s.strip_prefix("gen:") else {
            return Err((
                code::PARSE,
                format!("string instance refs must be \"gen:…\" specs, got {s:?}"),
            ));
        };
        return Ok(InstanceRef::Gen(spec.to_string()));
    }
    if let Some(h) = field.get("handle") {
        let h = h
            .as_str()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| (code::PARSE, "\"handle\" must be a non-empty string".to_string()))?;
        return Ok(InstanceRef::Handle(h.to_string()));
    }
    let dims =
        (field.get("nrows").and_then(Json::as_usize), field.get("ncols").and_then(Json::as_usize));
    if let (Some(nrows), Some(ncols)) = dims {
        let edges = parse_edge_list(field, "edges")?;
        return Ok(InstanceRef::Inline { nrows, ncols, edges });
    }
    Err((
        code::PARSE,
        format!("unsupported instance ref {field}; expected a \"gen:…\" spec, {{\"handle\":…}}, or {{\"nrows\",\"ncols\",\"edges\"}}"),
    ))
}

fn parse_job(v: &Json) -> Result<Job, (Json, JobError)> {
    let id = match v.get("id") {
        Some(id) => id.clone(),
        None => {
            return Err((
                Json::Null,
                (code::PARSE, "job has no \"id\"; replies are tagged with it".to_string()),
            ))
        }
    };
    let fail = |e: JobError| (id.clone(), e);
    let op_name = match v.get("op") {
        None => "solve",
        Some(op) => {
            op.as_str().ok_or_else(|| fail((code::PARSE, "\"op\" must be a string".to_string())))?
        }
    };
    let seed = match v.get("seed") {
        None => 1,
        Some(s) => s
            .as_u64()
            .ok_or_else(|| fail((code::PARSE, "\"seed\" must be a non-negative integer".into())))?,
    };
    let op = match op_name {
        "solve" => {
            let spec = required_str(v, "pipeline").map_err(fail)?;
            let pipeline: Pipeline =
                spec.parse().map_err(|e| fail((code::SPEC, format!("{e}"))))?;
            let instance = parse_instance_ref(v).map_err(fail)?;
            let store = match v.get("store") {
                None => None,
                Some(s) => Some(
                    s.as_str()
                        .filter(|h| !h.is_empty())
                        .ok_or_else(|| {
                            fail((code::PARSE, "\"store\" must be a non-empty string".into()))
                        })?
                        .to_string(),
                ),
            };
            Op::Solve(SolveJob {
                pipeline,
                seed,
                instance,
                store,
                quality: optional_bool(v, "quality").map_err(fail)?,
                mates: optional_bool(v, "mates").map_err(fail)?,
            })
        }
        "delta" => {
            let handle = required_str(v, "handle").map_err(fail)?.to_string();
            let finisher = match v.get("finisher") {
                None => AlgorithmKind::PothenFanPar,
                Some(f) => {
                    let name = f.as_str().ok_or_else(|| {
                        fail((code::PARSE, "\"finisher\" must be a string".into()))
                    })?;
                    let kind: AlgorithmKind =
                        name.parse().map_err(|e| fail((code::SPEC, format!("{e}"))))?;
                    if !kind.is_exact() {
                        let e = crate::engine::SpecError::NonExactFinisher { finisher: kind };
                        return Err(fail((code::SPEC, e.to_string())));
                    }
                    kind
                }
            };
            Op::Delta(DeltaJob {
                handle,
                add: parse_edge_list(v, "add").map_err(fail)?,
                remove: parse_edge_list(v, "remove").map_err(fail)?,
                finisher,
                quality: optional_bool(v, "quality").map_err(fail)?,
                mates: optional_bool(v, "mates").map_err(fail)?,
            })
        }
        "ping" => Op::Ping,
        "drop" => Op::Drop { handle: required_str(v, "handle").map_err(fail)?.to_string() },
        "sleep" => {
            let ms = v
                .get("ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| fail((code::PARSE, "sleep job needs integer \"ms\"".into())))?;
            Op::Sleep { ms }
        }
        "shutdown" => Op::Shutdown,
        other => {
            return Err(fail((
                code::PARSE,
                format!("unknown op {other:?}; expected solve|delta|ping|drop|sleep|shutdown"),
            )))
        }
    };
    Ok(Job { id, op })
}

// ---------------------------------------------------------------------------
// Instance cache
// ---------------------------------------------------------------------------

#[derive(Default)]
struct HandleState {
    graph: Option<Arc<BipartiteGraph>>,
    mates: Option<Matching>,
}

impl HandleState {
    fn approx_bytes(&self) -> usize {
        let graph = self.mates.as_ref().map_or(0, |m| 4 * (m.nrows() + m.ncols()));
        self.graph.as_ref().map_or(graph, |g| {
            // CSR + CSC: two index arrays of nnz u32 entries plus two
            // pointer arrays of (dim + 1) usize entries.
            graph + 8 * g.nnz() + 8 * (g.nrows() + g.ncols() + 2)
        })
    }
}

#[derive(Default)]
struct HandleQueue {
    /// A job owning this handle is running (or scheduled to run).
    busy: bool,
    /// Jobs waiting for the handle, in submission order.
    pending: VecDeque<Job>,
}

/// One cached instance: per-handle job serialization + the cached
/// graph/mates + LRU bookkeeping.
#[derive(Default)]
struct HandleEntry {
    queue: Mutex<HandleQueue>,
    state: Mutex<HandleState>,
    bytes: AtomicUsize,
    touched: AtomicU64,
}

struct Cache {
    entries: HashMap<String, Arc<HandleEntry>>,
    clock: u64,
    budget: usize,
}

impl Cache {
    fn touch(&mut self, entry: &HandleEntry) {
        self.clock += 1;
        entry.touched.store(self.clock, Ordering::Relaxed);
    }

    fn entry_for(&mut self, handle: &str) -> Arc<HandleEntry> {
        let entry = Arc::clone(self.entries.entry(handle.to_string()).or_default());
        self.touch(&entry);
        entry
    }

    /// Evict least-recently-touched idle entries until the byte budget
    /// holds. `protect` (the handle just written) is never evicted, so a
    /// single oversized instance stays usable for the job that loaded it.
    fn evict_to_budget(&mut self, protect: &str) {
        loop {
            let total: usize = self.entries.values().map(|e| e.bytes.load(Ordering::Relaxed)).sum();
            if total <= self.budget {
                return;
            }
            let victim = self
                .entries
                .iter()
                .filter(|(name, entry)| {
                    if name.as_str() == protect {
                        return false;
                    }
                    // Never evict a handle with jobs in flight; lock order
                    // is cache → queue everywhere, so this cannot deadlock.
                    let q = entry.queue.lock().unwrap_or_else(|p| p.into_inner());
                    !q.busy && q.pending.is_empty()
                })
                .min_by_key(|(_, entry)| entry.touched.load(Ordering::Relaxed))
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    self.entries.remove(&name);
                }
                None => return,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------------

/// State shared across every connection of one daemon process.
struct ServeCore {
    pool: WorkspacePool,
    cache: Mutex<Cache>,
    opts: ServeOptions,
    observed_workers: usize,
    shutdown: AtomicBool,
}

impl ServeCore {
    fn new(opts: &ServeOptions) -> Self {
        let pool = Workspace::per_worker(opts.threads);
        let observed_workers = pool.run(observed_parallelism);
        ServeCore {
            pool,
            cache: Mutex::new(Cache {
                entries: HashMap::new(),
                clock: 0,
                budget: opts.cache_bytes,
            }),
            opts: opts.clone(),
            observed_workers,
            shutdown: AtomicBool::new(false),
        }
    }

    fn cache_lock(&self) -> std::sync::MutexGuard<'_, Cache> {
        self.cache.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Per-connection reply stream + counters.
struct Conn<'c, W: Write + Send> {
    core: &'c ServeCore,
    out: Mutex<W>,
    out_broken: AtomicBool,
    in_flight: AtomicUsize,
    jobs: AtomicUsize,
    ok: AtomicUsize,
    errors: AtomicUsize,
}

impl<'c, W: Write + Send> Conn<'c, W> {
    fn new(core: &'c ServeCore, output: W) -> Self {
        Conn {
            core,
            out: Mutex::new(output),
            out_broken: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            jobs: AtomicUsize::new(0),
            ok: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
        }
    }

    /// Write one protocol line; a failed write (client gone) latches
    /// `out_broken` so the reader stops instead of solving into the void.
    fn line(&self, doc: &Json) {
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        if writeln!(out, "{doc}").and_then(|()| out.flush()).is_err() {
            self.out_broken.store(true, Ordering::Relaxed);
        }
    }

    fn reply(&self, doc: Json) {
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => self.ok.fetch_add(1, Ordering::Relaxed),
            _ => self.errors.fetch_add(1, Ordering::Relaxed),
        };
        self.line(&doc);
    }

    fn reply_error(&self, id: &Json, code: &'static str, message: &str) {
        self.reply(Json::obj(vec![
            ("id", id.clone()),
            ("ok", Json::Bool(false)),
            ("code", Json::from(code)),
            ("error", Json::from(message)),
        ]));
    }

    /// Reserve an in-flight slot, or refuse (admission control).
    fn admit(&self) -> bool {
        self.in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur < self.core.opts.max_queue).then_some(cur + 1)
            })
            .is_ok()
    }

    fn summary(&self, shutdown: bool) -> ServeSummary {
        ServeSummary {
            jobs: self.jobs.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shutdown,
        }
    }
}

fn mates_json(m: &Matching) -> Json {
    Json::Arr(
        m.rmates()
            .iter()
            .map(|&j| if j == NIL { Json::Null } else { Json::Int(j as i64) })
            .collect(),
    )
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "job panicked".to_string())
}

/// Build the bipartite graph for an inline instance ref, bounds-checked
/// (an out-of-range edge must become an error reply, not a worker panic).
fn build_inline(
    nrows: usize,
    ncols: usize,
    edges: &[(usize, usize)],
) -> Result<BipartiteGraph, JobError> {
    if nrows == 0 || ncols == 0 {
        return Err((code::INSTANCE, "inline instances need nrows ≥ 1 and ncols ≥ 1".into()));
    }
    let mut t = TripletMatrix::with_capacity(nrows, ncols, edges.len());
    for &(i, j) in edges {
        if i >= nrows || j >= ncols {
            return Err((
                code::INSTANCE,
                format!("edge ({i},{j}) out of bounds for {nrows}×{ncols}"),
            ));
        }
        t.push(i, j);
    }
    Ok(BipartiteGraph::from_csr(t.into_csr()))
}

// ---------------------------------------------------------------------------
// Job execution (on pool workers)
// ---------------------------------------------------------------------------

fn execute_solve<W: Write + Send>(conn: &Conn<'_, W>, job: &SolveJob) -> Result<Json, JobError> {
    let graph: Arc<BipartiteGraph> = match &job.instance {
        InstanceRef::Gen(spec) => Arc::new(parse_gen_spec(spec).map_err(|e| (code::INSTANCE, e))?),
        InstanceRef::Inline { nrows, ncols, edges } => {
            Arc::new(build_inline(*nrows, *ncols, edges)?)
        }
        InstanceRef::Handle(h) => {
            let entry =
                conn.core.cache_lock().entries.get(h).cloned().ok_or_else(|| {
                    (code::HANDLE, format!("no instance cached under handle {h:?}"))
                })?;
            let state = entry.state.lock().unwrap_or_else(|p| p.into_inner());
            state.graph.clone().ok_or_else(|| {
                (code::HANDLE, format!("handle {h:?} exists but has no cached instance yet"))
            })?
        }
    };

    let mut report = conn
        .core
        .pool
        .with_workspace(|ws| job.pipeline.clone().with_seed(job.seed).solve(&graph, ws));
    report
        .matching
        .verify(&graph)
        .map_err(|e| (code::INTERNAL, format!("produced an invalid matching: {e}")))?;
    if job.quality {
        report.set_quality(sprank(&graph));
    }

    if let Some(handle) = &job.store {
        let entry = conn.core.cache_lock().entry_for(handle);
        {
            let mut state = entry.state.lock().unwrap_or_else(|p| p.into_inner());
            state.graph = Some(Arc::clone(&graph));
            state.mates = Some(report.matching.clone());
            entry.bytes.store(state.approx_bytes(), Ordering::Relaxed);
        }
        conn.core.cache_lock().evict_to_budget(handle);
    }

    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::from("solve")),
        ("pipeline".to_string(), Json::from(job.pipeline.spec())),
        ("seed".to_string(), Json::from(job.seed)),
    ];
    if let Some(h) = &job.store {
        pairs.push(("handle".to_string(), Json::from(h.as_str())));
    }
    pairs.push(("report".to_string(), report.to_json()));
    if job.mates {
        pairs.push(("rmate".to_string(), mates_json(&report.matching)));
    }
    Ok(Json::Obj(pairs))
}

fn execute_delta<W: Write + Send>(
    conn: &Conn<'_, W>,
    job: &DeltaJob,
    entry: &Arc<HandleEntry>,
) -> Result<Json, JobError> {
    let (graph, cached_mates) = {
        let state = entry.state.lock().unwrap_or_else(|p| p.into_inner());
        (state.graph.clone(), state.mates.clone())
    };
    let graph = graph.ok_or_else(|| {
        (code::HANDLE, format!("no instance cached under handle {:?}", job.handle))
    })?;
    let (nrows, ncols) = (graph.nrows(), graph.ncols());
    for &(i, j) in job.add.iter().chain(&job.remove) {
        if i >= nrows || j >= ncols {
            return Err((
                code::INSTANCE,
                format!("delta edge ({i},{j}) out of bounds for {nrows}×{ncols}"),
            ));
        }
    }

    // Patch the cached CSR in place (one merge pass over the touched rows)
    // instead of re-sorting the whole pattern through a triplet rebuild.
    // Removing an absent edge or adding a present one is a no-op, so
    // clients need not track the exact current pattern.
    let mutated = BipartiteGraph::from_csr(graph.csr().patched(&job.add, &job.remove));

    // Warm start: the cached mates, minus pairs whose edge was removed —
    // still a valid matching of the mutated graph, so the finisher only
    // re-augments what the delta actually broke.
    let warm = cached_mates.is_some();
    let initial = cached_mates.map(|m| {
        let mut rmate = m.rmates().to_vec();
        let mut cmate = m.cmates().to_vec();
        for i in 0..rmate.len() {
            let j = rmate[i];
            if j != NIL && !mutated.csr().contains(i, j as usize) {
                cmate[j as usize] = NIL;
                rmate[i] = NIL;
            }
        }
        Matching::from_mates(rmate, cmate)
    });

    let t0 = Instant::now();
    let mutated_ref = &mutated;
    let (matching, counters) = conn.core.pool.with_workspace(|ws| {
        let slot_pool = ws.pool().cloned();
        let run = move |ws: &mut Workspace| run_augment(job.finisher, mutated_ref, initial, ws);
        match slot_pool {
            Some(p) => p.install(|| run(ws)),
            None => run(ws),
        }
    });
    let seconds = t0.elapsed().as_secs_f64();
    matching
        .verify(&mutated)
        .map_err(|e| (code::INTERNAL, format!("produced an invalid matching: {e}")))?;

    let mut report = SolveReport {
        stages: vec![StageReport {
            stage: format!("delta:{}", job.finisher),
            seconds,
            cardinality: Some(matching.cardinality()),
            augmentations: counters.augmentations,
            phases: counters.phases,
            selected: counters.selected.map(|k| k.name().to_string()),
        }],
        scaling_iterations: None,
        scaling_error: None,
        quality: None,
        matching,
    };
    if job.quality {
        report.set_quality(sprank(&mutated));
    }

    {
        let mut state = entry.state.lock().unwrap_or_else(|p| p.into_inner());
        state.graph = Some(Arc::new(mutated));
        state.mates = Some(report.matching.clone());
        entry.bytes.store(state.approx_bytes(), Ordering::Relaxed);
    }
    {
        let mut cache = conn.core.cache_lock();
        cache.touch(entry);
        cache.evict_to_budget(&job.handle);
    }

    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::from("delta")),
        ("handle".to_string(), Json::from(job.handle.as_str())),
        ("warm".to_string(), Json::Bool(warm)),
        ("added".to_string(), Json::from(job.add.len())),
        ("removed".to_string(), Json::from(job.remove.len())),
        ("report".to_string(), report.to_json()),
    ];
    if job.mates {
        pairs.push(("rmate".to_string(), mates_json(&report.matching)));
    }
    Ok(Json::Obj(pairs))
}

fn execute<W: Write + Send>(
    conn: &Conn<'_, W>,
    job: &Job,
    entry: Option<&Arc<HandleEntry>>,
) -> Result<Json, JobError> {
    match &job.op {
        Op::Solve(sj) => execute_solve(conn, sj),
        Op::Delta(dj) => {
            let entry = entry.expect("delta jobs are always scheduled with their handle entry");
            execute_delta(conn, dj, entry)
        }
        Op::Sleep { ms } => {
            std::thread::sleep(std::time::Duration::from_millis((*ms).min(60_000)));
            Ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::from("sleep")),
                ("ms", Json::from(*ms)),
            ]))
        }
        // Inline ops never reach the workers.
        Op::Ping | Op::Drop { .. } | Op::Shutdown => unreachable!("handled by the reader"),
    }
}

/// Run one scheduled job on a worker: execute (panic-safe), reply, release
/// the admission slot, then start the handle's next pending job, if any.
fn run_job<'s, W: Write + Send>(
    conn: &'s Conn<'s, W>,
    scope: &rayon::Scope<'s>,
    job: Job,
    entry: Option<Arc<HandleEntry>>,
) {
    let outcome = catch_unwind(AssertUnwindSafe(|| execute(conn, &job, entry.as_ref())));
    let reply = match outcome {
        Ok(Ok(body)) => {
            let Json::Obj(mut pairs) = body else { unreachable!("replies are objects") };
            pairs.insert(0, ("id".to_string(), job.id.clone()));
            Json::Obj(pairs)
        }
        Ok(Err((code, message))) => {
            let mut doc = Json::obj(vec![
                ("id", job.id.clone()),
                ("ok", Json::Bool(false)),
                ("code", Json::from(code)),
                ("error", Json::from(message)),
            ]);
            if let (Json::Obj(pairs), Some(h)) = (&mut doc, job.primary_handle()) {
                pairs.push(("handle".to_string(), Json::from(h)));
            }
            doc
        }
        Err(payload) => Json::obj(vec![
            ("id", job.id.clone()),
            ("ok", Json::Bool(false)),
            ("code", Json::from(code::INTERNAL)),
            ("error", Json::from(panic_message(payload))),
        ]),
    };
    // Release the handle (and start its next pending job) *before* the
    // reply goes out: a client that reacts to the reply instantly — e.g.
    // with a `drop` — must observe the handle idle, not racily busy.
    if let Some(entry) = entry {
        let next = {
            let mut q = entry.queue.lock().unwrap_or_else(|p| p.into_inner());
            match q.pending.pop_front() {
                Some(job) => Some(job), // stays busy
                None => {
                    q.busy = false;
                    None
                }
            }
        };
        if let Some(job) = next {
            scope.spawn(move |s| run_job(conn, s, job, Some(entry)));
        }
    }
    conn.in_flight.fetch_sub(1, Ordering::SeqCst);
    conn.reply(reply);
}

/// Admit + schedule one worker-bound job: direct spawn when it touches no
/// handle, per-handle FIFO when it does.
fn schedule<'s, W: Write + Send>(conn: &'s Conn<'s, W>, scope: &rayon::Scope<'s>, job: Job) {
    if !conn.admit() {
        conn.reply_error(
            &job.id,
            code::QUEUE,
            &format!(
                "queue full: {} jobs in flight (max_queue {})",
                conn.in_flight.load(Ordering::SeqCst),
                conn.core.opts.max_queue
            ),
        );
        return;
    }
    let entry = job.primary_handle().map(|h| conn.core.cache_lock().entry_for(h));
    match entry {
        None => scope.spawn(move |s| run_job(conn, s, job, None)),
        Some(entry) => {
            let run_now = {
                let mut q = entry.queue.lock().unwrap_or_else(|p| p.into_inner());
                if q.busy {
                    q.pending.push_back(job.clone());
                    false
                } else {
                    q.busy = true;
                    true
                }
            };
            if run_now {
                scope.spawn(move |s| run_job(conn, s, job, Some(entry)));
            }
        }
    }
}

/// The reader loop: runs on the submitting thread while workers solve.
/// Returns true when the session ended on a `shutdown` op.
fn read_loop<'s, R: BufRead, W: Write + Send>(
    conn: &'s Conn<'s, W>,
    input: &mut R,
    scope: &rayon::Scope<'s>,
) -> bool {
    let mut line = String::new();
    loop {
        if conn.out_broken.load(Ordering::Relaxed) {
            return false;
        }
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) | Err(_) => return false,
            Ok(_) => {}
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        conn.jobs.fetch_add(1, Ordering::Relaxed);
        let doc = match parse_json(text) {
            Ok(doc) => doc,
            Err(e) => {
                conn.reply_error(&Json::Null, code::PARSE, &format!("malformed job line: {e}"));
                continue;
            }
        };
        let job = match parse_job(&doc) {
            Ok(job) => job,
            Err((id, (code, message))) => {
                conn.reply_error(&id, code, &message);
                continue;
            }
        };
        match &job.op {
            Op::Ping => {
                conn.reply(Json::obj(vec![
                    ("id", job.id.clone()),
                    ("ok", Json::Bool(true)),
                    ("op", Json::from("ping")),
                ]));
            }
            Op::Shutdown => {
                conn.core.shutdown.store(true, Ordering::SeqCst);
                conn.reply(Json::obj(vec![
                    ("id", job.id.clone()),
                    ("ok", Json::Bool(true)),
                    ("op", Json::from("shutdown")),
                ]));
                return true;
            }
            Op::Drop { handle } => {
                let mut cache = conn.core.cache_lock();
                let dropped = match cache.entries.get(handle) {
                    None => Err(format!("no instance cached under handle {handle:?}")),
                    Some(entry) => {
                        let q = entry.queue.lock().unwrap_or_else(|p| p.into_inner());
                        if q.busy || !q.pending.is_empty() {
                            Err(format!("handle {handle:?} has jobs in flight; retry later"))
                        } else {
                            Ok(())
                        }
                    }
                };
                match dropped {
                    Ok(()) => {
                        cache.entries.remove(handle);
                        drop(cache);
                        conn.reply(Json::obj(vec![
                            ("id", job.id.clone()),
                            ("ok", Json::Bool(true)),
                            ("op", Json::from("drop")),
                            ("handle", Json::from(handle.as_str())),
                        ]));
                    }
                    Err(message) => {
                        drop(cache);
                        conn.reply_error(&job.id, code::HANDLE, &message);
                    }
                }
            }
            Op::Solve(_) | Op::Delta(_) | Op::Sleep { .. } => schedule(conn, scope, job),
        }
    }
}

fn serve_stream<R: BufRead, W: Write + Send>(
    core: &ServeCore,
    mut input: R,
    output: W,
) -> ServeSummary {
    let conn = Conn::new(core, output);
    conn.line(&Json::obj(vec![
        ("event", Json::from("ready")),
        ("threads", Json::from(core.pool.threads())),
        ("observed_workers", Json::from(core.observed_workers)),
        ("max_queue", Json::from(core.opts.max_queue)),
        ("cache_bytes", Json::from(core.opts.cache_bytes)),
    ]));
    // The reader runs the scope body; workers drain jobs concurrently and
    // the scope joins every outstanding job before the summary line.
    let shutdown = match core.pool.rayon_pool().cloned() {
        Some(pool) => pool.scope(|s| read_loop(&conn, &mut input, s)),
        None => rayon::scope(|s| read_loop(&conn, &mut input, s)),
    };
    let summary = conn.summary(shutdown);
    conn.line(&Json::obj(vec![
        ("event", Json::from("shutdown")),
        ("jobs", Json::from(summary.jobs)),
        ("ok", Json::from(summary.ok)),
        ("errors", Json::from(summary.errors)),
    ]));
    summary
}

/// Run a serve session over an arbitrary line stream: read jobs from
/// `input` until EOF or a `shutdown` op, stream one reply line per job to
/// `output` (completion order), framed by `{"event":"ready",…}` and
/// `{"event":"shutdown",…}` lines. This is `dsmatch serve`'s stdin mode.
pub fn serve<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    opts: &ServeOptions,
) -> ServeSummary {
    serve_stream(&ServeCore::new(opts), input, output)
}

/// Serve connections on a Unix domain socket, sequentially, sharing one
/// instance cache and worker pool across connections, until a client
/// sends `{"op":"shutdown"}`. The socket file is created fresh (a stale
/// one is removed) and unlinked on exit.
#[cfg(unix)]
pub fn serve_unix_socket(
    path: &std::path::Path,
    opts: &ServeOptions,
) -> std::io::Result<ServeSummary> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    let core = ServeCore::new(opts);
    let mut total = ServeSummary::default();
    while !core.shutdown.load(Ordering::SeqCst) {
        let (stream, _addr) = listener.accept()?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        let summary = serve_stream(&core, reader, stream);
        total.jobs += summary.jobs;
        total.ok += summary.ok;
        total.errors += summary.errors;
        total.shutdown = summary.shutdown;
    }
    let _ = std::fs::remove_file(path);
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(input: &str, opts: &ServeOptions) -> (ServeSummary, Vec<Json>) {
        let mut out: Vec<u8> = Vec::new();
        let summary = serve(std::io::Cursor::new(input.to_string()), &mut out, opts);
        let lines = String::from_utf8(out)
            .expect("utf8 output")
            .lines()
            .map(|l| parse_json(l).unwrap_or_else(|e| panic!("bad reply line {l:?}: {e}")))
            .collect();
        (summary, lines)
    }

    fn opts(threads: usize) -> ServeOptions {
        ServeOptions { threads, ..ServeOptions::default() }
    }

    #[test]
    fn frames_sessions_with_ready_and_shutdown_events() {
        let (summary, lines) = run("", &opts(1));
        assert_eq!(summary, ServeSummary::default());
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].get("event").unwrap().as_str(), Some("ready"));
        assert!(lines[0].get("observed_workers").unwrap().as_usize().is_some());
        assert_eq!(lines[1].get("event").unwrap().as_str(), Some("shutdown"));
    }

    #[test]
    fn job_parse_errors_are_structured_and_typed() {
        let input = concat!(
            "{not json\n",
            "{\"op\":\"solve\"}\n",
            "{\"id\":1,\"op\":\"warp\"}\n",
            "{\"id\":2,\"pipeline\":\"two,frobnicate\",\"instance\":\"gen:er:50:3\"}\n",
            "{\"id\":3,\"pipeline\":\"two\",\"instance\":\"file.mtx\"}\n",
            "{\"id\":4,\"op\":\"delta\",\"handle\":\"h\",\"finisher\":\"two\"}\n",
        );
        let (summary, lines) = run(input, &opts(1));
        assert_eq!(summary.jobs, 6);
        assert_eq!(summary.errors, 6);
        assert_eq!(summary.ok, 0);
        let code_of = |k: usize| lines[k + 1].get("code").unwrap().as_str().unwrap().to_string();
        assert_eq!(code_of(0), "parse", "malformed JSON");
        assert_eq!(code_of(1), "parse", "missing id");
        assert_eq!(code_of(2), "parse", "unknown op");
        assert_eq!(code_of(3), "spec", "unknown algorithm surfaces SpecError");
        assert!(
            lines[4].get("error").unwrap().as_str().unwrap().contains("unknown algorithm"),
            "SpecError Display is carried verbatim"
        );
        assert_eq!(code_of(4), "parse", "non-gen string instance");
        assert_eq!(code_of(5), "spec", "non-exact finisher");
    }

    #[test]
    fn cache_evicts_lru_idle_entries_but_never_the_protected_one() {
        let mut cache = Cache { entries: HashMap::new(), clock: 0, budget: 100 };
        for name in ["a", "b", "c"] {
            let entry = cache.entry_for(name);
            entry.bytes.store(60, Ordering::Relaxed);
        }
        // Budget 100, total 180: evict the two least-recently-touched.
        cache.evict_to_budget("c");
        assert!(!cache.entries.contains_key("a"));
        assert!(!cache.entries.contains_key("b"));
        assert!(cache.entries.contains_key("c"), "the just-written handle survives");

        // Busy entries are pinned even when oldest.
        let busy = cache.entry_for("busy");
        busy.bytes.store(60, Ordering::Relaxed);
        busy.queue.lock().unwrap().busy = true;
        let idle = cache.entry_for("idle");
        idle.bytes.store(60, Ordering::Relaxed);
        cache.evict_to_budget("idle");
        assert!(cache.entries.contains_key("busy"));
        assert!(cache.entries.contains_key("idle"));
        assert!(!cache.entries.contains_key("c"), "the idle LRU entry went instead");
    }

    #[test]
    fn sleep_solve_and_ping_round_trip() {
        let input = concat!(
            "{\"id\":\"s\",\"op\":\"sleep\",\"ms\":1}\n",
            "{\"id\":\"p\",\"op\":\"ping\"}\n",
        );
        let (summary, lines) = run(input, &opts(2));
        assert_eq!(summary.ok, 2);
        assert_eq!(summary.errors, 0);
        let ids: Vec<&str> =
            lines[1..=2].iter().map(|l| l.get("id").unwrap().as_str().unwrap()).collect();
        assert!(ids.contains(&"s") && ids.contains(&"p"));
    }
}
