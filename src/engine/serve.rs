//! Matching-as-a-service: the long-running daemon behind `dsmatch serve`.
//!
//! The one-shot CLI solves one instance per process; the ROADMAP's north
//! star — heavy traffic from many clients — needs a front-end that stays
//! up. [`serve`] reads **newline-delimited JSON jobs** from any
//! [`BufRead`] (the CLI wires stdin, or a Unix socket via
//! [`serve_unix_socket`]) and streams **one JSON reply line per job** as
//! each finishes, tagged with the client's job id — *completion* order,
//! not submission order.
//!
//! ## Job lines
//!
//! Every job is one JSON object with an `"id"` (echoed verbatim in the
//! reply) and an `"op"` (default `"solve"`):
//!
//! ```text
//! {"id":1,"op":"solve","pipeline":"scale:sk:5,two,pf-par","seed":7,
//!  "instance":"gen:er:10000:4:1","store":"big","quality":true}
//! {"id":2,"op":"solve","pipeline":"hk","instance":{"handle":"big"}}
//! {"id":3,"op":"delta","handle":"big","add":[[0,5]],"remove":[[3,3]],
//!  "finisher":"pf-par","mates":true}
//! {"id":4,"op":"ping"}
//! {"id":5,"op":"drop","handle":"big"}
//! {"id":6,"op":"cancel","job":1}
//! {"id":7,"op":"shutdown"}
//! ```
//!
//! Instances are referenced three ways: a `gen:` spec (synthesized), an
//! inline pattern (`{"nrows":N,"ncols":M,"edges":[[i,j],…]}`), or a
//! `{"handle":"name"}` naming an instance a previous job `"store"`d in the
//! daemon's cache. Each job carries its **own** pipeline spec — the
//! Duff–Kaya–Uçar transversal methodology's per-instance algorithm choice,
//! as a protocol.
//!
//! ## Concurrency & robustness
//!
//! [`serve_unix_socket`] accepts **concurrent connections** — one
//! reader/writer pair per client, all sharing the same instance cache and
//! [`WorkspacePool`] — bounded by [`ServeOptions::max_clients`] (excess
//! connections are turned away with a structured `"busy"` error line).
//! Per-connection reply ordering is whatever job *completion* order is;
//! jobs naming the same handle execute in daemon-wide submission order (a
//! per-handle FIFO that spans connections), so two clients mutating one
//! handle see a serializable history.
//!
//! Jobs are spawned onto the [`WorkspacePool`] as stealable tasks:
//! concurrent jobs solve on distinct pinned-1-thread slot workspaces, so
//! every result is byte-identical to a 1-thread solve of the same
//! `(instance, seed)`. Admission control bounds each connection's
//! in-flight queue (`max_queue`): beyond it, jobs get an immediate
//! structured `"queue"` error instead of unbounded memory growth. Input
//! lines longer than [`ServeOptions::max_line_bytes`] are discarded in
//! bounded memory and answered with a `"parse"` error. *Every* failure —
//! malformed JSON, unknown algorithm, missing handle, even a solver panic —
//! becomes an error reply; the daemon never dies on a bad job.
//!
//! ## Deadlines & cancellation
//!
//! A job may carry `"deadline_ms"` (or inherit
//! [`ServeOptions::default_deadline_ms`]). The deadline is armed at
//! **submission** — queue wait counts — and threaded as a
//! [`CancelToken`] through the solver's phase/epoch loops
//! ([`Pipeline::solve_cancel`]). A job that outlives its budget is cut
//! short cooperatively at the next phase boundary and answered with a
//! structured `"deadline"` error carrying `"cancelled":true` and its
//! `"deadline_ms"`; the worker's workspace stays poison-free and is
//! reused by the next job. The daemon keeps serving.
//!
//! Clients can also pull the trigger themselves:
//! `{"op":"cancel","job":<id>}` flips the [`CancelToken`] of the named
//! in-flight (or still-queued) job on the same connection. The cancelled
//! job answers with the same `"deadline"`-coded, `"cancelled":true` reply
//! shape (with `"deadline_ms":null` when it had no deadline); the `cancel`
//! op itself is acknowledged inline, and cancelling an id that is not in
//! flight earns a structured `"job"` error. Weighted and `dm,` pipeline
//! specs are accepted per-job like any other spec; their replies carry the
//! report's `"weight"` field.
//!
//! ## Shutdown & fault injection
//!
//! `{"op":"shutdown"}` (any connection), stdin close, or a flipped
//! [`ServeOptions::stop`] flag (the CLI wires SIGTERM to it) all **drain**:
//! in-flight jobs run to completion and their replies are delivered before
//! each connection's trailing `{"event":"shutdown",…}` summary line.
//! The deterministic fault-injection hooks of [`super::faults`]
//! (`DSMATCH_FAULTS`) fire at this module's seams — job start/finish,
//! reply writes, the cache budget — so the chaos suite can provoke
//! panics, stalls and corrupted replies at exact, reproducible points.
//!
//! ## Incremental re-solves
//!
//! A `"delta"` job mutates a cached instance (`add`/`remove` edge lists)
//! by **patching the cached CSR in place** ([`Csr::patched`]: one merge
//! pass over the touched rows, byte-identical to a full rebuild) and
//! **re-augments from the cached mate array** with a warm-started exact
//! finisher (`pf-par` by default, `auto` for the statistics-driven pick)
//! instead of solving from scratch — the tree-grafting warm-start lineage.
//! The reply's `"warm":true`, the stage's `"phases"` counter and (under
//! `auto`) its `"selected"` engine make the saving observable: a delta
//! whose cached matching survives the mutation certifies in one phase.
//!
//! [`Csr::patched`]: dsmatch_graph::Csr::patched
//! [`CancelToken`]: dsmatch_graph::CancelToken
//! [`Pipeline::solve_cancel`]: super::pipeline::Pipeline::solve_cancel

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use dsmatch_exact::sprank;
use dsmatch_graph::{BipartiteGraph, CancelToken, Matching, TripletMatrix, NIL};
use dsmatch_json::{parse_json, Json};

use super::batch::WorkspacePool;
use super::faults;
use super::pipeline::{run_augment, Pipeline};
use super::registry::AlgorithmKind;
use super::report::{SolveReport, StageReport};
use super::workspace::{observed_parallelism, Workspace};

/// Error codes carried by `"ok":false` replies, stable for clients.
mod code {
    /// Malformed JSON, a missing/ill-typed required field, or an
    /// over-long input line.
    pub const PARSE: &str = "parse";
    /// A pipeline/finisher spec error ([`SpecError`](crate::engine::SpecError) verbatim).
    pub const SPEC: &str = "spec";
    /// A bad instance reference: `gen:` spec, or out-of-bounds inline/delta edges.
    pub const INSTANCE: &str = "instance";
    /// An unknown handle, or a handle with no cached instance.
    pub const HANDLE: &str = "handle";
    /// Admission control: the in-flight queue is full.
    pub const QUEUE: &str = "queue";
    /// The job's deadline expired, or a client `cancel` op hit it; the
    /// solve was cancelled cooperatively.
    pub const DEADLINE: &str = "deadline";
    /// A `cancel` op naming no in-flight job on this connection.
    pub const JOB: &str = "job";
    /// A daemon-side failure (solver panic, invalid matching).
    pub const INTERNAL: &str = "internal";
    /// Connection-level rejection: the daemon is at `max_clients`.
    pub const BUSY: &str = "busy";
}

/// Configuration for one [`serve`] daemon.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads in the job pool (`0` = the default size).
    pub threads: usize,
    /// Admission bound: maximum jobs in flight (running + queued) **per
    /// connection**. Jobs beyond it are rejected with a `"queue"` error
    /// reply.
    pub max_queue: usize,
    /// Byte budget for the instance cache; least-recently-used idle
    /// handles are evicted when the cached graphs + mates exceed it.
    pub cache_bytes: usize,
    /// Maximum concurrent socket connections (`0` = unlimited). Excess
    /// connections receive one `{"event":"error","code":"busy",…}` line
    /// and are closed.
    pub max_clients: usize,
    /// Maximum accepted input-line length in bytes (`0` = unlimited).
    /// Longer lines are discarded in bounded memory and answered with a
    /// `"parse"` error reply.
    pub max_line_bytes: usize,
    /// Deadline applied to jobs that carry no `"deadline_ms"` of their
    /// own, in milliseconds (`0` = none).
    pub default_deadline_ms: u64,
    /// External stop flag (the CLI points this at its SIGTERM latch).
    /// When it flips true the daemon stops accepting, drains in-flight
    /// jobs, and exits — same guarantees as a `shutdown` op.
    pub stop: Option<&'static AtomicBool>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 0,
            max_queue: 64,
            cache_bytes: 256 << 20,
            max_clients: 64,
            max_line_bytes: 64 << 20,
            default_deadline_ms: 0,
            stop: None,
        }
    }
}

/// What one [`serve`] session did, also emitted as the trailing
/// `{"event":"shutdown",…}` line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Job lines received (including ones rejected with an error reply).
    pub jobs: usize,
    /// Replies with `"ok":true`.
    pub ok: usize,
    /// Replies with `"ok":false`.
    pub errors: usize,
    /// True when the session ended on a `shutdown` op (vs input EOF).
    pub shutdown: bool,
}

/// Synthesize an instance from the spec grammar shared by the CLI
/// positional argument and the serve protocol's string instance refs:
/// `er:<n>:<avg_degree>[:<seed>]` (the part after the `gen:` prefix).
pub fn parse_gen_spec(spec: &str) -> Result<BipartiteGraph, String> {
    let usage = "expected gen:er:<n>:<avg_degree>[:<seed>]";
    match spec.split(':').collect::<Vec<_>>().as_slice() {
        ["er", n, d, rest @ ..] => {
            let n: usize = n.parse().map_err(|_| format!("bad size {n:?}; {usage}"))?;
            if n == 0 {
                return Err(format!("size must be positive; {usage}"));
            }
            let d: f64 = d.parse().map_err(|_| format!("bad degree {d:?}; {usage}"))?;
            if !d.is_finite() || d <= 0.0 {
                return Err(format!("degree must be positive and finite; {usage}"));
            }
            let seed: u64 = match rest {
                [] => 1,
                [s] => s.parse().map_err(|_| format!("bad seed {s:?}; {usage}"))?,
                _ => return Err(format!("trailing fields in gen spec {spec:?}; {usage}")),
            };
            Ok(dsmatch_gen::erdos_renyi_square(n, d, seed))
        }
        _ => Err(format!("unsupported gen spec {spec:?}; {usage}")),
    }
}

// ---------------------------------------------------------------------------
// Job model
// ---------------------------------------------------------------------------

/// `(code, message)` for an error reply.
type JobError = (&'static str, String);

#[derive(Clone, Debug)]
enum InstanceRef {
    /// `"gen:er:…"` — synthesized on the worker.
    Gen(String),
    /// `{"nrows":…,"ncols":…,"edges":[[i,j],…]}`.
    Inline { nrows: usize, ncols: usize, edges: Vec<(usize, usize)> },
    /// `{"handle":"name"}` — a previously `store`d instance.
    Handle(String),
}

#[derive(Clone, Debug)]
struct SolveJob {
    pipeline: Pipeline,
    seed: u64,
    instance: InstanceRef,
    store: Option<String>,
    quality: bool,
    mates: bool,
}

#[derive(Clone, Debug)]
struct DeltaJob {
    handle: String,
    add: Vec<(usize, usize)>,
    remove: Vec<(usize, usize)>,
    finisher: AlgorithmKind,
    quality: bool,
    mates: bool,
}

#[derive(Clone, Debug)]
enum Op {
    Solve(SolveJob),
    Delta(DeltaJob),
    /// Liveness probe, answered inline by the connection loop.
    Ping,
    /// Detach a cached handle (refused while it has jobs in flight).
    Drop {
        handle: String,
    },
    /// Occupy one worker for `ms` milliseconds — a scheduling/testing aid
    /// that makes admission-control and deadline behaviour deterministic.
    Sleep {
        ms: u64,
    },
    /// Cancel an in-flight job on this connection by its id, riding the
    /// same [`CancelToken`] the deadline machinery arms.
    Cancel {
        job: Json,
    },
    /// Stop the daemon: drain in-flight jobs everywhere, then exit.
    Shutdown,
}

#[derive(Clone, Debug)]
struct Job {
    id: Json,
    op: Op,
    /// Per-job deadline override, milliseconds (`Some(0)` = already due).
    deadline_ms: Option<u64>,
}

impl Job {
    /// The handle this job's execution must serialize on, if any: the
    /// mutation target for solves that `store`, the read source for
    /// handle-referencing solves, the delta's subject.
    fn primary_handle(&self) -> Option<&str> {
        match &self.op {
            Op::Solve(sj) => sj.store.as_deref().or(match &sj.instance {
                InstanceRef::Handle(h) => Some(h),
                _ => None,
            }),
            Op::Delta(dj) => Some(&dj.handle),
            _ => None,
        }
    }
}

/// Everything a worker needs beyond the job itself: the armed cancel
/// token, the budget it encodes (for replies), and the daemon-global
/// submission ordinal the fault plan keys on.
#[derive(Clone, Debug)]
struct JobCtx {
    token: CancelToken,
    deadline_ms: Option<u64>,
    ord: u64,
}

impl JobCtx {
    /// The structured error a cancelled job replies with: a deadline when
    /// the job ran under one, a client-initiated `cancel` otherwise.
    fn deadline_error(&self) -> JobError {
        let message = match self.deadline_ms {
            Some(ms) => format!("deadline of {ms} ms exceeded; job cancelled"),
            None => "job cancelled by client request".to_string(),
        };
        (code::DEADLINE, message)
    }
}

fn parse_edge_list(v: &Json, key: &str) -> Result<Vec<(usize, usize)>, JobError> {
    let Some(field) = v.get(key) else { return Ok(Vec::new()) };
    let items = field
        .as_arr()
        .ok_or_else(|| (code::PARSE, format!("{key:?} must be an array of [row,col] pairs")))?;
    let mut edges = Vec::with_capacity(items.len());
    for item in items {
        let pair = item.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
            (code::PARSE, format!("{key:?} entries must be [row,col] pairs, got {item}"))
        })?;
        let (i, j) = (pair[0].as_usize(), pair[1].as_usize());
        match (i, j) {
            (Some(i), Some(j)) => edges.push((i, j)),
            _ => {
                return Err((
                    code::PARSE,
                    format!("{key:?} entries must be non-negative integers, got {item}"),
                ))
            }
        }
    }
    Ok(edges)
}

fn required_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, JobError> {
    v.get(key)
        .and_then(Json::as_str)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| (code::PARSE, format!("job needs a non-empty string {key:?} field")))
}

fn optional_bool(v: &Json, key: &str) -> Result<bool, JobError> {
    match v.get(key) {
        None => Ok(false),
        Some(b) => b.as_bool().ok_or_else(|| (code::PARSE, format!("{key:?} must be a boolean"))),
    }
}

fn parse_instance_ref(v: &Json) -> Result<InstanceRef, JobError> {
    let field = v.get("instance").ok_or_else(|| {
        (
            code::PARSE,
            "solve job needs an \"instance\": a \"gen:…\" spec, \
         {\"handle\":…}, or {\"nrows\",\"ncols\",\"edges\"}"
                .to_string(),
        )
    })?;
    if let Some(s) = field.as_str() {
        let Some(spec) = s.strip_prefix("gen:") else {
            return Err((
                code::PARSE,
                format!("string instance refs must be \"gen:…\" specs, got {s:?}"),
            ));
        };
        return Ok(InstanceRef::Gen(spec.to_string()));
    }
    if let Some(h) = field.get("handle") {
        let h = h
            .as_str()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| (code::PARSE, "\"handle\" must be a non-empty string".to_string()))?;
        return Ok(InstanceRef::Handle(h.to_string()));
    }
    let dims =
        (field.get("nrows").and_then(Json::as_usize), field.get("ncols").and_then(Json::as_usize));
    if let (Some(nrows), Some(ncols)) = dims {
        let edges = parse_edge_list(field, "edges")?;
        return Ok(InstanceRef::Inline { nrows, ncols, edges });
    }
    Err((
        code::PARSE,
        format!("unsupported instance ref {field}; expected a \"gen:…\" spec, {{\"handle\":…}}, or {{\"nrows\",\"ncols\",\"edges\"}}"),
    ))
}

fn parse_job(v: &Json) -> Result<Job, (Json, JobError)> {
    let id = match v.get("id") {
        Some(id) => id.clone(),
        None => {
            return Err((
                Json::Null,
                (code::PARSE, "job has no \"id\"; replies are tagged with it".to_string()),
            ))
        }
    };
    let fail = |e: JobError| (id.clone(), e);
    let op_name = match v.get("op") {
        None => "solve",
        Some(op) => {
            op.as_str().ok_or_else(|| fail((code::PARSE, "\"op\" must be a string".to_string())))?
        }
    };
    let seed = match v.get("seed") {
        None => 1,
        Some(s) => s
            .as_u64()
            .ok_or_else(|| fail((code::PARSE, "\"seed\" must be a non-negative integer".into())))?,
    };
    let deadline_ms = match v.get("deadline_ms") {
        None => None,
        Some(d) => Some(d.as_u64().ok_or_else(|| {
            fail((code::PARSE, "\"deadline_ms\" must be a non-negative integer".into()))
        })?),
    };
    let op = match op_name {
        "solve" => {
            let spec = required_str(v, "pipeline").map_err(fail)?;
            let pipeline: Pipeline =
                spec.parse().map_err(|e| fail((code::SPEC, format!("{e}"))))?;
            let instance = parse_instance_ref(v).map_err(fail)?;
            let store = match v.get("store") {
                None => None,
                Some(s) => Some(
                    s.as_str()
                        .filter(|h| !h.is_empty())
                        .ok_or_else(|| {
                            fail((code::PARSE, "\"store\" must be a non-empty string".into()))
                        })?
                        .to_string(),
                ),
            };
            Op::Solve(SolveJob {
                pipeline,
                seed,
                instance,
                store,
                quality: optional_bool(v, "quality").map_err(fail)?,
                mates: optional_bool(v, "mates").map_err(fail)?,
            })
        }
        "delta" => {
            let handle = required_str(v, "handle").map_err(fail)?.to_string();
            let finisher = match v.get("finisher") {
                None => AlgorithmKind::PothenFanPar,
                Some(f) => {
                    let name = f.as_str().ok_or_else(|| {
                        fail((code::PARSE, "\"finisher\" must be a string".into()))
                    })?;
                    let kind: AlgorithmKind =
                        name.parse().map_err(|e| fail((code::SPEC, format!("{e}"))))?;
                    if !kind.is_exact() {
                        let e = crate::engine::SpecError::NonExactFinisher { finisher: kind };
                        return Err(fail((code::SPEC, e.to_string())));
                    }
                    kind
                }
            };
            Op::Delta(DeltaJob {
                handle,
                add: parse_edge_list(v, "add").map_err(fail)?,
                remove: parse_edge_list(v, "remove").map_err(fail)?,
                finisher,
                quality: optional_bool(v, "quality").map_err(fail)?,
                mates: optional_bool(v, "mates").map_err(fail)?,
            })
        }
        "ping" => Op::Ping,
        "drop" => Op::Drop { handle: required_str(v, "handle").map_err(fail)?.to_string() },
        "sleep" => {
            let ms = v
                .get("ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| fail((code::PARSE, "sleep job needs integer \"ms\"".into())))?;
            Op::Sleep { ms }
        }
        "cancel" => {
            let target = v.get("job").ok_or_else(|| {
                fail((code::PARSE, "cancel job needs a \"job\" field: the target job's id".into()))
            })?;
            Op::Cancel { job: target.clone() }
        }
        "shutdown" => Op::Shutdown,
        other => {
            return Err(fail((
                code::PARSE,
                format!(
                    "unknown op {other:?}; expected solve|delta|ping|drop|sleep|cancel|shutdown"
                ),
            )))
        }
    };
    Ok(Job { id, op, deadline_ms })
}

// ---------------------------------------------------------------------------
// Instance cache
// ---------------------------------------------------------------------------

#[derive(Default)]
struct HandleState {
    graph: Option<Arc<BipartiteGraph>>,
    mates: Option<Matching>,
}

impl HandleState {
    fn approx_bytes(&self) -> usize {
        let graph = self.mates.as_ref().map_or(0, |m| 4 * (m.nrows() + m.ncols()));
        self.graph.as_ref().map_or(graph, |g| {
            // CSR + CSC: two index arrays of nnz u32 entries plus two
            // pointer arrays of (dim + 1) usize entries.
            graph + 8 * g.nnz() + 8 * (g.nrows() + g.ncols() + 2)
        })
    }
}

#[derive(Default)]
struct HandleQueue {
    /// A job owning this handle is running (or scheduled to run).
    busy: bool,
    /// Jobs waiting for the handle, in daemon-wide submission order. Each
    /// carries the connection it belongs to: the per-handle FIFO spans
    /// connections, so a successor may reply on a different stream than
    /// its predecessor.
    pending: VecDeque<(Job, JobCtx, Arc<Conn>)>,
}

/// One cached instance: per-handle job serialization + the cached
/// graph/mates + LRU bookkeeping.
#[derive(Default)]
struct HandleEntry {
    queue: Mutex<HandleQueue>,
    state: Mutex<HandleState>,
    bytes: AtomicUsize,
    touched: AtomicU64,
}

struct Cache {
    entries: HashMap<String, Arc<HandleEntry>>,
    clock: u64,
    budget: usize,
}

impl Cache {
    fn touch(&mut self, entry: &HandleEntry) {
        self.clock += 1;
        entry.touched.store(self.clock, Ordering::Relaxed);
    }

    fn entry_for(&mut self, handle: &str) -> Arc<HandleEntry> {
        let entry = Arc::clone(self.entries.entry(handle.to_string()).or_default());
        self.touch(&entry);
        entry
    }

    /// Evict least-recently-touched idle entries until the byte budget
    /// holds. `protect` (the handle just written) is never evicted, so a
    /// single oversized instance stays usable for the job that loaded it.
    fn evict_to_budget(&mut self, protect: &str) {
        loop {
            let total: usize = self.entries.values().map(|e| e.bytes.load(Ordering::Relaxed)).sum();
            if total <= self.budget {
                return;
            }
            let victim = self
                .entries
                .iter()
                .filter(|(name, entry)| {
                    if name.as_str() == protect {
                        return false;
                    }
                    // Never evict a handle with jobs in flight; lock order
                    // is cache → queue everywhere, so this cannot deadlock.
                    let q = entry.queue.lock().unwrap_or_else(|p| p.into_inner());
                    !q.busy && q.pending.is_empty()
                })
                .min_by_key(|(_, entry)| entry.touched.load(Ordering::Relaxed))
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    self.entries.remove(&name);
                }
                None => return,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Daemon core and per-connection plumbing
// ---------------------------------------------------------------------------

/// State shared across every connection of one daemon process.
struct ServeCore {
    pool: WorkspacePool,
    cache: Mutex<Cache>,
    opts: ServeOptions,
    observed_workers: usize,
    shutdown: AtomicBool,
}

impl ServeCore {
    fn new(opts: &ServeOptions) -> Self {
        let pool = Workspace::per_worker(opts.threads);
        let observed_workers = pool.run(observed_parallelism);
        ServeCore {
            pool,
            cache: Mutex::new(Cache {
                entries: HashMap::new(),
                clock: 0,
                budget: faults::cache_budget(opts.cache_bytes),
            }),
            opts: opts.clone(),
            observed_workers,
            shutdown: AtomicBool::new(false),
        }
    }

    fn cache_lock(&self) -> std::sync::MutexGuard<'_, Cache> {
        self.cache.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// True when the external stop flag (SIGTERM in the CLI) has flipped.
    fn stop_requested(&self) -> bool {
        self.opts.stop.is_some_and(|s| s.load(Ordering::SeqCst))
    }
}

/// What flows from the reader thread and the workers to the connection
/// loop, which owns the output stream.
enum Event {
    /// One complete input line (newline stripped).
    Line(String),
    /// An input line exceeding `max_line_bytes` was discarded; the total
    /// discarded length in bytes.
    Oversize(usize),
    /// Input exhausted (EOF, read error, or client gone).
    Eof,
    /// A rendered reply from a worker, ready to write verbatim.
    Reply(String),
}

/// How deep the per-connection event channel is. Bounded so a client that
/// stops reading exerts backpressure on its workers instead of buffering
/// replies without limit.
const EVENT_CHANNEL_DEPTH: usize = 256;

/// How often the connection loop wakes to poll shutdown/stop flags while
/// idle.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Per-connection shared context: workers render replies and push them
/// through `tx`; only the connection loop ever touches the output stream.
struct Conn {
    core: Arc<ServeCore>,
    tx: mpsc::SyncSender<Event>,
    in_flight: AtomicUsize,
    jobs: AtomicUsize,
    ok: AtomicUsize,
    errors: AtomicUsize,
    /// Cancel tokens of this connection's in-flight worker jobs, keyed by
    /// the job id's JSON rendering: inserted at submission, removed before
    /// the reply is enqueued, cancelled by the inline `cancel` op. A
    /// reused id overwrites — a `cancel` always targets the latest.
    cancels: Mutex<HashMap<String, CancelToken>>,
}

impl Conn {
    fn new(core: Arc<ServeCore>, tx: mpsc::SyncSender<Event>) -> Self {
        Conn {
            core,
            tx,
            in_flight: AtomicUsize::new(0),
            jobs: AtomicUsize::new(0),
            ok: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
            cancels: Mutex::new(HashMap::new()),
        }
    }

    fn count(&self, ok: bool) {
        if ok {
            self.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Worker-side reply path: count, render, enqueue for the connection
    /// loop. Replies are enqueued *before* the in-flight slot is released
    /// (see [`run_job`]), so a drain that observes zero in-flight jobs
    /// knows every reply is already in the channel.
    fn send_reply(&self, doc: Json) {
        self.count(doc.get("ok").and_then(Json::as_bool) == Some(true));
        let _ = self.tx.send(Event::Reply(doc.to_string()));
    }

    /// Reserve an in-flight slot, or refuse (admission control).
    fn admit(&self) -> bool {
        self.in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur < self.core.opts.max_queue).then_some(cur + 1)
            })
            .is_ok()
    }

    fn summary(&self, shutdown: bool) -> ServeSummary {
        ServeSummary {
            jobs: self.jobs.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shutdown,
        }
    }
}

/// The connection loop's exclusively-owned output stream. A failed write
/// (client gone) latches `broken`: later writes become no-ops while the
/// drain machinery keeps handle queues and counters consistent.
struct LineWriter<W: Write> {
    out: W,
    broken: bool,
}

impl<W: Write> LineWriter<W> {
    /// Write a framing line (`{"event":…}`) — never fault-corrupted.
    fn event(&mut self, doc: &Json) {
        self.write_raw(doc.to_string());
    }

    /// Write a job reply line, applying any reply-corruption fault.
    fn reply(&mut self, mut text: String) {
        faults::corrupt_reply(&mut text);
        self.write_raw(text);
    }

    fn write_raw(&mut self, text: String) {
        if self.broken {
            return;
        }
        if writeln!(self.out, "{text}").and_then(|()| self.out.flush()).is_err() {
            self.broken = true;
        }
    }
}

fn error_doc(id: &Json, code: &'static str, message: &str) -> Json {
    Json::obj(vec![
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("code", Json::from(code)),
        ("error", Json::from(message)),
    ])
}

fn mates_json(m: &Matching) -> Json {
    Json::Arr(
        m.rmates()
            .iter()
            .map(|&j| if j == NIL { Json::Null } else { Json::Int(j as i64) })
            .collect(),
    )
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "job panicked".to_string())
}

/// Build the bipartite graph for an inline instance ref, bounds-checked
/// (an out-of-range edge must become an error reply, not a worker panic).
fn build_inline(
    nrows: usize,
    ncols: usize,
    edges: &[(usize, usize)],
) -> Result<BipartiteGraph, JobError> {
    if nrows == 0 || ncols == 0 {
        return Err((code::INSTANCE, "inline instances need nrows ≥ 1 and ncols ≥ 1".into()));
    }
    let mut t = TripletMatrix::with_capacity(nrows, ncols, edges.len());
    for &(i, j) in edges {
        if i >= nrows || j >= ncols {
            return Err((
                code::INSTANCE,
                format!("edge ({i},{j}) out of bounds for {nrows}×{ncols}"),
            ));
        }
        t.push(i, j);
    }
    Ok(BipartiteGraph::from_csr(t.into_csr()))
}

// ---------------------------------------------------------------------------
// Job execution (on pool workers)
// ---------------------------------------------------------------------------

fn execute_solve(core: &ServeCore, job: &SolveJob, ctx: &JobCtx) -> Result<Json, JobError> {
    let graph: Arc<BipartiteGraph> = match &job.instance {
        InstanceRef::Gen(spec) => Arc::new(parse_gen_spec(spec).map_err(|e| (code::INSTANCE, e))?),
        InstanceRef::Inline { nrows, ncols, edges } => {
            Arc::new(build_inline(*nrows, *ncols, edges)?)
        }
        InstanceRef::Handle(h) => {
            let entry =
                core.cache_lock().entries.get(h).cloned().ok_or_else(|| {
                    (code::HANDLE, format!("no instance cached under handle {h:?}"))
                })?;
            let state = entry.state.lock().unwrap_or_else(|p| p.into_inner());
            state.graph.clone().ok_or_else(|| {
                (code::HANDLE, format!("handle {h:?} exists but has no cached instance yet"))
            })?
        }
    };

    let solved = core.pool.with_workspace(|ws| {
        job.pipeline.clone().with_seed(job.seed).solve_cancel(&graph, ws, &ctx.token)
    });
    let mut report = match solved {
        Ok(report) => report,
        Err(_) => return Err(ctx.deadline_error()),
    };
    report.deadline_ms = ctx.deadline_ms;
    report
        .matching
        .verify(&graph)
        .map_err(|e| (code::INTERNAL, format!("produced an invalid matching: {e}")))?;
    if job.quality {
        report.set_quality(sprank(&graph));
    }

    if let Some(handle) = &job.store {
        let entry = core.cache_lock().entry_for(handle);
        {
            let mut state = entry.state.lock().unwrap_or_else(|p| p.into_inner());
            state.graph = Some(Arc::clone(&graph));
            state.mates = Some(report.matching.clone());
            entry.bytes.store(state.approx_bytes(), Ordering::Relaxed);
        }
        core.cache_lock().evict_to_budget(handle);
    }

    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::from("solve")),
        ("pipeline".to_string(), Json::from(job.pipeline.spec())),
        ("seed".to_string(), Json::from(job.seed)),
    ];
    if let Some(h) = &job.store {
        pairs.push(("handle".to_string(), Json::from(h.as_str())));
    }
    if let Some(w) = report.weight {
        // Weighted workloads answer "how heavy" at the top level too, so
        // clients need not dig into the nested report.
        pairs.push(("weight".to_string(), Json::from(w)));
    }
    pairs.push(("report".to_string(), report.to_json()));
    if job.mates {
        pairs.push(("rmate".to_string(), mates_json(&report.matching)));
    }
    Ok(Json::Obj(pairs))
}

fn execute_delta(
    core: &ServeCore,
    job: &DeltaJob,
    ctx: &JobCtx,
    entry: &Arc<HandleEntry>,
) -> Result<Json, JobError> {
    let (graph, cached_mates) = {
        let state = entry.state.lock().unwrap_or_else(|p| p.into_inner());
        (state.graph.clone(), state.mates.clone())
    };
    let graph = graph.ok_or_else(|| {
        (code::HANDLE, format!("no instance cached under handle {:?}", job.handle))
    })?;
    let (nrows, ncols) = (graph.nrows(), graph.ncols());
    for &(i, j) in job.add.iter().chain(&job.remove) {
        if i >= nrows || j >= ncols {
            return Err((
                code::INSTANCE,
                format!("delta edge ({i},{j}) out of bounds for {nrows}×{ncols}"),
            ));
        }
    }

    // Patch the cached CSR in place (one merge pass over the touched rows)
    // instead of re-sorting the whole pattern through a triplet rebuild.
    // Removing an absent edge or adding a present one is a no-op, so
    // clients need not track the exact current pattern.
    let mutated = BipartiteGraph::from_csr(graph.csr().patched(&job.add, &job.remove));

    // Warm start: the cached mates, minus pairs whose edge was removed —
    // still a valid matching of the mutated graph, so the finisher only
    // re-augments what the delta actually broke.
    let warm = cached_mates.is_some();
    let initial = cached_mates.map(|m| {
        let mut rmate = m.rmates().to_vec();
        let mut cmate = m.cmates().to_vec();
        for i in 0..rmate.len() {
            let j = rmate[i];
            if j != NIL && !mutated.csr().contains(i, j as usize) {
                cmate[j as usize] = NIL;
                rmate[i] = NIL;
            }
        }
        Matching::from_mates(rmate, cmate)
    });

    let t0 = Instant::now();
    let mutated_ref = &mutated;
    let token = &ctx.token;
    let finished = core.pool.with_workspace(|ws| {
        let slot_pool = ws.pool().cloned();
        let run =
            move |ws: &mut Workspace| run_augment(job.finisher, mutated_ref, initial, ws, token);
        match slot_pool {
            Some(p) => p.install(|| run(ws)),
            None => run(ws),
        }
    });
    let seconds = t0.elapsed().as_secs_f64();
    // On cancellation the cached handle state is left exactly as it was:
    // the delta never happened, and the workspace stays reusable.
    let Ok((matching, counters)) = finished else {
        return Err(ctx.deadline_error());
    };
    matching
        .verify(&mutated)
        .map_err(|e| (code::INTERNAL, format!("produced an invalid matching: {e}")))?;

    let mut report = SolveReport {
        stages: vec![StageReport {
            stage: format!("delta:{}", job.finisher),
            seconds,
            cardinality: Some(matching.cardinality()),
            augmentations: counters.augmentations,
            phases: counters.phases,
            selected: counters.selected.map(|k| k.name().to_string()),
            weight: None,
        }],
        scaling_iterations: None,
        scaling_error: None,
        quality: None,
        cancelled: false,
        deadline_ms: ctx.deadline_ms,
        weight: None,
        matching,
    };
    if job.quality {
        report.set_quality(sprank(&mutated));
    }

    {
        let mut state = entry.state.lock().unwrap_or_else(|p| p.into_inner());
        state.graph = Some(Arc::new(mutated));
        state.mates = Some(report.matching.clone());
        entry.bytes.store(state.approx_bytes(), Ordering::Relaxed);
    }
    {
        let mut cache = core.cache_lock();
        cache.touch(entry);
        cache.evict_to_budget(&job.handle);
    }

    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::from("delta")),
        ("handle".to_string(), Json::from(job.handle.as_str())),
        ("warm".to_string(), Json::Bool(warm)),
        ("added".to_string(), Json::from(job.add.len())),
        ("removed".to_string(), Json::from(job.remove.len())),
        ("report".to_string(), report.to_json()),
    ];
    if job.mates {
        pairs.push(("rmate".to_string(), mates_json(&report.matching)));
    }
    Ok(Json::Obj(pairs))
}

fn execute(
    core: &ServeCore,
    job: &Job,
    ctx: &JobCtx,
    entry: Option<&Arc<HandleEntry>>,
) -> Result<Json, JobError> {
    // A deadline that expired while the job sat in a queue cancels it
    // before any work starts — even for pipelines whose stages have no
    // cooperative checkpoints of their own.
    if ctx.token.is_cancelled() {
        return Err(ctx.deadline_error());
    }
    match &job.op {
        Op::Solve(sj) => execute_solve(core, sj, ctx),
        Op::Delta(dj) => {
            // Defensive: the scheduler always pairs a delta with its
            // handle entry; if that invariant ever breaks, answer with a
            // structured internal error instead of poisoning a worker.
            let Some(entry) = entry else {
                return Err((
                    code::INTERNAL,
                    "delta job was scheduled without its handle entry".to_string(),
                ));
            };
            execute_delta(core, dj, ctx, entry)
        }
        Op::Sleep { ms } => {
            let total = Duration::from_millis((*ms).min(60_000));
            let t0 = Instant::now();
            // Chunked so a deadline interrupts the nap promptly — this is
            // what makes deadline tests cheap and deterministic.
            loop {
                let elapsed = t0.elapsed();
                if elapsed >= total {
                    break;
                }
                if ctx.token.is_cancelled() {
                    return Err(ctx.deadline_error());
                }
                std::thread::sleep((total - elapsed).min(Duration::from_millis(5)));
            }
            Ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::from("sleep")),
                ("ms", Json::from(*ms)),
            ]))
        }
        // Inline ops never reach the workers.
        Op::Ping | Op::Drop { .. } | Op::Cancel { .. } | Op::Shutdown => {
            unreachable!("handled inline")
        }
    }
}

/// Run one scheduled job on a worker: execute (panic-safe), release the
/// handle and start its next pending job, then enqueue the reply and
/// release the admission slot — in that order (see [`Conn::send_reply`]).
fn run_job<'s>(
    conn: Arc<Conn>,
    scope: &rayon::Scope<'s>,
    job: Job,
    ctx: JobCtx,
    entry: Option<Arc<HandleEntry>>,
) {
    faults::stall_if_due("start", ctx.ord);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        faults::panic_if_due(ctx.ord);
        execute(&conn.core, &job, &ctx, entry.as_ref())
    }));
    faults::stall_if_due("finish", ctx.ord);
    let reply = match outcome {
        Ok(Ok(body)) => {
            let Json::Obj(mut pairs) = body else { unreachable!("replies are objects") };
            pairs.insert(0, ("id".to_string(), job.id.clone()));
            Json::Obj(pairs)
        }
        Ok(Err((code, message))) => {
            let mut doc = error_doc(&job.id, code, &message);
            if let Json::Obj(pairs) = &mut doc {
                if code == code::DEADLINE {
                    pairs.push(("cancelled".to_string(), Json::Bool(true)));
                    pairs.push(("deadline_ms".to_string(), Json::opt(ctx.deadline_ms)));
                }
                if let Some(h) = job.primary_handle() {
                    pairs.push(("handle".to_string(), Json::from(h)));
                }
            }
            doc
        }
        Err(payload) => error_doc(&job.id, code::INTERNAL, &panic_message(payload)),
    };
    // Release the handle (and start its next pending job) *before* the
    // reply goes out: a client that reacts to the reply instantly — e.g.
    // with a `drop` — must observe the handle idle, not racily busy.
    if let Some(entry) = entry {
        let next = {
            let mut q = entry.queue.lock().unwrap_or_else(|p| p.into_inner());
            match q.pending.pop_front() {
                Some(next) => Some(next), // stays busy
                None => {
                    q.busy = false;
                    None
                }
            }
        };
        if let Some((job, ctx, owner)) = next {
            // The successor may belong to a different connection; it joins
            // whichever scope is current — its owner's drain tracks it
            // through the owner's in-flight counter, not scope membership.
            scope.spawn(move |s| run_job(owner, s, job, ctx, Some(entry)));
        }
    }
    // Deregister before the reply goes out: a client reacting to the reply
    // with a `cancel` of the same id must get a clean "no such job".
    conn.cancels.lock().unwrap_or_else(|p| p.into_inner()).remove(&job.id.to_string());
    conn.send_reply(reply);
    conn.in_flight.fetch_sub(1, Ordering::SeqCst);
}

/// Admit + schedule one worker-bound job: direct spawn when it touches no
/// handle, per-handle FIFO when it does. The job's deadline is armed here,
/// at submission — queue wait counts against the budget.
fn schedule<'s, W: Write>(
    conn: &Arc<Conn>,
    scope: &rayon::Scope<'s>,
    out: &mut LineWriter<W>,
    job: Job,
) {
    if !conn.admit() {
        let message = format!(
            "queue full: {} jobs in flight (max_queue {})",
            conn.in_flight.load(Ordering::SeqCst),
            conn.core.opts.max_queue
        );
        conn.count(false);
        out.reply(error_doc(&job.id, code::QUEUE, &message).to_string());
        return;
    }
    let defaulted = conn.core.opts.default_deadline_ms;
    let deadline_ms = job.deadline_ms.or((defaulted > 0).then_some(defaulted));
    let token = match deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::unbounded(),
    };
    let ctx = JobCtx { token, deadline_ms, ord: faults::next_job() };
    // Register for client-initiated `cancel` before the job can run:
    // queued jobs (per-handle FIFO) are cancellable while they wait.
    conn.cancels
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(job.id.to_string(), ctx.token.clone());
    let entry = job.primary_handle().map(|h| conn.core.cache_lock().entry_for(h));
    match entry {
        None => {
            let owner = Arc::clone(conn);
            scope.spawn(move |s| run_job(owner, s, job, ctx, None));
        }
        Some(entry) => {
            let run_now = {
                let mut q = entry.queue.lock().unwrap_or_else(|p| p.into_inner());
                if q.busy {
                    q.pending.push_back((job.clone(), ctx.clone(), Arc::clone(conn)));
                    false
                } else {
                    q.busy = true;
                    true
                }
            };
            if run_now {
                let owner = Arc::clone(conn);
                scope.spawn(move |s| run_job(owner, s, job, ctx, Some(entry)));
            }
        }
    }
}

/// What processing one input line decided.
enum LineOutcome {
    Continue,
    Shutdown,
}

fn handle_line<'s, W: Write>(
    conn: &Arc<Conn>,
    scope: &rayon::Scope<'s>,
    out: &mut LineWriter<W>,
    text: &str,
) -> LineOutcome {
    let text = text.trim();
    if text.is_empty() {
        return LineOutcome::Continue;
    }
    conn.jobs.fetch_add(1, Ordering::Relaxed);
    let doc = match parse_json(text) {
        Ok(doc) => doc,
        Err(e) => {
            conn.count(false);
            out.reply(
                error_doc(&Json::Null, code::PARSE, &format!("malformed job line: {e}"))
                    .to_string(),
            );
            return LineOutcome::Continue;
        }
    };
    let job = match parse_job(&doc) {
        Ok(job) => job,
        Err((id, (code, message))) => {
            conn.count(false);
            out.reply(error_doc(&id, code, &message).to_string());
            return LineOutcome::Continue;
        }
    };
    match &job.op {
        Op::Ping => {
            conn.count(true);
            out.reply(
                Json::obj(vec![
                    ("id", job.id.clone()),
                    ("ok", Json::Bool(true)),
                    ("op", Json::from("ping")),
                ])
                .to_string(),
            );
            LineOutcome::Continue
        }
        Op::Shutdown => {
            conn.core.shutdown.store(true, Ordering::SeqCst);
            conn.count(true);
            out.reply(
                Json::obj(vec![
                    ("id", job.id.clone()),
                    ("ok", Json::Bool(true)),
                    ("op", Json::from("shutdown")),
                ])
                .to_string(),
            );
            LineOutcome::Shutdown
        }
        Op::Drop { handle } => {
            let mut cache = conn.core.cache_lock();
            let dropped = match cache.entries.get(handle) {
                None => Err(format!("no instance cached under handle {handle:?}")),
                Some(entry) => {
                    let q = entry.queue.lock().unwrap_or_else(|p| p.into_inner());
                    if q.busy || !q.pending.is_empty() {
                        Err(format!("handle {handle:?} has jobs in flight; retry later"))
                    } else {
                        Ok(())
                    }
                }
            };
            match dropped {
                Ok(()) => {
                    cache.entries.remove(handle);
                    drop(cache);
                    conn.count(true);
                    out.reply(
                        Json::obj(vec![
                            ("id", job.id.clone()),
                            ("ok", Json::Bool(true)),
                            ("op", Json::from("drop")),
                            ("handle", Json::from(handle.as_str())),
                        ])
                        .to_string(),
                    );
                }
                Err(message) => {
                    drop(cache);
                    conn.count(false);
                    out.reply(error_doc(&job.id, code::HANDLE, &message).to_string());
                }
            }
            LineOutcome::Continue
        }
        Op::Cancel { job: target } => {
            let token = conn
                .cancels
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .get(&target.to_string())
                .cloned();
            match token {
                Some(token) => {
                    token.cancel();
                    conn.count(true);
                    out.reply(
                        Json::obj(vec![
                            ("id", job.id.clone()),
                            ("ok", Json::Bool(true)),
                            ("op", Json::from("cancel")),
                            ("job", target.clone()),
                        ])
                        .to_string(),
                    );
                }
                None => {
                    conn.count(false);
                    out.reply(
                        error_doc(
                            &job.id,
                            code::JOB,
                            &format!("no in-flight job {target} on this connection"),
                        )
                        .to_string(),
                    );
                }
            }
            LineOutcome::Continue
        }
        Op::Solve(_) | Op::Delta(_) | Op::Sleep { .. } => {
            schedule(conn, scope, out, job);
            LineOutcome::Continue
        }
    }
}

/// The connection loop: runs on the connection's own thread, owns the
/// output stream, and multiplexes three event sources — input lines from
/// the detached reader thread, rendered replies from workers, and the
/// daemon-wide shutdown/stop flags (polled). Returns true when this
/// connection saw the `shutdown` op.
///
/// Drain protocol: once reading has ended (EOF) or a shutdown/stop is in
/// effect, the loop keeps delivering replies until the connection's
/// in-flight count reaches zero. Workers enqueue their reply *before*
/// decrementing that count, so observing zero proves every reply is
/// already in the channel; one final non-blocking sweep flushes them.
fn conn_loop<'s, W: Write>(
    conn: &Arc<Conn>,
    scope: &rayon::Scope<'s>,
    rx: &mpsc::Receiver<Event>,
    out: &mut LineWriter<W>,
) -> bool {
    let mut done_reading = false;
    let mut draining = false;
    let mut client_shutdown = false;
    loop {
        if !draining && (conn.core.shutdown.load(Ordering::SeqCst) || conn.core.stop_requested()) {
            // Another connection's shutdown op, or SIGTERM: stop taking
            // new work, drain what's in flight, and spread the word.
            conn.core.shutdown.store(true, Ordering::SeqCst);
            draining = true;
        }
        if (done_reading || draining) && conn.in_flight.load(Ordering::SeqCst) == 0 {
            while let Ok(event) = rx.try_recv() {
                if let Event::Reply(text) = event {
                    out.reply(text);
                }
            }
            return client_shutdown;
        }
        match rx.recv_timeout(POLL_INTERVAL) {
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => done_reading = true,
            Ok(Event::Eof) => done_reading = true,
            Ok(Event::Reply(text)) => out.reply(text),
            Ok(Event::Oversize(bytes)) if !draining => {
                conn.jobs.fetch_add(1, Ordering::Relaxed);
                conn.count(false);
                let message = format!(
                    "job line of {bytes} bytes exceeds the {}-byte line limit",
                    conn.core.opts.max_line_bytes
                );
                out.reply(error_doc(&Json::Null, code::PARSE, &message).to_string());
            }
            Ok(Event::Line(text)) if !draining => {
                if let LineOutcome::Shutdown = handle_line(conn, scope, out, &text) {
                    draining = true;
                    client_shutdown = true;
                }
            }
            // While draining, further input is ignored (matching the
            // pre-concurrency behaviour of stopping the read loop).
            Ok(Event::Oversize(_)) | Ok(Event::Line(_)) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Input framing
// ---------------------------------------------------------------------------

enum LineRead {
    Eof,
    Line(String),
    Oversize(usize),
}

/// Read one newline-terminated line, holding at most `cap` bytes in
/// memory. An over-cap line is consumed to its newline (counting, not
/// storing) and reported as [`LineRead::Oversize`] with its total length.
fn read_line_capped<R: BufRead>(input: &mut R, cap: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + pos <= cap {
                buf.extend_from_slice(&chunk[..pos]);
                input.consume(pos + 1);
                return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
            }
            let total = buf.len() + pos;
            input.consume(pos + 1);
            return Ok(LineRead::Oversize(total));
        }
        let n = chunk.len();
        if buf.len() + n > cap {
            // Over the cap with no newline yet: stop storing, keep
            // counting until the line (or the stream) ends.
            let mut total = buf.len() + n;
            buf.clear();
            input.consume(n);
            loop {
                let chunk = input.fill_buf()?;
                if chunk.is_empty() {
                    return Ok(LineRead::Oversize(total));
                }
                if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
                    total += pos;
                    input.consume(pos + 1);
                    return Ok(LineRead::Oversize(total));
                }
                total += chunk.len();
                let n = chunk.len();
                input.consume(n);
            }
        }
        buf.extend_from_slice(chunk);
        input.consume(n);
    }
}

/// The detached reader thread: pumps capped lines into the connection
/// loop's channel. Exits on EOF/read error (after signalling `Eof`) or
/// when the connection loop has gone away.
fn reader_loop<R: BufRead>(mut input: R, tx: mpsc::SyncSender<Event>, cap: usize) {
    let cap = if cap == 0 { usize::MAX } else { cap };
    loop {
        let event = match read_line_capped(&mut input, cap) {
            Ok(LineRead::Eof) | Err(_) => {
                let _ = tx.send(Event::Eof);
                return;
            }
            Ok(LineRead::Line(text)) => Event::Line(text),
            Ok(LineRead::Oversize(bytes)) => Event::Oversize(bytes),
        };
        if tx.send(event).is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Session entry points
// ---------------------------------------------------------------------------

fn serve_stream<R, W>(core: &Arc<ServeCore>, input: R, output: W) -> ServeSummary
where
    R: BufRead + Send + 'static,
    W: Write,
{
    let (tx, rx) = mpsc::sync_channel::<Event>(EVENT_CHANNEL_DEPTH);
    let conn = Arc::new(Conn::new(Arc::clone(core), tx.clone()));
    let mut out = LineWriter { out: output, broken: false };
    out.event(&Json::obj(vec![
        ("event", Json::from("ready")),
        ("threads", Json::from(core.pool.threads())),
        ("observed_workers", Json::from(core.observed_workers)),
        ("max_queue", Json::from(core.opts.max_queue)),
        ("cache_bytes", Json::from(core.opts.cache_bytes)),
        ("max_line_bytes", Json::from(core.opts.max_line_bytes)),
        ("default_deadline_ms", Json::from(core.opts.default_deadline_ms)),
    ]));
    {
        let cap = core.opts.max_line_bytes;
        std::thread::spawn(move || reader_loop(input, tx, cap));
    }
    // The connection loop runs as a scope body on this thread; workers
    // drain jobs concurrently. The scope joins any task still running
    // here (e.g. a cross-connection successor) after the drain.
    let client_shutdown = match core.pool.rayon_pool().cloned() {
        Some(pool) => pool.scope(|s| conn_loop(&conn, s, &rx, &mut out)),
        None => rayon::scope(|s| conn_loop(&conn, s, &rx, &mut out)),
    };
    let summary = conn.summary(client_shutdown);
    out.event(&Json::obj(vec![
        ("event", Json::from("shutdown")),
        ("jobs", Json::from(summary.jobs)),
        ("ok", Json::from(summary.ok)),
        ("errors", Json::from(summary.errors)),
    ]));
    summary
}

/// Run a serve session over an arbitrary line stream: read jobs from
/// `input` until EOF or a `shutdown` op, stream one reply line per job to
/// `output` (completion order), framed by `{"event":"ready",…}` and
/// `{"event":"shutdown",…}` lines. This is `dsmatch serve`'s stdin mode.
pub fn serve<R, W>(input: R, output: W, opts: &ServeOptions) -> ServeSummary
where
    R: BufRead + Send + 'static,
    W: Write,
{
    serve_stream(&Arc::new(ServeCore::new(opts)), input, output)
}

/// Serve connections on a Unix domain socket **concurrently** — one
/// session per client, all sharing one instance cache and worker pool —
/// until a client sends `{"op":"shutdown"}` or [`ServeOptions::stop`]
/// flips. At most [`ServeOptions::max_clients`] sessions run at once;
/// excess connections get one `{"event":"error","code":"busy",…}` line.
/// On shutdown every live session drains its in-flight jobs before its
/// summary line goes out, then the socket file is unlinked.
///
/// A stale socket file (no daemon answering on it) is unlinked and
/// rebound; a *live* one produces an `AddrInUse` error naming the
/// conflict instead of hijacking the path.
#[cfg(unix)]
pub fn serve_unix_socket(
    path: &std::path::Path,
    opts: &ServeOptions,
) -> std::io::Result<ServeSummary> {
    use std::io::ErrorKind;
    use std::os::unix::net::{UnixListener, UnixStream};

    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) if e.kind() == ErrorKind::AddrInUse => {
            match UnixStream::connect(path) {
                // Someone answers: refuse to steal a live daemon's socket.
                Ok(_) => {
                    return Err(std::io::Error::new(
                        ErrorKind::AddrInUse,
                        format!(
                            "socket {} is in use by a live daemon; \
                             stop it first or choose another --socket path",
                            path.display()
                        ),
                    ))
                }
                // Nobody home: a stale file from a crashed daemon.
                Err(_) => {
                    std::fs::remove_file(path)?;
                    UnixListener::bind(path)?
                }
            }
        }
        Err(e) => return Err(e),
    };
    listener.set_nonblocking(true)?;

    let core = Arc::new(ServeCore::new(opts));
    let active = Arc::new(AtomicUsize::new(0));
    // Read-halves of live connections, so shutdown can unblock their
    // parked reader threads (shutting down only the read side keeps the
    // write side open for drained replies).
    let registry: Arc<Mutex<HashMap<u64, UnixStream>>> = Arc::new(Mutex::new(HashMap::new()));
    let totals = Mutex::new(ServeSummary::default());
    let mut next_id: u64 = 0;
    let mut fatal: Option<std::io::Error> = None;

    std::thread::scope(|s| {
        while !(core.shutdown.load(Ordering::SeqCst) || core.stop_requested()) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let _ = stream.set_nonblocking(false);
                    let limit = core.opts.max_clients;
                    if limit > 0 && active.load(Ordering::SeqCst) >= limit {
                        let doc = Json::obj(vec![
                            ("event", Json::from("error")),
                            ("code", Json::from(code::BUSY)),
                            (
                                "error",
                                Json::from(format!("daemon at max_clients ({limit}); retry later")),
                            ),
                        ]);
                        let mut stream = stream;
                        let _ = writeln!(stream, "{doc}");
                        continue; // dropped: connection closed
                    }
                    let (reader, registered) = match (stream.try_clone(), stream.try_clone()) {
                        (Ok(r), Ok(g)) => (r, g),
                        _ => {
                            let mut stream = stream;
                            let doc = Json::obj(vec![
                                ("event", Json::from("error")),
                                ("code", Json::from(code::INTERNAL)),
                                ("error", Json::from("failed to clone the connection stream")),
                            ]);
                            let _ = writeln!(stream, "{doc}");
                            continue;
                        }
                    };
                    let id = next_id;
                    next_id += 1;
                    active.fetch_add(1, Ordering::SeqCst);
                    registry.lock().unwrap_or_else(|p| p.into_inner()).insert(id, registered);
                    let core = Arc::clone(&core);
                    let active = Arc::clone(&active);
                    let registry = Arc::clone(&registry);
                    let totals = &totals;
                    s.spawn(move || {
                        let summary = serve_stream(&core, std::io::BufReader::new(reader), stream);
                        let mut total = totals.lock().unwrap_or_else(|p| p.into_inner());
                        total.jobs += summary.jobs;
                        total.ok += summary.ok;
                        total.errors += summary.errors;
                        total.shutdown |= summary.shutdown;
                        registry.lock().unwrap_or_else(|p| p.into_inner()).remove(&id);
                        active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    fatal = Some(e);
                    break;
                }
            }
        }
        // Stopping (client shutdown op, SIGTERM, or a fatal accept
        // error): make sure every session notices, and unblock reader
        // threads parked on idle connections. Sessions then drain their
        // in-flight jobs; the scope join below waits for all of them.
        core.shutdown.store(true, Ordering::SeqCst);
        let streams: Vec<UnixStream> = registry
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain()
            .map(|(_, stream)| stream)
            .collect();
        for stream in streams {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    });

    let _ = std::fs::remove_file(path);
    match fatal {
        Some(e) => Err(e),
        None => Ok(totals.into_inner().unwrap_or_else(|p| p.into_inner())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(input: &str, opts: &ServeOptions) -> (ServeSummary, Vec<Json>) {
        let mut out: Vec<u8> = Vec::new();
        let summary = serve(std::io::Cursor::new(input.to_string()), &mut out, opts);
        let lines = String::from_utf8(out)
            .expect("utf8 output")
            .lines()
            .map(|l| parse_json(l).unwrap_or_else(|e| panic!("bad reply line {l:?}: {e}")))
            .collect();
        (summary, lines)
    }

    fn opts(threads: usize) -> ServeOptions {
        ServeOptions { threads, ..ServeOptions::default() }
    }

    #[test]
    fn frames_sessions_with_ready_and_shutdown_events() {
        let (summary, lines) = run("", &opts(1));
        assert_eq!(summary, ServeSummary::default());
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].get("event").unwrap().as_str(), Some("ready"));
        assert!(lines[0].get("observed_workers").unwrap().as_usize().is_some());
        assert_eq!(lines[1].get("event").unwrap().as_str(), Some("shutdown"));
    }

    #[test]
    fn job_parse_errors_are_structured_and_typed() {
        let input = concat!(
            "{not json\n",
            "{\"op\":\"solve\"}\n",
            "{\"id\":1,\"op\":\"warp\"}\n",
            "{\"id\":2,\"pipeline\":\"two,frobnicate\",\"instance\":\"gen:er:50:3\"}\n",
            "{\"id\":3,\"pipeline\":\"two\",\"instance\":\"file.mtx\"}\n",
            "{\"id\":4,\"op\":\"delta\",\"handle\":\"h\",\"finisher\":\"two\"}\n",
        );
        let (summary, lines) = run(input, &opts(1));
        assert_eq!(summary.jobs, 6);
        assert_eq!(summary.errors, 6);
        assert_eq!(summary.ok, 0);
        let code_of = |k: usize| lines[k + 1].get("code").unwrap().as_str().unwrap().to_string();
        assert_eq!(code_of(0), "parse", "malformed JSON");
        assert_eq!(code_of(1), "parse", "missing id");
        assert_eq!(code_of(2), "parse", "unknown op");
        assert_eq!(code_of(3), "spec", "unknown algorithm surfaces SpecError");
        assert!(
            lines[4].get("error").unwrap().as_str().unwrap().contains("unknown algorithm"),
            "SpecError Display is carried verbatim"
        );
        assert_eq!(code_of(4), "parse", "non-gen string instance");
        assert_eq!(code_of(5), "spec", "non-exact finisher");
    }

    #[test]
    fn cache_evicts_lru_idle_entries_but_never_the_protected_one() {
        let mut cache = Cache { entries: HashMap::new(), clock: 0, budget: 100 };
        for name in ["a", "b", "c"] {
            let entry = cache.entry_for(name);
            entry.bytes.store(60, Ordering::Relaxed);
        }
        // Budget 100, total 180: evict the two least-recently-touched.
        cache.evict_to_budget("c");
        assert!(!cache.entries.contains_key("a"));
        assert!(!cache.entries.contains_key("b"));
        assert!(cache.entries.contains_key("c"), "the just-written handle survives");

        // Busy entries are pinned even when oldest.
        let busy = cache.entry_for("busy");
        busy.bytes.store(60, Ordering::Relaxed);
        busy.queue.lock().unwrap().busy = true;
        let idle = cache.entry_for("idle");
        idle.bytes.store(60, Ordering::Relaxed);
        cache.evict_to_budget("idle");
        assert!(cache.entries.contains_key("busy"));
        assert!(cache.entries.contains_key("idle"));
        assert!(!cache.entries.contains_key("c"), "the idle LRU entry went instead");
    }

    #[test]
    fn sleep_solve_and_ping_round_trip() {
        let input = concat!(
            "{\"id\":\"s\",\"op\":\"sleep\",\"ms\":1}\n",
            "{\"id\":\"p\",\"op\":\"ping\"}\n",
        );
        let (summary, lines) = run(input, &opts(2));
        assert_eq!(summary.ok, 2);
        assert_eq!(summary.errors, 0);
        let ids: Vec<&str> =
            lines[1..=2].iter().map(|l| l.get("id").unwrap().as_str().unwrap()).collect();
        assert!(ids.contains(&"s") && ids.contains(&"p"));
    }

    #[test]
    fn deadline_cancels_sleep_and_daemon_keeps_serving() {
        let input = concat!(
            "{\"id\":\"slow\",\"op\":\"sleep\",\"ms\":5000,\"deadline_ms\":30}\n",
            "{\"id\":\"p\",\"op\":\"ping\"}\n",
        );
        let t0 = Instant::now();
        let (summary, lines) = run(input, &opts(2));
        assert!(
            // lint:allow(test-deadline): upper bound proving the 5 s sleep was cut short — must stay below 5 s, so it cannot route through the widening knob
            t0.elapsed() < Duration::from_secs(4),
            "the 5 s sleep must be cut short by its 30 ms deadline"
        );
        assert_eq!(summary.ok, 1, "the ping still succeeds");
        assert_eq!(summary.errors, 1);
        let reply = lines[1..lines.len() - 1]
            .iter()
            .find(|l| l.get("id").and_then(Json::as_str) == Some("slow"))
            .expect("a reply for the cancelled job");
        assert_eq!(reply.get("code").unwrap().as_str(), Some("deadline"));
        assert_eq!(reply.get("cancelled").unwrap().as_bool(), Some(true));
        assert_eq!(reply.get("deadline_ms").unwrap().as_u64(), Some(30));
    }

    #[test]
    fn client_cancel_cuts_job_short_and_daemon_keeps_serving() {
        // The cancel token is registered at submission, so the inline
        // `cancel` op lands even if the worker has not started the sleep.
        let input = concat!(
            "{\"id\":\"slow\",\"op\":\"sleep\",\"ms\":5000}\n",
            "{\"id\":\"c\",\"op\":\"cancel\",\"job\":\"slow\"}\n",
            "{\"id\":\"p\",\"op\":\"ping\"}\n",
        );
        let t0 = Instant::now();
        let (summary, lines) = run(input, &opts(2));
        assert!(
            // lint:allow(test-deadline): upper bound proving the 5 s sleep was cut short — must stay below 5 s, so it cannot route through the widening knob
            t0.elapsed() < Duration::from_secs(4),
            "the 5 s sleep must be cut short by the client cancel"
        );
        assert_eq!(summary.ok, 2, "cancel ack and ping both succeed");
        assert_eq!(summary.errors, 1, "only the cancelled job errors");
        let by_id = |id: &str| {
            lines[1..lines.len() - 1]
                .iter()
                .find(|l| l.get("id").and_then(Json::as_str) == Some(id))
                .unwrap_or_else(|| panic!("a reply for {id:?}"))
        };
        let ack = by_id("c");
        assert_eq!(ack.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(ack.get("op").unwrap().as_str(), Some("cancel"));
        assert_eq!(ack.get("job").unwrap().as_str(), Some("slow"));
        let reply = by_id("slow");
        assert_eq!(reply.get("code").unwrap().as_str(), Some("deadline"));
        assert_eq!(reply.get("cancelled").unwrap().as_bool(), Some(true));
        assert!(reply.get("deadline_ms").unwrap().is_null(), "no deadline was set");
        assert!(
            reply.get("error").unwrap().as_str().unwrap().contains("client request"),
            "{reply}"
        );
    }

    #[test]
    fn cancel_of_unknown_job_is_a_structured_job_error() {
        let input = concat!(
            "{\"id\":\"c\",\"op\":\"cancel\",\"job\":\"ghost\"}\n",
            "{\"id\":\"c2\",\"op\":\"cancel\"}\n",
            "{\"id\":\"p\",\"op\":\"ping\"}\n",
        );
        let (summary, lines) = run(input, &opts(1));
        assert_eq!(summary.ok, 1, "the daemon keeps serving");
        assert_eq!(summary.errors, 2);
        assert_eq!(lines[1].get("code").unwrap().as_str(), Some("job"));
        assert!(lines[1].get("error").unwrap().as_str().unwrap().contains("no in-flight job"));
        assert_eq!(lines[2].get("code").unwrap().as_str(), Some("parse"), "missing \"job\" field");
    }

    #[test]
    fn weighted_and_dm_specs_serve_with_weight_in_reply() {
        let input = concat!(
            "{\"id\":\"w\",\"pipeline\":\"scale:sk:5,suitor\",\"instance\":\"gen:er:200:4\"}\n",
            "{\"id\":\"d\",\"pipeline\":\"dm,two,pf\",\"instance\":\"gen:er:200:4\"}\n",
        );
        let (summary, lines) = run(input, &opts(2));
        assert_eq!(summary.ok, 2, "{lines:?}");
        let by_id = |id: &str| {
            lines[1..lines.len() - 1]
                .iter()
                .find(|l| l.get("id").and_then(Json::as_str) == Some(id))
                .unwrap_or_else(|| panic!("a reply for {id:?}"))
        };
        let weighted = by_id("w");
        let weight = weighted.get("weight").unwrap().as_f64().expect("weighted reply has weight");
        assert!(weight.is_finite() && weight > 0.0, "{weight}");
        let in_report =
            weighted.get("report").unwrap().get("weight").unwrap().as_f64().expect("report weight");
        assert_eq!(weight, in_report);
        let dm = by_id("d").get("report").unwrap();
        assert!(dm.get("cardinality").unwrap().as_usize().unwrap() > 0);
        assert!(dm.get("weight").unwrap().is_null(), "dm cardinality solve has no weight");
    }

    #[test]
    fn default_deadline_applies_when_job_has_none() {
        let input = "{\"id\":\"slow\",\"op\":\"sleep\",\"ms\":5000}\n";
        let mut o = opts(1);
        o.default_deadline_ms = 20;
        let t0 = Instant::now();
        let (summary, lines) = run(input, &o);
        // lint:allow(test-deadline): upper bound proving the 5 s sleep was cut short — must stay below 5 s, so it cannot route through the widening knob
        assert!(t0.elapsed() < Duration::from_secs(4));
        assert_eq!(summary.errors, 1);
        assert_eq!(lines[1].get("code").unwrap().as_str(), Some("deadline"));
        assert_eq!(lines[1].get("deadline_ms").unwrap().as_u64(), Some(20));
    }

    #[test]
    fn oversize_lines_get_parse_errors_not_crashes() {
        let mut o = opts(1);
        o.max_line_bytes = 64;
        let long = format!("{{\"id\":\"big\",\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(200));
        let input = format!("{long}\n{{\"id\":\"p\",\"op\":\"ping\"}}\n");
        let (summary, lines) = run(&input, &o);
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.ok, 1, "the next job on the stream still works");
        assert_eq!(lines[1].get("code").unwrap().as_str(), Some("parse"));
        assert!(
            lines[1].get("error").unwrap().as_str().unwrap().contains("line limit"),
            "{}",
            lines[1]
        );
        assert_eq!(lines[2].get("id").unwrap().as_str(), Some("p"));
    }

    #[test]
    fn read_line_capped_frames_and_counts() {
        let data = b"short\n0123456789abcdef-too-long\nnext\n";
        let mut input = std::io::Cursor::new(&data[..]);
        match read_line_capped(&mut input, 10).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "short"),
            _ => panic!("expected a line"),
        }
        match read_line_capped(&mut input, 10).unwrap() {
            LineRead::Oversize(n) => assert_eq!(n, 25),
            _ => panic!("expected oversize"),
        }
        match read_line_capped(&mut input, 10).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "next"),
            _ => panic!("the stream recovers cleanly after an oversize line"),
        }
        match read_line_capped(&mut input, 10).unwrap() {
            LineRead::Eof => {}
            _ => panic!("expected EOF"),
        }
    }
}
