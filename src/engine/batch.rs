//! Batch-level parallelism: a pool of reusable workspaces and a batch
//! solver that fans instances across it.
//!
//! [`Pipeline::solve`] parallelizes *inside* one instance; on server
//! workloads of many small instances the parallelism that actually pays is
//! one level up — solve whole instances concurrently, each sequentially on
//! one worker. [`WorkspacePool`] holds one reusable [`Workspace`] per
//! worker (trading memory for throughput: `N` workspaces instead of one),
//! and [`Pipeline::solve_batch`] distributes the batch over the pool while
//! preserving per-instance [`SolveReport`]s in submission order.
//!
//! The same pool shape backs two other fan-outs: the serve daemon runs
//! each job on a slot workspace, and `dm,<pipeline>` decomposition solves
//! distribute fine Dulmage–Mendelsohn blocks across a lazily-built
//! per-workspace pool (`Workspace::dm_pool`) — in every case the pinned
//! 1-thread slots keep results byte-identical to a sequential solve.
//!
//! Per-instance results are *identical* to a sequential 1-thread solve of
//! the same `(instance, seed)` pair, under **any** rayon runtime: every
//! slot workspace owns a pinned 1-thread pool, so each batch item's
//! nested parallel regions run the sequential schedule — the shim executes
//! them inline on the batch worker, real rayon dispatches them to the
//! slot's one-thread pool; either way the schedule is the 1-thread one
//! the workspace's determinism tests pin down.
//!
//! ```
//! use dsmatch::engine::{Pipeline, Solver, Workspace};
//!
//! let instances: Vec<_> =
//!     (0..4).map(|s| dsmatch::gen::erdos_renyi_square(400, 4.0, s)).collect();
//! let pipeline: Pipeline = "scale:sk:3,two".parse().unwrap();
//!
//! let pool = Workspace::per_worker(2);
//! let jobs: Vec<_> = instances.iter().map(|g| (g, 7u64)).collect();
//! let reports = pipeline.solve_batch(&jobs, &pool);
//! assert_eq!(reports.len(), 4);
//! ```

use std::sync::{Arc, Mutex, TryLockError};

use dsmatch_graph::BipartiteGraph;
use rayon::prelude::*;

use super::pipeline::{Pipeline, Solver};
use super::report::SolveReport;
use super::workspace::Workspace;

/// A pool of reusable [`Workspace`]s, one per worker (plus one for the
/// submitting thread), backing [`Pipeline::solve_batch`].
///
/// Built by [`Workspace::per_worker`] (owns a thread pool of the requested
/// size) or [`WorkspacePool::ambient`] (uses whatever pool is current at
/// solve time). Workspaces are lazily grown scratch arenas: after each
/// worker's first solve of a given instance shape, batch solving allocates
/// only the returned matchings.
#[derive(Debug)]
pub struct WorkspacePool {
    slots: Vec<Mutex<Workspace>>,
    /// Reusable workspaces for solves that found every slot busy (an
    /// [`ambient`](WorkspacePool::ambient) pool driven from a larger pool
    /// than it was built under) — cached so overflow does not pay a
    /// workspace construction (with its pinned 1-thread pool) per solve.
    overflow: Mutex<Vec<Workspace>>,
    pool: Option<Arc<rayon::ThreadPool>>,
}

impl Workspace {
    /// A [`WorkspacePool`] owning a thread pool of exactly `threads`
    /// workers (`0` = the default size) and one workspace per worker —
    /// the batch/server mode the CLI exposes as `--batch N --batch-par`.
    pub fn per_worker(threads: usize) -> WorkspacePool {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build batch thread pool");
        WorkspacePool::with_slots(pool.current_num_threads() + 1, Some(Arc::new(pool)))
    }
}

impl WorkspacePool {
    /// A workspace pool sized for the *ambient* thread pool (the caller's
    /// installed pool, or the global one) instead of owning its own.
    pub fn ambient() -> Self {
        Self::with_slots(rayon::current_num_threads() + 1, None)
    }

    fn with_slots(slots: usize, pool: Option<Arc<rayon::ThreadPool>>) -> Self {
        WorkspacePool {
            // Each slot pins a 1-thread pool: batch items must solve on
            // the *sequential* schedule for the byte-identical-to-1-thread
            // contract, and only an installed one-thread pool guarantees
            // that under every rayon runtime (the shim would run nested
            // regions inline on a batch worker anyway; real rayon would
            // otherwise fan them out across the batch pool).
            slots: (0..slots.max(2)).map(|_| Mutex::new(Workspace::with_threads(1))).collect(),
            overflow: Mutex::new(Vec::new()),
            pool,
        }
    }

    /// The number of threads batch solves against this pool will use.
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or_else(rayon::current_num_threads, |p| p.current_num_threads())
    }

    /// The number of reusable workspaces held (workers + 1: the submitting
    /// thread can execute small batches inline).
    pub fn workspaces(&self) -> usize {
        self.slots.len()
    }

    /// The owned thread pool, if any — the scheduler `serve` mode submits
    /// its stealable job tasks to.
    pub(crate) fn rayon_pool(&self) -> Option<&Arc<rayon::ThreadPool>> {
        self.pool.as_ref()
    }

    /// Run `op` in this pool's execution context: inside the owned pool
    /// when there is one, in the ambient pool otherwise.
    pub fn run<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        match &self.pool {
            Some(pool) => pool.install(op),
            None => op(),
        }
    }

    /// Run `op` with an exclusive workspace: a free pool slot when one
    /// exists, else a fresh temporary. With the pool the constructors
    /// size (workers + 1 slots, each concurrent task holding at most
    /// one), a slot is always free; the temporary covers an [`ambient`]
    /// pool driven from a *larger* pool than it was built under — those
    /// overflow solves allocate their own scratch instead of spinning or
    /// blocking, trading reuse for progress.
    ///
    /// [`ambient`]: WorkspacePool::ambient
    pub(crate) fn with_workspace<R>(&self, op: impl FnOnce(&mut Workspace) -> R) -> R {
        for slot in &self.slots {
            match slot.try_lock() {
                Ok(mut ws) => return op(&mut ws),
                // A solve that panicked mid-stage leaves valid (if
                // arbitrarily shaped) scratch: every buffer regrows on
                // demand, so a poisoned slot is safe to reuse.
                Err(TryLockError::Poisoned(poisoned)) => return op(&mut poisoned.into_inner()),
                Err(TryLockError::WouldBlock) => {}
            }
        }
        let mut ws = {
            let mut cache = self.overflow.lock().unwrap_or_else(|p| p.into_inner());
            cache.pop().unwrap_or_else(|| Workspace::with_threads(1))
        };
        let result = op(&mut ws);
        self.overflow.lock().unwrap_or_else(|p| p.into_inner()).push(ws);
        result
    }
}

impl Pipeline {
    /// Solve a batch of `(instance, seed)` jobs across `pool`'s workers,
    /// returning one [`SolveReport`] per job **in submission order**.
    ///
    /// Instances are distributed one per task (stealable, so skewed
    /// batches — one large instance among many small ones — load-balance);
    /// each instance is solved sequentially on its worker with a reused
    /// per-worker workspace, making the per-instance results byte-identical
    /// to 1-thread solves.
    pub fn solve_batch(
        &self,
        jobs: &[(&BipartiteGraph, u64)],
        pool: &WorkspacePool,
    ) -> Vec<SolveReport> {
        pool.run(|| {
            jobs.par_iter()
                .with_max_len(1)
                .map(|&(g, seed)| {
                    pool.with_workspace(|ws| self.clone().with_seed(seed).solve(g, ws))
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_worker_pool_shape() {
        let pool = Workspace::per_worker(3);
        assert_eq!(pool.threads(), 3);
        assert_eq!(pool.workspaces(), 4, "one workspace per worker plus the submitter");
        assert_eq!(pool.run(rayon::current_num_threads), 3);
    }

    #[test]
    fn ambient_pool_tracks_current_threads() {
        let ambient = WorkspacePool::ambient();
        assert_eq!(ambient.threads(), rayon::current_num_threads());
    }

    #[test]
    fn ambient_pool_overflows_gracefully_under_a_larger_pool() {
        // An ambient WorkspacePool sized under a small pool, then driven
        // from a larger installed pool: overflow tasks fall back to
        // temporary workspaces — every job completes, correctly, without
        // livelock.
        let instances: Vec<BipartiteGraph> =
            (0..10).map(|k| crate::gen::erdos_renyi_square(300, 3.0, k)).collect();
        let jobs: Vec<(&BipartiteGraph, u64)> = instances.iter().map(|g| (g, 3u64)).collect();
        let small = WorkspacePool::ambient();
        let big = rayon::ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let pipeline: Pipeline = "scale:sk:3,two".parse().unwrap();
        let reports = big.install(|| pipeline.solve_batch(&jobs, &small));
        assert_eq!(reports.len(), jobs.len());
        for (k, (report, g)) in reports.iter().zip(&instances).enumerate() {
            report.matching.verify(g).unwrap_or_else(|e| panic!("job {k}: {e}"));
        }
    }

    #[test]
    fn batch_reports_preserve_submission_order() {
        // Distinguishable instances: sizes 10, 20, 30, … — the report for
        // job k must describe instance k even under stealing.
        let instances: Vec<BipartiteGraph> =
            (1..=12).map(|k| crate::gen::erdos_renyi_square(10 * k, 3.0, k as u64)).collect();
        let jobs: Vec<(&BipartiteGraph, u64)> = instances.iter().map(|g| (g, 5u64)).collect();
        let pipeline: Pipeline = "scale:sk:3,two".parse().unwrap();
        let pool = Workspace::per_worker(4);
        let reports = pipeline.solve_batch(&jobs, &pool);
        assert_eq!(reports.len(), jobs.len());
        for (k, (report, g)) in reports.iter().zip(&instances).enumerate() {
            report.matching.verify(g).unwrap_or_else(|e| panic!("job {k}: {e}"));
            assert_eq!(report.matching.rmates().len(), g.nrows(), "job {k} shape");
        }
    }

    #[test]
    fn batch_results_match_sequential_solves_byte_for_byte() {
        let instances: Vec<BipartiteGraph> =
            (0..8).map(|k| crate::gen::erdos_renyi_square(600, 4.0, 100 + k)).collect();
        let jobs: Vec<(&BipartiteGraph, u64)> =
            instances.iter().enumerate().map(|(k, g)| (g, k as u64)).collect();
        let pipeline: Pipeline = "scale:sk:4,two".parse().unwrap();

        // Sequential reference: one workspace on a pinned 1-thread pool —
        // the schedule each batch item must reproduce regardless of the
        // ambient pool size this test runs under.
        let mut ws = Workspace::with_threads(1);
        let reference: Vec<SolveReport> = jobs
            .iter()
            .map(|&(g, seed)| pipeline.clone().with_seed(seed).solve(g, &mut ws))
            .collect();

        let pool = Workspace::per_worker(4);
        let batch = pipeline.solve_batch(&jobs, &pool);
        for (k, (b, r)) in batch.iter().zip(&reference).enumerate() {
            assert_eq!(b.matching.rmates(), r.matching.rmates(), "job {k} rmates");
            assert_eq!(b.cardinality(), r.cardinality(), "job {k} cardinality");
        }
    }
}
