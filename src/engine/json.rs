//! Minimal hand-rolled JSON value + writer (no external dependencies).
//!
//! Just enough for the machine-readable outputs this workspace emits — the
//! CLI's `--json` mode and the bench harness's `BENCH_pipeline.json` — with
//! correct string escaping and non-finite-number handling. Not a parser.

/// A JSON value, rendered via [`std::fmt::Display`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (kept exact rather than routed through `f64`).
    Int(i64),
    /// Unsigned integer (kept exact — JSON permits arbitrary-precision
    /// integer literals, so `u64::MAX` round-trips textually).
    UInt(u64),
    /// Floating-point number; non-finite values render as `null`.
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as an ordered key → value list (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// `Some(v)` → `v.into()`, `None` → `null`.
    pub fn opt<T: Into<Json>>(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as i64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

fn write_escaped(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (k, (key, value)) in pairs.iter().enumerate() {
                    if k > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj(vec![
            ("name", Json::from("er\n\"quoted\"")),
            ("n", Json::from(1000usize)),
            ("t", Json::from(0.25f64)),
            ("missing", Json::opt(None::<usize>)),
            ("arr", Json::Arr(vec![Json::from(1i64), Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"er\n\"quoted\"","n":1000,"t":0.25,"missing":null,"arr":[1,true,null]}"#
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
    }

    #[test]
    fn u64_round_trips_without_wrapping() {
        assert_eq!(Json::from(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::from(i64::MIN).to_string(), "-9223372036854775808");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(Json::from("a\u{1}b").to_string(), "\"a\\u0001b\"");
    }
}
