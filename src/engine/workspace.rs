//! The engine's reusable workspace: one allocation arena per solver loop.

use dsmatch_core::HeurWorkspace;
use dsmatch_exact::AugmentWorkspace;
use dsmatch_graph::BipartiteGraph;
use dsmatch_scale::ScalingResult;

/// Scratch buffers threaded through every stage of a [`Pipeline`] solve.
///
/// Construct one [`Workspace`] and reuse it across solves: after the first
/// solve on a given instance shape, no stage allocates scratch memory —
/// only the returned [`Matching`](dsmatch_graph::Matching) inside each
/// [`SolveReport`](crate::engine::SolveReport) is fresh. This is the
/// batch/server mode the CLI exposes as `--batch N`.
///
/// A workspace is not tied to one graph: solving a differently-shaped
/// instance simply regrows the buffers.
///
/// [`Pipeline`]: crate::engine::Pipeline
#[derive(Debug)]
pub struct Workspace {
    /// Scaling factors of the most recent `scale` stage (or the identity
    /// reset when the pipeline has none and the heuristic samples).
    pub scaling: ScalingResult,
    /// Heuristic scratch (choice arrays, Algorithm 4 state, …).
    pub heur: HeurWorkspace,
    /// Exact-solver scratch (BFS/DFS state, working mate arrays).
    pub augment: AugmentWorkspace,
}

impl Workspace {
    /// An empty workspace; every buffer grows lazily on first use.
    pub fn new() -> Self {
        Self {
            scaling: ScalingResult::empty(),
            heur: HeurWorkspace::new(),
            augment: AugmentWorkspace::new(),
        }
    }

    /// Pre-size the workspace for `g` by resetting the scaling factors to
    /// the identity. Optional — solving grows buffers on demand anyway.
    pub fn warm_up(&mut self, g: &BipartiteGraph) {
        self.scaling.reset_identity(g);
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}
