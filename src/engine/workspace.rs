//! The engine's reusable workspace: one allocation arena per solver loop,
//! optionally owning the thread pool its solves execute in.

use dsmatch_core::HeurWorkspace;
use dsmatch_exact::AugmentWorkspace;
use dsmatch_graph::BipartiteGraph;
use dsmatch_scale::ScalingResult;
use std::sync::Arc;

/// Scratch buffers threaded through every stage of a [`Pipeline`] solve.
///
/// Construct one [`Workspace`] and reuse it across solves: after the first
/// solve on a given instance shape, no stage allocates scratch memory —
/// only the returned [`Matching`](dsmatch_graph::Matching) inside each
/// [`SolveReport`](crate::engine::SolveReport) is fresh. This is the
/// batch/server mode the CLI exposes as `--batch N`.
///
/// A workspace is not tied to one graph: solving a differently-shaped
/// instance simply regrows the buffers.
///
/// ## Parallel execution
///
/// A workspace optionally **owns a thread pool** ([`Workspace::with_threads`]).
/// When it does, every [`Pipeline`](crate::engine::Pipeline) solve against
/// it runs with that pool installed, so the parallel stages (scaling
/// sweeps, choice sampling, `KarpSipserMT`) execute on the workspace's
/// workers — this is what the CLI's `--threads N` builds. Without an owned
/// pool, solves use the ambient pool (the caller's installed pool, the
/// global pool, or `RAYON_NUM_THREADS`/available parallelism).
///
/// [`Pipeline`]: crate::engine::Pipeline
#[derive(Debug)]
pub struct Workspace {
    /// Scaling factors of the most recent `scale` stage (or the identity
    /// reset when the pipeline has none and the heuristic samples).
    pub scaling: ScalingResult,
    /// Heuristic scratch (choice arrays, Algorithm 4 state, …).
    pub heur: HeurWorkspace,
    /// Exact-solver scratch (BFS/DFS state, working mate arrays).
    pub augment: AugmentWorkspace,
    /// Edge buffer for the weighted workloads: `(row, nrows + col, weight)`
    /// triples built from the current scaling factors, reused across
    /// solves like every other scratch buffer.
    pub weighted_edges: Vec<(usize, usize, f64)>,
    /// Thread pool solves against this workspace execute in, if owned
    /// (shared so the solve path can install it while the workspace is
    /// mutably borrowed).
    pub(crate) pool: Option<Arc<rayon::ThreadPool>>,
    /// Lazily-built workspace pool for `dm,` decomposition solves: fine
    /// blocks fan out across it as stealable per-block jobs, each solved
    /// on a pinned 1-thread slot workspace (see [`Workspace::dm_pool`]).
    pub(crate) dm_pool: Option<super::batch::WorkspacePool>,
}

impl Workspace {
    /// An empty workspace; every buffer grows lazily on first use. Solves
    /// run in the ambient thread pool.
    pub fn new() -> Self {
        Self {
            scaling: ScalingResult::empty(),
            heur: HeurWorkspace::new(),
            augment: AugmentWorkspace::new(),
            weighted_edges: Vec::new(),
            pool: None,
            dm_pool: None,
        }
    }

    /// A workspace owning a thread pool of exactly `threads` workers
    /// (`0` = the default size); every solve against it executes there.
    pub fn with_threads(threads: usize) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build workspace thread pool");
        Self { pool: Some(Arc::new(pool)), ..Self::new() }
    }

    /// The number of threads solves against this workspace will use: the
    /// owned pool's size, or the ambient pool's.
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or_else(rayon::current_num_threads, |p| p.current_num_threads())
    }

    /// The owned thread pool, if any.
    pub fn pool(&self) -> Option<&Arc<rayon::ThreadPool>> {
        self.pool.as_ref()
    }

    /// Run `op` in this workspace's execution context: inside the owned
    /// pool when there is one, in the ambient pool otherwise.
    pub fn run<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        match &self.pool {
            Some(pool) => pool.install(op),
            None => op(),
        }
    }

    /// Pre-size the workspace for `g` by resetting the scaling factors to
    /// the identity. Optional — solving grows buffers on demand anyway.
    pub fn warm_up(&mut self, g: &BipartiteGraph) {
        self.scaling.reset_identity(g);
    }

    /// The workspace pool backing `dm,` decomposition solves, built on
    /// first use and sized to this workspace's own thread pool (or the
    /// default size for ambient workspaces). Fine blocks are distributed
    /// across it as stealable jobs; each block solves on a pinned
    /// 1-thread slot workspace, so block results — and therefore the
    /// stitched matching — are byte-identical at every pool size.
    pub(crate) fn dm_pool(&mut self) -> &super::batch::WorkspacePool {
        if self.dm_pool.is_none() {
            let threads = self.pool.as_ref().map_or(0, |p| p.current_num_threads());
            self.dm_pool = Some(Workspace::per_worker(threads));
        }
        self.dm_pool.as_ref().expect("just installed")
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

/// Bound on how long [`observed_parallelism`]'s rendezvous (and the
/// repo's other scheduler-probing waits) may block: the
/// `DSMATCH_TEST_TIMEOUT_SECS` environment variable when set to a positive
/// integer, else `default_secs`. Loaded CI runners can stall a worker far
/// past laptop-scale deadlines, so the CI workflow raises the knob rather
/// than every call site hard-coding its own guess. The rayon shim's
/// scheduler tests read the same variable (duplicated there, not shared:
/// the `real-rayon` CI leg compiles the workspace without the shim).
pub(crate) fn test_timeout(default_secs: u64) -> std::time::Duration {
    let secs = std::env::var("DSMATCH_TEST_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&s| s > 0)
        .unwrap_or(default_secs);
    std::time::Duration::from_secs(secs)
}

/// Count the distinct worker threads that actually execute a parallel
/// region in the **current** pool context — the honesty probe behind the
/// CLI's `--threads` report.
///
/// Spawns one scoped task per configured thread; tasks rendezvous on a
/// **barrier** before recording their thread id, so a genuinely parallel
/// pool of `N` workers reports exactly `N` and a sequential executor
/// reports `1`. The barrier (rather than the old bounded busy-wait, which
/// could let one worker run two probe tasks and undercount) is safe here
/// because the scheduler places the `N` probe tasks on `N` distinct
/// worker deques and a worker drains its own deque first — every worker
/// executes exactly one task. Tasks that find themselves running *inline*
/// (no pool dispatched, or a probe from within a worker) skip the wait,
/// and a generous timeout keeps a degenerate scheduler from hanging the
/// probe instead of merely undercounting it.
pub fn observed_parallelism() -> usize {
    use std::collections::HashSet;
    use std::sync::{Condvar, Mutex};

    let expected = rayon::current_num_threads();
    if expected <= 1 {
        return 1;
    }

    /// All-arrive barrier: every task arrives; only tasks that are *not*
    /// executing inline on the probing thread wait for the full
    /// complement. Inline execution (a sequential region, or a runtime
    /// that lets the scoping thread help) is detected portably by thread
    /// identity — an inline task waiting on itself would deadlock.
    struct Rendezvous {
        arrived: Mutex<usize>,
        all_here: Condvar,
    }
    let caller = std::thread::current().id();
    let barrier = Rendezvous { arrived: Mutex::new(0), all_here: Condvar::new() };
    let ids = Mutex::new(HashSet::new());
    rayon::scope(|s| {
        for _ in 0..expected {
            s.spawn(|_| {
                let inline = std::thread::current().id() == caller;
                let mut count = barrier.arrived.lock().unwrap_or_else(|p| p.into_inner());
                *count += 1;
                barrier.all_here.notify_all();
                if !inline {
                    let mut remaining = test_timeout(2);
                    while *count < expected && !remaining.is_zero() {
                        let (next, timeout) = barrier
                            .all_here
                            .wait_timeout(count, remaining)
                            .unwrap_or_else(|p| p.into_inner());
                        count = next;
                        if timeout.timed_out() {
                            remaining = std::time::Duration::ZERO;
                        }
                    }
                }
                drop(count);
                ids.lock().unwrap_or_else(|p| p.into_inner()).insert(std::thread::current().id());
            });
        }
    });
    let n = ids.into_inner().unwrap_or_else(|p| p.into_inner()).len();
    n.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_pool_controls_thread_count() {
        let ws = Workspace::with_threads(3);
        assert_eq!(ws.threads(), 3);
        assert_eq!(ws.run(rayon::current_num_threads), 3);
        let ambient = Workspace::new();
        assert_eq!(ambient.threads(), rayon::current_num_threads());
    }

    #[test]
    fn observed_parallelism_is_exact_for_every_pool_size() {
        // The barrier-based probe is exact, not a lower bound: each pool
        // worker executes exactly one probe task (own-deque placement), so
        // the count must equal the pool size even under scheduling skew.
        for t in [1usize, 2, 4, 8] {
            let ws = Workspace::with_threads(t);
            assert_eq!(ws.run(observed_parallelism), t, "{t}-thread pool");
        }
    }

    #[test]
    fn observed_parallelism_from_worker_context_reports_inline() {
        // Nested regions on a pool worker run inline; the probe must say
        // so instead of deadlocking on a barrier no one else will reach.
        let ws = Workspace::with_threads(4);
        let nested = ws.run(|| {
            let slot = std::sync::Mutex::new(0usize);
            rayon::scope(|s| {
                s.spawn(|_| {
                    *slot.lock().unwrap() = observed_parallelism();
                });
            });
            let seen = *slot.lock().unwrap();
            seen
        });
        assert_eq!(nested, 1);
    }
}
