//! # The solver engine: composable, instrumented, allocation-reusing runs
//!
//! The paper's whole experimental protocol (§4) is a *pipeline*: doubly
//! stochastic scaling, a randomized heuristic, then optionally an exact
//! solver jump-started from the heuristic matching. This module makes that
//! composition a first-class object so every surface — the `dsmatch` CLI,
//! the bench harness, tests and examples — drives the algorithms uniformly:
//!
//! ```text
//!            ┌────────────┐    ┌─────────────┐    ┌──────────────┐
//!  graph ──▶ │   Scale    │ ─▶ │  Workload   │ ─▶ │   Augment    │ ─▶ SolveReport
//!            │ (sk|ruiz,  │    │ one|two|ks| │    │ (hk|pf|pr|   │     · matching, weight
//!            │  optional) │    │ suitor|…    │    │  bfs, opt.)  │     · per-stage times
//!            └────────────┘    └─────────────┘    └──────────────┘     · scaling iters/error
//! ```
//!
//! - [`AlgorithmKind`] — the registry of all fifteen algorithms,
//!   including the paper's Algorithm 4 (`ksmt`), the §5 one-out undirected
//!   variant (`one-out`), the multicore exact finishers
//!   (`hk-par`/`pf-par`/`pf-graft`) and the statistics-driven `auto`
//!   finisher ([`select_finisher`]);
//! - [`WeightedKind`] — the weighted workload registry
//!   (`greedy-w`/`path-grow`/`suitor`/`suitor-par`): heuristics that
//!   match on the scaling entries as edge weights (the paper's matching
//!   probabilities) and report a `weight` quality axis;
//! - [`Pipeline`] — a parsed grammar-v2 spec,
//!   `dm,<pipeline>` or `[scale[:sk|ruiz][:iters],]<workload>[,<exact>]`,
//!   solvable via the [`Solver`] trait; [`Workload`] is the typed middle
//!   stage ([`StageKind`] classifies raw tokens), and a `dm,` prefix
//!   solves every fine Dulmage–Mendelsohn block independently with the
//!   inner pipeline — per-block jobs on a pool, byte-identical mates at
//!   every pool size;
//! - [`Workspace`] — reusable scratch buffers threaded through every
//!   stage; repeated solves on same-shaped instances stop allocating
//!   (batch/server mode);
//! - [`WorkspacePool`] + [`Pipeline::solve_batch`] — batch-level
//!   parallelism: one reusable workspace per worker, whole instances
//!   fanned across the pool in stealable tasks (CLI `--batch-par`);
//! - [`SolveReport`] — the matching plus per-stage wall times, scaling
//!   iteration count/error, and an optional quality ratio;
//! - [`SpecError`] — the typed reasons a pipeline spec can fail to parse,
//!   surfaced verbatim by the CLI and the serve protocol;
//! - [`serve`] — matching-as-a-service: a long-running daemon reading
//!   newline-delimited JSON jobs (each with its own pipeline spec and
//!   instance ref), streaming one report line per job, with an instance
//!   cache and warm-started incremental `delta` re-solves;
//! - [`Json`] — re-exported from the shared [`dsmatch_json`] crate: the
//!   value type behind `--json`, the serve protocol, and the bench
//!   harness's `BENCH_*.json` files.
//!
//! ## Example
//!
//! ```
//! use dsmatch::engine::{Pipeline, Solver, Workspace};
//!
//! let g = dsmatch::gen::erdos_renyi_square(1_000, 4.0, 42);
//! let pipeline: Pipeline = "scale:sk:5,two,pf".parse().unwrap();
//! let mut ws = Workspace::new();
//!
//! // Batch mode: the workspace is allocated once, then reused.
//! for seed in 0..3 {
//!     let report = pipeline.clone().with_seed(seed).solve(&g, &mut ws);
//!     assert_eq!(report.cardinality(), dsmatch::exact::sprank(&g));
//! }
//! ```

mod batch;
pub mod faults;
mod pipeline;
mod registry;
mod report;
mod serve;
mod spec;
mod workspace;

pub use batch::WorkspacePool;
pub use dsmatch_graph::{CancelToken, Cancelled};
pub use dsmatch_json::Json;
pub use pipeline::{Pipeline, ScaleMethod, ScaleStage, Solver, Workload, DEFAULT_SCALE_ITERATIONS};
pub use registry::{select_finisher, AlgorithmKind, WeightedKind};
pub use report::{SolveReport, StageReport};
#[cfg(unix)]
pub use serve::serve_unix_socket;
pub use serve::{parse_gen_spec, serve, ServeOptions, ServeSummary};
pub use spec::{SpecError, StageKind};
pub use workspace::{observed_parallelism, Workspace};
