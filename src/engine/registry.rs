//! The algorithm registry: every matching algorithm in the workspace under
//! one enum, each usable as a pipeline stage.

/// Every matching algorithm the workspace implements.
///
/// Heuristic stages sample from the **current scaling factors** in the
/// [`Workspace`](crate::engine::Workspace): the factors computed by a
/// preceding `scale` stage, or the identity (uniform sampling over
/// adjacency lists) when the pipeline has no scale stage. This makes the
/// composition explicit — the paper's `TwoSidedMatch` with 5 Sinkhorn–Knopp
/// iterations is the pipeline `scale:sk:5,two`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Paper Algorithm 2 (guarantee 1 − 1/e).
    OneSided,
    /// Paper Algorithm 3: two-sided sampling + [`KarpSipserMt`]
    /// (conjectured 0.866). Equivalent to [`KarpSipserMt`] under the same
    /// scaling, exposed separately so specs read like the paper.
    ///
    /// [`KarpSipserMt`]: AlgorithmKind::KarpSipserMt
    TwoSided,
    /// Classic Karp–Sipser heuristic.
    KarpSipser,
    /// Paper Algorithm 4: the specialized parallel Karp–Sipser, run on the
    /// 1-out ∪ 1-in subgraph sampled from the current scaling factors.
    KarpSipserMt,
    /// The §5 one-out *undirected* variant, applied to the bipartite graph
    /// viewed as one vertex class (rows and columns unified).
    OneOutUndirected,
    /// Random-edge greedy (½).
    CheapEdge,
    /// Random-vertex greedy (½ + ε).
    CheapVertex,
    /// Exact: Hopcroft–Karp.
    HopcroftKarp,
    /// Exact: Pothen–Fan with lookahead.
    PothenFan,
    /// Exact: push-relabel / auction.
    PushRelabel,
    /// Exact: single-path BFS augmentation.
    BfsAugment,
    /// Exact, multicore: Hopcroft–Karp with a parallel level-synchronized
    /// BFS phase (byte-identical to [`HopcroftKarp`] at every pool size).
    ///
    /// [`HopcroftKarp`]: AlgorithmKind::HopcroftKarp
    HopcroftKarpPar,
    /// Exact, multicore: tree-grafting-style parallel Pothen–Fan
    /// (multi-source BFS forest + disjoint-path harvest).
    PothenFanPar,
}

impl AlgorithmKind {
    /// All algorithms, heuristics first.
    pub fn all() -> [AlgorithmKind; 13] {
        use AlgorithmKind::*;
        [
            OneSided,
            TwoSided,
            KarpSipser,
            KarpSipserMt,
            OneOutUndirected,
            CheapEdge,
            CheapVertex,
            HopcroftKarp,
            PothenFan,
            PushRelabel,
            BfsAugment,
            HopcroftKarpPar,
            PothenFanPar,
        ]
    }

    /// True for the exact (maximum-cardinality) algorithms — the only ones
    /// allowed as a pipeline's `augment` finisher.
    pub fn is_exact(&self) -> bool {
        matches!(
            self,
            AlgorithmKind::HopcroftKarp
                | AlgorithmKind::PothenFan
                | AlgorithmKind::PushRelabel
                | AlgorithmKind::BfsAugment
                | AlgorithmKind::HopcroftKarpPar
                | AlgorithmKind::PothenFanPar
        )
    }

    /// True for the algorithms whose sampling reads the scaling factors
    /// (a preceding `scale` stage changes their behaviour).
    pub fn uses_scaling(&self) -> bool {
        matches!(
            self,
            AlgorithmKind::OneSided
                | AlgorithmKind::TwoSided
                | AlgorithmKind::KarpSipserMt
                | AlgorithmKind::OneOutUndirected
        )
    }

    /// Short CLI/spec name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::OneSided => "one",
            AlgorithmKind::TwoSided => "two",
            AlgorithmKind::KarpSipser => "ks",
            AlgorithmKind::KarpSipserMt => "ksmt",
            AlgorithmKind::OneOutUndirected => "one-out",
            AlgorithmKind::CheapEdge => "cheap",
            AlgorithmKind::CheapVertex => "cheap-vertex",
            AlgorithmKind::HopcroftKarp => "hk",
            AlgorithmKind::PothenFan => "pf",
            AlgorithmKind::PushRelabel => "pr",
            AlgorithmKind::BfsAugment => "bfs",
            AlgorithmKind::HopcroftKarpPar => "hk-par",
            AlgorithmKind::PothenFanPar => "pf-par",
        }
    }
}

impl std::str::FromStr for AlgorithmKind {
    type Err = super::spec::SpecError;

    /// Look up a spec name in the registry.
    ///
    /// ```
    /// use dsmatch::engine::{AlgorithmKind, SpecError};
    ///
    /// assert_eq!("pf-par".parse::<AlgorithmKind>(), Ok(AlgorithmKind::PothenFanPar));
    /// assert_eq!(
    ///     "nope".parse::<AlgorithmKind>(),
    ///     Err(SpecError::UnknownAlgorithm { name: "nope".into() }),
    /// );
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AlgorithmKind::all()
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| super::spec::SpecError::UnknownAlgorithm { name: s.to_string() })
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for a in AlgorithmKind::all() {
            let parsed: AlgorithmKind = a.name().parse().unwrap();
            assert_eq!(parsed, a);
            assert_eq!(a.to_string(), a.name());
        }
        assert!("nope".parse::<AlgorithmKind>().is_err());
    }

    #[test]
    fn exactly_six_exact_engines() {
        assert_eq!(AlgorithmKind::all().iter().filter(|a| a.is_exact()).count(), 6);
        assert_eq!(AlgorithmKind::all().iter().filter(|a| a.uses_scaling()).count(), 4);
    }

    #[test]
    fn parallel_finishers_are_exact_and_unscaled() {
        for a in [AlgorithmKind::HopcroftKarpPar, AlgorithmKind::PothenFanPar] {
            assert!(a.is_exact(), "{a}");
            assert!(!a.uses_scaling(), "{a}");
        }
    }
}
